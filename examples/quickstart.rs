//! Quickstart: decompose a single function with compatible class encoding.
//!
//! Run with `cargo run --example quickstart`.

use hyde::core::chart::DecompositionChart;
use hyde::core::decompose::Decomposer;
use hyde::core::encoding::EncoderKind;
use hyde::core::varpart::VariablePartitioner;
use hyde::logic::TruthTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 9-input symmetric function (the 9sym benchmark).
    let f = TruthTable::from_fn(9, |m| (3..=6).contains(&m.count_ones()));
    println!(
        "f = 9sym: {} minterms over {} inputs",
        f.count_ones(),
        f.vars()
    );

    // 1. Pick a bound (lambda) set: the variable partitioner searches for
    //    the subset with the fewest compatible classes.
    let vp = VariablePartitioner::default();
    let (bound, classes) = vp.best_bound_set(&f, 5)?;
    println!("best 5-variable bound set {bound:?} -> {classes} compatible classes");

    // 2. Inspect the decomposition chart.
    let chart = DecompositionChart::new(&f, &bound)?;
    println!(
        "chart: {} columns, {} free variables, class sizes {:?}",
        chart.columns().len(),
        chart.free().len(),
        (0..chart.class_count())
            .map(|i| chart.classes().members(i).len())
            .collect::<Vec<_>>()
    );

    // 3. Decompose recursively into a 5-LUT network using the HYDE
    //    compatible class encoder.
    let dec = Decomposer::new(5, EncoderKind::Hyde { seed: 1 });
    let (net, stats) = dec.decompose_to_network(&f, "sym9")?;
    println!(
        "mapped to {} LUTs, depth {}, {} decomposition steps",
        net.internal_count(),
        net.depth(),
        stats.steps
    );

    // 4. The network is functionally identical to f.
    for m in [0u32, 7, 63, 255, 511] {
        let bits: Vec<bool> = (0..9).map(|i| m >> i & 1 == 1).collect();
        assert_eq!(net.eval(&bits)[0], f.eval(m));
    }
    println!("verification passed");
    Ok(())
}
