//! Hyper-function decomposition: fold four outputs into one function, let
//! single-output decomposition extract the shared logic, and recover each
//! output by collapsing the pseudo primary inputs (Example 4.1's workflow).
//!
//! Run with `cargo run --release --example hyper_sharing`.

use hyde::core::decompose::Decomposer;
use hyde::core::encoding::EncoderKind;
use hyde::core::hyper::HyperFunction;
use hyde::logic::TruthTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four related outputs: a 2x2 multiplier plus two comparison flags,
    // all over the same 4 inputs.
    let outputs = vec![
        TruthTable::from_fn(4, |m| ((m & 3) * (m >> 2)) & 1 == 1),
        TruthTable::from_fn(4, |m| ((m & 3) * (m >> 2)) & 2 == 2),
        TruthTable::from_fn(4, |m| (m & 3) > (m >> 2)),
        TruthTable::from_fn(4, |m| (m & 3) == (m >> 2)),
    ];

    // Fold into a hyper-function with 2 pseudo primary inputs.
    let h = HyperFunction::new(outputs.clone(), &EncoderKind::Hyde { seed: 9 }, 5)?;
    println!(
        "hyper-function: {} ingredients, {} pseudo inputs, {} real inputs",
        h.ingredients().len(),
        h.pseudo_bits(),
        h.num_inputs()
    );
    println!("ingredient codes: {:?}", h.codes().codes());

    // Decompose as a single-output function.
    let dec = Decomposer::new(4, EncoderKind::Hyde { seed: 9 });
    let hn = h.decompose(&dec)?;
    println!(
        "decomposed hyper network: {} LUTs",
        hn.network.internal_count()
    );

    // Duplication analysis (Definitions 4.2-4.5).
    println!(
        "duplication source: {} nodes",
        hn.duplication_source().len()
    );
    println!("duplication cone:   {} nodes", hn.duplication_cone().len());
    for m in 1..=h.pseudo_bits() {
        println!("DSet_{m}: {} nodes", hn.dset(m).len());
    }

    // Recover all ingredients; shared logic outside the cone is merged.
    let merged = hn.implement_ingredients()?;
    println!(
        "implemented all {} outputs in {} LUTs (duplication bound was {})",
        merged.outputs().len(),
        merged.internal_count(),
        hn.predicted_lut_bound()
    );
    hn.verify_ingredients()?;
    println!("all outputs verified");
    Ok(())
}
