//! Compare compatible class encoders on one decomposition: how the code
//! assignment changes the image function's *next* decomposition.
//!
//! Run with `cargo run --release --example encoding_explorer`.

use hyde::core::chart::DecompositionChart;
use hyde::core::encoding::{build_image, EncoderKind};
use hyde::core::varpart::VariablePartitioner;
use hyde::logic::{SopCover, TruthTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(0xE0C0DE);
    let f = TruthTable::random(9, &mut rng);
    let bound = VariablePartitioner::default().best_bound_set(&f, 4)?.0;
    let chart = DecompositionChart::new(&f, &bound)?;
    let classes = chart.classes().clone();
    println!(
        "f: 9 random inputs, bound {bound:?}, {} compatible classes ({} code bits)",
        classes.len(),
        hyde::core::encoding::ceil_log2(classes.len())
    );
    println!(
        "{:<22}{:>16}{:>12}{:>12}",
        "encoder", "g classes@best", "g cubes", "strict"
    );
    let encoders: Vec<(&str, EncoderKind)> = vec![
        ("lexicographic", EncoderKind::Lexicographic),
        ("random", EncoderKind::Random { seed: 42 }),
        (
            "cube-min (Murgai)",
            EncoderKind::CubeMin {
                seed: 42,
                iters: 60,
            },
        ),
        ("hyde (class-count)", EncoderKind::Hyde { seed: 42 }),
    ];
    let vp = VariablePartitioner::default();
    for (name, enc) in encoders {
        let codes = enc.build().encode(&classes, 5)?;
        let (g, dc) = build_image(&classes, &codes);
        let (_, next_classes) = vp.best_bound_set(&g, 5.min(g.vars() - 1))?;
        let cubes = SopCover::isop_between(&g, &(&g | &dc)).cube_count();
        println!(
            "{name:<22}{next_classes:>16}{cubes:>12}{:>12}",
            codes.is_strict()
        );
    }
    println!("\nlower 'g classes' means the next decomposition needs fewer alpha LUTs —");
    println!("the paper's argument for the class-count objective over cube counts.");
    Ok(())
}
