//! Map benchmark circuits to Xilinx XC3000 CLBs with three flows and
//! compare the counts (the Table 1 experiment on a few circuits).
//!
//! Run with `cargo run --release --example map_xc3000`.

use hyde::map::flow::{FlowKind, MappingFlow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuits = vec![
        hyde::circuits::rd73(),
        hyde::circuits::rd84(),
        hyde::circuits::sym9(),
        hyde::circuits::z4ml(),
        hyde::circuits::misex1(),
    ];
    let flows = [
        ("imodec-like", FlowKind::imodec_like()),
        ("fgsyn-like", FlowKind::fgsyn_like()),
        ("hyde", FlowKind::hyde(0xDA98)),
    ];
    println!(
        "{:<10}{:>8}{:>6}{:>14}{:>8}{:>6}",
        "circuit", "in/out", "", "flow", "CLBs", "LUTs"
    );
    for c in &circuits {
        for (label, kind) in &flows {
            let flow = MappingFlow::new(5, kind.clone());
            let report = flow.map_outputs(&c.name, &c.outputs)?;
            println!(
                "{:<10}{:>5}/{:<3}{:>17}{:>8}{:>6}",
                c.name,
                c.inputs,
                c.output_count(),
                label,
                report.clbs.expect("k=5 packs CLBs"),
                report.luts
            );
        }
        println!();
    }
    Ok(())
}
