//! Time-multiplexed reconfigurable computing with hyper-functions — the
//! application sketched in the paper's conclusion: fold several functions
//! into one hyper-function, map it once, and select the active function at
//! run time through the pseudo primary inputs. No duplication cone is
//! replicated at all.
//!
//! Run with `cargo run --release --example time_multiplex`.

use hyde::core::decompose::Decomposer;
use hyde::core::encoding::EncoderKind;
use hyde::core::hyper::HyperFunction;
use hyde::logic::TruthTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four "configurations" of a reconfigurable 8-input unit.
    let configs = vec![
        TruthTable::from_fn(8, |m| (m & 0xF) + (m >> 4) >= 16), // adder carry
        TruthTable::from_fn(8, |m| (m & 0xF) == (m >> 4)),      // comparator
        TruthTable::from_fn(8, |m| m.count_ones() % 2 == 1),    // parity
        TruthTable::from_fn(8, |m| (m & 0xF).count_ones() > (m >> 4).count_ones()),
    ];
    let h = HyperFunction::new(configs.clone(), &EncoderKind::Hyde { seed: 7 }, 5)?;
    let dec = Decomposer::new(5, EncoderKind::Hyde { seed: 7 });
    let hn = h.decompose(&dec)?;

    println!("hyper-function of {} configurations:", configs.len());
    println!(
        "  spatial (duplicated) upper bound: {} LUTs",
        hn.predicted_lut_bound()
    );
    println!(
        "  spatial (shared) implementation:  {} LUTs",
        hn.implemented_lut_count()?
    );
    println!(
        "  time-multiplexed implementation:  {} LUTs + {} mode pins",
        hn.time_multiplexed_lut_count(),
        hn.pseudo_inputs.len()
    );

    // Drive the mode pins to select each configuration.
    let tm = hn.time_multiplexed();
    for (i, f) in configs.iter().enumerate() {
        for m in [0u32, 17, 128, 255] {
            let bits: Vec<bool> = (0..8).map(|v| m >> v & 1 == 1).collect();
            assert_eq!(tm.eval_ingredient(i, &bits), f.eval(m));
        }
        println!(
            "  mode {:02b} -> configuration {i} verified",
            tm.codes.code(i)
        );
    }
    Ok(())
}
