//! Decompose a 20-input function symbolically — wider than truth tables
//! comfortably go — using the OBDD-native path, with order optimization.
//!
//! Run with `cargo run --release --example wide_function`.

use hyde::bdd::{reorder, Bdd};
use hyde::core::decompose::decompose_bdd_to_network;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 20-input comparator-flavoured function: (a > b) XOR parity(low a).
    let mut bdd = Bdd::new(20);
    let f = {
        // Build symbolically: compare two 10-bit halves.
        let mut gt = bdd.zero();
        let mut eq = bdd.one();
        for i in (0..10).rev() {
            let ai = bdd.var(i);
            let bi = bdd.var(10 + i);
            let nbi = bdd.not(bi);
            let ai_gt = bdd.and(ai, nbi);
            let this = bdd.and(eq, ai_gt);
            gt = bdd.or(gt, this);
            let x = bdd.xor(ai, bi);
            let same = bdd.not(x);
            eq = bdd.and(eq, same);
        }
        let mut par = bdd.zero();
        for i in 0..4 {
            let v = bdd.var(i);
            par = bdd.xor(par, v);
        }
        bdd.xor(gt, par)
    };
    println!("f over 20 inputs: {} BDD nodes", bdd.node_count(f));

    // Variable-order optimization (one sifting pass).
    let sifted = reorder::sift(&mut bdd, f);
    println!("after sifting: {} nodes", sifted.size);

    // Symbolic decomposition to 5-LUTs — no 2^20-bit truth table involved.
    let net = decompose_bdd_to_network(&mut bdd, f, 5, "wide", 48)?;
    println!(
        "mapped to {} LUTs, depth {} ({} primary inputs used)",
        net.internal_count(),
        net.depth(),
        net.inputs().len()
    );

    // Spot-check against the BDD on random vectors.
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let positions: Vec<usize> = net
        .inputs()
        .iter()
        .map(|&id| {
            net.node_name(id)
                .strip_prefix('x')
                .and_then(|s| s.parse().ok())
                .expect("inputs named x<i>")
        })
        .collect();
    for _ in 0..2000 {
        let m: u32 = rng.gen_range(0..1 << 20);
        let bits: Vec<bool> = positions.iter().map(|&p| m >> p & 1 == 1).collect();
        assert_eq!(net.eval(&bits)[0], bdd.eval(f, m));
    }
    println!("2000 random vectors verified");
    Ok(())
}
