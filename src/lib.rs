//! HYDE — a reproduction of *"Compatible Class Encoding in Hyper-Function
//! Decomposition for FPGA Synthesis"* (Jiang, Jou, Huang, DAC 1998).
//!
//! This facade crate re-exports the whole workspace so examples and
//! downstream users need a single dependency. See `README.md` for an
//! architecture tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hyde_bdd as bdd;
pub use hyde_circuits as circuits;
pub use hyde_core as core;
pub use hyde_graph as graph;
pub use hyde_logic as logic;
pub use hyde_map as map;
pub use hyde_sat as sat;
pub use hyde_verify as verify;
