//! Integration tests reproducing the worked examples of the paper
//! (Examples 3.1 and 3.2, Figures 1-7).

use hyde::core::chart::{class_count, DecompositionChart};
use hyde::core::encoding::{build_image, combine_column_sets, combine_row_sets, CodeAssignment};
use hyde::core::partition::{example_3_2_partitions, shared_psc_sets, Partition};
use hyde::logic::TruthTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Example 3.1 / Figures 1-2: the encoding of three compatible classes
/// changes the compatible class count of the subsequent decomposition of g.
#[test]
fn example_3_1_encoding_changes_g_class_count() {
    // Construct a 6-variable function with exactly 3 classes under {a,b,c}:
    // three distinct column patterns distributed over the eight columns.
    let mut rng = StdRng::seed_from_u64(0x316);
    let f = loop {
        let pats: Vec<TruthTable> = (0..3).map(|_| TruthTable::random(3, &mut rng)).collect();
        if pats[0] == pats[1] || pats[1] == pats[2] || pats[0] == pats[2] {
            continue;
        }
        let class_of = [0usize, 1, 2, 0, 1, 2, 0, 1];
        break TruthTable::from_fn(6, |m| {
            let col = (m & 0b111) as usize;
            pats[class_of[col]].eval(m >> 3)
        });
    };
    assert_eq!(
        DecompositionChart::new(&f, &[0, 1, 2])
            .unwrap()
            .class_count(),
        3
    );
    let chart = DecompositionChart::new(&f, &[0, 1, 2]).unwrap();
    let classes = chart.classes().clone();
    // All strict 2-bit encodings of 3 classes.
    let mut counts = std::collections::HashSet::new();
    for a in 0u32..4 {
        for b in 0u32..4 {
            for c in 0u32..4 {
                if a == b || b == c || a == c {
                    continue;
                }
                let ca = CodeAssignment::new(vec![a, b, c], 2).unwrap();
                let (g, _) = build_image(&classes, &ca);
                // lambda' = {alpha0, x, y} = g vars {0, 2, 3}.
                counts.insert(class_count(&g, &[0, 2, 3]).unwrap());
            }
        }
    }
    assert!(
        counts.len() > 1,
        "some encodings must differ in class count (got {counts:?})"
    );
}

/// Theorem 3.1: if all alpha variables stay together (both in the bound
/// set), the encoding cannot change the class count.
#[test]
fn theorem_3_1_alphas_together_encoding_irrelevant() {
    let mut rng = StdRng::seed_from_u64(0x317);
    for _ in 0..5 {
        let f = TruthTable::random(7, &mut rng);
        let chart = DecompositionChart::new(&f, &[0, 1, 2]).unwrap();
        let classes = chart.classes().clone();
        let m = classes.len();
        if !(3..=4).contains(&m) {
            continue;
        }
        let mut counts = std::collections::HashSet::new();
        // Try several strict encodings; bound = both alphas + free var.
        for perm in 0..6u32 {
            let codes: Vec<u32> = (0..m as u32).map(|i| (i + perm) % 4).collect();
            let set: std::collections::HashSet<u32> = codes.iter().copied().collect();
            if set.len() != m {
                continue;
            }
            let ca = CodeAssignment::new(codes, 2).unwrap();
            let (g, _) = build_image(&classes, &ca);
            // Both alpha vars (0,1) in the bound set.
            counts.insert(class_count(&g, &[0, 1, 2]).unwrap());
        }
        assert!(
            counts.len() <= 1,
            "with alphas together the count must be encoding-invariant: {counts:?}"
        );
    }
}

/// Figure 4(a)/(b): the Psc analysis of the ten partitions.
#[test]
fn example_3_2_psc_analysis() {
    let parts = example_3_2_partitions();
    let shared = shared_psc_sets(&parts);
    assert_eq!(shared.len(), 3);
    // p1p3 shared by partitions 3,4,6,7,8.
    assert_eq!(shared[0].positions, vec![1, 3]);
    assert_eq!(shared[0].partitions, vec![3, 4, 6, 7, 8]);
}

/// Figure 5: Step 5's b-matching groups {Pi3,Pi4,Pi6,Pi8} (capacity 4 of
/// the Psc13 vertex) and {Pi2,Pi7}.
#[test]
fn example_3_2_column_sets() {
    let parts = example_3_2_partitions();
    let sets = combine_column_sets(&parts, 4);
    let multi: Vec<&Vec<usize>> = sets.iter().filter(|s| s.len() > 1).collect();
    assert_eq!(multi.len(), 2);
    assert_eq!(multi[0].len(), 4);
    assert!(multi[0].iter().all(|p| [3, 4, 6, 7, 8].contains(p)));
    // Two maximum-weight solutions exist ({Pi2,Pi7} as in Figure 5, or the
    // symmetric {Pi5,Pi8}); both have total weight 40.
    assert!(
        *multi[1] == vec![2, 7] || *multi[1] == vec![5, 8],
        "got {:?}",
        multi[1]
    );
    let singles = sets.iter().filter(|s| s.len() == 1).count();
    assert_eq!(singles, 4);
}

/// Figures 6-7: Step 7 reduces to at most #R = 4 row sets covering all ten
/// partitions.
#[test]
fn example_3_2_row_sets_reach_target() {
    let parts = example_3_2_partitions();
    let col_sets = combine_column_sets(&parts, 4);
    let rows = combine_row_sets(&parts, &col_sets, 4, 4);
    assert!(rows.len() <= 4);
    let mut all: Vec<usize> = rows.iter().flatten().copied().collect();
    all.sort_unstable();
    assert_eq!(all, (0..10).collect::<Vec<_>>());
}

/// Theorem 3.2: permuting row codes / column codes (keeping the grouping)
/// does not change the class count of the image decomposition.
#[test]
fn theorem_3_2_exact_codes_irrelevant() {
    let mut rng = StdRng::seed_from_u64(0x319);
    let f = TruthTable::random(8, &mut rng);
    let chart = DecompositionChart::new(&f, &[0, 1, 2]).unwrap();
    let classes = chart.classes().clone();
    let m = classes.len();
    if m < 4 {
        return; // degenerate draw; other seeds cover this
    }
    let t = hyde::core::encoding::ceil_log2(m);
    if t != 3 {
        return;
    }
    // Base encoding: code i -> i. Split bits: bit0 = column (in lambda'),
    // bits1,2 = rows. Flipping row bit codes (XOR a constant into the row
    // part) preserves row grouping.
    let base: Vec<u32> = (0..m as u32).collect();
    let ca0 = CodeAssignment::new(base.clone(), t).unwrap();
    let (g0, _) = build_image(&classes, &ca0);
    let lambda = [0usize, 3, 4]; // alpha0 + two free vars
    let c0 = class_count(&g0, &lambda).unwrap();
    for xor_mask in [0b010u32, 0b100, 0b110] {
        let codes: Vec<u32> = base.iter().map(|c| c ^ xor_mask).collect();
        let ca = CodeAssignment::new(codes, t).unwrap();
        let (g, _) = build_image(&classes, &ca);
        assert_eq!(class_count(&g, &lambda).unwrap(), c0, "mask {xor_mask:#b}");
    }
}

/// The disjunction partitions of Figure 6(b) have the expected shape: the
/// Pid of a row set concatenates member partitions keeping global symbols.
#[test]
fn figure_6_disjunction_partitions() {
    let parts = example_3_2_partitions();
    // Row set {Pi7, Pi8} from the paper's Step 7 trace.
    let d = Partition::disjunction(&[&parts[7], &parts[8]]);
    assert_eq!(d.len(), 8);
    assert_eq!(d.symbols(), &[1, 1, 2, 1, 1, 2, 1, 2]);
    assert_eq!(d.multiplicity(), 2);
}
