//! Tier-1 integration: the verification layer is reachable through the
//! facade crate and the standard pipeline lints clean end-to-end.

use hyde::core::decompose::{decompose_step, Decomposer};
use hyde::core::encoding::EncoderKind;
use hyde::core::hyper::HyperFunction;
use hyde::logic::TruthTable;
use hyde::map::flow::{FlowKind, MappingFlow};
use hyde::verify::{any_deny, Artifact, Registry};

#[test]
fn facade_pipeline_lints_clean() {
    let registry = Registry::with_defaults();

    // One decomposition step.
    let f = TruthTable::from_fn(6, |m| (m & 0b111).count_ones() > (m >> 3).count_ones());
    let d = decompose_step(&f, &[0, 1, 2], &EncoderKind::Hyde { seed: 7 }, 5).unwrap();
    assert!(d.verify(&f));
    assert!(!any_deny(&registry.run(&Artifact::Decomposition {
        decomposition: &d,
        function: &f,
    })));

    // A mapped circuit against its specification.
    let circuit = hyde::circuits::rd73();
    let report = MappingFlow::new(5, FlowKind::hyde(0xDA98))
        .map_outputs(&circuit.name, &circuit.outputs)
        .unwrap();
    assert!(!any_deny(&registry.run(&Artifact::Network {
        net: &report.network,
        k: Some(5),
        spec: Some(&circuit.outputs),
    })));

    // Hyper-function round trip.
    let h = HyperFunction::new(circuit.outputs.clone(), &EncoderKind::Hyde { seed: 7 }, 5).unwrap();
    let hn = h
        .decompose(&Decomposer::new(5, EncoderKind::Hyde { seed: 7 }))
        .unwrap();
    let merged = hn.implement_ingredients().unwrap();
    assert!(!any_deny(&registry.run_all(&[
        Artifact::Hyper(&hn),
        Artifact::Recovery {
            hyper: &hn,
            implemented: &merged,
        },
    ])));
}
