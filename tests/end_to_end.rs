//! End-to-end flow tests over the benchmark suite: every flow must produce
//! functionally correct κ-feasible networks, and the HYDE flow's totals
//! must match the paper's *shape* (competitive with or better than the
//! baselines).

use hyde::map::flow::{FlowKind, MappingFlow};

#[test]
fn small_suite_maps_under_every_flow() {
    let circuits = hyde::circuits::suite_small();
    let flows = [
        FlowKind::PerOutput {
            encoder: hyde::core::encoding::EncoderKind::Lexicographic,
        },
        FlowKind::imodec_like(),
        FlowKind::fgsyn_like(),
        FlowKind::hyde(0xDA98),
    ];
    for c in &circuits {
        for kind in &flows {
            let label = kind.label();
            let flow = MappingFlow::new(5, kind.clone());
            // map_outputs verifies the network against the spec internally.
            let report = flow
                .map_outputs(&c.name, &c.outputs)
                .unwrap_or_else(|e| panic!("{} under {label}: {e}", c.name));
            assert!(report.network.is_k_feasible(5), "{} {label}", c.name);
            assert!(report.clbs.is_some());
            assert!(report.clbs.unwrap() <= report.luts);
        }
    }
}

#[test]
fn hyde_total_is_competitive_on_small_suite() {
    let circuits = hyde::circuits::suite_small();
    let total = |kind: FlowKind| -> usize {
        let flow = MappingFlow::new(5, kind);
        circuits
            .iter()
            .map(|c| flow.map_outputs(&c.name, &c.outputs).unwrap().luts)
            .sum()
    };
    let no_share = total(FlowKind::PerOutput {
        encoder: hyde::core::encoding::EncoderKind::Lexicographic,
    });
    let hyde_total = total(FlowKind::hyde(0xDA98));
    // The paper's headline: HYDE beats the no-sharing baseline overall.
    assert!(
        hyde_total <= no_share,
        "hyde {hyde_total} should not exceed the no-share baseline {no_share}"
    );
}

#[test]
fn k4_mapping_also_works() {
    // The paper targets 4- and 5-input LUTs; check k=4 on two circuits.
    for c in [hyde::circuits::rd73(), hyde::circuits::misex1()] {
        let flow = MappingFlow::new(4, FlowKind::hyde(11));
        let report = flow.map_outputs(&c.name, &c.outputs).unwrap();
        assert!(report.network.is_k_feasible(4), "{}", c.name);
        assert!(report.clbs.is_none(), "CLB packing is k=5 only");
    }
}

#[test]
fn xc3000_packing_never_exceeds_lut_count() {
    let c = hyde::circuits::rd84();
    for kind in [FlowKind::imodec_like(), FlowKind::hyde(2)] {
        let report = MappingFlow::new(5, kind)
            .map_outputs(&c.name, &c.outputs)
            .unwrap();
        let clbs = report.clbs.unwrap();
        assert!(clbs <= report.luts);
        assert!(clbs * 2 >= report.luts, "a CLB holds at most two LUTs");
    }
}

#[test]
fn exact_spec_circuits_behave_as_documented() {
    // rd84 under any flow computes the ones count.
    let c = hyde::circuits::rd84();
    let report = MappingFlow::new(5, FlowKind::hyde(5))
        .map_outputs(&c.name, &c.outputs)
        .unwrap();
    let net = &report.network;
    let positions: Vec<usize> = net
        .inputs()
        .iter()
        .map(|&id| {
            net.node_name(id)
                .strip_prefix('x')
                .and_then(|s| s.parse().ok())
                .expect("inputs named x<i>")
        })
        .collect();
    for m in (0u32..256).step_by(11) {
        let bits: Vec<bool> = positions.iter().map(|&p| m >> p & 1 == 1).collect();
        let out = net.eval(&bits);
        let count = m.count_ones() as usize;
        for (b, &got) in out.iter().enumerate() {
            assert_eq!(got, count >> b & 1 == 1, "m={m} bit={b}");
        }
    }
}
