//! The parallel fan-out paths (bound-set candidate evaluation, ingredient
//! implementation) must be bit-for-bit deterministic: whatever
//! `HYDE_THREADS` says, the mapped network is byte-identical.
//!
//! Everything lives in ONE test function: `HYDE_THREADS` is process-global
//! state, and the harness runs separate `#[test]`s concurrently.

use hyde_map::flow::{FlowKind, MappingFlow};

#[test]
fn networks_are_byte_identical_across_thread_counts() {
    // z4ml/misex1 exercise the small-chart path; b9 (16 inputs) runs the
    // wide-chart scorer (floor pass + branch-and-bound prune + prefix
    // reuse) through the work-stealing scheduler, where block claim
    // order varies with the thread count and must not show through.
    let picked = ["z4ml", "misex1", "b9"];
    let circuits: Vec<_> = hyde_circuits::suite()
        .into_iter()
        .filter(|c| picked.contains(&c.name.as_str()))
        .collect();
    assert_eq!(circuits.len(), picked.len(), "suite must contain the picks");
    let flow = MappingFlow::new(5, FlowKind::hyde(0xDA98));

    // thread_count() honours the env override (clamped), and falls back
    // sanely on garbage.
    std::env::set_var("HYDE_THREADS", "3");
    assert_eq!(hyde_core::parallel::thread_count(), 3);
    std::env::set_var("HYDE_THREADS", "0");
    assert_eq!(hyde_core::parallel::thread_count(), 1, "clamped up to 1");
    std::env::set_var("HYDE_THREADS", "9999");
    assert_eq!(hyde_core::parallel::thread_count(), 256, "clamped to max");
    std::env::set_var("HYDE_THREADS", "not-a-number");
    assert!(hyde_core::parallel::thread_count() >= 1);

    let run_all = || -> Vec<String> {
        circuits
            .iter()
            .map(|c| {
                let report = flow
                    .map_outputs(&c.name, &c.outputs)
                    .expect("suite circuits map cleanly");
                hyde_logic::blif::write(&report.network)
            })
            .collect()
    };

    std::env::set_var("HYDE_THREADS", "1");
    let sequential = run_all();
    // The flow's NPN decomposition cache is cold for the run above and
    // warm for every run below, so these comparisons also pin the cache
    // determinism contract: memoized answers must be byte-identical to
    // searched ones, at any thread count.
    for threads in ["1", "2", "8"] {
        std::env::set_var("HYDE_THREADS", threads);
        let parallel = run_all();
        for (name, (seq, par)) in picked.iter().zip(sequential.iter().zip(&parallel)) {
            assert_eq!(
                seq, par,
                "{name}: HYDE_THREADS={threads} produced a different network"
            );
        }
    }
    std::env::remove_var("HYDE_THREADS");

    // The service path must agree with the offline `Session` byte for
    // byte at any worker count, even when chaos-injected worker kills
    // force retries: supervision may change *when* a job runs and how
    // many attempts it takes, never *what* it produces. Seed 42 trips
    // a worker fault on every one of the picked circuits, so the retry
    // path is genuinely exercised (asserted below).
    let seed = 42;
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // injected kills are expected
    let offline = hyde_serve::drill::offline_session(seed);
    let expected: Vec<_> = circuits
        .iter()
        .map(|c| {
            offline
                .run(&hyde_serve::drill::offline_job(c))
                .map(|r| r.blif())
                .map_err(|e| e.to_string())
        })
        .collect();
    for workers in [1usize, 8] {
        let service = hyde_serve::service::MapService::start(
            hyde_serve::drill::drill_config(seed, workers),
            None,
        )
        .expect("in-memory service starts");
        let ids: Vec<String> = circuits.iter().map(|c| c.name.clone()).collect();
        for c in &circuits {
            service
                .submit(hyde_serve::drill::suite_spec(&c.name))
                .expect("suite circuits admit");
        }
        assert!(
            service.wait_terminal(&ids, std::time::Duration::from_secs(300)),
            "workers={workers}: jobs stuck non-terminal"
        );
        let mut retried = 0u32;
        for (c, want) in circuits.iter().zip(&expected) {
            let state = service.state(&c.name).expect("submitted job has a state");
            match (state, want) {
                (hyde_serve::service::JobState::Done { blif, attempts, .. }, Ok(expect)) => {
                    retried += attempts.saturating_sub(1);
                    assert_eq!(
                        &blif, expect,
                        "{}: workers={workers} diverged from the offline session",
                        c.name
                    );
                }
                (hyde_serve::service::JobState::Quarantined { .. }, Err(_)) => {}
                (state, want) => panic!(
                    "{}: workers={workers} fate mismatch: service={state:?} offline_ok={}",
                    c.name,
                    want.is_ok()
                ),
            }
        }
        assert!(
            retried > 0,
            "workers={workers}: the chaos seed was expected to force retries"
        );
        service.shutdown(std::time::Duration::from_secs(10));
    }
    std::panic::set_hook(prev_hook);
}
