//! Cross-module tests of the two-level machinery: ISOP, espresso-style
//! minimization, algebraic factoring, and their interaction with the
//! mapping flows.

use hyde::logic::espresso::minimize;
use hyde::logic::factor::{factor, kernels};
use hyde::logic::{Isf, SopCover, TruthTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn minimize_beats_or_matches_isop_with_dc() {
    // The ISOP construction already works over the [on, on∪dc] interval, so
    // the EXPAND/IRREDUNDANT/REDUCE iteration must never be worse and must
    // always stay valid; strict improvement only happens when ISOP's
    // variable-order heuristic leaves slack.
    let mut rng = StdRng::seed_from_u64(0x2111);
    for _ in 0..25 {
        let on = TruthTable::random(7, &mut rng);
        let mask = TruthTable::from_fn(7, |_| rng.gen_bool(0.35));
        let dc = &mask & &!&on;
        let f = Isf::new(on, dc).unwrap();
        let upper = f.on_set() | f.dc_set();
        let isop = SopCover::isop_between(f.on_set(), &upper);
        let min = minimize(&f, 5);
        assert!(min.cover.cube_count() <= isop.cube_count());
        // Validity.
        let t = min.cover.to_truth_table(7);
        assert!((f.on_set() & &!&t).is_zero());
        assert!((&t & &!&upper).is_zero());
    }
}

#[test]
fn factored_forms_of_suite_outputs() {
    for circuit in [hyde::circuits::rd73(), hyde::circuits::misex1()] {
        for (o, f) in circuit.outputs.iter().enumerate() {
            let cover = SopCover::isop(f);
            let fac = factor(&cover, circuit.inputs);
            assert!(
                fac.literal_count() <= cover.literal_count(),
                "{} output {o}",
                circuit.name
            );
            for m in (0..1u32 << circuit.inputs).step_by(7) {
                assert_eq!(fac.eval(m), f.eval(m), "{} o{o} m={m}", circuit.name);
            }
        }
    }
}

#[test]
fn kernels_exist_for_shareable_structures() {
    // The multiplier's outputs have rich kernel structure.
    let c = hyde::circuits::f51m();
    let mut with_kernels = 0;
    for f in &c.outputs {
        let cover = SopCover::isop(f);
        if !kernels(&cover, c.inputs).is_empty() {
            with_kernels += 1;
        }
    }
    assert!(with_kernels >= 4, "only {with_kernels} outputs had kernels");
}

#[test]
fn espresso_then_map_pipeline() {
    // Minimize with the full dc space of unused hyper codes, then map.
    use hyde::map::flow::{FlowKind, MappingFlow};
    let c = hyde::circuits::clip();
    let minimized: Vec<TruthTable> = c
        .outputs
        .iter()
        .map(|f| {
            let r = minimize(&Isf::completely_specified(f.clone()), 3);
            r.cover.to_truth_table(c.inputs)
        })
        .collect();
    assert_eq!(minimized, c.outputs, "no dc: minimization is exact");
    let report = MappingFlow::new(5, FlowKind::hyde(1))
        .map_outputs("clip-min", &minimized)
        .unwrap();
    assert!(report.network.is_k_feasible(5));
}
