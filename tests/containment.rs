//! Integration tests for partition containment and pliable sharing
//! (Definition 4.6, Theorems 4.3/4.4, Example 4.2 / Figure 10).

use hyde::core::containment::{function_partition, share_alphas, verify_shared};
use hyde::core::encoding::ceil_log2;
use hyde::core::partition::Partition;
use hyde::logic::TruthTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 4.4 (soundness): whenever containment holds, sharing works.
#[test]
fn theorem_4_4_containment_implies_sharing() {
    let mut rng = StdRng::seed_from_u64(0x44);
    let bound = [0usize, 1, 2];
    let mut checked = 0;
    for _ in 0..60 {
        let f_a = TruthTable::random(6, &mut rng);
        let f_b = TruthTable::random(6, &mut rng);
        let pa = function_partition(&f_a, &bound).unwrap();
        let pb = function_partition(&f_b, &bound).unwrap();
        let shared = share_alphas(&f_a, &f_b, &bound).unwrap();
        if pa.is_contained_by(&pb) {
            let s = shared.expect("containment implies sharing");
            assert!(verify_shared(&f_a, &bound, &s));
            checked += 1;
        } else {
            assert!(shared.is_none());
        }
    }
    assert!(checked > 0, "at least one containment case must occur");
}

/// Theorem 4.3 (necessity direction): if sharing would mis-merge columns,
/// containment must not hold. Exercised by constructing a violation.
#[test]
fn non_containment_rejected() {
    // f_a distinguishes columns 0 and 1; f_b merges them.
    let f_a = TruthTable::from_fn(4, |m| (m & 0b11) == 0 && (m >> 2) == 1);
    let f_b = TruthTable::from_fn(4, |m| (m & 0b11) == 2 && (m >> 2) == 2);
    let bound = [0usize, 1];
    let pa = function_partition(&f_a, &bound).unwrap();
    let pb = function_partition(&f_b, &bound).unwrap();
    // f_b merges columns 0,1,3 (all zero pattern); f_a separates 0 from 1.
    assert!(!pa.is_contained_by(&pb));
    assert!(share_alphas(&f_a, &f_b, &bound).unwrap().is_none());
}

/// Example 4.2's arithmetic: the paper's partitions Pi0/Pi1/Pi2 show Pi0
/// contained by the conjunction of Pi1, Pi2 with multiplicity 8.
#[test]
fn example_4_2_partitions() {
    let p0 = Partition::new(vec![0, 0, 1, 0, 1, 2, 2, 0, 3, 2, 0, 0, 0, 0, 0, 2]);
    let p1 = Partition::new(vec![0, 1, 2, 0, 2, 3, 3, 2, 4, 3, 0, 2, 1, 5, 1, 3]);
    // Pi2's symbols live in its own alphabet: offset to keep them distinct.
    let p2 = Partition::new(
        vec![0, 1, 1, 0, 1, 2, 2, 3, 3, 2, 0, 3, 1, 4, 5, 2]
            .into_iter()
            .map(|s: u32| s + 100)
            .collect(),
    );
    let c12 = Partition::conjunction(&[&p1, &p2]);
    assert_eq!(c12.multiplicity(), 8);
    let c012 = Partition::conjunction(&[&p0, &c12]);
    assert_eq!(c012.multiplicity(), 8, "paper: same multiplicity");
    assert!(p0.is_contained_by(&c12));
    // Pi0 needs ceil(log2(4)) = 2 bits alone but may reuse the 3 shared
    // decomposition functions (pliable encoding).
    assert_eq!(p0.multiplicity(), 4);
    assert_eq!(ceil_log2(p0.multiplicity()), 2);
    assert_eq!(ceil_log2(c12.multiplicity()), 3);
}

/// Figure 10's LUT arithmetic: rigid re-encoding of f0's classes costs two
/// extra alpha LUTs versus pliable reuse of the shared three.
#[test]
fn figure_10_lut_accounting() {
    // With 4 classes and lambda size 4, rigid needs 2 new alpha functions
    // (2 LUTs); pliable reuse costs 0 new LUTs. The delta the paper quotes
    // is exactly 2.
    let rigid_alphas = ceil_log2(4);
    let pliable_new_alphas = 0;
    assert_eq!(rigid_alphas - pliable_new_alphas, 2);
}

/// Containment is a preorder: reflexive and transitive on partitions.
#[test]
fn containment_is_a_preorder() {
    let mut rng = StdRng::seed_from_u64(0x46);
    for _ in 0..30 {
        let fa = TruthTable::random(6, &mut rng);
        let fb = TruthTable::random(6, &mut rng);
        let fc = TruthTable::random(6, &mut rng);
        let bound = [0usize, 1, 2];
        let pa = function_partition(&fa, &bound).unwrap();
        let pb = function_partition(&fb, &bound).unwrap();
        let pc = function_partition(&fc, &bound).unwrap();
        assert!(pa.is_contained_by(&pa));
        if pa.is_contained_by(&pb) && pb.is_contained_by(&pc) {
            assert!(pa.is_contained_by(&pc), "transitivity");
        }
    }
}
