//! Cross-encoder integration tests: every encoder must produce valid strict
//! codes and correct decompositions on representative suite functions.

use hyde::core::chart::DecompositionChart;
use hyde::core::decompose::{decompose_step, Decomposer};
use hyde::core::encoding::{build_image, EncoderKind};
use hyde::core::varpart::VariablePartitioner;
use hyde::logic::TruthTable;

fn all_encoders() -> Vec<(&'static str, EncoderKind)> {
    vec![
        ("lex", EncoderKind::Lexicographic),
        ("random", EncoderKind::Random { seed: 7 }),
        ("cube-min", EncoderKind::CubeMin { seed: 7, iters: 25 }),
        (
            "support-min",
            EncoderKind::SupportMin { seed: 7, iters: 25 },
        ),
        ("hyde", EncoderKind::Hyde { seed: 7 }),
    ]
}

#[test]
fn all_encoders_decompose_suite_functions() {
    let functions: Vec<TruthTable> = vec![
        hyde::circuits::sym9().outputs[0].clone(),
        hyde::circuits::rd73().outputs[2].clone(),
        hyde::circuits::clip().outputs[0].clone(),
    ];
    for f in &functions {
        let support = f.support().len();
        if support <= 5 {
            continue;
        }
        let vp = VariablePartitioner::default();
        let (bound, _) = vp.best_bound_set(f, 5).unwrap();
        for (name, enc) in all_encoders() {
            let d = decompose_step(f, &bound, &enc, 5).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(d.verify(f), "{name} recomposition failed");
            assert!(d.codes.is_strict(), "{name} must be strict");
        }
    }
}

#[test]
fn all_encoders_build_full_networks() {
    let f = hyde::circuits::rd84().outputs[1].clone();
    for (name, enc) in all_encoders() {
        let dec = Decomposer::new(5, enc);
        let (net, _) = dec.decompose_to_network(&f, "rd84b1").unwrap();
        assert!(net.is_k_feasible(5), "{name}");
        for m in (0u32..256).step_by(13) {
            let bits: Vec<bool> = (0..8).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(net.eval(&bits)[0], f.eval(m), "{name} m={m}");
        }
    }
}

#[test]
fn image_dc_semantics_shared_by_all_encoders() {
    // Whatever the encoder, the image's on-set and dc-set never overlap
    // and the dc-set exactly covers unused codes.
    let f = hyde::circuits::sym9().outputs[0].clone();
    let chart = DecompositionChart::new(&f, &[0, 1, 2, 3]).unwrap();
    let classes = chart.classes().clone();
    for (name, enc) in all_encoders() {
        let codes = enc.build().encode(&classes, 5).unwrap();
        let (on, dc) = build_image(&classes, &codes);
        assert!((&on & &dc).is_zero(), "{name}");
        let used: std::collections::HashSet<u32> = codes.codes().iter().copied().collect();
        let expect_dc =
            ((1u64 << codes.bits()) as usize - used.len()) * (1 << classes.class_fn(0).vars());
        assert_eq!(dc.count_ones() as usize, expect_dc, "{name}");
    }
}

#[test]
fn encoders_are_deterministic() {
    let f = hyde::circuits::rd73().outputs[0].clone();
    let chart = DecompositionChart::new(&f, &[0, 1, 2]).unwrap();
    let classes = chart.classes().clone();
    for (name, enc) in all_encoders() {
        let a = enc.build().encode(&classes, 5).unwrap();
        let b = enc.build().encode(&classes, 5).unwrap();
        assert_eq!(a, b, "{name} must be deterministic");
    }
}
