//! File-format round trips through the whole stack: circuit → PLA text →
//! parse → map → BLIF text → parse → simulation equivalence.

use hyde::logic::sim::{check_networks, Equivalence};
use hyde::logic::{blif, pla::Pla};
use hyde::map::flow::{FlowKind, MappingFlow};

#[test]
fn pla_to_mapped_blif_roundtrip() {
    for circuit in [hyde::circuits::rd73(), hyde::circuits::misex1()] {
        // Circuit -> PLA -> parse.
        let pla_text = circuit.to_pla().to_text();
        let pla = Pla::parse(&pla_text).unwrap();
        let outputs = pla.output_tables();
        assert_eq!(outputs, circuit.outputs, "{}", circuit.name);

        // Map.
        let flow = MappingFlow::new(5, FlowKind::hyde(3));
        let report = flow.map_outputs(&circuit.name, &outputs).unwrap();

        // Mapped network -> BLIF -> parse -> equivalence.
        let blif_text = blif::write(&report.network);
        let reparsed = blif::parse(&blif_text).unwrap();
        match check_networks(&report.network, &reparsed, 16, 0, 0) {
            Equivalence::Equivalent { exhaustive, .. } => assert!(exhaustive),
            Equivalence::Counterexample(cex) => {
                panic!("{}: BLIF roundtrip differs at {cex:?}", circuit.name)
            }
        }
    }
}

#[test]
fn blif_written_networks_stay_k_feasible() {
    let circuit = hyde::circuits::rd84();
    let flow = MappingFlow::new(4, FlowKind::fgsyn_like());
    let report = flow.map_outputs(&circuit.name, &circuit.outputs).unwrap();
    let text = blif::write(&report.network);
    let reparsed = blif::parse(&text).unwrap();
    assert!(reparsed.is_k_feasible(4));
    assert_eq!(reparsed.outputs().len(), circuit.output_count());
}

#[test]
fn espresso_preminimization_preserves_mapping_correctness() {
    // Minimize each output's cover first (as SIS would), rebuild the
    // tables from the minimized PLA, and map: results must stay correct.
    use hyde::logic::espresso::minimize;
    use hyde::logic::Isf;
    let circuit = hyde::circuits::x5p1();
    let minimized: Vec<_> = circuit
        .outputs
        .iter()
        .map(|f| {
            let r = minimize(&Isf::completely_specified(f.clone()), 4);
            let t = r.cover.to_truth_table(circuit.inputs);
            assert_eq!(&t, f, "minimization must be exact without dc");
            t
        })
        .collect();
    let flow = MappingFlow::new(5, FlowKind::imodec_like());
    let report = flow.map_outputs("5xp1-min", &minimized).unwrap();
    assert!(report.network.is_k_feasible(5));
}
