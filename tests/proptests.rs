//! Property-based tests over the core data structures and invariants.

use hyde::core::chart::{class_count, DecompositionChart};
use hyde::core::decompose::{decompose_step, Decomposer};
use hyde::core::encoding::{build_image, ceil_log2, CodeAssignment, EncoderKind};
use hyde::core::partition::Partition;
use hyde::logic::{Isf, SopCover, TruthTable};
use proptest::prelude::*;

fn arb_table(vars: usize) -> impl Strategy<Value = TruthTable> {
    proptest::collection::vec(any::<bool>(), 1 << vars).prop_map(move |bits| {
        TruthTable::from_fn(vars, |m| bits[m as usize])
    })
}

fn arb_partition(len: usize, symbols: u32) -> impl Strategy<Value = Partition> {
    proptest::collection::vec(0..symbols, len).prop_map(Partition::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truth_table_double_negation(f in arb_table(6)) {
        prop_assert_eq!(!&!&f, f);
    }

    #[test]
    fn truth_table_de_morgan(f in arb_table(5), g in arb_table(5)) {
        prop_assert_eq!(!&(&f & &g), &!&f | &!&g);
        prop_assert_eq!(!&(&f | &g), &!&f & &!&g);
    }

    #[test]
    fn cofactor_shannon_expansion(f in arb_table(6), v in 0usize..6) {
        let x = TruthTable::var(6, v);
        let expanded = &(&x & &f.cofactor(v, true)) | &(&!&x & &f.cofactor(v, false));
        prop_assert_eq!(expanded, f);
    }

    #[test]
    fn isop_is_exact(f in arb_table(6)) {
        prop_assert_eq!(SopCover::isop(&f).to_truth_table(6), f);
    }

    #[test]
    fn bdd_matches_truth_table(f in arb_table(6)) {
        let mut bdd = hyde::bdd::Bdd::new(6);
        let r = bdd.from_fn(|m| f.eval(m));
        for m in 0u32..64 {
            prop_assert_eq!(bdd.eval(r, m), f.eval(m));
        }
        prop_assert_eq!(bdd.sat_count(r), u128::from(f.count_ones() as u64));
    }

    #[test]
    fn class_count_bounds(f in arb_table(7)) {
        let cc = class_count(&f, &[0, 1, 2]).unwrap();
        prop_assert!(cc >= 1);
        prop_assert!(cc <= 8, "at most 2^|bound| classes");
    }

    #[test]
    fn class_count_invariant_under_bound_order(f in arb_table(6)) {
        let a = class_count(&f, &[0, 2, 4]).unwrap();
        let b = class_count(&f, &[4, 0, 2]).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn decomposition_recomposes(f in arb_table(7), seed in 0u64..1000) {
        let d = decompose_step(&f, &[0, 1, 2], &EncoderKind::Random { seed }, 5).unwrap();
        prop_assert!(d.verify(&f));
        prop_assert!(d.codes.is_strict());
        prop_assert!(d.codes.is_rigid());
    }

    #[test]
    fn decomposer_networks_are_correct(f in arb_table(7)) {
        let dec = Decomposer::new(4, EncoderKind::Lexicographic);
        let (net, _) = dec.decompose_to_network(&f, "p").unwrap();
        prop_assert!(net.is_k_feasible(4));
        for m in (0u32..128).step_by(5) {
            let bits: Vec<bool> = (0..7).map(|i| m >> i & 1 == 1).collect();
            prop_assert_eq!(net.eval(&bits)[0], f.eval(m));
        }
    }

    #[test]
    fn image_dc_disjoint_from_on(f in arb_table(6)) {
        let chart = DecompositionChart::new(&f, &[0, 1]).unwrap();
        let classes = chart.classes().clone();
        let t = ceil_log2(classes.len());
        let codes = CodeAssignment::new((0..classes.len() as u32).collect(), t).unwrap();
        let (on, dc) = build_image(&classes, &codes);
        prop_assert!((&on & &dc).is_zero());
    }

    #[test]
    fn partition_conjunction_is_finer(p in arb_partition(8, 4), q in arb_partition(8, 4)) {
        let c = Partition::conjunction(&[&p, &q]);
        prop_assert!(c.multiplicity() >= p.multiplicity());
        prop_assert!(c.multiplicity() >= q.multiplicity());
        prop_assert!(p.is_contained_by(&c));
        prop_assert!(q.is_contained_by(&c));
    }

    #[test]
    fn partition_conjunction_commutes(p in arb_partition(6, 4), q in arb_partition(6, 4)) {
        let a = Partition::conjunction(&[&p, &q]);
        let b = Partition::conjunction(&[&q, &p]);
        prop_assert!(a.same_grouping(&b));
    }

    #[test]
    fn containment_antisymmetric_up_to_grouping(
        p in arb_partition(6, 3),
        q in arb_partition(6, 3),
    ) {
        if p.is_contained_by(&q) && q.is_contained_by(&p) {
            prop_assert!(p.same_grouping(&q));
        }
    }

    #[test]
    fn isf_completion_respects_care_set(on in arb_table(5), dc in arb_table(5)) {
        let isf = Isf::new(on, dc).unwrap();
        let a = hyde::core::dc_assign::assign_dont_cares(&isf, &[0, 1]).unwrap();
        prop_assert!(isf.admits(&a.completed));
        let plain = class_count(isf.on_set(), &[0, 1]).unwrap();
        prop_assert!(a.classes.len() <= plain);
    }

    #[test]
    fn blossom_matching_is_valid_and_maximal(
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..20),
    ) {
        let m = hyde::graph::maximum_matching(8, &edges);
        let mut used = [false; 8];
        for &(u, v) in &m {
            prop_assert!(!used[u] && !used[v]);
            used[u] = true;
            used[v] = true;
        }
        // Maximality: no remaining edge with both endpoints free.
        for &(u, v) in &edges {
            if u != v {
                prop_assert!(used[u] || used[v], "edge ({u},{v}) extendable");
            }
        }
    }

    #[test]
    fn codes_strict_iff_distinct(codes in proptest::collection::vec(0u32..8, 1..8)) {
        if let Ok(ca) = CodeAssignment::new(codes.clone(), 3) {
            let distinct: std::collections::HashSet<u32> = codes.iter().copied().collect();
            prop_assert_eq!(ca.is_strict(), distinct.len() == codes.len());
        }
    }
}
