//! Property-based tests over the core data structures and invariants.
//!
//! The proptest crate is unavailable in the offline build environment, so
//! each property runs as a seeded loop over randomly generated inputs
//! (deterministic `StdRng`, 64 cases per property — the same budget the
//! original proptest configuration used).

use hyde::core::chart::{class_count, DecompositionChart};
use hyde::core::decompose::{decompose_step, Decomposer};
use hyde::core::encoding::{build_image, ceil_log2, CodeAssignment, EncoderKind};
use hyde::core::partition::Partition;
use hyde::logic::{Isf, SopCover, TruthTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// Runs `body` for [`CASES`] deterministic RNG streams derived from `seed`.
fn for_cases(seed: u64, mut body: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37).wrapping_add(case));
        body(&mut rng);
    }
}

fn arb_table(vars: usize, rng: &mut StdRng) -> TruthTable {
    TruthTable::random(vars, rng)
}

fn arb_partition(len: usize, symbols: u32, rng: &mut StdRng) -> Partition {
    Partition::new((0..len).map(|_| rng.gen_range(0..symbols)).collect())
}

#[test]
fn truth_table_double_negation() {
    for_cases(1, |rng| {
        let f = arb_table(6, rng);
        assert_eq!(!&!&f, f);
    });
}

#[test]
fn truth_table_de_morgan() {
    for_cases(2, |rng| {
        let f = arb_table(5, rng);
        let g = arb_table(5, rng);
        assert_eq!(!&(&f & &g), &!&f | &!&g);
        assert_eq!(!&(&f | &g), &!&f & &!&g);
    });
}

#[test]
fn cofactor_shannon_expansion() {
    for_cases(3, |rng| {
        let f = arb_table(6, rng);
        let v = rng.gen_range(0..6usize);
        let x = TruthTable::var(6, v);
        let expanded = &(&x & &f.cofactor(v, true)) | &(&!&x & &f.cofactor(v, false));
        assert_eq!(expanded, f);
    });
}

#[test]
fn isop_is_exact() {
    for_cases(4, |rng| {
        let f = arb_table(6, rng);
        assert_eq!(SopCover::isop(&f).to_truth_table(6), f);
    });
}

#[test]
fn bdd_matches_truth_table() {
    for_cases(5, |rng| {
        let f = arb_table(6, rng);
        let mut bdd = hyde::bdd::Bdd::new(6);
        let r = bdd.from_fn(|m| f.eval(m));
        for m in 0u32..64 {
            assert_eq!(bdd.eval(r, m), f.eval(m));
        }
        assert_eq!(bdd.sat_count(r), u128::from(f.count_ones()));
    });
}

#[test]
fn class_count_bounds() {
    for_cases(6, |rng| {
        let f = arb_table(7, rng);
        let cc = class_count(&f, &[0, 1, 2]).unwrap();
        assert!(cc >= 1);
        assert!(cc <= 8, "at most 2^|bound| classes");
    });
}

#[test]
fn class_count_invariant_under_bound_order() {
    for_cases(7, |rng| {
        let f = arb_table(6, rng);
        let a = class_count(&f, &[0, 2, 4]).unwrap();
        let b = class_count(&f, &[4, 0, 2]).unwrap();
        assert_eq!(a, b);
    });
}

#[test]
fn decomposition_recomposes() {
    for_cases(8, |rng| {
        let f = arb_table(7, rng);
        let seed = rng.gen_range(0..1000u64);
        let d = decompose_step(&f, &[0, 1, 2], &EncoderKind::Random { seed }, 5).unwrap();
        assert!(d.verify(&f));
        assert!(d.codes.is_strict());
        assert!(d.codes.is_rigid());
    });
}

#[test]
fn decomposer_networks_are_correct() {
    for_cases(9, |rng| {
        let f = arb_table(7, rng);
        let dec = Decomposer::new(4, EncoderKind::Lexicographic);
        let (net, _) = dec.decompose_to_network(&f, "p").unwrap();
        assert!(net.is_k_feasible(4));
        for m in (0u32..128).step_by(5) {
            let bits: Vec<bool> = (0..7).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(net.eval(&bits)[0], f.eval(m));
        }
    });
}

#[test]
fn image_dc_disjoint_from_on() {
    for_cases(10, |rng| {
        let f = arb_table(6, rng);
        let chart = DecompositionChart::new(&f, &[0, 1]).unwrap();
        let classes = chart.classes().clone();
        let t = ceil_log2(classes.len());
        let codes = CodeAssignment::new((0..classes.len() as u32).collect(), t).unwrap();
        let (on, dc) = build_image(&classes, &codes);
        assert!((&on & &dc).is_zero());
    });
}

#[test]
fn partition_conjunction_is_finer() {
    for_cases(11, |rng| {
        let p = arb_partition(8, 4, rng);
        let q = arb_partition(8, 4, rng);
        let c = Partition::conjunction(&[&p, &q]);
        assert!(c.multiplicity() >= p.multiplicity());
        assert!(c.multiplicity() >= q.multiplicity());
        assert!(p.is_contained_by(&c));
        assert!(q.is_contained_by(&c));
    });
}

#[test]
fn partition_conjunction_commutes() {
    for_cases(12, |rng| {
        let p = arb_partition(6, 4, rng);
        let q = arb_partition(6, 4, rng);
        let a = Partition::conjunction(&[&p, &q]);
        let b = Partition::conjunction(&[&q, &p]);
        assert!(a.same_grouping(&b));
    });
}

#[test]
fn containment_antisymmetric_up_to_grouping() {
    for_cases(13, |rng| {
        let p = arb_partition(6, 3, rng);
        let q = arb_partition(6, 3, rng);
        if p.is_contained_by(&q) && q.is_contained_by(&p) {
            assert!(p.same_grouping(&q));
        }
    });
}

#[test]
fn isf_completion_respects_care_set() {
    for_cases(14, |rng| {
        let on = arb_table(5, rng);
        let dc = arb_table(5, rng);
        let isf = Isf::new(on, dc).unwrap();
        let a = hyde::core::dc_assign::assign_dont_cares(&isf, &[0, 1]).unwrap();
        assert!(isf.admits(&a.completed));
        let plain = class_count(isf.on_set(), &[0, 1]).unwrap();
        assert!(a.classes.len() <= plain);
    });
}

#[test]
fn blossom_matching_is_valid_and_maximal() {
    for_cases(15, |rng| {
        let count = rng.gen_range(0..20usize);
        let edges: Vec<(usize, usize)> = (0..count)
            .map(|_| (rng.gen_range(0..8usize), rng.gen_range(0..8usize)))
            .collect();
        let m = hyde::graph::maximum_matching(8, &edges);
        let mut used = [false; 8];
        for &(u, v) in &m {
            assert!(!used[u] && !used[v]);
            used[u] = true;
            used[v] = true;
        }
        // Maximality: no remaining edge with both endpoints free.
        for &(u, v) in &edges {
            if u != v {
                assert!(used[u] || used[v], "edge ({u},{v}) extendable");
            }
        }
    });
}

#[test]
fn codes_strict_iff_distinct() {
    for_cases(16, |rng| {
        let len = rng.gen_range(1..8usize);
        let codes: Vec<u32> = (0..len).map(|_| rng.gen_range(0..8u32)).collect();
        if let Ok(ca) = CodeAssignment::new(codes.clone(), 3) {
            let distinct: std::collections::HashSet<u32> = codes.iter().copied().collect();
            assert_eq!(ca.is_strict(), distinct.len() == codes.len());
        }
    });
}
