//! Integration tests for hyper-function decomposition (Example 4.1,
//! Figures 8-9): duplication analysis, ingredient recovery, and sharing.

use hyde::core::decompose::Decomposer;
use hyde::core::encoding::EncoderKind;
use hyde::core::hyper::HyperFunction;
use hyde::logic::{NodeRole, TruthTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the four ingredients of Example 4.1's shape: shared 6-variable
/// core support, with f0 and f1 using extra inputs.
fn example_4_1_ingredients() -> Vec<TruthTable> {
    let mut rng = StdRng::seed_from_u64(0x414);
    let restrict = |f: TruthTable, keep: &[usize]| {
        let mut g = f;
        for v in 0..9 {
            if !keep.contains(&v) {
                g = g.cofactor(v, false);
            }
        }
        g
    };
    loop {
        let f0 = restrict(TruthTable::random(9, &mut rng), &[0, 1, 2, 3, 4, 5, 7, 8]);
        let f1 = restrict(TruthTable::random(9, &mut rng), &[0, 1, 2, 3, 4, 5, 6]);
        let f2 = restrict(TruthTable::random(9, &mut rng), &[0, 1, 2, 3, 4, 5]);
        let f3 = restrict(TruthTable::random(9, &mut rng), &[0, 1, 2, 3, 4, 5]);
        let set: std::collections::HashSet<&TruthTable> =
            [&f0, &f1, &f2, &f3].into_iter().collect();
        if set.len() == 4 {
            return vec![f0, f1, f2, f3];
        }
    }
}

#[test]
fn example_4_1_recovery_by_code_assignment() {
    let ing = example_4_1_ingredients();
    let h = HyperFunction::new(ing.clone(), &EncoderKind::Hyde { seed: 0x41 }, 5).unwrap();
    assert_eq!(
        h.pseudo_bits(),
        2,
        "four ingredients need two pseudo inputs"
    );
    // Assigning each code to the pseudo inputs recovers each ingredient
    // (the (0,0) -> f0, (1,0) -> f1, ... step of Figure 9a).
    for (i, f) in ing.iter().enumerate() {
        assert_eq!(h.recover(i), *f, "ingredient {i}");
    }
}

#[test]
fn example_4_1_duplication_cone_and_sharing() {
    let ing = example_4_1_ingredients();
    let h = HyperFunction::new(ing.clone(), &EncoderKind::Hyde { seed: 0x41 }, 5).unwrap();
    let dec = Decomposer::new(5, EncoderKind::Hyde { seed: 0x41 });
    let hn = h.decompose(&dec).unwrap();

    // Every node outside the duplication cone is k-feasible and shareable;
    // nodes in DS with t pseudo fanins are (t+k)-feasible per the paper.
    let cone: std::collections::HashSet<_> = hn.duplication_cone().into_iter().collect();
    for id in hn.network.node_ids() {
        if hn.network.role(id) == NodeRole::Internal && !cone.contains(&id) {
            assert!(hn.network.fanins(id).len() <= 5);
        }
    }
    // The cone contains every node downstream of a pseudo input.
    for &eta in &hn.pseudo_inputs {
        for id in hn.network.transitive_fanout(eta) {
            if hn.network.role(id) == NodeRole::Internal {
                assert!(cone.contains(&id), "node {id} escapes the cone");
            }
        }
    }

    // Full implementation: correct and within the duplication bound.
    hn.verify_ingredients().unwrap();
    let implemented = hn.implemented_lut_count().unwrap();
    assert!(implemented <= hn.predicted_lut_bound());

    // Sharing must beat mapping the four ingredients independently *when
    // the cone is small*; at minimum it never exceeds 4x the hyper network.
    assert!(implemented <= 4 * hn.network.internal_count());
}

#[test]
fn dsets_partition_cone_internals() {
    let ing = example_4_1_ingredients();
    let h = HyperFunction::new(ing, &EncoderKind::Lexicographic, 5).unwrap();
    let dec = Decomposer::new(5, EncoderKind::Lexicographic);
    let hn = h.decompose(&dec).unwrap();
    let n = hn.pseudo_inputs.len();
    let mut seen = std::collections::HashSet::new();
    for m in 1..=n {
        for id in hn.dset(m) {
            assert!(seen.insert(id), "node {id} in two DSets");
        }
    }
    let cone_internals = hn
        .duplication_cone()
        .into_iter()
        .filter(|&id| hn.network.role(id) == NodeRole::Internal)
        .count();
    assert_eq!(seen.len(), cone_internals);
}

#[test]
fn hyper_of_identical_supports_shares_heavily() {
    // All ingredients over the same 6 inputs: sharing should keep the
    // implemented count well below 3x the per-ingredient mapping.
    let mut rng = StdRng::seed_from_u64(99);
    let ing: Vec<TruthTable> = (0..3).map(|_| TruthTable::random(6, &mut rng)).collect();
    let h = HyperFunction::new(ing.clone(), &EncoderKind::Hyde { seed: 7 }, 5).unwrap();
    let dec = Decomposer::new(5, EncoderKind::Hyde { seed: 7 });
    let hn = h.decompose(&dec).unwrap();
    hn.verify_ingredients().unwrap();

    let hyper_luts = hn.implemented_lut_count().unwrap();
    let solo_luts: usize = ing
        .iter()
        .map(|f| {
            let (net, _) = dec.decompose_to_network(f, "solo").unwrap();
            net.internal_count()
        })
        .sum();
    // Shape check: hyper-function sharing should not be dramatically worse
    // than independent mapping (it usually wins; tolerate small regressions
    // on random functions).
    assert!(
        hyper_luts <= solo_luts + 4,
        "hyper {hyper_luts} vs solo {solo_luts}"
    );
}

#[test]
fn column_encoding_is_special_case_of_hyper() {
    // Section 4.3: keeping pseudo inputs in the free set reproduces column
    // encoding. Verify the flows agree functionally on a shared workload.
    use hyde::map::flow::{FlowKind, MappingFlow};
    let mut rng = StdRng::seed_from_u64(123);
    let outputs: Vec<TruthTable> = (0..3).map(|_| TruthTable::random(6, &mut rng)).collect();
    for kind in [FlowKind::fgsyn_like(), FlowKind::hyde(3)] {
        let flow = MappingFlow::new(5, kind);
        let report = flow.map_outputs("cmp", &outputs).unwrap();
        assert!(report.network.is_k_feasible(5));
        // map_outputs verifies functionality internally.
        assert!(report.luts > 0);
    }
}
