//! `cargo xtask`: the workspace CI driver.
//!
//! Subcommands mirror what CI runs, so `cargo xtask all` locally is the
//! same bar a pull request has to clear:
//!
//! * `fmt` — `cargo fmt --check` over the workspace
//! * `clippy` — `cargo clippy --workspace --all-targets -- -D warnings`
//! * `test` — `cargo test -q` (tier-1) then `cargo test -q --workspace`
//! * `lint-suite` — `hyde-lint --suite` over the bundled circuits;
//!   `lint-suite --deep` additionally runs the `HY4xx` semantic proofs
//!   (SAT/BDD CEC, injectivity, collapse/recovery, stuck-at) with a
//!   bounded proof budget and `strict-checks` invariant gates enabled
//! * `bench` — `hyde-bench` over the 25-circuit suite, writing
//!   `BENCH_<name>.json`; `bench --smoke` runs the 3-circuit subset and
//!   validates the emitted JSON schema (the CI configuration)
//! * `trace <circuit>` — run the traced flow on one circuit and write
//!   `TRACE_<circuit>.json` (Chrome trace-event JSON, load in Perfetto)
//!   plus `TRACE_<circuit>.folded` (collapsed stacks, feed to
//!   `flamegraph.pl`), then validate the trace: parseable JSON, balanced
//!   begin/end per track, and spans covering most of the wall time
//! * `chaos` — the resilience drill: for each fixed seed, run
//!   `hyde-bench --chaos <seed>` over all 25 circuits (fault injection
//!   with per-circuit isolation, writing `CHAOS_chaos_s<seed>.json`) and
//!   then `hyde-lint --suite --deep` with `HYDE_CHAOS=<seed>`, which
//!   CEC-proves every degraded network against its specification
//! * `unwrap-gate` — deny *new* `.unwrap()` / `.expect(` in
//!   `crates/core/src` by comparing per-file counts against the ratchet
//!   in `crates/core/unwrap_allowlist.txt`
//! * `all` — everything above (with `--deep` and the smoke-circuit
//!   trace), in that order

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn run(root: &Path, args: &[&str]) -> Result<(), String> {
    run_env(root, args, &[])
}

fn run_env(root: &Path, args: &[&str], env: &[(&str, String)]) -> Result<(), String> {
    let prefix: String = env.iter().map(|(k, v)| format!("{k}={v} ")).collect();
    println!("xtask: {prefix}cargo {}", args.join(" "));
    let mut cmd = Command::new("cargo");
    cmd.args(args).current_dir(root);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let status = cmd
        .status()
        .map_err(|e| format!("failed to spawn cargo: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("`cargo {}` failed ({status})", args.join(" ")))
    }
}

fn fmt(root: &Path) -> Result<(), String> {
    run(root, &["fmt", "--all", "--check"])
}

fn clippy(root: &Path) -> Result<(), String> {
    run(
        root,
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
    )
}

fn test(root: &Path) -> Result<(), String> {
    // Tier-1 first (root package only), then the full workspace.
    run(root, &["test", "-q"])?;
    run(root, &["test", "-q", "--workspace"])
}

fn lint_suite(root: &Path, deep: bool) -> Result<(), String> {
    let mut args = vec!["run", "-q", "--release", "-p", "hyde-verify"];
    if deep {
        // Promote the debug-only invariant gates to hard asserts while
        // the proofs run, and bound each proof so a pathological miter
        // fails CI as HY406 instead of hanging it.
        args.extend(["--features", "strict-checks"]);
    }
    args.extend(["--bin", "hyde-lint", "--", "--suite"]);
    if deep {
        args.extend(["--deep", "--proof-budget", "200000"]);
    }
    run(root, &args)
}

fn bench(root: &Path, smoke: bool) -> Result<(), String> {
    let name = if smoke { "smoke" } else { "hot_path" };
    let mut args = vec![
        "run",
        "-q",
        "--release",
        "-p",
        "hyde-bench",
        "--bin",
        "hyde-bench",
        "--",
        "--name",
        name,
    ];
    if smoke {
        args.push("--smoke");
    }
    run(root, &args)?;
    // `hyde-bench` validates the JSON before writing; re-validate the file
    // on disk so a partial write (full disk, ^C) also fails the task.
    let path = root.join(format!("BENCH_{name}.json"));
    let json = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    hyde_bench::perf::validate_json(&json)
        .map_err(|e| format!("{}: schema validation failed: {e}", path.display()))?;
    println!(
        "xtask: {} parses as {}",
        path.display(),
        hyde_bench::perf::SCHEMA
    );
    Ok(())
}

fn trace(root: &Path, circuit: &str) -> Result<(), String> {
    let out = format!("TRACE_{circuit}.json");
    run(
        root,
        &[
            "run",
            "-q",
            "--release",
            "-p",
            "hyde-bench",
            "--bin",
            "hyde-bench",
            "--",
            "--circuits",
            circuit,
            "--name",
            &format!("trace_{circuit}"),
            "--trace",
            &out,
            "--stdout",
        ],
    )?;
    // The trace was written by a separate process; re-read it here and hold
    // it to the acceptance bar (valid JSON, per-track begin/end balance,
    // span coverage) instead of trusting the exporter blindly.
    let path = root.join(&out);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let summary = hyde_obs::chrome::validate(&text)
        .map_err(|e| format!("{}: trace validation failed: {e}", path.display()))?;
    println!(
        "xtask: {} ok: {} events, {} track(s), {} span(s), depth {}, {:.0}% span coverage",
        path.display(),
        summary.events,
        summary.tracks,
        summary.spans,
        summary.max_depth,
        summary.coverage * 100.0
    );
    if summary.spans == 0 {
        return Err(format!("{}: trace contains no spans", path.display()));
    }
    if summary.coverage < 0.90 {
        return Err(format!(
            "{}: spans cover only {:.0}% of wall time (< 90%)",
            path.display(),
            summary.coverage * 100.0
        ));
    }
    Ok(())
}

/// Fixed seeds for the `chaos` drill. Three seeds give three distinct
/// fault schedules (the injection sites hash the seed with the circuit
/// and output names) while keeping CI deterministic and diffable.
const CHAOS_SEEDS: [u64; 3] = [42, 1998, 0xC0FFEE];

fn chaos(root: &Path) -> Result<(), String> {
    for seed in CHAOS_SEEDS {
        let name = format!("chaos_s{seed}");
        let seed_str = seed.to_string();
        // Phase 1: the bench drill — fault injection with per-circuit
        // panic isolation. Exit status is non-zero only on *typed*
        // mapping errors (a broken ladder rung), never on injected
        // panics or degradations.
        run(
            root,
            &[
                "run",
                "-q",
                "--release",
                "-p",
                "hyde-bench",
                "--bin",
                "hyde-bench",
                "--",
                "--chaos",
                &seed_str,
                "--name",
                &name,
            ],
        )?;
        let path = root.join(format!("CHAOS_{name}.json"));
        let json =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        hyde_bench::perf::validate_chaos_json(&json)
            .map_err(|e| format!("{}: chaos report validation failed: {e}", path.display()))?;
        println!(
            "xtask: {} parses as {}",
            path.display(),
            hyde_bench::perf::CHAOS_SCHEMA
        );
        // Phase 2: the same seed under the deep lint suite. Degradations
        // surface as HY501-HY503/HY505 (warn/note); the HY401 CEC proofs
        // then hold every *degraded* network to the same semantic bar as
        // an exact one, so a wrong fallback fails this step as a deny.
        run_env(
            root,
            &[
                "run",
                "-q",
                "--release",
                "-p",
                "hyde-verify",
                "--features",
                "strict-checks",
                "--bin",
                "hyde-lint",
                "--",
                "--suite",
                "--deep",
                "--proof-budget",
                "200000",
            ],
            &[("HYDE_CHAOS", seed_str)],
        )?;
    }
    Ok(())
}

/// The `.unwrap()` / `.expect(` ratchet for `crates/core/src`: per-file
/// counts may shrink but never grow past the committed allowlist. New
/// fallible paths in the decomposition core must use typed `Result`s
/// (`CoreError::OutOfBudget` and friends), not panics.
fn unwrap_gate(root: &Path) -> Result<(), String> {
    let allow_path = root.join("crates/core/unwrap_allowlist.txt");
    let allow_text = std::fs::read_to_string(&allow_path)
        .map_err(|e| format!("{}: {e}", allow_path.display()))?;
    let mut allowed = std::collections::BTreeMap::new();
    for line in allow_text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, file) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("{}: malformed line '{line}'", allow_path.display()))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("{}: bad count in '{line}'", allow_path.display()))?;
        allowed.insert(file.trim().to_owned(), count);
    }
    let src = root.join("crates/core/src");
    let mut violations = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&src)
        .map_err(|e| format!("{}: {e}", src.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let count = text.matches(".unwrap()").count() + text.matches(".expect(").count();
        let file = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_owned();
        let cap = allowed.get(&file).copied().unwrap_or(0);
        match count.cmp(&cap) {
            std::cmp::Ordering::Greater => violations.push(format!(
                "{file}: {count} unwrap/expect sites (allowlist caps it at {cap})"
            )),
            std::cmp::Ordering::Less => println!(
                "xtask: unwrap-gate: {file} is down to {count} (allowlist says {cap}; \
                 consider ratcheting crates/core/unwrap_allowlist.txt down)"
            ),
            std::cmp::Ordering::Equal => {}
        }
    }
    if violations.is_empty() {
        println!("xtask: unwrap-gate: crates/core/src within the allowlist");
        Ok(())
    } else {
        Err(format!(
            "unwrap-gate: new panics in crates/core/src — return typed errors instead, or \
             (for genuinely unreachable cases) justify the bump in \
             crates/core/unwrap_allowlist.txt:\n  {}",
            violations.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let root = workspace_root();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let task = args.first().cloned().unwrap_or_else(|| "all".into());
    let deep = args.iter().any(|a| a == "--deep");
    let smoke = args.iter().any(|a| a == "--smoke");
    let result = match task.as_str() {
        "fmt" => fmt(&root),
        "clippy" => clippy(&root),
        "test" => test(&root),
        "lint-suite" => lint_suite(&root, deep),
        "bench" => bench(&root, smoke),
        "trace" => match args.get(1).filter(|a| !a.starts_with("--")) {
            Some(circuit) => trace(&root, circuit),
            None => Err("trace needs a circuit name, e.g. `cargo xtask trace rd73`".into()),
        },
        "chaos" => chaos(&root),
        "unwrap-gate" => unwrap_gate(&root),
        "all" => fmt(&root)
            .and_then(|()| clippy(&root))
            .and_then(|()| unwrap_gate(&root))
            .and_then(|()| test(&root))
            .and_then(|()| lint_suite(&root, true))
            .and_then(|()| bench(&root, true))
            .and_then(|()| trace(&root, "rd73"))
            .and_then(|()| chaos(&root)),
        other => Err(format!(
            "unknown task '{other}' (expected fmt | clippy | test | lint-suite [--deep] | \
             bench [--smoke] | trace <circuit> | chaos | unwrap-gate | all)"
        )),
    };
    match result {
        Ok(()) => {
            println!("xtask: {task} ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::FAILURE
        }
    }
}
