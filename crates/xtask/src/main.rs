//! `cargo xtask`: the workspace CI driver.
//!
//! Subcommands mirror what CI runs, so `cargo xtask all` locally is the
//! same bar a pull request has to clear:
//!
//! * `fmt` — `cargo fmt --check` over the workspace
//! * `clippy` — `cargo clippy --workspace --all-targets -- -D warnings`
//! * `test` — `cargo test -q` (tier-1) then `cargo test -q --workspace`
//! * `lint-suite` — `hyde-lint --suite` over the bundled circuits;
//!   `lint-suite --deep` additionally runs the `HY4xx` semantic proofs
//!   (SAT/BDD CEC, injectivity, collapse/recovery, stuck-at) with a
//!   bounded proof budget and `strict-checks` invariant gates enabled
//! * `bench` — `hyde-bench` over the 25-circuit suite, writing
//!   `BENCH_<name>.json`; `bench --smoke` runs the 3-circuit subset and
//!   validates the emitted JSON schema (the CI configuration);
//!   `bench --record` additionally appends one `hyde-traj-v1` point to
//!   `BENCH_TRAJECTORY.jsonl` (and re-validates the whole file)
//! * `perf-diff [<old> <new>]` — compare two benchmark (or trace) JSON
//!   documents and fail on per-circuit wall-clock regressions beyond
//!   the smoke gate (1.3x + 2ms slack), naming the phases whose
//!   self-time grew; with no arguments, compares the committed
//!   `BENCH_smoke.json` (`git show HEAD:...`) against the working tree
//! * `trace <circuit>` — run the traced flow on one circuit and write
//!   `TRACE_<circuit>.json` (Chrome trace-event JSON, load in Perfetto)
//!   plus `TRACE_<circuit>.folded` (collapsed stacks, feed to
//!   `flamegraph.pl`), then validate the trace: parseable JSON, balanced
//!   begin/end per track, and spans covering most of the wall time
//! * `chaos` — the resilience drill: for each fixed seed, run
//!   `hyde-bench --chaos <seed>` over all 25 circuits (fault injection
//!   with per-circuit isolation, writing `CHAOS_chaos_s<seed>.json`) and
//!   then `hyde-lint --suite --deep` with `HYDE_CHAOS=<seed>`, which
//!   CEC-proves every degraded network against its specification
//! * `serve-drill` — the crash-recovery drill: for each chaos seed, run
//!   the full suite through a supervised `hyde-serve` service with
//!   worker kills/stalls injected (every job terminal, zero process
//!   aborts, outputs byte-identical to the offline session), then
//!   SIGKILL a serving child mid-run and require a restart on the same
//!   journal to finish the rest; writes `CHAOS_serve_s<seed>.json`
//! * `analyze` — run the `hyde-sa` static analyzer (SA001–SA013:
//!   determinism, panic-surface and panic-reachability ratchets,
//!   budget flow, obs coverage, diag-registry consistency, feature
//!   hygiene, parallel-merge determinism, swallowed errors,
//!   suppression hygiene) over the whole workspace in-process and
//!   write `ANALYZE.json`; `analyze --diff` reads the committed
//!   `ANALYZE.json` as a baseline first and fails only on *new*
//!   findings (the pull-request gate)
//! * `unwrap-gate` — deprecated alias for `analyze` (the old
//!   `crates/core`-only unwrap ratchet is now analyzer pass SA003,
//!   workspace-wide)
//! * `all` — everything above (with `--deep` and the smoke-circuit
//!   trace), in that order

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn run(root: &Path, args: &[&str]) -> Result<(), String> {
    run_env(root, args, &[])
}

fn run_env(root: &Path, args: &[&str], env: &[(&str, String)]) -> Result<(), String> {
    let prefix: String = env.iter().map(|(k, v)| format!("{k}={v} ")).collect();
    println!("xtask: {prefix}cargo {}", args.join(" "));
    let mut cmd = Command::new("cargo");
    cmd.args(args).current_dir(root);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let status = cmd
        .status()
        .map_err(|e| format!("failed to spawn cargo: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("`cargo {}` failed ({status})", args.join(" ")))
    }
}

fn fmt(root: &Path) -> Result<(), String> {
    run(root, &["fmt", "--all", "--check"])
}

fn clippy(root: &Path) -> Result<(), String> {
    run(
        root,
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
    )
}

fn test(root: &Path) -> Result<(), String> {
    // Tier-1 first (root package only), then the full workspace.
    run(root, &["test", "-q"])?;
    run(root, &["test", "-q", "--workspace"])
}

fn lint_suite(root: &Path, deep: bool) -> Result<(), String> {
    let mut args = vec!["run", "-q", "--release", "-p", "hyde-verify"];
    if deep {
        // Promote the debug-only invariant gates to hard asserts while
        // the proofs run, and bound each proof so a pathological miter
        // fails CI as HY406 instead of hanging it.
        args.extend(["--features", "strict-checks"]);
    }
    args.extend(["--bin", "hyde-lint", "--", "--suite"]);
    if deep {
        args.extend(["--deep", "--proof-budget", "200000"]);
    }
    run(root, &args)
}

fn bench(root: &Path, smoke: bool, record: bool) -> Result<(), String> {
    let name = if smoke { "smoke" } else { "hot_path" };
    let mut args = vec![
        "run",
        "-q",
        "--release",
        "-p",
        "hyde-bench",
        "--bin",
        "hyde-bench",
        "--",
        "--name",
        name,
    ];
    if smoke {
        args.push("--smoke");
    }
    run(root, &args)?;
    // `hyde-bench` validates the JSON before writing; re-validate the file
    // on disk so a partial write (full disk, ^C) also fails the task.
    let path = root.join(format!("BENCH_{name}.json"));
    let json = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    hyde_bench::perf::validate_json(&json)
        .map_err(|e| format!("{}: schema validation failed: {e}", path.display()))?;
    println!(
        "xtask: {} parses as {}",
        path.display(),
        hyde_bench::perf::SCHEMA
    );
    if record {
        record_trajectory(root, name, &json)?;
    }
    Ok(())
}

/// Appends one trajectory point for the bench run `name` to
/// `BENCH_TRAJECTORY.jsonl`, then re-validates the whole file so a
/// malformed append can never land silently.
fn record_trajectory(root: &Path, name: &str, bench_json: &str) -> Result<(), String> {
    use std::io::Write as _;
    let recorded_at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .ok();
    let line = hyde_bench::diff::trajectory_line(name, bench_json, recorded_at)
        .map_err(|e| format!("bench --record: {e}"))?;
    let path = root.join("BENCH_TRAJECTORY.jsonl");
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    writeln!(file, "{line}").map_err(|e| format!("{}: {e}", path.display()))?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let points = hyde_bench::diff::validate_trajectory(&text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "xtask: appended trajectory point '{name}' -> {} ({points} point(s), {})",
        path.display(),
        hyde_bench::diff::TRAJ_SCHEMA
    );
    Ok(())
}

/// Compares two benchmark (or Chrome trace) JSON documents and fails on
/// per-circuit wall-clock regressions beyond the smoke gate, attributing
/// each to the phases whose self-time grew. With no explicit paths, the
/// committed `BENCH_smoke.json` (read via `git show HEAD:...`, so it
/// works even after the working-tree file has been regenerated) is the
/// baseline and the working-tree file is the candidate.
fn perf_diff(root: &Path, old: Option<&str>, new: Option<&str>) -> Result<(), String> {
    let (old_label, old_text, new_label, new_text) = match (old, new) {
        (Some(o), Some(n)) => {
            let read = |p: &str| {
                std::fs::read_to_string(root.join(p)).map_err(|e| format!("perf-diff: {p}: {e}"))
            };
            (o.to_owned(), read(o)?, n.to_owned(), read(n)?)
        }
        (None, None) => {
            let output = Command::new("git")
                .args(["show", "HEAD:BENCH_smoke.json"])
                .current_dir(root)
                .output()
                .map_err(|e| format!("perf-diff: failed to spawn git: {e}"))?;
            if !output.status.success() {
                return Err(
                    "perf-diff: `git show HEAD:BENCH_smoke.json` failed; is a baseline \
                     committed? (or pass explicit paths: `cargo xtask perf-diff <old> <new>`)"
                        .into(),
                );
            }
            let old_text = String::from_utf8(output.stdout)
                .map_err(|_| "perf-diff: HEAD:BENCH_smoke.json is not UTF-8".to_owned())?;
            let path = root.join("BENCH_smoke.json");
            let new_text = std::fs::read_to_string(&path)
                .map_err(|e| format!("perf-diff: {}: {e}", path.display()))?;
            (
                "HEAD:BENCH_smoke.json".to_owned(),
                old_text,
                "BENCH_smoke.json".to_owned(),
                new_text,
            )
        }
        _ => {
            return Err(
                "perf-diff takes zero or two paths: `cargo xtask perf-diff [<old> <new>]`".into(),
            )
        }
    };
    println!("xtask: perf-diff {old_label} -> {new_label}");
    let diff =
        hyde_bench::diff::diff(&old_text, &new_text).map_err(|e| format!("perf-diff: {e}"))?;
    print!("{}", diff.render());
    if diff.regressed() {
        Err(format!(
            "perf-diff: {} circuit(s) regressed beyond the {}x + {}ms gate",
            diff.regressions.len(),
            hyde_bench::diff::MAX_RATIO,
            hyde_bench::diff::SLACK_MS
        ))
    } else {
        Ok(())
    }
}

fn trace(root: &Path, circuit: &str) -> Result<(), String> {
    let out = format!("TRACE_{circuit}.json");
    run(
        root,
        &[
            "run",
            "-q",
            "--release",
            "-p",
            "hyde-bench",
            "--bin",
            "hyde-bench",
            "--",
            "--circuits",
            circuit,
            "--name",
            &format!("trace_{circuit}"),
            "--trace",
            &out,
            "--stdout",
        ],
    )?;
    // The trace was written by a separate process; re-read it here and hold
    // it to the acceptance bar (valid JSON, per-track begin/end balance,
    // span coverage) instead of trusting the exporter blindly.
    let path = root.join(&out);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let summary = hyde_obs::chrome::validate(&text)
        .map_err(|e| format!("{}: trace validation failed: {e}", path.display()))?;
    println!(
        "xtask: {} ok: {} events, {} track(s), {} span(s), depth {}, {:.0}% span coverage",
        path.display(),
        summary.events,
        summary.tracks,
        summary.spans,
        summary.max_depth,
        summary.coverage * 100.0
    );
    if summary.spans == 0 {
        return Err(format!("{}: trace contains no spans", path.display()));
    }
    if summary.coverage < 0.90 {
        return Err(format!(
            "{}: spans cover only {:.0}% of wall time (< 90%)",
            path.display(),
            summary.coverage * 100.0
        ));
    }
    Ok(())
}

/// Fixed seeds for the `chaos` drill. Three seeds give three distinct
/// fault schedules (the injection sites hash the seed with the circuit
/// and output names) while keeping CI deterministic and diffable.
const CHAOS_SEEDS: [u64; 3] = [42, 1998, 0xC0FFEE];

fn chaos(root: &Path) -> Result<(), String> {
    for seed in CHAOS_SEEDS {
        let name = format!("chaos_s{seed}");
        let seed_str = seed.to_string();
        // Phase 1: the bench drill — fault injection with per-circuit
        // panic isolation. Exit status is non-zero only on *typed*
        // mapping errors (a broken ladder rung), never on injected
        // panics or degradations.
        run(
            root,
            &[
                "run",
                "-q",
                "--release",
                "-p",
                "hyde-bench",
                "--bin",
                "hyde-bench",
                "--",
                "--chaos",
                &seed_str,
                "--name",
                &name,
            ],
        )?;
        let path = root.join(format!("CHAOS_{name}.json"));
        let json =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        hyde_bench::perf::validate_chaos_json(&json)
            .map_err(|e| format!("{}: chaos report validation failed: {e}", path.display()))?;
        println!(
            "xtask: {} parses as {}",
            path.display(),
            hyde_bench::perf::CHAOS_SCHEMA
        );
        // Phase 2: the same seed under the deep lint suite. Degradations
        // surface as HY501-HY503/HY505 (warn/note); the HY401 CEC proofs
        // then hold every *degraded* network to the same semantic bar as
        // an exact one, so a wrong fallback fails this step as a deny.
        run_env(
            root,
            &[
                "run",
                "-q",
                "--release",
                "-p",
                "hyde-verify",
                "--features",
                "strict-checks",
                "--bin",
                "hyde-lint",
                "--",
                "--suite",
                "--deep",
                "--proof-budget",
                "200000",
            ],
            &[("HYDE_CHAOS", seed_str)],
        )?;
    }
    Ok(())
}

/// The `hyde-serve` crash-recovery drill: for each chaos seed, run the
/// full suite through a supervised service with worker kills and stalls
/// injected (every job must reach a terminal state with zero process
/// aborts and byte-identical outputs to the offline session), then
/// `SIGKILL` a serving child mid-run and require a restart on the same
/// journal to finish the remaining jobs. Writes and validates
/// `CHAOS_serve_s<seed>.json` per seed.
fn serve_drill(root: &Path) -> Result<(), String> {
    for seed in CHAOS_SEEDS {
        let seed_str = seed.to_string();
        let out = format!("CHAOS_serve_s{seed}.json");
        run(
            root,
            &[
                "run",
                "-q",
                "--release",
                "-p",
                "hyde-serve",
                "--bin",
                "hyde-serve",
                "--",
                "--drill",
                &seed_str,
                "--drill-out",
                &out,
            ],
        )?;
        let path = root.join(&out);
        let json =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        hyde_bench::perf::validate_chaos_json(&json)
            .map_err(|e| format!("{}: serve drill validation failed: {e}", path.display()))?;
        println!(
            "xtask: {} parses as {}",
            path.display(),
            hyde_bench::perf::CHAOS_SCHEMA
        );
    }
    Ok(())
}

/// Runs the `hyde-sa` static analyzer in-process over the workspace and
/// writes `ANALYZE.json` at the root.
///
/// In strict mode (the default, and what `all` runs) any surviving deny
/// finding fails — the same bar the analyzer's own `self_analysis` test
/// enforces. With `--diff`, the committed `ANALYZE.json` is read as a
/// baseline *before* being overwritten and only findings that are new
/// relative to it fail; this is the pull-request gate, so a branch is
/// judged on what it introduces rather than on pre-existing debt.
fn analyze(root: &Path, diff: bool) -> Result<(), String> {
    println!(
        "xtask: hyde-sa --root {} --json ANALYZE.json{}",
        root.display(),
        if diff { " --diff" } else { "" }
    );
    let json_path = root.join("ANALYZE.json");
    let baseline = if diff {
        let text = std::fs::read_to_string(&json_path).map_err(|e| {
            format!(
                "analyze --diff needs a committed {}: {e}",
                json_path.display()
            )
        })?;
        Some(
            hyde_analyze::baseline::Baseline::parse(&text)
                .map_err(|e| format!("{}: {e}", json_path.display()))?,
        )
    } else {
        None
    };
    let report = hyde_analyze::analyze_root(root).map_err(|e| format!("hyde-sa: {e}"))?;
    std::fs::write(&json_path, report.to_json())
        .map_err(|e| format!("{}: {e}", json_path.display()))?;
    for note in &report.notes {
        println!("xtask: note: {note}");
    }
    println!(
        "xtask: hyde-sa: {} files, {} passes, {} findings, {} allowed -> {}",
        report.files_scanned,
        report.passes.len(),
        report.findings.len(),
        report.allowed(),
        json_path.display()
    );
    if let Some(base) = baseline {
        let new = base.new_denies(&report);
        if new.is_empty() {
            println!(
                "xtask: analyze --diff: no new findings vs committed baseline ({})",
                base.schema
            );
            return Ok(());
        }
        let rendered: Vec<String> = new.iter().map(|f| f.to_string()).collect();
        return Err(format!(
            "analyze --diff: {} new finding(s) vs committed baseline:\n  {}",
            rendered.len(),
            rendered.join("\n  ")
        ));
    }
    if report.clean() {
        Ok(())
    } else {
        let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
        Err(format!(
            "analyze: {} finding(s):\n  {}",
            rendered.len(),
            rendered.join("\n  ")
        ))
    }
}

/// Deprecated alias: the `crates/core`-only unwrap ratchet grew into the
/// workspace-wide panic-surface pass (SA003) of `cargo xtask analyze`.
fn unwrap_gate(root: &Path) -> Result<(), String> {
    println!(
        "xtask: unwrap-gate is deprecated; running `cargo xtask analyze` (the panic-surface \
         ratchet is now analyzer pass SA003, over the whole workspace)"
    );
    analyze(root, false)
}

fn main() -> ExitCode {
    let root = workspace_root();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let task = args.first().cloned().unwrap_or_else(|| "all".into());
    let deep = args.iter().any(|a| a == "--deep");
    let smoke = args.iter().any(|a| a == "--smoke");
    let record = args.iter().any(|a| a == "--record");
    let result = match task.as_str() {
        "fmt" => fmt(&root),
        "clippy" => clippy(&root),
        "test" => test(&root),
        "lint-suite" => lint_suite(&root, deep),
        "bench" => bench(&root, smoke, record),
        "perf-diff" => {
            let paths: Vec<&str> = args
                .iter()
                .skip(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str)
                .collect();
            perf_diff(&root, paths.first().copied(), paths.get(1).copied())
        }
        "trace" => match args.get(1).filter(|a| !a.starts_with("--")) {
            Some(circuit) => trace(&root, circuit),
            None => Err("trace needs a circuit name, e.g. `cargo xtask trace rd73`".into()),
        },
        "chaos" => chaos(&root),
        "serve-drill" => serve_drill(&root),
        "analyze" => analyze(&root, args.iter().any(|a| a == "--diff")),
        "unwrap-gate" => unwrap_gate(&root),
        "all" => fmt(&root)
            .and_then(|()| clippy(&root))
            .and_then(|()| analyze(&root, false))
            .and_then(|()| test(&root))
            .and_then(|()| lint_suite(&root, true))
            .and_then(|()| bench(&root, true, false))
            .and_then(|()| perf_diff(&root, None, None))
            .and_then(|()| trace(&root, "rd73"))
            .and_then(|()| chaos(&root))
            .and_then(|()| serve_drill(&root)),
        other => Err(format!(
            "unknown task '{other}' (expected fmt | clippy | test | lint-suite [--deep] | \
             bench [--smoke] [--record] | perf-diff [<old> <new>] | trace <circuit> | chaos | \
             serve-drill | analyze [--diff] | all)"
        )),
    };
    match result {
        Ok(()) => {
            println!("xtask: {task} ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::FAILURE
        }
    }
}
