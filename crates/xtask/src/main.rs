//! `cargo xtask`: the workspace CI driver.
//!
//! Subcommands mirror what CI runs, so `cargo xtask all` locally is the
//! same bar a pull request has to clear:
//!
//! * `fmt` — `cargo fmt --check` over the workspace
//! * `clippy` — `cargo clippy --workspace --all-targets -- -D warnings`
//! * `test` — `cargo test -q` (tier-1) then `cargo test -q --workspace`
//! * `lint-suite` — `hyde-lint --suite` over the bundled circuits
//! * `all` — everything above, in that order

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn run(root: &Path, args: &[&str]) -> Result<(), String> {
    println!("xtask: cargo {}", args.join(" "));
    let status = Command::new("cargo")
        .args(args)
        .current_dir(root)
        .status()
        .map_err(|e| format!("failed to spawn cargo: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("`cargo {}` failed ({status})", args.join(" ")))
    }
}

fn fmt(root: &Path) -> Result<(), String> {
    run(root, &["fmt", "--all", "--check"])
}

fn clippy(root: &Path) -> Result<(), String> {
    run(
        root,
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
    )
}

fn test(root: &Path) -> Result<(), String> {
    // Tier-1 first (root package only), then the full workspace.
    run(root, &["test", "-q"])?;
    run(root, &["test", "-q", "--workspace"])
}

fn lint_suite(root: &Path) -> Result<(), String> {
    run(
        root,
        &[
            "run",
            "-q",
            "--release",
            "-p",
            "hyde-verify",
            "--bin",
            "hyde-lint",
            "--",
            "--suite",
        ],
    )
}

fn main() -> ExitCode {
    let root = workspace_root();
    let task = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let result = match task.as_str() {
        "fmt" => fmt(&root),
        "clippy" => clippy(&root),
        "test" => test(&root),
        "lint-suite" => lint_suite(&root),
        "all" => fmt(&root)
            .and_then(|()| clippy(&root))
            .and_then(|()| test(&root))
            .and_then(|()| lint_suite(&root)),
        other => Err(format!(
            "unknown task '{other}' (expected fmt | clippy | test | lint-suite | all)"
        )),
    };
    match result {
        Ok(()) => {
            println!("xtask: {task} ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::FAILURE
        }
    }
}
