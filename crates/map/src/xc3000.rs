//! Xilinx XC3000 CLB packing.
//!
//! An XC3000 CLB computes either one function of up to 5 inputs or two
//! functions of up to 4 inputs each, as long as the pair uses at most 5
//! distinct input signals. Given a 5-feasible LUT network, packing is a
//! maximum matching problem on the pairing graph (nodes with ≤4 fanins,
//! edges between pairs whose fanin union is ≤5) — solved exactly with the
//! blossom algorithm of [`hyde_graph::maximum_matching`].

use hyde_logic::{Network, NodeId, NodeRole};
use std::collections::BTreeSet;

/// Result of packing a LUT network into XC3000 CLBs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClbPacking {
    /// Node pairs sharing a CLB.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// Nodes occupying a CLB alone.
    pub singles: Vec<NodeId>,
}

impl ClbPacking {
    /// Total CLBs used.
    pub fn clb_count(&self) -> usize {
        self.pairs.len() + self.singles.len()
    }
}

/// Packs the internal nodes of a 5-feasible network into XC3000 CLBs.
///
/// # Panics
///
/// Panics if some internal node has more than 5 fanins (not 5-feasible).
///
/// # Example
///
/// ```
/// use hyde_logic::{Network, TruthTable};
/// use hyde_map::pack_clbs;
///
/// let mut net = Network::new("pair");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
/// let x = net.add_node("x", vec![a, b], and2.clone()).unwrap();
/// let y = net.add_node("y", vec![a, b], !and2).unwrap();
/// net.mark_output("x", x);
/// net.mark_output("y", y);
/// // Both 2-input nodes share 2 distinct inputs: one CLB suffices.
/// assert_eq!(pack_clbs(&net).clb_count(), 1);
/// ```
pub fn pack_clbs(net: &Network) -> ClbPacking {
    let internal: Vec<NodeId> = net
        .node_ids()
        .into_iter()
        .filter(|&id| net.role(id) == NodeRole::Internal)
        .collect();
    for &id in &internal {
        assert!(
            net.fanins(id).len() <= 5,
            "node {id} has {} fanins; XC3000 packing needs a 5-feasible network",
            net.fanins(id).len()
        );
    }
    // Pairing candidates: nodes with <= 4 fanins.
    let pairable: Vec<NodeId> = internal
        .iter()
        .copied()
        .filter(|&id| net.fanins(id).len() <= 4)
        .collect();
    let index_of: std::collections::HashMap<NodeId, usize> = pairable
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (i, &a) in pairable.iter().enumerate() {
        let fa: BTreeSet<NodeId> = net.fanins(a).iter().copied().collect();
        for &b in &pairable[i + 1..] {
            let mut union = fa.clone();
            union.extend(net.fanins(b).iter().copied());
            if union.len() <= 5 {
                edges.push((i, index_of[&b]));
            }
        }
    }
    let matching = hyde_graph::maximum_matching(pairable.len(), &edges);
    let mut paired = vec![false; pairable.len()];
    let mut pairs = Vec::with_capacity(matching.len());
    for (u, v) in matching {
        paired[u] = true;
        paired[v] = true;
        pairs.push((pairable[u], pairable[v]));
    }
    let mut singles: Vec<NodeId> = pairable
        .iter()
        .enumerate()
        .filter(|(i, _)| !paired[*i])
        .map(|(_, &id)| id)
        .collect();
    singles.extend(
        internal
            .iter()
            .copied()
            .filter(|&id| net.fanins(id).len() == 5),
    );
    singles.sort_unstable();
    ClbPacking { pairs, singles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyde_logic::TruthTable;

    fn n_input_node(net: &mut Network, name: &str, inputs: &[NodeId]) -> NodeId {
        let f = TruthTable::from_fn(inputs.len(), |m| m.count_ones() % 2 == 1);
        net.add_node(name, inputs.to_vec(), f).unwrap()
    }

    #[test]
    fn empty_network() {
        let net = Network::new("empty");
        assert_eq!(pack_clbs(&net).clb_count(), 0);
    }

    #[test]
    fn five_input_nodes_are_singles() {
        let mut net = Network::new("five");
        let inputs: Vec<NodeId> = (0..5).map(|i| net.add_input(&format!("i{i}"))).collect();
        let a = n_input_node(&mut net, "a", &inputs);
        let b = n_input_node(&mut net, "b", &inputs);
        net.mark_output("a", a);
        net.mark_output("b", b);
        let p = pack_clbs(&net);
        assert_eq!(p.pairs.len(), 0);
        assert_eq!(p.clb_count(), 2);
    }

    #[test]
    fn shared_input_pairs_pack_together() {
        let mut net = Network::new("share");
        let inputs: Vec<NodeId> = (0..5).map(|i| net.add_input(&format!("i{i}"))).collect();
        // Four 3-input nodes over overlapping inputs: two CLBs.
        let a = n_input_node(&mut net, "a", &inputs[0..3]);
        let b = n_input_node(&mut net, "b", &inputs[2..5]);
        let c = n_input_node(&mut net, "c", &inputs[0..3]);
        let d = n_input_node(&mut net, "d", &inputs[2..5]);
        for (nm, id) in [("a", a), ("b", b), ("c", c), ("d", d)] {
            net.mark_output(nm, id);
        }
        let p = pack_clbs(&net);
        assert_eq!(p.clb_count(), 2);
        assert_eq!(p.pairs.len(), 2);
    }

    #[test]
    fn input_budget_blocks_pairing() {
        let mut net = Network::new("nopair");
        let inputs: Vec<NodeId> = (0..8).map(|i| net.add_input(&format!("i{i}"))).collect();
        // Two 4-input nodes with disjoint inputs: union 8 > 5.
        let a = n_input_node(&mut net, "a", &inputs[0..4]);
        let b = n_input_node(&mut net, "b", &inputs[4..8]);
        net.mark_output("a", a);
        net.mark_output("b", b);
        let p = pack_clbs(&net);
        assert_eq!(p.pairs.len(), 0);
        assert_eq!(p.clb_count(), 2);
    }

    #[test]
    #[should_panic(expected = "5-feasible")]
    fn rejects_wide_nodes() {
        let mut net = Network::new("wide");
        let inputs: Vec<NodeId> = (0..6).map(|i| net.add_input(&format!("i{i}"))).collect();
        let a = n_input_node(&mut net, "a", &inputs);
        net.mark_output("a", a);
        let _ = pack_clbs(&net);
    }

    #[test]
    fn matching_is_maximum_not_greedy() {
        // Chain where greedy first-pair would strand a node:
        // a-b compatible, b-c compatible, c-d compatible; a-b and c-d is 2
        // pairs. Build with input sets making exactly those pairs legal.
        let mut net = Network::new("chain");
        let inputs: Vec<NodeId> = (0..11).map(|i| net.add_input(&format!("i{i}"))).collect();
        // a: {0,1,2}, b: {2,3,4}, c: {4,5,6}, d: {6,7,8}
        let a = n_input_node(&mut net, "a", &[inputs[0], inputs[1], inputs[2]]);
        let b = n_input_node(&mut net, "b", &[inputs[2], inputs[3], inputs[4]]);
        let c = n_input_node(&mut net, "c", &[inputs[4], inputs[5], inputs[6]]);
        let d = n_input_node(&mut net, "d", &[inputs[6], inputs[7], inputs[8]]);
        for (nm, id) in [("a", a), ("b", b), ("c", c), ("d", d)] {
            net.mark_output(nm, id);
        }
        let p = pack_clbs(&net);
        assert_eq!(p.clb_count(), 2);
    }

    #[test]
    fn every_node_is_accounted_once() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut net = Network::new("rand");
        let inputs: Vec<NodeId> = (0..10).map(|i| net.add_input(&format!("i{i}"))).collect();
        let mut nodes = Vec::new();
        for t in 0..12 {
            let fanin_count = rng.gen_range(2..=5usize);
            let mut fi = inputs.clone();
            for _ in 0..(10 - fanin_count) {
                fi.remove(rng.gen_range(0..fi.len()));
            }
            let id = n_input_node(&mut net, &format!("n{t}"), &fi);
            nodes.push(id);
            net.mark_output(&format!("n{t}"), id);
        }
        let p = pack_clbs(&net);
        let mut seen = std::collections::HashSet::new();
        for (a, b) in &p.pairs {
            assert!(seen.insert(*a) && seen.insert(*b));
        }
        for s in &p.singles {
            assert!(seen.insert(*s));
        }
        assert_eq!(seen.len(), nodes.len());
    }
}
