//! Post-mapping LUT network compaction (the `xl_cover` step of the paper's
//! SIS script).
//!
//! Decomposition emits one LUT per α function and image step, which can
//! leave slack: a node whose function fits inside its single consumer
//! (combined support ≤ κ) wastes a LUT. This pass greedily collapses such
//! nodes until a fixpoint, keeping the network κ-feasible throughout.

use hyde_logic::{Network, NodeId, NodeRole};
use std::collections::HashSet;

/// Collapses internal nodes into their consumers while every affected
/// consumer stays within `k` fanins. Returns the number of LUTs removed.
///
/// Only nodes that do not drive a primary output are candidates (output
/// drivers must survive). The pass runs to a fixpoint.
///
/// # Panics
///
/// Panics if the network is cyclic.
pub fn compact(net: &mut Network, k: usize) -> usize {
    let mut removed = 0;
    loop {
        let candidate = find_collapsible(net, k);
        match candidate {
            Some(id) => {
                net.eliminate(id).expect("candidate is internal");
                removed += 1;
            }
            None => break,
        }
    }
    net.sweep();
    removed
}

/// Finds one node whose elimination keeps every consumer ≤ `k` fanins.
fn find_collapsible(net: &Network, k: usize) -> Option<NodeId> {
    let output_drivers: HashSet<NodeId> = net.outputs().iter().map(|(_, id)| *id).collect();
    for id in net.node_ids() {
        if net.role(id) != NodeRole::Internal || output_drivers.contains(&id) {
            continue;
        }
        let consumers: Vec<NodeId> = net
            .node_ids()
            .into_iter()
            .filter(|&c| net.role(c) == NodeRole::Internal && net.fanins(c).contains(&id))
            .collect();
        if consumers.is_empty() {
            continue; // dead, sweep handles it
        }
        let fits = consumers.iter().all(|&c| {
            let mut union: HashSet<NodeId> = net.fanins(c).iter().copied().collect();
            union.remove(&id);
            union.extend(net.fanins(id).iter().copied());
            union.len() <= k
        });
        if fits {
            return Some(id);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyde_logic::TruthTable;

    #[test]
    fn collapses_redundant_buffer_chain() {
        // inv -> inv -> out over one input: both collapse into the output
        // driver's LUT.
        let mut net = Network::new("c");
        let a = net.add_input("a");
        let inv = !TruthTable::var(1, 0);
        let n1 = net.add_node("n1", vec![a], inv.clone()).unwrap();
        let n2 = net.add_node("n2", vec![n1], inv.clone()).unwrap();
        let n3 = net.add_node("n3", vec![n2], inv).unwrap();
        net.mark_output("o", n3);
        let removed = compact(&mut net, 5);
        assert_eq!(removed, 2);
        assert_eq!(net.internal_count(), 1);
        assert_eq!(net.eval(&[true]), vec![false]);
    }

    #[test]
    fn respects_k_budget() {
        // Two 3-input nodes feeding a 2-input node: collapsing either
        // would need 6 > 5 inputs if supports are disjoint.
        let mut net = Network::new("b");
        let inputs: Vec<NodeId> = (0..6).map(|i| net.add_input(&format!("i{i}"))).collect();
        let par3 = TruthTable::from_fn(3, |m| m.count_ones() % 2 == 1);
        let a = net
            .add_node("a", inputs[0..3].to_vec(), par3.clone())
            .unwrap();
        let b = net.add_node("b", inputs[3..6].to_vec(), par3).unwrap();
        let xor2 = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
        let y = net.add_node("y", vec![a, b], xor2).unwrap();
        net.mark_output("y", y);
        // One collapse fits (3 + 1 = 4 <= 5), the second would need 6.
        let removed = compact(&mut net, 5);
        assert_eq!(removed, 1);
        assert!(net.is_k_feasible(5));
        for m in 0u32..64 {
            let bits: Vec<bool> = (0..6).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(net.eval(&bits)[0], m.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn preserves_output_drivers() {
        let mut net = Network::new("o");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        let t = net.add_node("t", vec![a, b], and2.clone()).unwrap();
        let y = net.add_node("y", vec![t, a], and2).unwrap();
        net.mark_output("t", t); // t itself is an output
        net.mark_output("y", y);
        let removed = compact(&mut net, 5);
        assert_eq!(removed, 0, "output drivers must survive");
        assert_eq!(net.internal_count(), 2);
    }

    #[test]
    fn multi_consumer_collapse_when_all_fit() {
        // One shared 2-input node feeding two consumers, all within k.
        let mut net = Network::new("m");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        let or2 = TruthTable::var(2, 0) | TruthTable::var(2, 1);
        let t = net.add_node("t", vec![a, b], and2).unwrap();
        let y1 = net.add_node("y1", vec![t, c], or2.clone()).unwrap();
        let y2 = net
            .add_node(
                "y2",
                vec![t, c],
                !TruthTable::var(2, 0) & TruthTable::var(2, 1),
            )
            .unwrap();
        net.mark_output("y1", y1);
        net.mark_output("y2", y2);
        let removed = compact(&mut net, 5);
        assert_eq!(removed, 1);
        for m in 0u32..8 {
            let bits = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
            let t = bits[0] && bits[1];
            assert_eq!(net.eval(&bits), vec![t || bits[2], !t && bits[2]], "m={m}");
        }
    }
}
