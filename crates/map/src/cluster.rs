//! Output clustering for hyper-function construction.
//!
//! Folding unrelated outputs into one hyper-function inflates its support
//! (Definition 4.1: the hyper support is the union of ingredient supports
//! plus the pseudo inputs), so the flow first groups outputs whose supports
//! overlap. The greedy policy mirrors the paper's practice of partially
//! collapsing circuits "such that several nodes can share the same
//! supports".

use hyde_logic::TruthTable;

/// Greedily clusters output functions by support overlap.
///
/// Outputs are scanned in order; each joins the first cluster where (a) the
/// cluster has fewer than `max_cluster` members, (b) the union support
/// stays within `max_union_support`, and (c) it overlaps the cluster's
/// support (unless the cluster is empty). Returns clusters of output
/// indices, each sorted; order of first members is preserved.
///
/// Duplicate functions never share a cluster (hyper-functions require
/// distinct ingredients); the duplicate opens its own cluster.
///
/// # Panics
///
/// Panics if `max_cluster == 0`.
///
/// # Example
///
/// ```
/// use hyde_map::cluster_outputs;
/// use hyde_logic::TruthTable;
///
/// let a = TruthTable::var(4, 0) & TruthTable::var(4, 1);
/// let b = TruthTable::var(4, 0) | TruthTable::var(4, 1);
/// let c = TruthTable::var(4, 2) & TruthTable::var(4, 3);
/// let clusters = cluster_outputs(&[a, b, c], 4, 8);
/// assert_eq!(clusters, vec![vec![0, 1], vec![2]]);
/// ```
pub fn cluster_outputs(
    outputs: &[TruthTable],
    max_cluster: usize,
    max_union_support: usize,
) -> Vec<Vec<usize>> {
    assert!(max_cluster > 0, "cluster size must be positive");
    let _obs = hyde_obs::span!("map.cluster");
    let supports: Vec<Vec<usize>> = outputs.iter().map(|f| f.support()).collect();
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut cluster_support: Vec<std::collections::BTreeSet<usize>> = Vec::new();
    for (o, sup) in supports.iter().enumerate() {
        let sup_set: std::collections::BTreeSet<usize> = sup.iter().copied().collect();
        let mut placed = false;
        for (ci, cluster) in clusters.iter_mut().enumerate() {
            if cluster.len() >= max_cluster {
                continue;
            }
            if cluster.iter().any(|&m| outputs[m] == outputs[o]) {
                continue; // ingredients must be distinct
            }
            let overlaps = !cluster_support[ci].is_disjoint(&sup_set)
                || cluster_support[ci].is_empty()
                || sup_set.is_empty();
            if !overlaps {
                continue;
            }
            let union: std::collections::BTreeSet<usize> =
                cluster_support[ci].union(&sup_set).copied().collect();
            if union.len() > max_union_support {
                continue;
            }
            cluster.push(o);
            cluster_support[ci] = union;
            placed = true;
            break;
        }
        if !placed {
            clusters.push(vec![o]);
            cluster_support.push(sup_set);
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert!(cluster_outputs(&[], 4, 8).is_empty());
    }

    #[test]
    fn singletons_when_disjoint() {
        let a = TruthTable::var(6, 0);
        let b = TruthTable::var(6, 2);
        let c = TruthTable::var(6, 4);
        let clusters = cluster_outputs(&[a, b, c], 4, 8);
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn respects_max_cluster() {
        let fns: Vec<TruthTable> = (0..5)
            .map(|i| {
                // All share var 0, differ in a second var.
                TruthTable::var(6, 0) & TruthTable::var(6, 1 + i)
            })
            .collect();
        let clusters = cluster_outputs(&fns, 2, 10);
        assert!(clusters.iter().all(|c| c.len() <= 2));
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn respects_union_support_budget() {
        let a = TruthTable::var(8, 0) & TruthTable::var(8, 1) & TruthTable::var(8, 2);
        let b = TruthTable::var(8, 2) & TruthTable::var(8, 3) & TruthTable::var(8, 4);
        // Union support would be 5 > 4, so they split.
        let clusters = cluster_outputs(&[a, b], 4, 4);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn duplicates_never_share_a_cluster() {
        let a = TruthTable::var(4, 0) & TruthTable::var(4, 1);
        let clusters = cluster_outputs(&[a.clone(), a], 4, 8);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn constants_form_their_own_cluster_path() {
        let c = TruthTable::one(4);
        let a = TruthTable::var(4, 0);
        let clusters = cluster_outputs(&[c, a], 4, 8);
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 2);
    }
}
