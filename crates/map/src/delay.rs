//! Unit-delay timing analysis of mapped LUT networks.
//!
//! LUT-based FPGA timing at the mapping stage is conventionally modeled as
//! one delay unit per LUT level (wire delays are unknown before placement).
//! This module computes arrival times, required times and slacks, and
//! enumerates the critical path — the depth-oriented companion to the
//! area-oriented reports of the tables.

use hyde_logic::{Network, NodeId, NodeRole};
use std::collections::HashMap;

/// Timing report of a mapped network under the unit-delay model.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Arrival time (level) per node.
    pub arrival: HashMap<NodeId, usize>,
    /// Required time per node (against the network's own depth).
    pub required: HashMap<NodeId, usize>,
    /// Critical path from a primary input to the latest output, inputs
    /// first.
    pub critical_path: Vec<NodeId>,
    /// Network depth in LUT levels.
    pub depth: usize,
}

impl TimingReport {
    /// Slack of a node (`required - arrival`); zero on the critical path.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of the analyzed network.
    pub fn slack(&self, id: NodeId) -> usize {
        self.required[&id] - self.arrival[&id]
    }

    /// Nodes with zero slack, sorted.
    pub fn critical_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            // sa:allow(SA001): collected then sorted, so order cannot leak.
            .arrival
            .keys()
            .filter(|&&id| self.slack(id) == 0)
            .copied()
            .collect();
        v.sort_unstable();
        v
    }
}

/// Analyzes a network under the unit-delay model.
///
/// # Panics
///
/// Panics if the network is cyclic or has no outputs.
pub fn analyze(net: &Network) -> TimingReport {
    let order = net.topo_order().expect("network must be acyclic");
    assert!(!net.outputs().is_empty(), "network needs outputs");
    // Arrival: PIs at 0, internal nodes at max(fanin)+1.
    let mut arrival: HashMap<NodeId, usize> = HashMap::new();
    for &id in &order {
        let a = match net.role(id) {
            NodeRole::PrimaryInput => 0,
            NodeRole::Internal => net
                .fanins(id)
                .iter()
                .map(|f| arrival[f] + 1)
                .max()
                .unwrap_or(0),
        };
        arrival.insert(id, a);
    }
    let depth = net
        .outputs()
        .iter()
        .map(|(_, id)| arrival[id])
        .max()
        .unwrap_or(0);
    // Required: outputs at depth, propagate backwards.
    let mut required: HashMap<NodeId, usize> = HashMap::new();
    for &id in order.iter().rev() {
        let mut r = if net.outputs().iter().any(|(_, o)| *o == id) {
            depth
        } else {
            usize::MAX
        };
        // Consumers constrain: required(fanin) <= required(consumer) - 1.
        for &c in &order {
            if net.role(c) == NodeRole::Internal && net.fanins(c).contains(&id) {
                if let Some(&rc) = required.get(&c) {
                    r = r.min(rc.saturating_sub(1));
                }
            }
        }
        if r == usize::MAX {
            r = depth; // dangling (will be swept); give full slack
        }
        required.insert(id, r);
    }
    // Critical path: walk back from the latest output through latest
    // fanins.
    let (_, mut cur) = net
        .outputs()
        .iter()
        .max_by_key(|(_, id)| arrival[id])
        .expect("at least one output")
        .clone();
    let mut path = vec![cur];
    while net.role(cur) == NodeRole::Internal {
        let next = net
            .fanins(cur)
            .iter()
            .copied()
            .max_by_key(|f| arrival[f])
            .expect("internal node has fanins");
        path.push(next);
        cur = next;
    }
    path.reverse();
    TimingReport {
        arrival,
        required,
        critical_path: path,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyde_logic::TruthTable;

    fn chain(n: usize) -> Network {
        let mut net = Network::new("chain");
        let a = net.add_input("a");
        let inv = !TruthTable::var(1, 0);
        let mut cur = a;
        for i in 0..n {
            cur = net
                .add_node(&format!("n{i}"), vec![cur], inv.clone())
                .unwrap();
        }
        net.mark_output("o", cur);
        net
    }

    #[test]
    fn chain_depth_and_path() {
        let net = chain(4);
        let t = analyze(&net);
        assert_eq!(t.depth, 4);
        assert_eq!(t.critical_path.len(), 5); // PI + 4 nodes
                                              // Everything on a pure chain is critical.
        for id in net.node_ids() {
            assert_eq!(t.slack(id), 0);
        }
    }

    #[test]
    fn side_branch_has_slack() {
        // Long chain plus a short side path into the final node.
        let mut net = Network::new("s");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let inv = !TruthTable::var(1, 0);
        let c1 = net.add_node("c1", vec![a], inv.clone()).unwrap();
        let c2 = net.add_node("c2", vec![c1], inv.clone()).unwrap();
        let short = net.add_node("short", vec![b], inv).unwrap();
        let and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        let out = net.add_node("out", vec![c2, short], and2).unwrap();
        net.mark_output("o", out);
        let t = analyze(&net);
        assert_eq!(t.depth, 3);
        assert_eq!(t.slack(short), 1);
        assert_eq!(t.slack(c1), 0);
        assert_eq!(t.slack(out), 0);
        assert!(t.critical_nodes().contains(&c2));
        assert!(!t.critical_nodes().contains(&short));
    }

    #[test]
    fn analyze_mapped_circuit() {
        use crate::flow::{FlowKind, MappingFlow};
        let c = hyde_circuits::rd73();
        let report = MappingFlow::new(5, FlowKind::hyde(3))
            .map_outputs(&c.name, &c.outputs)
            .unwrap();
        let t = analyze(&report.network);
        assert_eq!(t.depth, report.depth);
        assert!(!t.critical_path.is_empty());
        // Arrival of the path's last node equals the depth of that output.
        let last = *t.critical_path.last().unwrap();
        assert_eq!(t.arrival[&last], t.depth);
    }
}
