//! Session/Job facade: one reusable end-to-end mapping path shared by
//! the CLI drivers (`hyde-bench`, `hyde-lint`) and the `hyde-serve`
//! daemon.
//!
//! A [`Session`] owns the per-worker state a mapping run needs — the
//! flow configuration, the shared NPN decomposition cache, the chaos
//! layer and a [`RetryPolicy`] — and executes typed [`Job`]s:
//!
//! * each attempt runs under `catch_unwind`, so a panicking worker is
//!   an [`AttemptOutcome::Panicked`] record, never a dead thread;
//! * degradation events are captured per attempt with
//!   [`hyde_guard::ScopedDegradations`], so concurrent sessions do not
//!   interleave the process-global log;
//! * every retry steps the fallback ladder down one rung
//!   ([`MappingFlow::with_start_rung`]) — a job that failed at the
//!   exact rung re-runs capped — and sleeps the policy's deterministic
//!   backoff;
//! * a job that exhausts its attempts becomes a typed [`JobError`]
//!   carrying the panic payload, per-attempt rung history and the
//!   degradation log (quarantine material, not an abort).
//!
//! Chaos v2 worker faults (`serve.kill:*` / `serve.stall:*` sites) are
//! injected here, *inside* the supervised attempt, but only when the
//! caller opts in via [`Session::with_worker_faults`] — the
//! `HYDE_CHAOS` environment variable alone never arms them, so batch
//! drivers keep their existing fault surface.

use crate::flow::{FlowKind, MappingFlow};
use crate::report::MappingReport;
use hyde_core::dcache::DecompCache;
use hyde_core::CoreError;
use hyde_guard::{Budget, Chaos, DegradationEvent, RetryPolicy, Rung};
use hyde_logic::TruthTable;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Serializable description of a [`Budget`]: durations as
/// milliseconds instead of an absolute [`std::time::Instant`], so the
/// spec can cross a journal or a wire and the deadline clock starts
/// when the attempt does, not when the job was submitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetSpec {
    /// Wall-clock deadline per attempt, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Cap on live BDD nodes per manager.
    pub bdd_nodes: Option<usize>,
    /// Cap on SAT conflicts per encoding call.
    pub sat_conflicts: Option<u64>,
    /// Cap on candidate bound sets examined per output.
    pub candidates: Option<usize>,
}

impl BudgetSpec {
    /// No limits at all.
    pub fn unlimited() -> Self {
        BudgetSpec::default()
    }

    /// Mirrors [`Budget::standard`] (without the deadline, which a
    /// service sets per job class).
    pub fn standard() -> Self {
        let b = Budget::standard();
        BudgetSpec {
            deadline_ms: None,
            bdd_nodes: b.bdd_nodes,
            sat_conflicts: b.sat_conflicts,
            candidates: b.candidates,
        }
    }

    /// Sets the per-attempt deadline in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Materializes the spec into a [`Budget`], starting the deadline
    /// clock *now* — call this at attempt start, not submit time.
    pub fn to_budget(&self) -> Budget {
        let mut b = Budget {
            deadline: None,
            bdd_nodes: self.bdd_nodes,
            sat_conflicts: self.sat_conflicts,
            candidates: self.candidates,
        };
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline(Duration::from_millis(ms));
        }
        b
    }

    /// Node charge for admission control: the BDD cap if set, else
    /// [`hyde_guard::AdmissionLimits::DEFAULT_JOB_NODES`].
    pub fn node_charge(&self) -> u64 {
        self.bdd_nodes
            .map(|n| n as u64)
            .unwrap_or(hyde_guard::AdmissionLimits::DEFAULT_JOB_NODES)
    }
}

/// A typed unit of work: a named multi-output function vector plus the
/// resources it may spend.
#[derive(Debug, Clone)]
pub struct Job {
    /// Unique job id (journal key; also keys chaos fault and jitter
    /// streams, so two jobs with distinct ids fail independently).
    pub id: String,
    /// Circuit name (network name, degradation context).
    pub name: String,
    /// Output functions over one shared input space.
    pub outputs: Vec<TruthTable>,
    /// Per-attempt resource budget.
    pub budget: BudgetSpec,
    /// Topmost ladder rung the first attempt may use.
    pub start_rung: Rung,
}

impl Job {
    /// A job with an unlimited budget whose id doubles as its name.
    pub fn new(id: impl Into<String>, outputs: Vec<TruthTable>) -> Self {
        let id = id.into();
        Job {
            name: id.clone(),
            id,
            outputs,
            budget: BudgetSpec::unlimited(),
            start_rung: Rung::Exact,
        }
    }

    /// Replaces the budget spec.
    pub fn with_budget(mut self, budget: BudgetSpec) -> Self {
        self.budget = budget;
        self
    }
}

/// What one supervised attempt did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Mapped and verified.
    Ok,
    /// The flow returned a typed error (message preserved).
    Failed(String),
    /// Exhaustion escaped every rung of the fallback ladder.
    Exhausted(hyde_guard::OutOfBudget),
    /// The attempt panicked under `catch_unwind` (payload preserved).
    Panicked(String),
    /// Chaos killed the worker mid-job (a real panic, caught).
    InjectedKill,
    /// Chaos stalled the worker past its deadline (typed overrun).
    InjectedStall,
}

impl AttemptOutcome {
    /// Stable lower-case token for journals and logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            AttemptOutcome::Ok => "ok",
            AttemptOutcome::Failed(_) => "failed",
            AttemptOutcome::Exhausted(_) => "exhausted",
            AttemptOutcome::Panicked(_) => "panicked",
            AttemptOutcome::InjectedKill => "injected-kill",
            AttemptOutcome::InjectedStall => "injected-stall",
        }
    }
}

/// One row of a job's attempt history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: u32,
    /// Ladder rung the attempt started from.
    pub rung: Rung,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
}

/// A completed job: the mapping plus everything a caller needs to
/// account for it (degradations, attempt history).
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job id this result answers.
    pub id: String,
    /// Circuit name.
    pub name: String,
    /// The mapping produced by the final (successful) attempt.
    pub report: MappingReport,
    /// Degradation events recorded by the successful attempt.
    pub degradations: Vec<DegradationEvent>,
    /// Full attempt history, including failed attempts.
    pub attempts: Vec<AttemptRecord>,
}

impl JobResult {
    /// The mapped network in BLIF form — the byte-identity currency of
    /// the determinism tests.
    pub fn blif(&self) -> String {
        hyde_logic::blif::write(&self.report.network)
    }
}

/// Why a quarantined job's final attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobErrorKind {
    /// The last attempt panicked; payload preserved.
    Panicked(String),
    /// The last attempt returned a typed mapping error.
    Mapping(String),
    /// The last attempt ran out of budget with no rung left to absorb
    /// it (a [`hyde_guard::OutOfBudget`] that escaped the ladder).
    OutOfBudget(hyde_guard::OutOfBudget),
}

/// A job that exhausted its retry budget: typed quarantine material,
/// with the full rung history — never a dead worker.
#[derive(Debug, Clone)]
pub struct JobError {
    /// Job id.
    pub id: String,
    /// Circuit name.
    pub name: String,
    /// Terminal failure of the final attempt.
    pub kind: JobErrorKind,
    /// Degradation events across all attempts, in order.
    pub degradations: Vec<DegradationEvent>,
    /// Full attempt history (rung each attempt started from).
    pub attempts: Vec<AttemptRecord>,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            JobErrorKind::Panicked(msg) => format!("panicked: {msg}"),
            JobErrorKind::Mapping(msg) => format!("error: {msg}"),
            JobErrorKind::OutOfBudget(ob) => format!("out of budget: {ob}"),
        };
        write!(
            f,
            "job '{}' quarantined after {} attempt(s): {what}",
            self.id,
            self.attempts.len()
        )
    }
}

impl std::error::Error for JobError {}

/// Extracts a printable message from a `catch_unwind` payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-worker mapping session: flow configuration plus supervised,
/// retrying job execution. Cheap to clone per worker thread; clones
/// share the decomposition cache.
#[derive(Debug, Clone)]
pub struct Session {
    k: usize,
    kind: FlowKind,
    cache: Arc<DecompCache>,
    retry: RetryPolicy,
    /// Chaos seed for the flow's fault sites (`None` = inherit
    /// `HYDE_CHAOS` like a bare flow would).
    chaos: Option<u64>,
    /// Arms the `serve.kill:*` / `serve.stall:*` worker-fault sites.
    /// Requires an explicit chaos seed; env arming is not enough.
    worker_faults: bool,
}

/// Denominator for the worker-kill chaos site: roughly one kill per
/// four (job, attempt) pairs under an arming seed.
const KILL_DENOM: u64 = 4;
/// Denominator for the worker-stall chaos site.
const STALL_DENOM: u64 = 4;

impl Session {
    /// A session mapping to `k`-input LUTs with the given flow, one
    /// attempt per job (batch semantics), fresh shared cache.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3` (the flow's own invariant).
    pub fn new(k: usize, kind: FlowKind) -> Self {
        Session {
            k,
            kind,
            cache: Arc::new(DecompCache::new()),
            retry: RetryPolicy::single_attempt(),
            chaos: None,
            worker_faults: false,
        }
    }

    /// Replaces the retry policy (a service wants
    /// [`RetryPolicy::standard`]; batch drivers keep the single-attempt
    /// default).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Arms the chaos layer with an explicit seed for every flow this
    /// session runs.
    pub fn with_chaos(mut self, seed: u64) -> Self {
        self.chaos = Some(seed);
        self
    }

    /// Arms (or disarms) the worker-kill/worker-stall injection sites.
    /// Only effective together with [`Session::with_chaos`].
    pub fn with_worker_faults(mut self, armed: bool) -> Self {
        self.worker_faults = armed;
        self
    }

    /// Replaces the decomposition cache with a shared one.
    pub fn with_decomp_cache(mut self, cache: Arc<DecompCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The retry policy in force.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Target LUT size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The flow kind jobs run under.
    pub fn kind(&self) -> &FlowKind {
        &self.kind
    }

    /// The shared decomposition cache.
    pub fn decomp_cache(&self) -> &Arc<DecompCache> {
        &self.cache
    }

    /// Runs a job to a terminal state.
    ///
    /// # Errors
    ///
    /// Returns a typed [`JobError`] once every attempt the policy
    /// grants has failed.
    // JobError carries the full attempt history so callers can report
    // it; the error path is rare and never hot, so the size is fine.
    #[allow(clippy::result_large_err)]
    pub fn run(&self, job: &Job) -> Result<JobResult, JobError> {
        self.run_with(job, &mut |_| {})
    }

    /// Runs a job, invoking `observer` after every attempt (the serve
    /// workers journal `Retried` events and bump counters from it).
    ///
    /// # Errors
    ///
    /// Returns a typed [`JobError`] once every attempt the policy
    /// grants has failed.
    #[allow(clippy::result_large_err)]
    pub fn run_with(
        &self,
        job: &Job,
        observer: &mut dyn FnMut(&AttemptRecord),
    ) -> Result<JobResult, JobError> {
        let mut attempts: Vec<AttemptRecord> = Vec::new();
        let mut degradations: Vec<DegradationEvent> = Vec::new();
        let mut rung = job.start_rung;
        for attempt in 1..=self.retry.max_attempts {
            let (outcome, events, report) = self.attempt(job, attempt, rung);
            degradations.extend(events.iter().cloned());
            let record = AttemptRecord {
                attempt,
                rung,
                outcome,
            };
            observer(&record);
            let terminal_ok = matches!(record.outcome, AttemptOutcome::Ok);
            attempts.push(record);
            if terminal_ok {
                let report = report.expect("Ok outcome carries a report");
                return Ok(JobResult {
                    id: job.id.clone(),
                    name: job.name.clone(),
                    report,
                    degradations: events,
                    attempts,
                });
            }
            if self.retry.retries_remaining(attempt) {
                // Each retry re-runs capped one rung below the attempt
                // that failed, per the supervision contract.
                rung = rung.next_down().unwrap_or(Rung::DirectCover);
                let delay = self.retry.backoff(&job.id, attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
        let kind = match &attempts.last().expect("at least one attempt").outcome {
            AttemptOutcome::Panicked(msg) => JobErrorKind::Panicked(msg.clone()),
            AttemptOutcome::InjectedKill => {
                JobErrorKind::Panicked("chaos: injected worker kill".into())
            }
            AttemptOutcome::InjectedStall => {
                JobErrorKind::Mapping("injected worker stall: deadline overrun".into())
            }
            AttemptOutcome::Failed(msg) => JobErrorKind::Mapping(msg.clone()),
            AttemptOutcome::Exhausted(ob) => JobErrorKind::OutOfBudget(*ob),
            AttemptOutcome::Ok => unreachable!("Ok is returned above"),
        };
        Err(JobError {
            id: job.id.clone(),
            name: job.name.clone(),
            kind,
            degradations,
            attempts,
        })
    }

    /// One supervised attempt: scoped degradation capture around a
    /// `catch_unwind` around the flow, with the chaos worker faults
    /// injected inside the supervised region.
    fn attempt(
        &self,
        job: &Job,
        attempt: u32,
        rung: Rung,
    ) -> (AttemptOutcome, Vec<DegradationEvent>, Option<MappingReport>) {
        let mut flow = MappingFlow::new(self.k, self.kind.clone())
            .with_budget(job.budget.to_budget())
            .with_start_rung(rung)
            .with_decomp_cache(self.cache.clone());
        if let Some(seed) = self.chaos {
            flow = flow.with_chaos(seed);
        }
        let faults = match (self.worker_faults, self.chaos) {
            (true, Some(seed)) => Some(Chaos::new(seed)),
            _ => None,
        };
        // Fault sites are keyed by (job id, attempt): a retried job
        // rolls a fresh — but still deterministic — fault schedule, so
        // injected kills do not pin a job in quarantine forever.
        let kill = faults
            .is_some_and(|c| c.trips(&format!("serve.kill:{}:{attempt}", job.id), KILL_DENOM));
        let stall = faults
            .is_some_and(|c| c.trips(&format!("serve.stall:{}:{attempt}", job.id), STALL_DENOM));
        let (caught, events) = hyde_guard::scoped_degradations(|| {
            catch_unwind(AssertUnwindSafe(|| {
                if kill {
                    panic!(
                        "chaos: injected worker kill for job '{}' attempt {attempt}",
                        job.id
                    );
                }
                if stall {
                    // A stall is what the deadline watchdog would turn a
                    // hung worker into: a typed overrun, not a hang.
                    return Err(CoreError::OutOfBudget(hyde_guard::OutOfBudget::injected(
                        hyde_guard::Resource::Deadline,
                    )));
                }
                flow.map_outputs(&job.name, &job.outputs)
            }))
        });
        match caught {
            Ok(Ok(report)) => (AttemptOutcome::Ok, events, Some(report)),
            Ok(Err(CoreError::OutOfBudget(ob))) if ob.injected && stall => {
                (AttemptOutcome::InjectedStall, events, None)
            }
            Ok(Err(CoreError::OutOfBudget(ob))) => (AttemptOutcome::Exhausted(ob), events, None),
            Ok(Err(e)) => (AttemptOutcome::Failed(e.to_string()), events, None),
            Err(_payload) if kill => (AttemptOutcome::InjectedKill, events, None),
            Err(payload) => (
                AttemptOutcome::Panicked(panic_message(payload)),
                events,
                None,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_job(id: &str) -> Job {
        let f = TruthTable::from_fn(5, |m| m.count_ones() % 2 == 1);
        let g = TruthTable::from_fn(5, |m| m.count_ones() >= 3);
        Job::new(id, vec![f, g])
    }

    /// A seed whose kill site trips on attempt 1 for `id` but not on
    /// every later attempt (so the retry can land).
    fn kill_seed(id: &str, max_attempts: u32) -> u64 {
        (0..10_000u64)
            .find(|&s| {
                let c = Chaos::new(s);
                c.trips(&format!("serve.kill:{id}:1"), KILL_DENOM)
                    && (2..=max_attempts).any(|a| {
                        !c.trips(&format!("serve.kill:{id}:{a}"), KILL_DENOM)
                            && !c.trips(&format!("serve.stall:{id}:{a}"), STALL_DENOM)
                    })
            })
            .expect("some seed kills attempt 1 and spares a later attempt")
    }

    #[test]
    fn session_matches_direct_flow_byte_for_byte() {
        let job = xor_job("adder");
        let session = Session::new(5, FlowKind::hyde(0xDA98));
        let result = session.run(&job).expect("maps");
        let flow = MappingFlow::new(5, FlowKind::hyde(0xDA98));
        let direct = flow.map_outputs("adder", &job.outputs).expect("maps");
        assert_eq!(result.blif(), hyde_logic::blif::write(&direct.network));
        assert_eq!(result.attempts.len(), 1);
        assert_eq!(result.attempts[0].outcome, AttemptOutcome::Ok);
    }

    #[test]
    fn injected_kill_is_retried_and_recovers() {
        let job = xor_job("kill-me");
        let seed = kill_seed("kill-me", 3);
        let session = Session::new(5, FlowKind::hyde(0xDA98))
            .with_retry(RetryPolicy::standard().with_base_delay(Duration::ZERO))
            .with_chaos(seed)
            .with_worker_faults(true);
        let result = session.run(&job).expect("retry recovers the job");
        assert!(result.attempts.len() >= 2, "{:?}", result.attempts);
        assert_eq!(result.attempts[0].outcome, AttemptOutcome::InjectedKill);
        assert_eq!(result.attempts[0].rung, Rung::Exact);
        // Every retry re-runs one rung lower than the attempt before.
        for pair in result.attempts.windows(2) {
            assert_eq!(pair[1].rung, pair[0].rung.next_down().unwrap());
        }
        assert!(result.report.network.is_k_feasible(5));
    }

    #[test]
    fn exhausted_attempts_become_typed_quarantine() {
        let job = xor_job("doomed");
        let seed = (0..10_000u64)
            .find(|&s| Chaos::new(s).trips("serve.kill:doomed:1", KILL_DENOM))
            .unwrap();
        let session = Session::new(5, FlowKind::hyde(0xDA98))
            .with_retry(RetryPolicy::single_attempt())
            .with_chaos(seed)
            .with_worker_faults(true);
        let err = session.run(&job).expect_err("one killed attempt, no retry");
        assert!(matches!(err.kind, JobErrorKind::Panicked(_)));
        assert_eq!(err.attempts.len(), 1);
        assert_eq!(err.attempts[0].outcome, AttemptOutcome::InjectedKill);
    }

    #[test]
    fn worker_faults_require_explicit_opt_in() {
        let job = xor_job("kill-me");
        let seed = kill_seed("kill-me", 3);
        // Same arming seed, but no with_worker_faults: first attempt
        // must succeed (flow-level chaos sites may degrade, not kill).
        let session = Session::new(5, FlowKind::hyde(0xDA98)).with_chaos(seed);
        let result = session.run(&job).expect("maps");
        assert_eq!(result.attempts.len(), 1);
    }

    #[test]
    fn degradations_stay_out_of_the_global_log() {
        // The 3-bit adder at k=4 needs real decomposition, and a
        // candidate cap of 0 rejects any bound-set fan-out (same shape
        // as the flow's own ladder tests).
        let outputs: Vec<TruthTable> = (0..=3usize)
            .map(|o| {
                TruthTable::from_fn(6, |m| {
                    let (a, b) = (m & 0b111, m >> 3);
                    ((a + b) >> o) & 1 == 1
                })
            })
            .collect();
        let job = Job::new("budgeted", outputs).with_budget(BudgetSpec {
            candidates: Some(0),
            ..BudgetSpec::unlimited()
        });
        let session = Session::new(
            4,
            FlowKind::PerOutput {
                encoder: hyde_core::encoding::EncoderKind::Lexicographic,
            },
        );
        let result = session.run(&job).expect("maps with degradation");
        assert!(
            !result.degradations.is_empty(),
            "candidate cap of 1 must trip the ladder"
        );
        // Peek (don't drain — other tests own their global-log slices):
        // nothing from this job may have leaked past the scoped capture.
        assert!(
            !hyde_guard::degradation_log_text().contains("budgeted"),
            "scoped capture must divert events from the global log"
        );
    }
}
