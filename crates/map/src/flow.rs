//! End-to-end mapping flows.
//!
//! Four flows reproduce the comparison points of the paper's evaluation:
//!
//! * [`FlowKind::PerOutput`] — each output decomposed independently, no
//!   sharing (the "`[8]` without resubstitution" column of Table 2);
//! * [`FlowKind::SharedAlpha`] — per-output decomposition followed by
//!   structural sharing of identical LUTs (the resubstitution-style
//!   baselines);
//! * [`FlowKind::ColumnEncoding`] — FGSyn-style multi-output Roth–Karp
//!   decomposition: one joint chart per step, α functions shared across
//!   outputs. The paper shows this is the special case of hyper-function
//!   decomposition where pseudo inputs never enter a bound set (§4.3);
//! * [`FlowKind::Hyper`] — the HYDE flow: outputs clustered into
//!   hyper-functions, each decomposed as a single-output function with
//!   compatible class encoding, ingredients recovered by pseudo-input
//!   collapse with everything outside the duplication cone shared.

use crate::cluster::cluster_outputs;
use crate::report::MappingReport;
use crate::xc3000::pack_clbs;
use hyde_bdd::Bdd;
use hyde_core::dcache::DecompCache;
use hyde_core::decompose::{decompose_bdd_to_network, DecomposeStats, Decomposer};
use hyde_core::encoding::{ceil_log2, CodeAssignment, EncoderKind};
use hyde_core::hyper::HyperFunction;
use hyde_core::multichart::{joint_class_count, MultiChart};
use hyde_core::varpart::VariablePartitioner;
use hyde_core::CoreError;
use hyde_guard::{Budget, Chaos, DegradationEvent, OutOfBudget, Resource, Rung};
use hyde_logic::diag::{any_deny, Code, Diagnostic, Location};
use hyde_logic::network::{project_to_support, structural_merge};
use hyde_logic::{Literal, Network, NodeId, NodeRole, SopCover, TruthTable};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Which flow to run.
#[derive(Debug, Clone)]
pub enum FlowKind {
    /// Independent per-output decomposition (no sharing).
    PerOutput {
        /// Compatible class encoder for every step.
        encoder: EncoderKind,
    },
    /// Per-output decomposition plus structural sharing of identical LUTs.
    SharedAlpha {
        /// Compatible class encoder for every step.
        encoder: EncoderKind,
    },
    /// FGSyn-style column encoding: joint multi-output charts with shared
    /// α functions.
    ColumnEncoding {
        /// Encoder for the joint classes.
        encoder: EncoderKind,
    },
    /// The HYDE hyper-function flow.
    Hyper {
        /// Encoder for classes and ingredients.
        encoder: EncoderKind,
        /// Maximum ingredients per hyper-function.
        max_cluster: usize,
        /// Maximum union support of a cluster.
        max_union: usize,
    },
}

impl FlowKind {
    /// The full HYDE configuration used by the tables.
    pub fn hyde(seed: u64) -> Self {
        FlowKind::Hyper {
            encoder: EncoderKind::Hyde { seed },
            max_cluster: 4,
            max_union: 16,
        }
    }

    /// IMODEC-like baseline: rigid strict per-output encoding with
    /// structural sharing.
    pub fn imodec_like() -> Self {
        FlowKind::SharedAlpha {
            encoder: EncoderKind::Lexicographic,
        }
    }

    /// FGSyn-like baseline: column encoding.
    pub fn fgsyn_like() -> Self {
        FlowKind::ColumnEncoding {
            encoder: EncoderKind::Lexicographic,
        }
    }

    /// Short label for table printing.
    pub fn label(&self) -> &'static str {
        match self {
            FlowKind::PerOutput { .. } => "per-output",
            FlowKind::SharedAlpha { .. } => "shared-alpha",
            FlowKind::ColumnEncoding { .. } => "column-enc",
            FlowKind::Hyper { .. } => "hyde",
        }
    }
}

/// A configured mapping flow.
#[derive(Debug, Clone)]
pub struct MappingFlow {
    k: usize,
    kind: FlowKind,
    /// Verification sample budget (exhaustive below this many minterms).
    verify_samples: usize,
    /// Resource budget threaded through every decomposition step.
    budget: Budget,
    /// Topmost rung of the fallback ladder this flow attempts. Defaults
    /// to [`Rung::Exact`]; a retrying supervisor
    /// (`hyde_map::session::Session`) lowers it one rung per attempt so
    /// a job that failed at the exact rung re-runs capped.
    start_rung: Rung,
    /// Deterministic fault-injection layer (armed from `HYDE_CHAOS` unless
    /// overridden via [`MappingFlow::with_chaos`]).
    chaos: Option<Chaos>,
    /// NPN-keyed λ-search memo shared by every decomposition this flow
    /// runs. Fresh per flow by default; [`MappingFlow::with_decomp_cache`]
    /// injects a cache shared across circuits (as `hyde-bench` does).
    /// Cached values are pure functions of their keys, so sharing never
    /// changes results — only how often the search actually runs.
    cache: Arc<DecompCache>,
}

impl MappingFlow {
    /// Creates a flow targeting `k`-input LUTs.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3`.
    pub fn new(k: usize, kind: FlowKind) -> Self {
        assert!(k >= 3, "LUT size must be at least 3");
        MappingFlow {
            k,
            kind,
            verify_samples: 1 << 12,
            budget: Budget::unlimited(),
            start_rung: Rung::Exact,
            chaos: Chaos::from_env(),
            cache: Arc::new(DecompCache::new()),
        }
    }

    /// Target LUT size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sets the resource budget enforced during decomposition. Exhausting
    /// a budget does not fail the flow: each exhaustion steps the affected
    /// output down one rung of the fallback ladder (exact Roth–Karp, BDD
    /// cut decomposition, Shannon split, direct SOP cover).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Arms the deterministic chaos layer with an explicit seed, overriding
    /// the `HYDE_CHAOS` environment variable. Identical seeds produce
    /// identical fault schedules regardless of `HYDE_THREADS`.
    pub fn with_chaos(mut self, seed: u64) -> Self {
        self.chaos = Some(Chaos::new(seed));
        self
    }

    /// The budget this flow enforces.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Caps the ladder at `rung`: rungs above it are skipped without
    /// recording degradation events (the step down was already taken by
    /// the retrying caller, not by a budget exhaustion here).
    pub fn with_start_rung(mut self, rung: Rung) -> Self {
        self.start_rung = rung;
        self
    }

    /// The topmost ladder rung this flow attempts.
    pub fn start_rung(&self) -> Rung {
        self.start_rung
    }

    /// Replaces the flow's decomposition cache with a shared one, so NPN
    /// search results carry across circuits within one run.
    pub fn with_decomp_cache(mut self, cache: Arc<DecompCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The NPN decomposition cache this flow populates.
    pub fn decomp_cache(&self) -> &Arc<DecompCache> {
        &self.cache
    }

    /// Maps a multi-output function vector (all outputs over the same
    /// `n`-variable input space) to a κ-feasible LUT network.
    ///
    /// # Errors
    ///
    /// Propagates decomposition errors; a functional mismatch after mapping
    /// surfaces as [`CoreError::Verification`].
    pub fn map_outputs(
        &self,
        name: &str,
        outputs: &[TruthTable],
    ) -> Result<MappingReport, CoreError> {
        if outputs.is_empty() {
            return Err(CoreError::InvalidBoundSet("no outputs to map".into()));
        }
        let n = outputs[0].vars();
        if outputs.iter().any(|f| f.vars() != n) {
            return Err(CoreError::InvalidBoundSet(
                "outputs must share one input space".into(),
            ));
        }
        let _obs = hyde_obs::span!("map.outputs");
        hyde_obs::counter("map.output_functions", outputs.len() as u64);
        // Chaos panic site: only armed when the batch driver opts in
        // (HYDE_CHAOS_PANIC=1), so library users never see injected panics.
        if let Some(chaos) = self.chaos {
            if Chaos::panics_armed() && chaos.trips(&format!("panic:{name}"), 16) {
                panic!("chaos: injected panic for circuit '{name}'");
            }
        }
        // sa:allow(SA002): elapsed time is reported alongside results,
        // never used to choose them.
        let start = Instant::now();
        let mut net = match &self.kind {
            FlowKind::PerOutput { encoder } => self.per_output(name, outputs, encoder, false)?,
            FlowKind::SharedAlpha { encoder } => self.per_output(name, outputs, encoder, true)?,
            FlowKind::ColumnEncoding { encoder } => self.column_encoding(outputs, encoder)?,
            FlowKind::Hyper {
                encoder,
                max_cluster,
                max_union,
            } => self.hyper_flow(name, outputs, encoder, *max_cluster, *max_union)?,
        };
        net.sweep();
        // The xl_cover step of the paper's script: collapse LUTs that fit
        // inside their consumers.
        {
            let _obs = hyde_obs::span!("map.cover");
            crate::cover::compact(&mut net, self.k);
        }
        {
            let _obs = hyde_obs::span!("map.verify");
            self.verify(&net, outputs)?;
        }
        let luts = net.internal_count();
        let depth = net.depth();
        let clbs = if self.k == 5 {
            Some(pack_clbs(&net).clb_count())
        } else {
            None
        };
        Ok(MappingReport {
            name: name.to_owned(),
            network: net,
            luts,
            clbs,
            depth,
            elapsed: start.elapsed(),
        })
    }

    fn fresh_net(&self, n: usize) -> (Network, Vec<NodeId>) {
        let mut net = Network::new("mapped");
        let inputs = (0..n).map(|i| net.add_input(&format!("x{i}"))).collect();
        (net, inputs)
    }

    fn per_output(
        &self,
        name: &str,
        outputs: &[TruthTable],
        encoder: &EncoderKind,
        share: bool,
    ) -> Result<Network, CoreError> {
        let n = outputs[0].vars();
        let (mut net, inputs) = self.fresh_net(n);
        let mut stats = DecomposeStats::default();
        for (o, f) in outputs.iter().enumerate() {
            let id = self.ladder_decompose(
                &mut net,
                f,
                &inputs,
                &format!("o{o}"),
                &mut stats,
                encoder,
                name,
            )?;
            net.mark_output(&format!("o{o}"), id);
        }
        if share {
            net = structural_merge("mapped", &[&net]);
        }
        Ok(net)
    }

    /// Decomposes `f` onto `net` through the fallback ladder: exact
    /// Roth–Karp with compatible class encoding, then BDD cut decomposition
    /// under the node cap, then a Shannon-cofactor split, then a direct SOP
    /// cover. Each budget exhaustion (real or chaos-injected) steps down
    /// exactly one rung and is recorded as a [`DegradationEvent`]; the
    /// direct-cover floor cannot run out of budget, so every in-spec
    /// function still maps.
    #[allow(clippy::too_many_arguments)]
    fn ladder_decompose(
        &self,
        net: &mut Network,
        f: &TruthTable,
        signals: &[NodeId],
        prefix: &str,
        stats: &mut DecomposeStats,
        encoder: &EncoderKind,
        ctx: &str,
    ) -> Result<NodeId, CoreError> {
        let degrade = |from: Rung, resource: Resource, injected: bool| {
            hyde_guard::record_degradation(DegradationEvent {
                context: ctx.to_owned(),
                stage: prefix.to_owned(),
                from,
                to: from.next_down().unwrap_or(Rung::DirectCover),
                resource,
                injected,
            });
        };
        // Rungs above `start_rung` are skipped silently: a retrying
        // supervisor already took (and recorded) those steps.
        // Rung 1: exact Roth–Karp decomposition.
        if self.start_rung <= Rung::Exact {
            let dec = Decomposer::new(self.k, encoder.clone())
                .with_budget(self.budget)
                .with_chaos(self.chaos, ctx)
                .with_cache(Some(self.cache.clone()));
            match dec.decompose_onto(net, f, signals, prefix, stats) {
                Ok(id) => return Ok(id),
                Err(CoreError::OutOfBudget(ob)) => degrade(Rung::Exact, ob.resource, ob.injected),
                Err(e) => return Err(e),
            }
        }
        // Rung 2: BDD cut decomposition under the node cap. Partial nodes
        // left behind by the failed exact attempt are unreachable from any
        // output and disappear in the flow's sweep.
        if self.start_rung <= Rung::BddThreshold {
            match self.bdd_rung(f, ctx, prefix) {
                Ok(sub) => return splice_subnetwork(net, &sub, signals, &format!("{prefix}_r2")),
                Err(CoreError::OutOfBudget(ob)) => {
                    degrade(Rung::BddThreshold, ob.resource, ob.injected);
                }
                Err(e) => return Err(e),
            }
        }
        // Rung 3: Shannon cofactor split. Consumes no budgeted resource
        // beyond the deadline, so it only degrades on an expired deadline
        // or an injected fault.
        if self.start_rung <= Rung::Shannon {
            let injected = self
                .chaos
                .is_some_and(|c| c.trips(&format!("shannon:{ctx}:{prefix}"), 4));
            if injected {
                degrade(Rung::Shannon, Resource::Candidates, true);
            } else {
                match self.budget.check_deadline() {
                    Ok(()) => return self.shannon_onto(net, f, signals, &format!("{prefix}_r3")),
                    Err(ob) => degrade(Rung::Shannon, ob.resource, ob.injected),
                }
            }
        }
        // Rung 4: direct SOP cover — the floor of the ladder.
        self.direct_cover_onto(net, f, signals, &format!("{prefix}_r4"))
    }

    /// Rung 2 of the ladder: builds `f` as a BDD with the budget's node cap
    /// installed and decomposes it by cut counting. Exhausting the cap (or
    /// the chaos layer simulating a unique-table allocation failure)
    /// surfaces as [`CoreError::OutOfBudget`].
    fn bdd_rung(&self, f: &TruthTable, ctx: &str, prefix: &str) -> Result<Network, CoreError> {
        self.budget.check_deadline()?;
        if let Some(chaos) = self.chaos {
            if chaos.trips(&format!("bdd:{ctx}:{prefix}"), 4) {
                return Err(CoreError::OutOfBudget(OutOfBudget::injected(
                    Resource::BddNodes,
                )));
            }
        }
        let mut bdd = Bdd::with_capacity(f.vars(), 1 << 12);
        // Installing the node cap also arms a growth-pressure GC threshold
        // (3/4 of the cap); uncapped runs get an explicit one so large
        // recursions still reclaim dead nodes instead of growing without
        // bound. Chaos runs use a low threshold so the collector (and its
        // injection site inside the sweep) is actually exercised.
        bdd.set_node_cap(self.budget.bdd_nodes);
        if bdd.gc_threshold().is_none() {
            bdd.set_gc_threshold(Some(if self.chaos.is_some() { 512 } else { 1 << 13 }));
        }
        if let Some(chaos) = self.chaos {
            bdd.set_gc_chaos(chaos, &format!("{ctx}:{prefix}"));
        }
        let k = self.k;
        match bdd.guarded(|b| {
            let root = b.from_fn(|m| f.eval(m));
            decompose_bdd_to_network(b, root, k, "r2", 64)
        }) {
            Ok(res) => res,
            Err(ob) => Err(CoreError::OutOfBudget(ob)),
        }
    }

    /// Rung 3 of the ladder: recursive Shannon expansion. Splits on the
    /// highest support variable until the residue fits one LUT.
    fn shannon_onto(
        &self,
        net: &mut Network,
        f: &TruthTable,
        signals: &[NodeId],
        prefix: &str,
    ) -> Result<NodeId, CoreError> {
        let support = f.support();
        if support.is_empty() {
            return Ok(net.add_constant(prefix, f.eval(0)));
        }
        if support.len() <= self.k {
            let table = project_to_support(f, &support);
            let sigs: Vec<NodeId> = support.iter().map(|&v| signals[v]).collect();
            return net.add_node(prefix, sigs, table).map_err(CoreError::from);
        }
        let var = support[support.len() - 1];
        let lo = self.shannon_onto(net, &f.cofactor(var, false), signals, &format!("{prefix}l"))?;
        let hi = self.shannon_onto(net, &f.cofactor(var, true), signals, &format!("{prefix}h"))?;
        let mux = TruthTable::from_fn(3, |m| {
            if m & 1 == 1 {
                m >> 2 & 1 == 1
            } else {
                m >> 1 & 1 == 1
            }
        });
        net.add_node(prefix, vec![signals[var], lo, hi], mux)
            .map_err(CoreError::from)
    }

    /// Rung 4 of the ladder: direct cover. Chops an irredundant SOP cover
    /// of `f` into κ-feasible AND trees (leaf LUTs absorb the literal
    /// polarities) joined by an OR tree. Never consumes budget: this is
    /// the guaranteed floor every function can reach.
    fn direct_cover_onto(
        &self,
        net: &mut Network,
        f: &TruthTable,
        signals: &[NodeId],
        prefix: &str,
    ) -> Result<NodeId, CoreError> {
        let cover = SopCover::isop(f);
        if cover.cube_count() == 0 {
            return Ok(net.add_constant(prefix, false));
        }
        let mut terms: Vec<NodeId> = Vec::with_capacity(cover.cube_count());
        for (ci, cube) in cover.iter().enumerate() {
            let lits: Vec<(usize, bool)> = (0..f.vars())
                .filter_map(|v| match cube.literal(v) {
                    Literal::Positive => Some((v, true)),
                    Literal::Negative => Some((v, false)),
                    Literal::DontCare => None,
                })
                .collect();
            if lits.is_empty() {
                // A literal-free cube is the tautology: f is constant one.
                return Ok(net.add_constant(prefix, true));
            }
            let mut level: Vec<NodeId> = Vec::with_capacity(lits.len().div_ceil(self.k));
            for (gi, chunk) in lits.chunks(self.k).enumerate() {
                let sigs: Vec<NodeId> = chunk.iter().map(|&(v, _)| signals[v]).collect();
                let pol: Vec<bool> = chunk.iter().map(|&(_, p)| p).collect();
                let table = TruthTable::from_fn(chunk.len(), |m| {
                    pol.iter().enumerate().all(|(i, &p)| (m >> i & 1 == 1) == p)
                });
                level.push(net.add_node(&format!("{prefix}_c{ci}a{gi}"), sigs, table)?);
            }
            terms.push(self.reduce_gate(net, level, true, &format!("{prefix}_c{ci}"))?);
        }
        self.reduce_gate(net, terms, false, prefix)
    }

    /// Reduces `level` to a single signal with a balanced tree of κ-input
    /// AND (`is_and`) or OR gates.
    fn reduce_gate(
        &self,
        net: &mut Network,
        mut level: Vec<NodeId>,
        is_and: bool,
        prefix: &str,
    ) -> Result<NodeId, CoreError> {
        let mut round = 0usize;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(self.k));
            for (gi, chunk) in level.chunks(self.k).enumerate() {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                    continue;
                }
                let a = chunk.len();
                let mask = (1u32 << a) - 1;
                let table = TruthTable::from_fn(a, |m| {
                    if is_and {
                        m & mask == mask
                    } else {
                        m & mask != 0
                    }
                });
                next.push(net.add_node(
                    &format!("{prefix}g{round}_{gi}"),
                    chunk.to_vec(),
                    table,
                )?);
            }
            level = next;
            round += 1;
        }
        Ok(level[0])
    }

    /// FGSyn-style multi-output decomposition: one joint chart, shared α.
    fn column_encoding(
        &self,
        outputs: &[TruthTable],
        encoder: &EncoderKind,
    ) -> Result<Network, CoreError> {
        let n = outputs[0].vars();
        let (mut net, inputs) = self.fresh_net(n);
        let out_ids =
            self.column_decompose(&mut net, outputs.to_vec(), &inputs, "m", encoder, 0)?;
        for (o, id) in out_ids.into_iter().enumerate() {
            net.mark_output(&format!("o{o}"), id);
        }
        Ok(structural_merge("mapped", &[&net]))
    }

    fn column_decompose(
        &self,
        net: &mut Network,
        fs: Vec<TruthTable>,
        signals: &[NodeId],
        prefix: &str,
        encoder: &EncoderKind,
        depth: usize,
    ) -> Result<Vec<NodeId>, CoreError> {
        let dec = Decomposer::new(self.k, encoder.clone()).with_cache(Some(self.cache.clone()));
        let mut stats = DecomposeStats::default();
        // Union support.
        let mut in_support = vec![false; signals.len()];
        for f in &fs {
            for v in f.support() {
                in_support[v] = true;
            }
        }
        let support: Vec<usize> = (0..signals.len()).filter(|&v| in_support[v]).collect();
        if support.len() < signals.len() {
            let reduced: Vec<TruthTable> =
                fs.iter().map(|f| project_to_support(f, &support)).collect();
            let sigs: Vec<NodeId> = support.iter().map(|&v| signals[v]).collect();
            return self.column_decompose(net, reduced, &sigs, prefix, encoder, depth);
        }
        let n = signals.len();
        // Base case: everything fits in single LUTs.
        if n <= self.k || depth > 3 * n {
            let mut out = Vec::with_capacity(fs.len());
            for (i, f) in fs.iter().enumerate() {
                out.push(dec.decompose_onto(
                    net,
                    f,
                    signals,
                    &format!("{prefix}_f{i}"),
                    &mut stats,
                )?);
            }
            return Ok(out);
        }
        // Joint bound selection: minimize the multiplicity of the stacked
        // chart (distinct column tuples). Candidates are seeded with each
        // output's own best bound set plus the leading variables.
        let vp = VariablePartitioner::default().with_cache(self.cache.clone());
        let mut candidates: Vec<Vec<usize>> = Vec::new();
        for f in &fs {
            if f.support().len() > self.k {
                if let Ok((b, _)) = vp.best_bound_set(f, self.k) {
                    candidates.push(b);
                }
            }
        }
        candidates.push((0..self.k).collect());
        candidates.sort();
        candidates.dedup();
        let (bound, classes) = candidates
            .into_iter()
            .map(|b| {
                let c = joint_class_count(&fs, &b).unwrap_or(usize::MAX);
                (b, c)
            })
            .min_by_key(|(b, c)| (*c, b.clone()))
            .ok_or_else(|| CoreError::InvalidBoundSet("no joint bound-set candidate".into()))?;
        let t = ceil_log2(classes);
        if t >= self.k {
            // Joint decomposition not gainful: fall back to per-output.
            let mut out = Vec::with_capacity(fs.len());
            for (i, f) in fs.iter().enumerate() {
                out.push(dec.decompose_onto(
                    net,
                    f,
                    signals,
                    &format!("{prefix}_s{i}"),
                    &mut stats,
                )?);
            }
            return Ok(out);
        }
        // Shared α functions from the joint chart.
        let chart = MultiChart::new(&fs, &bound)?;
        // Encode the joint classes. The encoder sees each class's stacked
        // pattern as a single pseudo class function over free + selector
        // bits, so the class-count objective reflects the true structure.
        let sel_bits = ceil_log2(fs.len());
        let mu = chart.free().len();
        let reps: Vec<usize> = (0..chart.class_count())
            .map(|cls| {
                chart
                    .class_map()
                    .iter()
                    .position(|&x| x == cls)
                    .ok_or_else(|| {
                        CoreError::Verification(format!("joint class {cls} has no chart column"))
                    })
            })
            .collect::<Result<_, _>>()?;
        let per_f: Vec<Vec<TruthTable>> = fs
            .iter()
            .map(|f| chart_columns(f, &bound, chart.free()))
            .collect();
        let stacked: Vec<TruthTable> = reps
            .iter()
            .map(|&c| {
                TruthTable::from_fn(mu + sel_bits, |m| {
                    let y = m & ((1u32 << mu) - 1);
                    let which = (m >> mu) as usize;
                    if which < fs.len() {
                        per_f[which][c].eval(y)
                    } else {
                        false
                    }
                })
            })
            .collect();
        let classes =
            hyde_core::classes::CompatibleClasses::from_parts(chart.class_map().to_vec(), stacked);
        let codes: CodeAssignment = encoder.build().encode(&classes, self.k)?;
        let alphas = chart.alphas(&codes);
        let bound_sigs: Vec<NodeId> = bound.iter().map(|&v| signals[v]).collect();
        let mut g_sigs: Vec<NodeId> = Vec::new();
        for (i, alpha) in alphas.iter().enumerate() {
            g_sigs.push(net.add_node(
                &format!("{prefix}_a{i}"),
                bound_sigs.clone(),
                alpha.clone(),
            )?);
        }
        for &v in chart.free() {
            g_sigs.push(signals[v]);
        }
        // Per-output images over (α bits, free vars).
        let images: Vec<TruthTable> = (0..fs.len()).map(|fi| chart.image(fi, &codes)).collect();
        self.column_decompose(
            net,
            images,
            &g_sigs,
            &format!("{prefix}_g"),
            encoder,
            depth + 1,
        )
    }

    /// The HYDE hyper-function flow.
    fn hyper_flow(
        &self,
        name: &str,
        outputs: &[TruthTable],
        encoder: &EncoderKind,
        max_cluster: usize,
        max_union: usize,
    ) -> Result<Network, CoreError> {
        let clusters = cluster_outputs(outputs, max_cluster, max_union);
        let dec = Decomposer::new(self.k, encoder.clone())
            .with_budget(self.budget)
            .with_chaos(self.chaos, name)
            .with_cache(Some(self.cache.clone()));
        let mut parts: Vec<Network> = Vec::new();
        for cluster in &clusters {
            if cluster.len() == 1 {
                let o = cluster[0];
                let mut stats = DecomposeStats::default();
                let n = outputs[o].vars();
                let (mut net, inputs) = self.fresh_net(n);
                let id = self.ladder_decompose(
                    &mut net,
                    &outputs[o],
                    &inputs,
                    &format!("o{o}"),
                    &mut stats,
                    encoder,
                    name,
                )?;
                net.mark_output(&format!("o{o}"), id);
                parts.push(net);
            } else {
                let ingredients: Vec<TruthTable> =
                    cluster.iter().map(|&o| outputs[o].clone()).collect();
                // Candidate A: fold into a hyper-function and share. A
                // budget exhaustion anywhere inside the hyper path falls
                // back to the per-output candidate, whose ladder carries
                // its own degradation floor.
                let hyper_net = match (|| -> Result<Network, CoreError> {
                    let h = HyperFunction::new(ingredients.clone(), encoder, self.k)?;
                    let hn = h.decompose(&dec)?;
                    hn.implement_ingredients()
                })() {
                    Ok(net) => Some(net),
                    Err(CoreError::OutOfBudget(_)) => {
                        hyde_obs::counter("guard.hyper_fallback", 1);
                        None
                    }
                    Err(e) => return Err(e),
                };
                // Candidate B: per-output decomposition with structural
                // sharing. Hyper-functions are a sharing *opportunity*; the
                // flow keeps whichever implementation is smaller, as the
                // paper's SIS-embedded tool does through its script loop.
                let n = ingredients[0].vars();
                let (mut solo_net, inputs) = self.fresh_net(n);
                let mut stats = DecomposeStats::default();
                for (i, f) in ingredients.iter().enumerate() {
                    let id = self.ladder_decompose(
                        &mut solo_net,
                        f,
                        &inputs,
                        &format!("f{i}"),
                        &mut stats,
                        encoder,
                        name,
                    )?;
                    solo_net.mark_output(&format!("f{i}"), id);
                }
                let mut solo_net = structural_merge("solo", &[&solo_net]);
                solo_net.sweep();
                let mut best = match hyper_net {
                    Some(mut hyper_net) => {
                        hyper_net.sweep();
                        if hyper_net.internal_count() <= solo_net.internal_count() {
                            hyper_net
                        } else {
                            solo_net
                        }
                    }
                    None => solo_net,
                };
                // Outputs are named f0.. in cluster order: map back.
                let names: Vec<String> = cluster.iter().map(|&o| format!("o{o}")).collect();
                let mut i = 0usize;
                best.rename_outputs(|_| {
                    let nm = names[i].clone();
                    i += 1;
                    nm
                });
                parts.push(best);
            }
        }
        let refs: Vec<&Network> = parts.iter().collect();
        let mut merged = structural_merge("mapped", &refs);
        // Clustering permutes outputs: restore output-index order.
        merged.sort_outputs_by_key(|name| {
            name.strip_prefix('o')
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(usize::MAX)
        });
        Ok(merged)
    }

    /// Runs the structured invariant checks on a mapped network: `HY005`
    /// when simulation differs from the specification tables (exhaustive
    /// on small input spaces, strided sample otherwise) and `HY002` when a
    /// LUT exceeds the flow's fanin bound `k`.
    pub fn diagnose(&self, net: &Network, outputs: &[TruthTable]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for id in net.node_ids() {
            let fanin = net.fanins(id).len();
            if net.role(id) == hyde_logic::NodeRole::Internal && fanin > self.k {
                out.push(
                    Diagnostic::new(
                        Code::NetworkFaninExceedsK,
                        format!(
                            "LUT '{}' has {fanin} fanins but k = {}",
                            net.node_name(id),
                            self.k
                        ),
                    )
                    .at(Location::Node(id.index())),
                );
            }
        }
        let n = outputs[0].vars();
        if (1u64 << n) <= self.verify_samples as u64 {
            if let hyde_logic::sim::Equivalence::Counterexample(bits) =
                hyde_logic::sim::check_against_tables(net, outputs)
            {
                out.push(Diagnostic::new(
                    Code::NetworkSpecMismatch,
                    format!("mapped network differs from its specification at input {bits:?}"),
                ));
            }
            return out;
        }
        // Wide circuits: strided sample of the minterm space.
        let mut pi_positions: Vec<usize> = Vec::with_capacity(net.inputs().len());
        for &id in net.inputs() {
            match net
                .node_name(id)
                .strip_prefix('x')
                .and_then(|s| s.parse::<usize>().ok())
            {
                Some(p) => pi_positions.push(p),
                None => {
                    out.push(Diagnostic::new(
                        Code::NetworkSpecMismatch,
                        format!(
                            "cannot sample-verify: input '{}' is not named x<i>",
                            net.node_name(id)
                        ),
                    ));
                    return out;
                }
            }
        }
        let total = 1u64 << n;
        let stride = (total / self.verify_samples as u64).max(1);
        // Batch 64 sample minterms per topological pass (bit j of each
        // input word carries sample j); report the earliest mismatching
        // (minterm, output) pair, matching the unbatched scan order.
        let mut samples: Vec<u64> = Vec::with_capacity(64);
        let mut m = 0u64;
        loop {
            if m < total {
                samples.push(m);
                m += stride;
            }
            if samples.is_empty() {
                break;
            }
            if samples.len() < 64 && m < total {
                continue;
            }
            let words: Vec<u64> = pi_positions
                .iter()
                .map(|&p| {
                    let mut w = 0u64;
                    for (j, &s) in samples.iter().enumerate() {
                        w |= (s >> p & 1) << j;
                    }
                    w
                })
                .collect();
            let got = net.eval_batch64(&words);
            let lane_mask = if samples.len() == 64 {
                !0u64
            } else {
                (1u64 << samples.len()) - 1
            };
            let mut bad: Option<(usize, usize)> = None;
            for (o, f) in outputs.iter().enumerate() {
                let mut want = 0u64;
                for (j, &s) in samples.iter().enumerate() {
                    want |= u64::from(f.eval(s as u32)) << j;
                }
                let diff = (got[o] ^ want) & lane_mask;
                if diff != 0 {
                    let j = diff.trailing_zeros() as usize;
                    if bad.is_none_or(|(bj, bo)| (j, o) < (bj, bo)) {
                        bad = Some((j, o));
                    }
                }
            }
            if let Some((j, o)) = bad {
                out.push(
                    Diagnostic::new(
                        Code::NetworkSpecMismatch,
                        format!(
                            "output {o} differs from its specification at minterm {}",
                            samples[j]
                        ),
                    )
                    .at(Location::Output(o)),
                );
                break;
            }
            samples.clear();
        }
        out
    }

    /// Checks the mapped network against the specification.
    ///
    /// Thin wrapper over [`MappingFlow::diagnose`]: fails on the first
    /// deny-level diagnostic.
    fn verify(&self, net: &Network, outputs: &[TruthTable]) -> Result<(), CoreError> {
        let diags = self.diagnose(net, outputs);
        if any_deny(&diags) {
            let msg = diags
                .iter()
                .filter(|d| d.is_deny())
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ");
            return Err(CoreError::Verification(msg));
        }
        Ok(())
    }
}

/// Splices a single-output sub-network whose inputs are named `x<i>` onto
/// `net`, wiring input `x<i>` to `signals[i]` and prefixing every internal
/// node name with `prefix` to keep names unique. Returns the signal
/// driving the sub-network's output.
fn splice_subnetwork(
    net: &mut Network,
    sub: &Network,
    signals: &[NodeId],
    prefix: &str,
) -> Result<NodeId, CoreError> {
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for &id in sub.inputs() {
        let idx = sub
            .node_name(id)
            .strip_prefix('x')
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| {
                CoreError::Verification(format!(
                    "subnetwork input '{}' is not named x<i>",
                    sub.node_name(id)
                ))
            })?;
        let sig = *signals.get(idx).ok_or_else(|| {
            CoreError::Verification(format!("subnetwork input x{idx} exceeds the signal map"))
        })?;
        map.insert(id, sig);
    }
    for id in sub.topo_order()? {
        if sub.role(id) != NodeRole::Internal {
            continue;
        }
        let fanins: Vec<NodeId> = sub.fanins(id).iter().map(|f| map[f]).collect();
        let copied = net.add_node(
            &format!("{prefix}_{}", sub.node_name(id)),
            fanins,
            sub.function(id).clone(),
        )?;
        map.insert(id, copied);
    }
    let (_, out_id) = sub
        .outputs()
        .first()
        .ok_or_else(|| CoreError::Verification("subnetwork has no output".into()))?;
    map.get(out_id)
        .copied()
        .ok_or_else(|| CoreError::Verification("subnetwork output is unreachable".into()))
}

/// Column patterns of `f` for an explicit bound/free split (free variables
/// in ascending order).
fn chart_columns(f: &TruthTable, bound: &[usize], free: &[usize]) -> Vec<TruthTable> {
    let n_cols = 1usize << bound.len();
    let mut out = Vec::with_capacity(n_cols);
    for c in 0..n_cols {
        let mut col = f.clone();
        for (i, &v) in bound.iter().enumerate() {
            col = col.cofactor(v, c >> i & 1 == 1);
        }
        out.push(project_to_support(&col, free));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn adder_outputs(bits: usize) -> Vec<TruthTable> {
        // (a + b) over `bits`-bit operands: 2*bits inputs, bits+1 outputs.
        let n = 2 * bits;
        (0..=bits)
            .map(|o| {
                TruthTable::from_fn(n, |m| {
                    let a = m & ((1 << bits) - 1);
                    let b = m >> bits;
                    ((a + b) >> o) & 1 == 1
                })
            })
            .collect()
    }

    #[test]
    fn all_flows_map_an_adder_correctly() {
        let outputs = adder_outputs(3); // 6 inputs, 4 outputs
        for kind in [
            FlowKind::PerOutput {
                encoder: EncoderKind::Lexicographic,
            },
            FlowKind::imodec_like(),
            FlowKind::fgsyn_like(),
            FlowKind::hyde(7),
        ] {
            let label = kind.label();
            let flow = MappingFlow::new(5, kind);
            let report = flow.map_outputs("add3", &outputs).unwrap();
            assert!(report.network.is_k_feasible(5), "{label}");
            assert!(report.luts > 0, "{label}");
            assert!(report.clbs.is_some(), "{label}");
        }
    }

    #[test]
    fn shared_alpha_never_beats_per_output_count() {
        let outputs = adder_outputs(3);
        let per = MappingFlow::new(
            5,
            FlowKind::PerOutput {
                encoder: EncoderKind::Lexicographic,
            },
        )
        .map_outputs("a", &outputs)
        .unwrap();
        let shared = MappingFlow::new(5, FlowKind::imodec_like())
            .map_outputs("a", &outputs)
            .unwrap();
        assert!(shared.luts <= per.luts);
    }

    #[test]
    fn random_multi_output_all_flows() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let outputs: Vec<TruthTable> = (0..3).map(|_| TruthTable::random(7, &mut rng)).collect();
        for kind in [
            FlowKind::PerOutput {
                encoder: EncoderKind::Random { seed: 5 },
            },
            FlowKind::fgsyn_like(),
            FlowKind::hyde(5),
        ] {
            let label = kind.label();
            let flow = MappingFlow::new(4, kind);
            let report = flow.map_outputs("rnd", &outputs).unwrap();
            assert!(report.network.is_k_feasible(4), "{label}");
            assert!(report.clbs.is_none(), "k=4 has no CLB packing");
        }
    }

    #[test]
    fn rejects_mismatched_outputs() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(4, 0);
        let flow = MappingFlow::new(5, FlowKind::fgsyn_like());
        assert!(flow.map_outputs("bad", &[a, b]).is_err());
        assert!(flow.map_outputs("empty", &[]).is_err());
    }

    /// Serializes tests that observe the process-global degradation log.
    static LADDER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn ladder_lock() -> std::sync::MutexGuard<'static, ()> {
        LADDER_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn events_for(ctx: &str) -> Vec<hyde_guard::DegradationEvent> {
        hyde_guard::drain_degradations()
            .into_iter()
            .filter(|e| e.context == ctx)
            .collect()
    }

    #[test]
    fn ladder_rung2_maps_and_verifies_on_candidate_exhaustion() {
        let _g = ladder_lock();
        hyde_guard::drain_degradations();
        let outputs = adder_outputs(3);
        let flow = MappingFlow::new(
            4,
            FlowKind::PerOutput {
                encoder: EncoderKind::Lexicographic,
            },
        )
        .with_budget(Budget::unlimited().with_candidates(0));
        // map_outputs verifies the degraded network against the spec.
        let report = flow.map_outputs("rung2", &outputs).unwrap();
        assert!(report.network.is_k_feasible(4));
        let events = events_for("rung2");
        assert!(!events.is_empty(), "wide outputs must degrade");
        assert!(events
            .iter()
            .all(|e| e.from == Rung::Exact && e.to == Rung::BddThreshold));
        assert!(events.iter().all(|e| e.resource == Resource::Candidates));
    }

    #[test]
    fn ladder_rung3_maps_and_verifies_on_bdd_exhaustion() {
        let _g = ladder_lock();
        hyde_guard::drain_degradations();
        let outputs = adder_outputs(3);
        let flow = MappingFlow::new(
            4,
            FlowKind::PerOutput {
                encoder: EncoderKind::Lexicographic,
            },
        )
        .with_budget(Budget::unlimited().with_candidates(0).with_bdd_nodes(2));
        let report = flow.map_outputs("rung3", &outputs).unwrap();
        assert!(report.network.is_k_feasible(4));
        let events = events_for("rung3");
        assert!(
            events.iter().any(|e| e.from == Rung::BddThreshold
                && e.to == Rung::Shannon
                && e.resource == Resource::BddNodes),
            "node cap must push the ladder past the BDD rung: {events:?}"
        );
    }

    #[test]
    fn ladder_rung4_maps_and_verifies_under_injected_shannon_fault() {
        let _g = ladder_lock();
        hyde_guard::drain_degradations();
        let f = TruthTable::from_fn(6, |m| m.count_ones() >= 3);
        // Deterministically pick a seed whose schedule faults the Shannon
        // rung for this circuit/stage; the tiny budget forces rungs 1–2
        // down regardless of what else the seed injects.
        let seed = (0..1u64 << 12)
            .find(|&s| Chaos::new(s).trips("shannon:rung4:o0", 4))
            .expect("a quarter of all seeds trip any given site");
        let flow = MappingFlow::new(
            4,
            FlowKind::PerOutput {
                encoder: EncoderKind::Lexicographic,
            },
        )
        .with_budget(Budget::unlimited().with_candidates(0).with_bdd_nodes(1))
        .with_chaos(seed);
        let report = flow.map_outputs("rung4", std::slice::from_ref(&f)).unwrap();
        assert!(report.network.is_k_feasible(4));
        let events = events_for("rung4");
        assert!(
            events
                .iter()
                .any(|e| e.from == Rung::Shannon && e.to == Rung::DirectCover && e.injected),
            "injected Shannon fault must land on the direct-cover floor: {events:?}"
        );
    }

    #[test]
    fn hyper_flow_with_tiny_budget_still_verifies() {
        let _g = ladder_lock();
        hyde_guard::drain_degradations();
        let outputs = adder_outputs(3);
        let flow = MappingFlow::new(5, FlowKind::hyde(7))
            .with_budget(Budget::unlimited().with_candidates(0));
        let report = flow.map_outputs("tinyhyper", &outputs).unwrap();
        assert!(report.network.is_k_feasible(5));
        hyde_guard::drain_degradations();
    }

    #[test]
    fn chaos_degradation_log_is_thread_count_invariant() {
        let _g = ladder_lock();
        let outputs = adder_outputs(3);
        let mut logs: Vec<String> = Vec::new();
        let prev = std::env::var("HYDE_THREADS").ok();
        for threads in ["1", "8"] {
            std::env::set_var("HYDE_THREADS", threads);
            hyde_guard::drain_degradations();
            let flow = MappingFlow::new(4, FlowKind::hyde(3))
                .with_budget(Budget::unlimited().with_candidates(4).with_bdd_nodes(64))
                .with_chaos(0xC0FFEE);
            flow.map_outputs("det", &outputs).unwrap();
            logs.push(hyde_guard::degradation_log_text());
            hyde_guard::drain_degradations();
        }
        match prev {
            Some(v) => std::env::set_var("HYDE_THREADS", v),
            None => std::env::remove_var("HYDE_THREADS"),
        }
        assert!(!logs[0].is_empty(), "the chaos seed must inject something");
        assert_eq!(
            logs[0], logs[1],
            "degradation log must not depend on HYDE_THREADS"
        );
    }

    #[test]
    fn single_output_flows_agree_on_small_functions() {
        let f = TruthTable::from_fn(4, |m| m.count_ones() >= 2);
        for kind in [
            FlowKind::imodec_like(),
            FlowKind::fgsyn_like(),
            FlowKind::hyde(1),
        ] {
            let report = MappingFlow::new(5, kind)
                .map_outputs("maj", std::slice::from_ref(&f))
                .unwrap();
            assert_eq!(report.luts, 1);
        }
    }
}
