//! End-to-end mapping flows.
//!
//! Four flows reproduce the comparison points of the paper's evaluation:
//!
//! * [`FlowKind::PerOutput`] — each output decomposed independently, no
//!   sharing (the "`[8]` without resubstitution" column of Table 2);
//! * [`FlowKind::SharedAlpha`] — per-output decomposition followed by
//!   structural sharing of identical LUTs (the resubstitution-style
//!   baselines);
//! * [`FlowKind::ColumnEncoding`] — FGSyn-style multi-output Roth–Karp
//!   decomposition: one joint chart per step, α functions shared across
//!   outputs. The paper shows this is the special case of hyper-function
//!   decomposition where pseudo inputs never enter a bound set (§4.3);
//! * [`FlowKind::Hyper`] — the HYDE flow: outputs clustered into
//!   hyper-functions, each decomposed as a single-output function with
//!   compatible class encoding, ingredients recovered by pseudo-input
//!   collapse with everything outside the duplication cone shared.

use crate::cluster::cluster_outputs;
use crate::report::MappingReport;
use crate::xc3000::pack_clbs;
use hyde_core::decompose::{DecomposeStats, Decomposer};
use hyde_core::encoding::{ceil_log2, CodeAssignment, EncoderKind};
use hyde_core::hyper::HyperFunction;
use hyde_core::multichart::{joint_class_count, MultiChart};
use hyde_core::varpart::VariablePartitioner;
use hyde_core::CoreError;
use hyde_logic::diag::{any_deny, Code, Diagnostic, Location};
use hyde_logic::network::{project_to_support, structural_merge};
use hyde_logic::{Network, NodeId, TruthTable};
use std::time::Instant;

/// Which flow to run.
#[derive(Debug, Clone)]
pub enum FlowKind {
    /// Independent per-output decomposition (no sharing).
    PerOutput {
        /// Compatible class encoder for every step.
        encoder: EncoderKind,
    },
    /// Per-output decomposition plus structural sharing of identical LUTs.
    SharedAlpha {
        /// Compatible class encoder for every step.
        encoder: EncoderKind,
    },
    /// FGSyn-style column encoding: joint multi-output charts with shared
    /// α functions.
    ColumnEncoding {
        /// Encoder for the joint classes.
        encoder: EncoderKind,
    },
    /// The HYDE hyper-function flow.
    Hyper {
        /// Encoder for classes and ingredients.
        encoder: EncoderKind,
        /// Maximum ingredients per hyper-function.
        max_cluster: usize,
        /// Maximum union support of a cluster.
        max_union: usize,
    },
}

impl FlowKind {
    /// The full HYDE configuration used by the tables.
    pub fn hyde(seed: u64) -> Self {
        FlowKind::Hyper {
            encoder: EncoderKind::Hyde { seed },
            max_cluster: 4,
            max_union: 16,
        }
    }

    /// IMODEC-like baseline: rigid strict per-output encoding with
    /// structural sharing.
    pub fn imodec_like() -> Self {
        FlowKind::SharedAlpha {
            encoder: EncoderKind::Lexicographic,
        }
    }

    /// FGSyn-like baseline: column encoding.
    pub fn fgsyn_like() -> Self {
        FlowKind::ColumnEncoding {
            encoder: EncoderKind::Lexicographic,
        }
    }

    /// Short label for table printing.
    pub fn label(&self) -> &'static str {
        match self {
            FlowKind::PerOutput { .. } => "per-output",
            FlowKind::SharedAlpha { .. } => "shared-alpha",
            FlowKind::ColumnEncoding { .. } => "column-enc",
            FlowKind::Hyper { .. } => "hyde",
        }
    }
}

/// A configured mapping flow.
#[derive(Debug, Clone)]
pub struct MappingFlow {
    k: usize,
    kind: FlowKind,
    /// Verification sample budget (exhaustive below this many minterms).
    verify_samples: usize,
}

impl MappingFlow {
    /// Creates a flow targeting `k`-input LUTs.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3`.
    pub fn new(k: usize, kind: FlowKind) -> Self {
        assert!(k >= 3, "LUT size must be at least 3");
        MappingFlow {
            k,
            kind,
            verify_samples: 1 << 12,
        }
    }

    /// Target LUT size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Maps a multi-output function vector (all outputs over the same
    /// `n`-variable input space) to a κ-feasible LUT network.
    ///
    /// # Errors
    ///
    /// Propagates decomposition errors; a functional mismatch after mapping
    /// surfaces as [`CoreError::Verification`].
    pub fn map_outputs(
        &self,
        name: &str,
        outputs: &[TruthTable],
    ) -> Result<MappingReport, CoreError> {
        if outputs.is_empty() {
            return Err(CoreError::InvalidBoundSet("no outputs to map".into()));
        }
        let n = outputs[0].vars();
        if outputs.iter().any(|f| f.vars() != n) {
            return Err(CoreError::InvalidBoundSet(
                "outputs must share one input space".into(),
            ));
        }
        let _obs = hyde_obs::span!("map.outputs");
        hyde_obs::counter("map.output_functions", outputs.len() as u64);
        let start = Instant::now();
        let mut net = match &self.kind {
            FlowKind::PerOutput { encoder } => self.per_output(outputs, encoder, false)?,
            FlowKind::SharedAlpha { encoder } => self.per_output(outputs, encoder, true)?,
            FlowKind::ColumnEncoding { encoder } => self.column_encoding(outputs, encoder)?,
            FlowKind::Hyper {
                encoder,
                max_cluster,
                max_union,
            } => self.hyper_flow(outputs, encoder, *max_cluster, *max_union)?,
        };
        net.sweep();
        // The xl_cover step of the paper's script: collapse LUTs that fit
        // inside their consumers.
        {
            let _obs = hyde_obs::span!("map.cover");
            crate::cover::compact(&mut net, self.k);
        }
        {
            let _obs = hyde_obs::span!("map.verify");
            self.verify(&net, outputs)?;
        }
        let luts = net.internal_count();
        let depth = net.depth();
        let clbs = if self.k == 5 {
            Some(pack_clbs(&net).clb_count())
        } else {
            None
        };
        Ok(MappingReport {
            name: name.to_owned(),
            network: net,
            luts,
            clbs,
            depth,
            elapsed: start.elapsed(),
        })
    }

    fn fresh_net(&self, n: usize) -> (Network, Vec<NodeId>) {
        let mut net = Network::new("mapped");
        let inputs = (0..n).map(|i| net.add_input(&format!("x{i}"))).collect();
        (net, inputs)
    }

    fn per_output(
        &self,
        outputs: &[TruthTable],
        encoder: &EncoderKind,
        share: bool,
    ) -> Result<Network, CoreError> {
        let n = outputs[0].vars();
        let (mut net, inputs) = self.fresh_net(n);
        let dec = Decomposer::new(self.k, encoder.clone());
        let mut stats = DecomposeStats::default();
        for (o, f) in outputs.iter().enumerate() {
            let id = dec.decompose_onto(&mut net, f, &inputs, &format!("o{o}"), &mut stats)?;
            net.mark_output(&format!("o{o}"), id);
        }
        if share {
            net = structural_merge("mapped", &[&net]);
        }
        Ok(net)
    }

    /// FGSyn-style multi-output decomposition: one joint chart, shared α.
    fn column_encoding(
        &self,
        outputs: &[TruthTable],
        encoder: &EncoderKind,
    ) -> Result<Network, CoreError> {
        let n = outputs[0].vars();
        let (mut net, inputs) = self.fresh_net(n);
        let out_ids =
            self.column_decompose(&mut net, outputs.to_vec(), &inputs, "m", encoder, 0)?;
        for (o, id) in out_ids.into_iter().enumerate() {
            net.mark_output(&format!("o{o}"), id);
        }
        Ok(structural_merge("mapped", &[&net]))
    }

    fn column_decompose(
        &self,
        net: &mut Network,
        fs: Vec<TruthTable>,
        signals: &[NodeId],
        prefix: &str,
        encoder: &EncoderKind,
        depth: usize,
    ) -> Result<Vec<NodeId>, CoreError> {
        let dec = Decomposer::new(self.k, encoder.clone());
        let mut stats = DecomposeStats::default();
        // Union support.
        let mut in_support = vec![false; signals.len()];
        for f in &fs {
            for v in f.support() {
                in_support[v] = true;
            }
        }
        let support: Vec<usize> = (0..signals.len()).filter(|&v| in_support[v]).collect();
        if support.len() < signals.len() {
            let reduced: Vec<TruthTable> =
                fs.iter().map(|f| project_to_support(f, &support)).collect();
            let sigs: Vec<NodeId> = support.iter().map(|&v| signals[v]).collect();
            return self.column_decompose(net, reduced, &sigs, prefix, encoder, depth);
        }
        let n = signals.len();
        // Base case: everything fits in single LUTs.
        if n <= self.k || depth > 3 * n {
            let mut out = Vec::with_capacity(fs.len());
            for (i, f) in fs.iter().enumerate() {
                out.push(dec.decompose_onto(
                    net,
                    f,
                    signals,
                    &format!("{prefix}_f{i}"),
                    &mut stats,
                )?);
            }
            return Ok(out);
        }
        // Joint bound selection: minimize the multiplicity of the stacked
        // chart (distinct column tuples). Candidates are seeded with each
        // output's own best bound set plus the leading variables.
        let vp = VariablePartitioner::default();
        let mut candidates: Vec<Vec<usize>> = Vec::new();
        for f in &fs {
            if f.support().len() > self.k {
                if let Ok((b, _)) = vp.best_bound_set(f, self.k) {
                    candidates.push(b);
                }
            }
        }
        candidates.push((0..self.k).collect());
        candidates.sort();
        candidates.dedup();
        let (bound, classes) = candidates
            .into_iter()
            .map(|b| {
                let c = joint_class_count(&fs, &b).unwrap_or(usize::MAX);
                (b, c)
            })
            .min_by_key(|(b, c)| (*c, b.clone()))
            .expect("at least one candidate");
        let t = ceil_log2(classes);
        if t >= self.k {
            // Joint decomposition not gainful: fall back to per-output.
            let mut out = Vec::with_capacity(fs.len());
            for (i, f) in fs.iter().enumerate() {
                out.push(dec.decompose_onto(
                    net,
                    f,
                    signals,
                    &format!("{prefix}_s{i}"),
                    &mut stats,
                )?);
            }
            return Ok(out);
        }
        // Shared α functions from the joint chart.
        let chart = MultiChart::new(&fs, &bound)?;
        // Encode the joint classes. The encoder sees each class's stacked
        // pattern as a single pseudo class function over free + selector
        // bits, so the class-count objective reflects the true structure.
        let sel_bits = ceil_log2(fs.len());
        let mu = chart.free().len();
        let reps: Vec<usize> = (0..chart.class_count())
            .map(|cls| {
                chart
                    .class_map()
                    .iter()
                    .position(|&x| x == cls)
                    .expect("class has a column")
            })
            .collect();
        let per_f: Vec<Vec<TruthTable>> = fs
            .iter()
            .map(|f| chart_columns(f, &bound, chart.free()))
            .collect();
        let stacked: Vec<TruthTable> = reps
            .iter()
            .map(|&c| {
                TruthTable::from_fn(mu + sel_bits, |m| {
                    let y = m & ((1u32 << mu) - 1);
                    let which = (m >> mu) as usize;
                    if which < fs.len() {
                        per_f[which][c].eval(y)
                    } else {
                        false
                    }
                })
            })
            .collect();
        let classes =
            hyde_core::classes::CompatibleClasses::from_parts(chart.class_map().to_vec(), stacked);
        let codes: CodeAssignment = encoder.build().encode(&classes, self.k)?;
        let alphas = chart.alphas(&codes);
        let bound_sigs: Vec<NodeId> = bound.iter().map(|&v| signals[v]).collect();
        let mut g_sigs: Vec<NodeId> = Vec::new();
        for (i, alpha) in alphas.iter().enumerate() {
            g_sigs.push(net.add_node(
                &format!("{prefix}_a{i}"),
                bound_sigs.clone(),
                alpha.clone(),
            )?);
        }
        for &v in chart.free() {
            g_sigs.push(signals[v]);
        }
        // Per-output images over (α bits, free vars).
        let images: Vec<TruthTable> = (0..fs.len()).map(|fi| chart.image(fi, &codes)).collect();
        self.column_decompose(
            net,
            images,
            &g_sigs,
            &format!("{prefix}_g"),
            encoder,
            depth + 1,
        )
    }

    /// The HYDE hyper-function flow.
    fn hyper_flow(
        &self,
        outputs: &[TruthTable],
        encoder: &EncoderKind,
        max_cluster: usize,
        max_union: usize,
    ) -> Result<Network, CoreError> {
        let clusters = cluster_outputs(outputs, max_cluster, max_union);
        let dec = Decomposer::new(self.k, encoder.clone());
        let mut parts: Vec<Network> = Vec::new();
        for cluster in &clusters {
            if cluster.len() == 1 {
                let o = cluster[0];
                let mut stats = DecomposeStats::default();
                let n = outputs[o].vars();
                let (mut net, inputs) = self.fresh_net(n);
                let id = dec.decompose_onto(
                    &mut net,
                    &outputs[o],
                    &inputs,
                    &format!("o{o}"),
                    &mut stats,
                )?;
                net.mark_output(&format!("o{o}"), id);
                parts.push(net);
            } else {
                let ingredients: Vec<TruthTable> =
                    cluster.iter().map(|&o| outputs[o].clone()).collect();
                // Candidate A: fold into a hyper-function and share.
                let h = HyperFunction::new(ingredients.clone(), encoder, self.k)?;
                let hn = h.decompose(&dec)?;
                let mut hyper_net = hn.implement_ingredients()?;
                // Candidate B: per-output decomposition with structural
                // sharing. Hyper-functions are a sharing *opportunity*; the
                // flow keeps whichever implementation is smaller, as the
                // paper's SIS-embedded tool does through its script loop.
                let n = ingredients[0].vars();
                let (mut solo_net, inputs) = self.fresh_net(n);
                let mut stats = DecomposeStats::default();
                for (i, f) in ingredients.iter().enumerate() {
                    let id = dec.decompose_onto(
                        &mut solo_net,
                        f,
                        &inputs,
                        &format!("f{i}"),
                        &mut stats,
                    )?;
                    solo_net.mark_output(&format!("f{i}"), id);
                }
                let mut solo_net = structural_merge("solo", &[&solo_net]);
                solo_net.sweep();
                hyper_net.sweep();
                let mut best = if hyper_net.internal_count() <= solo_net.internal_count() {
                    hyper_net
                } else {
                    solo_net
                };
                // Outputs are named f0.. in cluster order: map back.
                let names: Vec<String> = cluster.iter().map(|&o| format!("o{o}")).collect();
                let mut i = 0usize;
                best.rename_outputs(|_| {
                    let nm = names[i].clone();
                    i += 1;
                    nm
                });
                parts.push(best);
            }
        }
        let refs: Vec<&Network> = parts.iter().collect();
        let mut merged = structural_merge("mapped", &refs);
        // Clustering permutes outputs: restore output-index order.
        merged.sort_outputs_by_key(|name| {
            name.strip_prefix('o')
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(usize::MAX)
        });
        Ok(merged)
    }

    /// Runs the structured invariant checks on a mapped network: `HY005`
    /// when simulation differs from the specification tables (exhaustive
    /// on small input spaces, strided sample otherwise) and `HY002` when a
    /// LUT exceeds the flow's fanin bound `k`.
    pub fn diagnose(&self, net: &Network, outputs: &[TruthTable]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for id in net.node_ids() {
            let fanin = net.fanins(id).len();
            if net.role(id) == hyde_logic::NodeRole::Internal && fanin > self.k {
                out.push(
                    Diagnostic::new(
                        Code::NetworkFaninExceedsK,
                        format!(
                            "LUT '{}' has {fanin} fanins but k = {}",
                            net.node_name(id),
                            self.k
                        ),
                    )
                    .at(Location::Node(id.index())),
                );
            }
        }
        let n = outputs[0].vars();
        if (1u64 << n) <= self.verify_samples as u64 {
            if let hyde_logic::sim::Equivalence::Counterexample(bits) =
                hyde_logic::sim::check_against_tables(net, outputs)
            {
                out.push(Diagnostic::new(
                    Code::NetworkSpecMismatch,
                    format!("mapped network differs from its specification at input {bits:?}"),
                ));
            }
            return out;
        }
        // Wide circuits: strided sample of the minterm space.
        let pi_positions: Vec<usize> = net
            .inputs()
            .iter()
            .map(|&id| {
                net.node_name(id)
                    .strip_prefix('x')
                    .and_then(|s| s.parse::<usize>().ok())
                    .expect("flow inputs are named x<i>")
            })
            .collect();
        let total = 1u64 << n;
        let stride = (total / self.verify_samples as u64).max(1);
        let mut m = 0u64;
        'outer: while m < total {
            let bits: Vec<bool> = pi_positions.iter().map(|&p| m >> p & 1 == 1).collect();
            let got = net.eval(&bits);
            for (o, f) in outputs.iter().enumerate() {
                if got[o] != f.eval(m as u32) {
                    out.push(
                        Diagnostic::new(
                            Code::NetworkSpecMismatch,
                            format!("output {o} differs from its specification at minterm {m}"),
                        )
                        .at(Location::Output(o)),
                    );
                    break 'outer;
                }
            }
            m += stride;
        }
        out
    }

    /// Checks the mapped network against the specification.
    ///
    /// Thin wrapper over [`MappingFlow::diagnose`]: fails on the first
    /// deny-level diagnostic.
    fn verify(&self, net: &Network, outputs: &[TruthTable]) -> Result<(), CoreError> {
        let diags = self.diagnose(net, outputs);
        if any_deny(&diags) {
            let msg = diags
                .iter()
                .filter(|d| d.is_deny())
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ");
            return Err(CoreError::Verification(msg));
        }
        Ok(())
    }
}

/// Column patterns of `f` for an explicit bound/free split (free variables
/// in ascending order).
fn chart_columns(f: &TruthTable, bound: &[usize], free: &[usize]) -> Vec<TruthTable> {
    let n_cols = 1usize << bound.len();
    let mut out = Vec::with_capacity(n_cols);
    for c in 0..n_cols {
        let mut col = f.clone();
        for (i, &v) in bound.iter().enumerate() {
            col = col.cofactor(v, c >> i & 1 == 1);
        }
        out.push(project_to_support(&col, free));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn adder_outputs(bits: usize) -> Vec<TruthTable> {
        // (a + b) over `bits`-bit operands: 2*bits inputs, bits+1 outputs.
        let n = 2 * bits;
        (0..=bits)
            .map(|o| {
                TruthTable::from_fn(n, |m| {
                    let a = m & ((1 << bits) - 1);
                    let b = m >> bits;
                    ((a + b) >> o) & 1 == 1
                })
            })
            .collect()
    }

    #[test]
    fn all_flows_map_an_adder_correctly() {
        let outputs = adder_outputs(3); // 6 inputs, 4 outputs
        for kind in [
            FlowKind::PerOutput {
                encoder: EncoderKind::Lexicographic,
            },
            FlowKind::imodec_like(),
            FlowKind::fgsyn_like(),
            FlowKind::hyde(7),
        ] {
            let label = kind.label();
            let flow = MappingFlow::new(5, kind);
            let report = flow.map_outputs("add3", &outputs).unwrap();
            assert!(report.network.is_k_feasible(5), "{label}");
            assert!(report.luts > 0, "{label}");
            assert!(report.clbs.is_some(), "{label}");
        }
    }

    #[test]
    fn shared_alpha_never_beats_per_output_count() {
        let outputs = adder_outputs(3);
        let per = MappingFlow::new(
            5,
            FlowKind::PerOutput {
                encoder: EncoderKind::Lexicographic,
            },
        )
        .map_outputs("a", &outputs)
        .unwrap();
        let shared = MappingFlow::new(5, FlowKind::imodec_like())
            .map_outputs("a", &outputs)
            .unwrap();
        assert!(shared.luts <= per.luts);
    }

    #[test]
    fn random_multi_output_all_flows() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let outputs: Vec<TruthTable> = (0..3).map(|_| TruthTable::random(7, &mut rng)).collect();
        for kind in [
            FlowKind::PerOutput {
                encoder: EncoderKind::Random { seed: 5 },
            },
            FlowKind::fgsyn_like(),
            FlowKind::hyde(5),
        ] {
            let label = kind.label();
            let flow = MappingFlow::new(4, kind);
            let report = flow.map_outputs("rnd", &outputs).unwrap();
            assert!(report.network.is_k_feasible(4), "{label}");
            assert!(report.clbs.is_none(), "k=4 has no CLB packing");
        }
    }

    #[test]
    fn rejects_mismatched_outputs() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(4, 0);
        let flow = MappingFlow::new(5, FlowKind::fgsyn_like());
        assert!(flow.map_outputs("bad", &[a, b]).is_err());
        assert!(flow.map_outputs("empty", &[]).is_err());
    }

    #[test]
    fn single_output_flows_agree_on_small_functions() {
        let f = TruthTable::from_fn(4, |m| m.count_ones() >= 2);
        for kind in [
            FlowKind::imodec_like(),
            FlowKind::fgsyn_like(),
            FlowKind::hyde(1),
        ] {
            let report = MappingFlow::new(5, kind)
                .map_outputs("maj", std::slice::from_ref(&f))
                .unwrap();
            assert_eq!(report.luts, 1);
        }
    }
}
