//! Technology mapping flows for LUT FPGAs, reproducing the HYDE evaluation.
//!
//! The paper maps MCNC benchmarks to (a) Xilinx XC3000 CLBs (Table 1) and
//! (b) plain 5-input LUTs (Table 2), comparing the HYDE flow against
//! IMODEC-like and FGSyn-like baselines. This crate provides:
//!
//! * [`flow::MappingFlow`] — the end-to-end flows: per-output
//!   decomposition, per-output with structural sharing, FGSyn-style column
//!   encoding (shared α functions via multi-output charts), and the full
//!   HYDE hyper-function flow;
//! * [`cluster`] — support-overlap output clustering for hyper-functions;
//! * [`xc3000`] — CLB packing (two ≤4-input functions per CLB under a
//!   5-distinct-input budget) solved with maximum matching;
//! * [`report::MappingReport`] — LUT/CLB/depth/time accounting.
//!
//! # Example
//!
//! ```
//! use hyde_map::flow::{FlowKind, MappingFlow};
//! use hyde_logic::TruthTable;
//!
//! // Map a 2-output adder slice to 5-LUTs with the HYDE flow.
//! let sum = TruthTable::from_fn(5, |m| m.count_ones() % 2 == 1);
//! let carry = TruthTable::from_fn(5, |m| m.count_ones() >= 3);
//! let flow = MappingFlow::new(5, FlowKind::hyde(42));
//! let report = flow.map_outputs("adder", &[sum, carry]).unwrap();
//! assert!(report.network.is_k_feasible(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod cover;
pub mod delay;
pub mod flow;
pub mod report;
pub mod session;
pub mod xc3000;

pub use cluster::cluster_outputs;
pub use cover::compact;
pub use flow::{FlowKind, MappingFlow};
pub use report::MappingReport;
pub use session::{Job, JobError, JobResult, Session};
pub use xc3000::pack_clbs;
