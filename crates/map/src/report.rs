//! Mapping result accounting.

use hyde_logic::Network;
use std::time::Duration;

/// The outcome of mapping one circuit with one flow.
#[derive(Debug, Clone)]
pub struct MappingReport {
    /// Circuit name.
    pub name: String,
    /// The mapped κ-feasible network.
    pub network: Network,
    /// Number of LUTs (internal nodes).
    pub luts: usize,
    /// Number of XC3000 CLBs after packing (only computed for k = 5).
    pub clbs: Option<usize>,
    /// Logic depth in LUT levels.
    pub depth: usize,
    /// Wall-clock mapping time.
    pub elapsed: Duration,
}

impl MappingReport {
    /// One-line summary for table printing.
    pub fn summary(&self) -> String {
        match self.clbs {
            Some(clbs) => format!(
                "{:<10} luts={:<4} clbs={:<4} depth={:<2} t={:.2}s",
                self.name,
                self.luts,
                clbs,
                self.depth,
                self.elapsed.as_secs_f64()
            ),
            None => format!(
                "{:<10} luts={:<4} depth={:<2} t={:.2}s",
                self.name,
                self.luts,
                self.depth,
                self.elapsed.as_secs_f64()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyde_logic::TruthTable;

    #[test]
    fn summary_formats() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let inv = !TruthTable::var(1, 0);
        let n = net.add_node("n", vec![a], inv).unwrap();
        net.mark_output("o", n);
        let r = MappingReport {
            name: "t".into(),
            luts: 1,
            clbs: Some(1),
            depth: 1,
            elapsed: Duration::from_millis(10),
            network: net,
        };
        assert!(r.summary().contains("clbs=1"));
    }
}
