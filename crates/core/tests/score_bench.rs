//! Manual micro-benchmark comparing the exact class counter, the
//! class-count floor used for branch-and-bound pruning, and the
//! prefix-reuse scorer on a lexicographic candidate stream. Run with:
//! `cargo test --release -p hyde-core --test score_bench -- --ignored --nocapture`

use hyde_core::chart::{class_count_with, class_floor_with, ClassCountScratch, PrefixScorer};
use hyde_logic::TruthTable;
use rand::seq::SliceRandom;
use rand::SeedableRng;

#[test]
#[ignore]
fn score_bench() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for n in [10usize, 12, 14, 16] {
        let f = TruthTable::random(n, &mut rng);
        let mut cands: Vec<Vec<usize>> = Vec::new();
        for _ in 0..500 {
            let mut vars: Vec<usize> = (0..n).collect();
            vars.shuffle(&mut rng);
            let mut b = vars[..5].to_vec();
            b.sort_unstable();
            cands.push(b);
        }
        cands.sort();
        let mut scratch = ClassCountScratch::new();
        let t0 = std::time::Instant::now();
        let mut acc = 0usize;
        for c in &cands {
            acc += class_count_with(&f, c, &mut scratch).unwrap();
        }
        let exact_us = t0.elapsed().as_micros();
        let t1 = std::time::Instant::now();
        let mut acc2 = 0usize;
        for c in &cands {
            acc2 += class_floor_with(&f, c, &mut scratch).unwrap();
        }
        let floor_us = t1.elapsed().as_micros();
        let mut scorer = PrefixScorer::new(&f);
        let t2 = std::time::Instant::now();
        let mut acc3 = 0usize;
        for c in &cands {
            acc3 += scorer.score(c).unwrap();
        }
        let prefix_us = t2.elapsed().as_micros();
        println!(
            "n={n}: exact {:.2}us  floor {:.2}us  prefix {:.2}us  (sums {acc}/{acc2}/{acc3})",
            exact_us as f64 / 500.0,
            floor_us as f64 / 500.0,
            prefix_us as f64 / 500.0
        );
        assert_eq!(acc, acc3);
        assert!(acc2 <= acc);
    }
}
