//! Compatible classes (Definition 2.1) extracted from decomposition charts.

use hyde_logic::TruthTable;
use std::collections::HashMap;

/// The compatible classes of a decomposition chart.
///
/// Classes are numbered by first occurrence in column order; `class_of[c]`
/// maps each bound-set assignment (column) to its class, and
/// `class_fn[i]` is the *compatible class function* `fc_i` — the shared
/// column pattern, a function of the free variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompatibleClasses {
    class_of: Vec<usize>,
    class_fn: Vec<TruthTable>,
}

impl CompatibleClasses {
    /// Groups identical columns into classes.
    pub fn from_columns(columns: &[TruthTable]) -> Self {
        let mut index: HashMap<&TruthTable, usize> = HashMap::new();
        let mut class_of = Vec::with_capacity(columns.len());
        let mut class_fn = Vec::new();
        for col in columns {
            let next = class_fn.len();
            let id = *index.entry(col).or_insert(next);
            if id == next {
                class_fn.push(col.clone());
            }
            class_of.push(id);
        }
        CompatibleClasses { class_of, class_fn }
    }

    /// Builds classes from an explicit assignment (used after don't-care
    /// assignment merges columns).
    ///
    /// # Panics
    ///
    /// Panics if `class_of` references a class `>= class_fn.len()` or some
    /// class has no column.
    pub fn from_parts(class_of: Vec<usize>, class_fn: Vec<TruthTable>) -> Self {
        let mut used = vec![false; class_fn.len()];
        for &c in &class_of {
            assert!(c < class_fn.len(), "class index out of range");
            used[c] = true;
        }
        assert!(used.iter().all(|&u| u), "every class must own a column");
        CompatibleClasses { class_of, class_fn }
    }

    /// Number of compatible classes.
    pub fn len(&self) -> usize {
        self.class_fn.len()
    }

    /// Whether there are no classes (empty chart).
    pub fn is_empty(&self) -> bool {
        self.class_fn.is_empty()
    }

    /// Class of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn class_of(&self, c: usize) -> usize {
        self.class_of[c]
    }

    /// The full column-to-class map.
    pub fn class_map(&self) -> &[usize] {
        &self.class_of
    }

    /// Compatible class function `fc_i` over the free variables.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn class_fn(&self, i: usize) -> &TruthTable {
        &self.class_fn[i]
    }

    /// All class functions in class order.
    pub fn class_fns(&self) -> &[TruthTable] {
        &self.class_fn
    }

    /// Columns belonging to class `i`.
    pub fn members(&self, i: usize) -> Vec<usize> {
        self.class_of
            .iter()
            .enumerate()
            .filter(|(_, &cls)| cls == i)
            .map(|(c, _)| c)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_identical_columns() {
        let a = TruthTable::var(1, 0);
        let b = !&a;
        let cols = vec![a.clone(), b.clone(), a.clone(), a.clone()];
        let cc = CompatibleClasses::from_columns(&cols);
        assert_eq!(cc.len(), 2);
        assert_eq!(cc.class_map(), &[0, 1, 0, 0]);
        assert_eq!(*cc.class_fn(0), a);
        assert_eq!(*cc.class_fn(1), b);
        assert_eq!(cc.members(0), vec![0, 2, 3]);
        assert_eq!(cc.members(1), vec![1]);
    }

    #[test]
    fn numbering_is_by_first_occurrence() {
        let one = TruthTable::one(1);
        let zero = TruthTable::zero(1);
        let cc = CompatibleClasses::from_columns(&[zero.clone(), one.clone()]);
        assert_eq!(cc.class_of(0), 0);
        assert_eq!(cc.class_of(1), 1);
    }

    #[test]
    fn from_parts_validates() {
        let f = TruthTable::one(1);
        let cc = CompatibleClasses::from_parts(vec![0, 0], vec![f.clone()]);
        assert_eq!(cc.len(), 1);
    }

    #[test]
    #[should_panic(expected = "every class must own a column")]
    fn from_parts_rejects_orphan_class() {
        let f = TruthTable::one(1);
        let _ = CompatibleClasses::from_parts(vec![0], vec![f.clone(), f]);
    }
}
