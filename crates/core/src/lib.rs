//! HYDE core — compatible class encoding and hyper-function decomposition.
//!
//! This crate implements the two contributions of *"Compatible Class
//! Encoding in Hyper-Function Decomposition for FPGA Synthesis"* (Jiang,
//! Jou, Huang, DAC 1998) together with the Roth–Karp decomposition engine
//! they plug into:
//!
//! * [`chart`] / [`classes`] — decomposition charts and compatible classes
//!   (Definition 2.1), including the incompletely specified case;
//! * [`dc_assign`] — don't-care assignment as clique partitioning
//!   (Section 3.1);
//! * [`partition`] — the symbolic partition algebra of Definition 3.1
//!   (conjunction/disjunction partitions, multiplicity, `Psc` analysis,
//!   containment per Definition 4.6);
//! * [`encoding`] — the compatible class encoding procedure of Figure 3
//!   (column sets by maximum-weight b-matching, row sets by matching on the
//!   benefit-weighted row graph) plus the baseline encoders the evaluation
//!   compares against;
//! * [`varpart`] — λ-set selection in the style of reference `[2]` (BDD cut
//!   counting / chart counting);
//! * [`decompose`] — single decomposition steps and the recursive
//!   decomposition of a function into a k-feasible LUT network;
//! * [`hyper`] — hyper-function construction (Definition 4.1), ingredient
//!   encoding, duplication source/cone analysis (Definitions 4.2–4.5) and
//!   ingredient recovery by pseudo-input collapse;
//! * [`containment`] — Theorems 4.3/4.4 and pliable sharing of
//!   decomposition functions (Example 4.2).
//!
//! # Quickstart
//!
//! ```
//! use hyde_core::chart::DecompositionChart;
//! use hyde_logic::TruthTable;
//!
//! // f = (a & b) | (c & d), bound set {a, b}.
//! let f = (TruthTable::var(4, 0) & TruthTable::var(4, 1))
//!     | (TruthTable::var(4, 2) & TruthTable::var(4, 3));
//! let chart = DecompositionChart::new(&f, &[0, 1]).unwrap();
//! assert_eq!(chart.classes().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdd_decompose;
pub mod chart;
pub mod classes;
pub mod containment;
pub mod dc_assign;
pub mod dcache;
pub mod decompose;
pub mod encoding;
pub mod hyper;
pub mod multichart;
pub mod nonstrict;
pub mod npn;
pub mod parallel;
pub mod partition;
pub mod symmetry;
pub mod varpart;

pub use chart::DecompositionChart;
pub use classes::CompatibleClasses;
pub use decompose::{Decomposer, Decomposition};
pub use encoding::{CodeAssignment, Encoder, EncoderKind};
pub use hyper::HyperFunction;
pub use partition::Partition;
pub use varpart::VariablePartitioner;

/// Errors produced by the decomposition engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A bound-set variable was out of range or repeated.
    InvalidBoundSet(String),
    /// The requested encoding cannot represent the classes (too few bits).
    CodeSpaceTooSmall {
        /// number of compatible classes
        classes: usize,
        /// available code bits
        bits: usize,
    },
    /// An invariant of the decomposition failed verification.
    Verification(String),
    /// Underlying logic error.
    Logic(hyde_logic::LogicError),
    /// A resource budget was exhausted (or chaos-injected). Callers on
    /// the fallback ladder step down one rung on this variant instead of
    /// aborting.
    OutOfBudget(hyde_guard::OutOfBudget),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidBoundSet(msg) => write!(f, "invalid bound set: {msg}"),
            CoreError::CodeSpaceTooSmall { classes, bits } => write!(
                f,
                "{classes} compatible classes do not fit in {bits} code bits"
            ),
            CoreError::Verification(msg) => write!(f, "verification failed: {msg}"),
            CoreError::Logic(e) => write!(f, "{e}"),
            CoreError::OutOfBudget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Logic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hyde_logic::LogicError> for CoreError {
    fn from(e: hyde_logic::LogicError) -> Self {
        CoreError::Logic(e)
    }
}

impl From<hyde_guard::OutOfBudget> for CoreError {
    fn from(e: hyde_guard::OutOfBudget) -> Self {
        CoreError::OutOfBudget(e)
    }
}
