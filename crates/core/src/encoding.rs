//! Compatible class encoding (Section 3.2, Figure 3 of the HYDE paper).
//!
//! After a decomposition fixes its compatible classes, the classes must be
//! assigned binary codes. HYDE's insight is that the *number of compatible
//! classes produced by the next decomposition of the image function* is the
//! cost that matters for LUT synthesis — not cube or literal counts as in
//! Murgai et al. `[3]`. The procedure of Figure 3:
//!
//! 1. encode at random; if the image is already κ-feasible, stop (by
//!    Theorem 3.1 the encoding is then irrelevant);
//! 2. run λ-set selection on the trial image to learn which α variables
//!    land in the bound set (`#C` chart columns) and which in the free set
//!    (`#R` rows), plus which original free variables join the bound set;
//! 3. extract each class function's *partition* (Definition 3.1) over the
//!    inner bound positions, in a global symbol alphabet;
//! 4. **Step 5** — group partitions that should share a chart *column* via
//!    a maximum-weight bipartite b-matching on the `Psc` column graph;
//! 5. **Step 7** — iteratively merge row sets with a matching on the
//!    benefit-weighted row graph until at most `#R` rows remain;
//! 6. place classes on the `#R × #C` encoding chart and read codes off the
//!    grid (Theorem 3.2: only row/column membership matters, not the exact
//!    codes);
//! 7. **Step 8** — keep the result only if it beats a random encoding on
//!    the measured class count.
//!
//! Baseline encoders ([`EncoderKind::Lexicographic`],
//! [`EncoderKind::Random`], [`EncoderKind::CubeMin`]) reproduce the
//! comparison points of the evaluation.

use crate::chart::{class_count, column_patterns, split_bound_free};
use crate::classes::CompatibleClasses;
use crate::partition::{shared_psc_sets, Partition};
use crate::varpart::VariablePartitioner;
use crate::CoreError;
use hyde_logic::diag::{Code, Diagnostic, Location};
use hyde_logic::{SopCover, TruthTable};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Binary codes assigned to compatible classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeAssignment {
    codes: Vec<u32>,
    bits: usize,
}

impl CodeAssignment {
    /// Creates an assignment of `bits`-bit codes, one per class.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CodeSpaceTooSmall`] if some code needs more
    /// than `bits` bits or the classes outnumber the code space.
    pub fn new(codes: Vec<u32>, bits: usize) -> Result<Self, CoreError> {
        if codes.len() > (1usize << bits) || codes.iter().any(|&c| c as usize >= 1 << bits) {
            return Err(CoreError::CodeSpaceTooSmall {
                classes: codes.len(),
                bits,
            });
        }
        Ok(CodeAssignment { codes, bits })
    }

    /// Number of classes encoded.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether no class is encoded.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Code of class `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn code(&self, i: usize) -> u32 {
        self.codes[i]
    }

    /// All codes in class order.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Width of the code in bits (`t`, the number of α functions).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Whether each class received a unique code (strict encoding).
    pub fn is_strict(&self) -> bool {
        let distinct: HashSet<u32> = self.codes.iter().copied().collect();
        distinct.len() == self.codes.len()
    }

    /// Whether the code uses the minimum number of bits
    /// (`bits == ⌈log₂ classes⌉`); otherwise the encoding is *pliable*.
    pub fn is_rigid(&self) -> bool {
        self.bits == ceil_log2(self.codes.len())
    }
}

/// Structured invariant checks on a code assignment, appended to `out`.
///
/// Emits `HY101` (deny) for every class whose code collides with an
/// earlier class (non-injective assignment) and `HY102` (warn) when the
/// code width is not `⌈log₂ #classes⌉` (pliable encoding).
pub fn code_diagnostics(codes: &CodeAssignment, out: &mut Vec<Diagnostic>) {
    let mut first_with: HashMap<u32, usize> = HashMap::new();
    for (cls, &code) in codes.codes().iter().enumerate() {
        if let Some(&prev) = first_with.get(&code) {
            out.push(
                Diagnostic::new(
                    Code::EncodingNonInjective,
                    format!("classes {prev} and {cls} share code {code:#b}"),
                )
                .at(Location::Class(cls)),
            );
        } else {
            first_with.insert(code, cls);
        }
    }
    let want = ceil_log2(codes.len());
    if codes.bits() != want {
        out.push(Diagnostic::new(
            Code::EncodingWidthMismatch,
            format!(
                "code width is {} bits but ⌈log₂ {}⌉ = {want} (pliable encoding)",
                codes.bits(),
                codes.len()
            ),
        ));
    }
}

/// `⌈log₂ n⌉`, with `n == 0 or 1` giving 0.
pub fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Builds the image function `g(α_0..α_{t-1}, y)` from classes and codes.
///
/// Image variables: `0..t` are the α bits, `t..t+|μ|` the original free
/// variables (in class-function variable order). Returns `(on, dc)` where
/// the don't-care set covers code points no class uses.
///
/// # Panics
///
/// Panics if `codes.len() != classes.len()` or codes are not strict.
pub fn build_image(
    classes: &CompatibleClasses,
    codes: &CodeAssignment,
) -> (TruthTable, TruthTable) {
    assert_eq!(codes.len(), classes.len(), "one code per class required");
    assert!(
        codes.is_strict(),
        "image construction requires strict codes"
    );
    let t = codes.bits();
    let mu = if classes.is_empty() {
        0
    } else {
        classes.class_fn(0).vars()
    };
    let mut by_code: HashMap<u32, usize> = HashMap::new();
    for (i, &c) in codes.codes().iter().enumerate() {
        by_code.insert(c, i);
    }
    let vars = t + mu;
    let code_mask = (1u32 << t) - 1;
    let on = TruthTable::from_fn(vars, |m| {
        let a = m & code_mask;
        let y = m >> t;
        match by_code.get(&a) {
            Some(&cls) => classes.class_fn(cls).eval(y),
            None => false,
        }
    });
    let dc = TruthTable::from_fn(vars, |m| !by_code.contains_key(&(m & code_mask)));
    (on, dc)
}

/// Derives the α (decomposition) functions over the bound variables from a
/// column-to-class map and codes.
///
/// `class_of[c]` is the class of bound assignment `c`; the result has one
/// table of arity `bound_vars` per code bit.
///
/// # Panics
///
/// Panics if `class_of.len() != 2^bound_vars`.
pub fn build_alphas(
    class_of: &[usize],
    codes: &CodeAssignment,
    bound_vars: usize,
) -> Vec<TruthTable> {
    assert_eq!(class_of.len(), 1 << bound_vars, "column map size mismatch");
    (0..codes.bits())
        .map(|bit| {
            TruthTable::from_fn(bound_vars, |c| {
                codes.code(class_of[c as usize]) >> bit & 1 == 1
            })
        })
        .collect()
}

/// The encoding strategies compared in the paper's evaluation.
#[derive(Debug, Clone)]
pub enum EncoderKind {
    /// Class `i` gets code `i` — the cheapest strict encoding.
    Lexicographic,
    /// A random strict assignment (seeded).
    Random {
        /// RNG seed (deterministic runs).
        seed: u64,
    },
    /// Murgai-style `[3]`: hill-climb over code swaps minimizing the cube
    /// count of the image's irredundant SOP.
    CubeMin {
        /// RNG seed.
        seed: u64,
        /// Hill-climbing iterations.
        iters: usize,
    },
    /// The HYDE procedure of Figure 3 (class-count objective).
    Hyde {
        /// RNG seed for the random trial encodings of Steps 1 and 8.
        seed: u64,
    },
    /// Support-minimizing encoding in the spirit of Huang et al. `[6]` and
    /// Legl et al. `[7]`: hill-climb over code swaps/bit-flips minimizing the
    /// total support of the α functions.
    SupportMin {
        /// RNG seed.
        seed: u64,
        /// Hill-climbing iterations.
        iters: usize,
    },
}

/// A compatible class encoder.
///
/// `k` is the LUT input size κ: encoders may stop early when the image is
/// already κ-feasible and the HYDE encoder uses it for λ-set selection.
pub trait Encoder {
    /// Chooses codes for the classes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CodeSpaceTooSmall`] when the classes cannot be
    /// encoded (only possible for constrained implementations).
    fn encode(
        &mut self,
        classes: &CompatibleClasses,
        k: usize,
    ) -> Result<CodeAssignment, CoreError>;

    /// Applies a resource budget. Encoders whose internal searches can
    /// blow up (the HYDE encoder's λ-set selection) honor it by failing
    /// with [`CoreError::OutOfBudget`]; the default implementation
    /// ignores the budget (cheap encoders have nothing to bound).
    fn set_budget(&mut self, _budget: hyde_guard::Budget) {}

    /// Attaches the shared NPN-keyed decomposition cache. Only encoders
    /// that run λ-set searches internally (the HYDE encoder's step 3)
    /// have anything to memoize; the default implementation ignores it.
    fn set_decomp_cache(&mut self, _cache: std::sync::Arc<crate::dcache::DecompCache>) {}
}

impl EncoderKind {
    /// Instantiates the encoder.
    pub fn build(&self) -> Box<dyn Encoder> {
        let inner: Box<dyn Encoder> = match self {
            EncoderKind::Lexicographic => Box::new(LexEncoder),
            EncoderKind::Random { seed } => Box::new(RandomEncoder { seed: *seed }),
            EncoderKind::CubeMin { seed, iters } => Box::new(CubeMinEncoder {
                seed: *seed,
                iters: *iters,
            }),
            EncoderKind::Hyde { seed } => Box::new(HydeEncoder {
                seed: *seed,
                budget: hyde_guard::Budget::unlimited(),
                cache: None,
            }),
            EncoderKind::SupportMin { seed, iters } => Box::new(SupportMinEncoder {
                seed: *seed,
                iters: *iters,
            }),
        };
        // Invariant gate at the encoder boundary: in debug builds (or
        // release builds with `strict-checks`) every assignment leaving an
        // encoder must lint clean.
        #[cfg(any(debug_assertions, feature = "strict-checks"))]
        let inner: Box<dyn Encoder> = Box::new(CheckedEncoder { inner });
        inner
    }
}

/// Invariant gate wrapped around every encoder by [`EncoderKind::build`]
/// in debug builds (or release builds with `strict-checks`): the returned
/// assignment must code every class and produce no deny-level diagnostic
/// (`HY101`).
#[cfg(any(debug_assertions, feature = "strict-checks"))]
struct CheckedEncoder {
    inner: Box<dyn Encoder>,
}

#[cfg(any(debug_assertions, feature = "strict-checks"))]
impl Encoder for CheckedEncoder {
    fn set_budget(&mut self, budget: hyde_guard::Budget) {
        self.inner.set_budget(budget);
    }

    fn set_decomp_cache(&mut self, cache: std::sync::Arc<crate::dcache::DecompCache>) {
        self.inner.set_decomp_cache(cache);
    }

    fn encode(
        &mut self,
        classes: &CompatibleClasses,
        k: usize,
    ) -> Result<CodeAssignment, CoreError> {
        let codes = self.inner.encode(classes, k)?;
        assert_eq!(
            codes.len(),
            classes.len(),
            "encoder invariant gate: assignment must code every class"
        );
        let mut diags = Vec::new();
        code_diagnostics(&codes, &mut diags);
        assert!(
            !hyde_logic::diag::any_deny(&diags),
            "encoder invariant gate failed: {}",
            diags
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
        Ok(codes)
    }
}

struct LexEncoder;

impl Encoder for LexEncoder {
    fn encode(
        &mut self,
        classes: &CompatibleClasses,
        _k: usize,
    ) -> Result<CodeAssignment, CoreError> {
        let t = ceil_log2(classes.len());
        CodeAssignment::new((0..classes.len() as u32).collect(), t)
    }
}

struct RandomEncoder {
    seed: u64,
}

impl Encoder for RandomEncoder {
    fn encode(
        &mut self,
        classes: &CompatibleClasses,
        _k: usize,
    ) -> Result<CodeAssignment, CoreError> {
        let t = ceil_log2(classes.len());
        let mut rng = StdRng::seed_from_u64(self.seed);
        CodeAssignment::new(random_strict_codes(classes.len(), t, &mut rng), t)
    }
}

fn random_strict_codes(n: usize, bits: usize, rng: &mut StdRng) -> Vec<u32> {
    let mut pool: Vec<u32> = (0..1u32 << bits).collect();
    pool.shuffle(rng);
    pool.truncate(n);
    pool
}

struct CubeMinEncoder {
    seed: u64,
    iters: usize,
}

impl Encoder for CubeMinEncoder {
    fn encode(
        &mut self,
        classes: &CompatibleClasses,
        _k: usize,
    ) -> Result<CodeAssignment, CoreError> {
        let t = ceil_log2(classes.len());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut codes = (0..classes.len() as u32).collect::<Vec<_>>();
        let cost = |codes: &[u32]| -> usize {
            let ca = CodeAssignment::new(codes.to_vec(), t).expect("codes fit");
            let (on, dc) = build_image(classes, &ca);
            let upper = &on | &dc;
            SopCover::isop_between(&on, &upper).cube_count()
        };
        let mut best_cost = cost(&codes);
        for _ in 0..self.iters {
            if classes.len() < 2 {
                break;
            }
            let i = rng.gen_range(0..classes.len());
            let j = rng.gen_range(0..classes.len());
            if i == j {
                continue;
            }
            codes.swap(i, j);
            let c = cost(&codes);
            if c <= best_cost {
                best_cost = c;
            } else {
                codes.swap(i, j);
            }
        }
        CodeAssignment::new(codes, t)
    }
}

/// Support-minimizing encoder (`[6]`/`[7]`-style objective): total α support.
struct SupportMinEncoder {
    seed: u64,
    iters: usize,
}

impl Encoder for SupportMinEncoder {
    fn encode(
        &mut self,
        classes: &CompatibleClasses,
        _k: usize,
    ) -> Result<CodeAssignment, CoreError> {
        let t = ceil_log2(classes.len());
        let class_of = classes.class_map();
        let n_cols = class_of.len();
        // The α support objective needs a genuine chart (columns = 2^b
        // bound assignments); ingredient encodings (arbitrary column
        // counts) fall back to lexicographic codes.
        if !n_cols.is_power_of_two() || classes.len() < 2 {
            return CodeAssignment::new((0..classes.len() as u32).collect(), t);
        }
        let bound_vars = n_cols.trailing_zeros() as usize;
        let cost = |codes: &[u32]| -> usize {
            let ca = CodeAssignment::new(codes.to_vec(), t).expect("codes fit");
            build_alphas(class_of, &ca, bound_vars)
                .iter()
                .map(|a| a.support().len())
                .sum()
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut codes: Vec<u32> = (0..classes.len() as u32).collect();
        let mut best_cost = cost(&codes);
        for _ in 0..self.iters {
            // Either swap two classes' codes or move one class to a free
            // code point.
            let mut cand = codes.clone();
            if rng.gen_bool(0.5) {
                let i = rng.gen_range(0..cand.len());
                let j = rng.gen_range(0..cand.len());
                cand.swap(i, j);
            } else {
                let used: HashSet<u32> = cand.iter().copied().collect();
                let free: Vec<u32> = (0..1u32 << t).filter(|c| !used.contains(c)).collect();
                if free.is_empty() {
                    continue;
                }
                let i = rng.gen_range(0..cand.len());
                cand[i] = free[rng.gen_range(0..free.len())];
            }
            let c = cost(&cand);
            if c <= best_cost {
                best_cost = c;
                codes = cand;
            }
        }
        CodeAssignment::new(codes, t)
    }
}

/// The HYDE encoder (Figure 3). See module docs for the procedure.
struct HydeEncoder {
    seed: u64,
    budget: hyde_guard::Budget,
    cache: Option<std::sync::Arc<crate::dcache::DecompCache>>,
}

impl Encoder for HydeEncoder {
    fn set_budget(&mut self, budget: hyde_guard::Budget) {
        self.budget = budget;
    }

    fn set_decomp_cache(&mut self, cache: std::sync::Arc<crate::dcache::DecompCache>) {
        self.cache = Some(cache);
    }

    fn encode(
        &mut self,
        classes: &CompatibleClasses,
        k: usize,
    ) -> Result<CodeAssignment, CoreError> {
        let m = classes.len();
        let t = ceil_log2(m);
        let lex = CodeAssignment::new((0..m as u32).collect(), t)?;
        if m <= 1 || t == 0 {
            return Ok(lex);
        }
        let mu = classes.class_fn(0).vars();
        // Step 2: if the trial image is κ-feasible, the encoding is
        // irrelevant (Theorem 3.1 corollary).
        if t + mu <= k {
            return Ok(lex);
        }
        // Step 3: λ-set selection on the trial image.
        let (g_on, _) = build_image(classes, &lex);
        let g_support = g_on.support();
        if g_support.len() <= k {
            // The image is κ-feasible after vacuous-variable removal.
            return Ok(lex);
        }
        let partitioner = VariablePartitioner::default()
            .with_budget(&self.budget)
            .with_cache_opt(self.cache.clone());
        let (lambda2, _) = partitioner.best_bound_set(&g_on, k)?;
        // Split λ' into α variables (code bits) and inner free variables.
        let a_cols: Vec<usize> = lambda2.iter().copied().filter(|&v| v < t).collect();
        let y1: Vec<usize> = lambda2
            .iter()
            .copied()
            .filter(|&v| v >= t)
            .map(|v| v - t)
            .collect();
        let a_rows: Vec<usize> = (0..t).filter(|v| !a_cols.contains(v)).collect();
        if a_cols.is_empty() || a_rows.is_empty() {
            // All α variables on one side: Theorem 3.1 — encoding cannot
            // change the class count; keep the cheap encoding.
            return Ok(lex);
        }
        let n_cols = 1usize << a_cols.len();
        let n_rows = 1usize << a_rows.len();

        // Step 4: class partitions over the inner bound positions, global
        // symbol alphabet over actual column patterns.
        let partitions = class_partitions(classes, &y1)?;

        // Step 5: column sets via b-matching.
        let col_sets = combine_column_sets(&partitions, n_rows);

        // Steps 6-7: row sets via benefit matching.
        let row_sets = combine_row_sets(&partitions, &col_sets, n_rows, n_cols);

        // Placement + code readout.
        let hyde_codes =
            place_and_encode(m, &col_sets, &row_sets, &a_cols, &a_rows, n_rows, n_cols, t)?;

        // Step 8: compare against a random encoding on the real objective.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rand_codes = CodeAssignment::new(random_strict_codes(m, t, &mut rng), t)?;
        let cost = |codes: &CodeAssignment| -> usize {
            let (on, _) = build_image(classes, codes);
            class_count(&on, &lambda2).unwrap_or(usize::MAX)
        };
        let hyde_cost = cost(&hyde_codes);
        let rand_cost = cost(&rand_codes);
        let lex_cost = cost(&lex);
        let mut best = (hyde_cost, hyde_codes);
        if rand_cost < best.0 {
            best = (rand_cost, rand_codes);
        }
        if lex_cost < best.0 {
            best = (lex_cost, lex);
        }
        Ok(best.1)
    }
}

/// Builds the partitions `Π_i` of every class function with respect to the
/// inner bound set `y1`, over a global symbol alphabet (equal symbols across
/// classes iff equal column patterns).
pub fn class_partitions(
    classes: &CompatibleClasses,
    y1: &[usize],
) -> Result<Vec<Partition>, CoreError> {
    let mu = classes.class_fn(0).vars();
    let mut alphabet: HashMap<TruthTable, u32> = HashMap::new();
    let mut out = Vec::with_capacity(classes.len());
    for fc in classes.class_fns() {
        let symbols = if y1.is_empty() || y1.len() >= mu {
            // Degenerate inner bound: single position.
            let next = alphabet.len() as u32;
            let id = *alphabet.entry(fc.clone()).or_insert(next);
            vec![id]
        } else {
            let (bound, free) = split_bound_free(mu, y1)?;
            column_patterns(fc, &bound, &free)
                .into_iter()
                .map(|pat| {
                    let next = alphabet.len() as u32;
                    *alphabet.entry(pat).or_insert(next)
                })
                .collect()
        };
        out.push(Partition::new(symbols));
    }
    Ok(out)
}

/// Step 5: evaluates which classes should be bound in the same column of
/// the encoding chart, via a maximum-weight bipartite b-matching on the
/// column graph `Gc` (one `Uc` vertex per shared `Psc`, capacity `#R`).
///
/// Returns the column sets (groups of class indices); classes matched to no
/// `Psc` vertex form singleton sets. Sets are sorted by descending size.
pub fn combine_column_sets(partitions: &[Partition], n_rows: usize) -> Vec<Vec<usize>> {
    let shared = shared_psc_sets(partitions);
    // Right vertices: copies of each Psc, enough capacity for all havers.
    let mut right_cap: Vec<i64> = Vec::new();
    let mut right_psc: Vec<usize> = Vec::new();
    for (s_idx, s) in shared.iter().enumerate() {
        // The paper allocates ⌈(#Partitions(Psc) − 1)/#R⌉ copies of each
        // Psc vertex (at least one), capping how many column sets one Psc
        // can spawn.
        let copies = (s.partitions.len() - 1).div_ceil(n_rows).max(1);
        for _ in 0..copies {
            right_cap.push(n_rows as i64);
            right_psc.push(s_idx);
        }
    }
    let left_cap = vec![1i64; partitions.len()];
    let mut edges = Vec::new();
    for (r, &s_idx) in right_psc.iter().enumerate() {
        let s = &shared[s_idx];
        let w = (s.positions.len() + s.partitions.len()) as i64;
        for &p in &s.partitions {
            edges.push((p, r, w));
        }
    }
    let matching = hyde_graph::max_weight_b_matching(&left_cap, &right_cap, &edges);
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut grouped: HashSet<usize> = HashSet::new();
    for &(l, r, _) in &matching.edges {
        groups.entry(r).or_default().push(l);
        grouped.insert(l);
    }
    // sa:allow(SA001): every group is sorted and the outer list re-sorted
    // with a total order below, so visit order cannot leak into results.
    let mut out: Vec<Vec<usize>> = groups
        .into_values()
        .map(|mut g| {
            g.sort_unstable();
            g
        })
        .collect();
    for p in 0..partitions.len() {
        if !grouped.contains(&p) {
            out.push(vec![p]);
        }
    }
    out.sort_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
    out
}

/// Step 7: merges row sets until at most `n_rows` remain.
///
/// Row sets start as singletons; each round builds the benefit-weighted row
/// graph over the current row sets (represented by disjunction partitions),
/// finds a matching, and merges matched pairs in descending benefit order.
pub fn combine_row_sets(
    partitions: &[Partition],
    col_sets: &[Vec<usize>],
    n_rows: usize,
    n_cols: usize,
) -> Vec<Vec<usize>> {
    // Which column set each class belongs to (singletons included).
    let mut col_of: HashMap<usize, usize> = HashMap::new();
    for (ci, set) in col_sets.iter().enumerate() {
        for &p in set {
            col_of.insert(p, ci);
        }
    }
    // Gc edge weight of each class (for the same-column-set penalty).
    let shared = shared_psc_sets(partitions);
    let mut gc_weight: HashMap<usize, i64> = HashMap::new();
    for s in &shared {
        let w = (s.positions.len() + s.partitions.len()) as i64;
        for &p in &s.partitions {
            let e = gc_weight.entry(p).or_insert(0);
            *e = (*e).max(w);
        }
    }

    // Global symbol statistics.
    let n_symbols: usize = {
        let mut symbols = HashSet::new();
        for p in partitions {
            symbols.extend(p.symbols().iter().copied());
        }
        symbols.len().max(1)
    };

    let mut row_sets: Vec<Vec<usize>> = (0..partitions.len()).map(|p| vec![p]).collect();

    while row_sets.len() > n_rows {
        let reps: Vec<Partition> = row_sets
            .iter()
            .map(|set| {
                let parts: Vec<&Partition> = set.iter().map(|&p| &partitions[p]).collect();
                Partition::disjunction(&parts)
            })
            .collect();
        let sigma = (row_sets.len() as i64 - n_rows as i64).max(0);
        let n_col_sets = estimate_column_sets(&row_sets, &col_of);
        let tau = (n_col_sets as i64 - n_cols as i64).max(0);

        // Pairwise benefits.
        let mut edges: Vec<(usize, usize, i64)> = Vec::new();
        for i in 0..row_sets.len() {
            for j in (i + 1)..row_sets.len() {
                let mut b = merge_benefit(&reps[i], &reps[j], sigma, tau, n_symbols);
                // Same-column-set penalty: don't tear column partners apart.
                let same_col = row_sets[i].iter().any(|p| {
                    row_sets[j]
                        .iter()
                        .any(|q| col_of.get(p) == col_of.get(q) && col_of.contains_key(p))
                });
                if same_col {
                    let w = row_sets[i]
                        .iter()
                        .chain(&row_sets[j])
                        .filter_map(|p| gc_weight.get(p))
                        .copied()
                        .max()
                        .unwrap_or(0);
                    b -= w * 1000;
                }
                edges.push((i, j, b));
            }
        }
        // Maximum-cardinality matching, consumed in descending benefit
        // order (the paper's prescription).
        let pairs = hyde_graph::maximum_matching(
            row_sets.len(),
            &edges.iter().map(|&(u, v, _)| (u, v)).collect::<Vec<_>>(),
        );
        let mut weighted: Vec<(i64, usize, usize)> = pairs
            .iter()
            .map(|&(u, v)| {
                let w = edges
                    .iter()
                    .find(|&&(a, b, _)| (a, b) == (u, v))
                    .map(|&(_, _, w)| w)
                    .unwrap_or(0);
                (w, u, v)
            })
            .collect();
        weighted.sort_by_key(|&(w, _, _)| std::cmp::Reverse(w));
        if weighted.is_empty() {
            break;
        }
        let mut merged_into: HashMap<usize, usize> = HashMap::new();
        let mut remaining = row_sets.len();
        for (_, u, v) in weighted {
            if remaining <= n_rows {
                break;
            }
            merged_into.insert(v, u);
            remaining -= 1;
        }
        if merged_into.is_empty() {
            break;
        }
        let mut new_sets: Vec<Vec<usize>> = Vec::with_capacity(remaining);
        let mut absorbed: HashMap<usize, Vec<usize>> = HashMap::new();
        // sa:allow(SA001): accumulation into per-target sets that are
        // sorted before use; visit order is absorbed by the sort.
        for (&v, &u) in &merged_into {
            absorbed
                .entry(u)
                .or_default()
                .extend(row_sets[v].iter().copied());
        }
        for (i, set) in row_sets.iter().enumerate() {
            if merged_into.contains_key(&i) {
                continue;
            }
            let mut s = set.clone();
            if let Some(extra) = absorbed.get(&i) {
                s.extend(extra.iter().copied());
            }
            s.sort_unstable();
            new_sets.push(s);
        }
        row_sets = new_sets;
    }
    row_sets.sort_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
    row_sets
}

fn estimate_column_sets(row_sets: &[Vec<usize>], col_of: &HashMap<usize, usize>) -> usize {
    let mut cols: HashSet<usize> = HashSet::new();
    let mut singles = 0usize;
    for set in row_sets {
        for p in set {
            match col_of.get(p) {
                Some(c) => {
                    cols.insert(*c);
                }
                None => singles += 1,
            }
        }
    }
    cols.len() + singles
}

/// The benefit `σ·Br + τ·Bc` of merging two row sets (Step 7 formulas).
fn merge_benefit(a: &Partition, b: &Partition, sigma: i64, tau: i64, n_symbols: usize) -> i64 {
    let d = Partition::disjunction(&[a, b]);
    let kinds = |p: &Partition| p.symbols().iter().collect::<HashSet<_>>().len() as i64;
    let n = n_symbols as i64;
    let n_ij = kinds(&d);
    let br = n - (n_ij - kinds(a)) - (n_ij - kinds(b));
    // Bc: symbols shared by both, each contributing (occurrences - K).
    let occ = |p: &Partition, s: u32| p.symbols().iter().filter(|&&x| x == s).count() as f64;
    let m = d.len() as f64;
    let k = m / n_symbols as f64;
    let sa: HashSet<u32> = a.symbols().iter().copied().collect();
    let sb: HashSet<u32> = b.symbols().iter().copied().collect();
    let bc: f64 = sa
        .intersection(&sb)
        .map(|&s| occ(a, s) + occ(b, s) - k)
        .sum();
    sigma * br + tau * (bc * 1.0).round() as i64
}

/// Places classes on the `n_rows × n_cols` encoding chart and derives the
/// codes: column bits go to the α variables in the next bound set
/// (`a_cols`), row bits to the α variables in the free set (`a_rows`).
#[allow(clippy::too_many_arguments)]
fn place_and_encode(
    m: usize,
    col_sets: &[Vec<usize>],
    row_sets: &[Vec<usize>],
    a_cols: &[usize],
    a_rows: &[usize],
    n_rows: usize,
    n_cols: usize,
    t: usize,
) -> Result<CodeAssignment, CoreError> {
    let mut grid: Vec<Vec<Option<usize>>> = vec![vec![None; n_cols]; n_rows];
    let mut placed: Vec<Option<(usize, usize)>> = vec![None; m];
    // Column of each class according to Step 5 (sets beyond n_cols
    // dissolve; Step 7 decisions take priority on conflicts).
    let mut col_hint: HashMap<usize, usize> = HashMap::new();
    for (ci, set) in col_sets.iter().enumerate().take(n_cols) {
        for &p in set {
            col_hint.insert(p, ci);
        }
    }
    let place = |grid: &mut Vec<Vec<Option<usize>>>,
                 placed: &mut Vec<Option<(usize, usize)>>,
                 cls: usize,
                 r: usize,
                 want_col: Option<usize>| {
        // Preferred column, else any free cell in this row, else any
        // free cell anywhere (row sets larger than n_cols spill).
        if let Some(c) = want_col {
            if grid[r][c].is_none() {
                grid[r][c] = Some(cls);
                placed[cls] = Some((r, c));
                return;
            }
        }
        if let Some(c) = (0..n_cols).find(|&c| grid[r][c].is_none()) {
            grid[r][c] = Some(cls);
            placed[cls] = Some((r, c));
            return;
        }
        'outer: for (rr, row) in grid.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                if cell.is_none() {
                    *cell = Some(cls);
                    placed[cls] = Some((rr, c));
                    break 'outer;
                }
            }
        }
    };
    for (r, set) in row_sets.iter().enumerate() {
        let r = r.min(n_rows - 1);
        for &cls in set {
            place(&mut grid, &mut placed, cls, r, col_hint.get(&cls).copied());
        }
    }
    // Derive codes: bit positions from the α variable split.
    let mut codes = vec![0u32; m];
    for (cls, pos) in placed.iter().enumerate() {
        let (r, c) = pos.ok_or_else(|| CoreError::CodeSpaceTooSmall {
            classes: m,
            bits: t,
        })?;
        let mut code = 0u32;
        for (i, &bit) in a_cols.iter().enumerate() {
            if c >> i & 1 == 1 {
                code |= 1 << bit;
            }
        }
        for (i, &bit) in a_rows.iter().enumerate() {
            if r >> i & 1 == 1 {
                code |= 1 << bit;
            }
        }
        codes[cls] = code;
    }
    CodeAssignment::new(codes, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::example_3_2_partitions;

    fn classes_from_fns(fns: Vec<TruthTable>) -> CompatibleClasses {
        let class_of: Vec<usize> = (0..fns.len()).collect();
        CompatibleClasses::from_parts(class_of, fns)
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn code_assignment_properties() {
        let ca = CodeAssignment::new(vec![0, 1, 2], 2).unwrap();
        assert!(ca.is_strict());
        assert!(ca.is_rigid());
        let pliable = CodeAssignment::new(vec![0, 1, 2], 3).unwrap();
        assert!(!pliable.is_rigid());
        let nonstrict = CodeAssignment::new(vec![0, 0], 1).unwrap();
        assert!(!nonstrict.is_strict());
        assert!(CodeAssignment::new(vec![0, 1, 4], 2).is_err());
        assert!(CodeAssignment::new(vec![0, 1, 2, 3, 0], 2).is_err());
    }

    #[test]
    fn build_image_and_alphas_recompose() {
        // f = (a&b) | (c&d); bound {a,b} -> 2 classes.
        use crate::chart::DecompositionChart;
        let f = (TruthTable::var(4, 0) & TruthTable::var(4, 1))
            | (TruthTable::var(4, 2) & TruthTable::var(4, 3));
        let chart = DecompositionChart::new(&f, &[0, 1]).unwrap();
        let classes = chart.classes();
        let codes = CodeAssignment::new(vec![0, 1], 1).unwrap();
        let (g, dc) = build_image(classes, &codes);
        assert!(dc.is_zero(), "2 classes fill 1 bit exactly");
        let alphas = build_alphas(classes.class_map(), &codes, 2);
        assert_eq!(alphas.len(), 1);
        // Recompose and compare.
        for m in 0u32..16 {
            let a_val = alphas[0].eval(m & 0b11);
            let y = m >> 2; // free vars c,d
            let g_in = (u32::from(a_val)) | (y << 1);
            assert_eq!(g.eval(g_in), f.eval(m), "minterm {m}");
        }
    }

    #[test]
    fn unused_codes_are_dont_care() {
        let fns = vec![
            TruthTable::var(2, 0),
            TruthTable::var(2, 1),
            TruthTable::one(2),
        ];
        let classes = classes_from_fns(fns);
        let codes = CodeAssignment::new(vec![0, 1, 2], 2).unwrap();
        let (_, dc) = build_image(&classes, &codes);
        // Code 3 unused -> all minterms with low bits 11 are dc.
        for m in 0u32..16 {
            assert_eq!(dc.eval(m), m & 0b11 == 0b11);
        }
    }

    #[test]
    fn lexicographic_encoder() {
        let classes = classes_from_fns(vec![
            TruthTable::zero(1),
            TruthTable::one(1),
            TruthTable::var(1, 0),
        ]);
        let ca = EncoderKind::Lexicographic
            .build()
            .encode(&classes, 5)
            .unwrap();
        assert_eq!(ca.codes(), &[0, 1, 2]);
        assert!(ca.is_strict() && ca.is_rigid());
    }

    #[test]
    fn random_encoder_is_strict_and_deterministic() {
        let classes = classes_from_fns(vec![
            TruthTable::zero(2),
            TruthTable::one(2),
            TruthTable::var(2, 0),
            TruthTable::var(2, 1),
            TruthTable::var(2, 0) ^ TruthTable::var(2, 1),
        ]);
        let a = EncoderKind::Random { seed: 7 }
            .build()
            .encode(&classes, 5)
            .unwrap();
        let b = EncoderKind::Random { seed: 7 }
            .build()
            .encode(&classes, 5)
            .unwrap();
        assert_eq!(a, b);
        assert!(a.is_strict());
        assert_eq!(a.bits(), 3);
    }

    #[test]
    fn cube_min_encoder_never_worse_than_start() {
        let classes = classes_from_fns(vec![
            TruthTable::var(2, 0) & TruthTable::var(2, 1),
            TruthTable::var(2, 0) | TruthTable::var(2, 1),
            TruthTable::var(2, 0) ^ TruthTable::var(2, 1),
            TruthTable::zero(2),
        ]);
        let lex = EncoderKind::Lexicographic
            .build()
            .encode(&classes, 4)
            .unwrap();
        let opt = EncoderKind::CubeMin { seed: 3, iters: 40 }
            .build()
            .encode(&classes, 4)
            .unwrap();
        let cubes = |ca: &CodeAssignment| {
            let (on, dc) = build_image(&classes, ca);
            SopCover::isop_between(&on, &(&on | &dc)).cube_count()
        };
        assert!(cubes(&opt) <= cubes(&lex));
        assert!(opt.is_strict());
    }

    #[test]
    fn support_min_encoder_reduces_alpha_support() {
        use crate::chart::DecompositionChart;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(55);
        let mut improved = 0;
        let mut total = 0;
        for _ in 0..10 {
            let f = TruthTable::random(8, &mut rng);
            let chart = DecompositionChart::new(&f, &[0, 1, 2, 3]).unwrap();
            let classes = chart.classes().clone();
            if classes.len() < 3 {
                continue;
            }
            let t = ceil_log2(classes.len());
            let support_of = |ca: &CodeAssignment| -> usize {
                build_alphas(classes.class_map(), ca, 4)
                    .iter()
                    .map(|a| a.support().len())
                    .sum()
            };
            let lex = CodeAssignment::new((0..classes.len() as u32).collect(), t).unwrap();
            let opt = EncoderKind::SupportMin { seed: 3, iters: 60 }
                .build()
                .encode(&classes, 5)
                .unwrap();
            assert!(opt.is_strict());
            assert!(support_of(&opt) <= support_of(&lex));
            total += 1;
            if support_of(&opt) < support_of(&lex) {
                improved += 1;
            }
        }
        assert!(total >= 5);
        // On random functions alpha supports are usually already full, so
        // just require the optimizer never regresses and the loop ran.
        let _ = improved;
    }

    #[test]
    fn support_min_falls_back_for_ingredient_classes() {
        // 3 classes with identity class_of (not a power of two) -> lex.
        let classes = classes_from_fns(vec![
            TruthTable::zero(2),
            TruthTable::one(2),
            TruthTable::var(2, 0),
        ]);
        let ca = EncoderKind::SupportMin { seed: 1, iters: 10 }
            .build()
            .encode(&classes, 5)
            .unwrap();
        assert_eq!(ca.codes(), &[0, 1, 2]);
    }

    #[test]
    fn column_sets_reproduce_example_3_2_step_5() {
        let partitions = example_3_2_partitions();
        let sets = combine_column_sets(&partitions, 4);
        // Figure 5 result: {3,4,6,8} or {3,4,6,7,8}-choose-4 plus {2,7},
        // remaining singletons. The b-matching is exact, so the two
        // multi-member sets must have total weight 4*7 + 2*4 = 36.
        let multi: Vec<&Vec<usize>> = sets.iter().filter(|s| s.len() > 1).collect();
        assert_eq!(multi.len(), 2, "sets: {sets:?}");
        assert_eq!(multi[0].len(), 4);
        assert_eq!(multi[1].len(), 2);
        // The 4-member set comes from Psc13 = {3,4,6,7,8}.
        for p in multi[0] {
            assert!([3usize, 4, 6, 7, 8].contains(p));
        }
        // All ten partitions covered exactly once.
        let mut all: Vec<usize> = sets.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn row_sets_cover_all_partitions() {
        let partitions = example_3_2_partitions();
        let col_sets = combine_column_sets(&partitions, 4);
        let row_sets = combine_row_sets(&partitions, &col_sets, 4, 4);
        assert!(row_sets.len() <= 4, "row sets: {row_sets:?}");
        let mut all: Vec<usize> = row_sets.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn hyde_encoder_produces_valid_strict_codes() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        for trial in 0..10 {
            let f = TruthTable::random(8, &mut rng);
            let chart = crate::chart::DecompositionChart::new(&f, &[0, 1, 2]).unwrap();
            let classes = chart.classes().clone();
            let ca = EncoderKind::Hyde { seed: trial }
                .build()
                .encode(&classes, 5)
                .unwrap();
            assert_eq!(ca.len(), classes.len());
            assert!(ca.is_strict(), "trial {trial}");
        }
    }

    #[test]
    fn hyde_encoder_no_worse_than_random_on_next_class_count() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(21);
        let mut wins = 0;
        let mut total = 0;
        for trial in 0..12 {
            let f = TruthTable::random(9, &mut rng);
            let chart = crate::chart::DecompositionChart::new(&f, &[0, 1, 2, 3]).unwrap();
            let classes = chart.classes().clone();
            if classes.len() < 3 {
                continue;
            }
            let k = 5;
            let hyde = EncoderKind::Hyde { seed: 1000 + trial }
                .build()
                .encode(&classes, k)
                .unwrap();
            let rand_ca = EncoderKind::Random { seed: 2000 + trial }
                .build()
                .encode(&classes, k)
                .unwrap();
            // Evaluate both on their best k-bound set of the image.
            let vp = VariablePartitioner::default();
            let ncc = |ca: &CodeAssignment| {
                let (on, _) = build_image(&classes, ca);
                let (_, cc) = vp.best_bound_set(&on, k.min(on.vars() - 1)).unwrap();
                cc
            };
            let h = ncc(&hyde);
            let r = ncc(&rand_ca);
            total += 1;
            if h <= r {
                wins += 1;
            }
        }
        assert!(total > 5);
        // The encoder optimizes the class count at its own λ' selection;
        // re-evaluating at each image's independently chosen best bound set
        // adds noise, so require a majority rather than dominance.
        assert!(
            wins * 2 >= total,
            "hyde should usually match or beat random ({wins}/{total})"
        );
    }
}
