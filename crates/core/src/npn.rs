//! NPN canonization of truth tables.
//!
//! Two functions are NPN-equivalent when one becomes the other under some
//! combination of input Negation, input Permutation, and output Negation.
//! Everything the λ-search computes — compatible class counts, best bound
//! sets — is invariant under that equivalence up to relabeling, so the
//! decomposition cache ([`crate::dcache`]) keys its entries on a canonical
//! representative of the orbit:
//!
//! - `n <= 6` (single-word tables): **exact** — the true minimum table
//!   over all `2 · 2^n · n!` transforms, enumerated with word-level
//!   delta-swaps along a Steinhaus–Johnson–Trotter adjacent-transposition
//!   tour (one `O(1)` swap per permutation, not a fresh `O(2^n)` rebuild).
//! - `n > 6`: **greedy signature-based** — output polarity by minterm
//!   count, per-input polarity by cofactor weight, input order by sorted
//!   cofactor signatures with one pairwise refinement round. Greedy
//!   canonization may map equivalent functions to different
//!   representatives (lower cache hit rate), but never maps inequivalent
//!   functions together, so cache correctness is unaffected.
//!
//! The recorded [`NpnTransform`] is the witness: applying it to the input
//! reproduces the canonical table exactly, which is what lets cached
//! results be translated back into the original variable space.

use hyde_logic::TruthTable;

/// A witness transform mapping a function onto its canonical form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NpnTransform {
    /// `perm[v]` is the canonical position of original variable `v`.
    pub perm: Vec<usize>,
    /// Bit `v`: original variable `v` is negated before permuting.
    pub input_neg: u32,
    /// The output is complemented.
    pub output_neg: bool,
}

impl NpnTransform {
    /// The identity transform over `n` variables.
    pub fn identity(n: usize) -> Self {
        NpnTransform {
            perm: (0..n).collect(),
            input_neg: 0,
            output_neg: false,
        }
    }

    /// Maps a set of canonical variable positions back to the original
    /// variables (sorted ascending). This is how a cached bound set,
    /// found on the canonical table, is translated to the caller's
    /// function: variable `v` of the original participates iff its
    /// canonical position `perm[v]` does.
    pub fn bound_to_original(&self, canon_bound: &[usize]) -> Vec<usize> {
        let mut out: Vec<usize> = (0..self.perm.len())
            .filter(|&v| canon_bound.contains(&self.perm[v]))
            .collect();
        out.sort_unstable();
        out
    }
}

/// A canonical table plus the transform that produced it.
#[derive(Debug, Clone)]
pub struct NpnCanon {
    /// The canonical representative of the NPN orbit.
    pub table: TruthTable,
    /// Witness: `apply(f, &transform) == table`.
    pub transform: NpnTransform,
}

/// Applies `t` to `f`: the result at minterm `y` is
/// `f(x) ^ t.output_neg`, where original variable `v` reads bit
/// `t.perm[v]` of `y`, XORed with bit `v` of `t.input_neg`.
///
/// This is the reference semantics every canonizer is tested against; it
/// is `O(n · 2^n)` and not meant for hot paths.
pub fn apply(f: &TruthTable, t: &NpnTransform) -> TruthTable {
    let n = f.vars();
    assert_eq!(t.perm.len(), n, "transform arity mismatch");
    TruthTable::from_fn(n, |m| {
        let mut m0 = 0u32;
        for v in 0..n {
            m0 |= ((m >> t.perm[v] & 1) ^ (t.input_neg >> v & 1)) << v;
        }
        f.eval(m0) != t.output_neg
    })
}

/// Canonizes `f`: exact for `n <= 6`, greedy signature-based above.
pub fn canonize(f: &TruthTable) -> NpnCanon {
    if f.vars() <= 6 {
        exact_canonize(f)
    } else {
        greedy_canonize(f)
    }
}

// ---------------------------------------------------------------------
// Exact canonizer (n <= 6, single-word tables)
// ---------------------------------------------------------------------

/// Delta-swap masks for exchanging adjacent index bits `p` and `p+1` of
/// a 64-bit table: bits `i` with `(i>>p)&1 == 1 && (i>>(p+1))&1 == 0`,
/// which pair with `i + 2^p`.
const fn swap_mask(p: usize) -> u64 {
    let mut m = 0u64;
    let mut i = 0usize;
    while i < 64 {
        if (i >> p) & 1 == 1 && (i >> (p + 1)) & 1 == 0 {
            m |= 1u64 << i;
        }
        i += 1;
    }
    m
}

const SWAP_MASKS: [u64; 5] = [
    swap_mask(0),
    swap_mask(1),
    swap_mask(2),
    swap_mask(3),
    swap_mask(4),
];

/// Masks of the minterms with index bit `v` clear (the "lo half" of each
/// `2^(v+1)` block), used to negate variable `v` in place.
const fn lo_mask(v: usize) -> u64 {
    let mut m = 0u64;
    let mut i = 0usize;
    while i < 64 {
        if (i >> v) & 1 == 0 {
            m |= 1u64 << i;
        }
        i += 1;
    }
    m
}

const LO_MASKS: [u64; 6] = [
    lo_mask(0),
    lo_mask(1),
    lo_mask(2),
    lo_mask(3),
    lo_mask(4),
    lo_mask(5),
];

/// Exchanges index bits `p` and `p+1` of a packed single-word table.
#[inline]
fn swap_adjacent_u64(w: u64, p: usize) -> u64 {
    let d = 1u32 << p;
    let t = (w ^ (w >> d)) & SWAP_MASKS[p];
    w ^ t ^ (t << d)
}

/// Negates index bit `v` of a packed single-word table.
#[inline]
fn negate_var_u64(w: u64, v: usize) -> u64 {
    let sh = 1u32 << v;
    let m = LO_MASKS[v];
    ((w & m) << sh) | ((w >> sh) & m)
}

/// The Steinhaus–Johnson–Trotter adjacent-transposition tour: applying
/// the returned swaps (`i` means "exchange positions `i` and `i+1`") to
/// any starting arrangement visits all `n!` permutations, each reached
/// from the previous by one swap.
fn sjt_swaps(n: usize) -> Vec<usize> {
    if n <= 1 {
        return Vec::new();
    }
    if n == 2 {
        return vec![0];
    }
    let inner = sjt_swaps(n - 1);
    let mut out = Vec::with_capacity(factorial(n) - 1);
    // The largest element sweeps from the back to the front, then one
    // inner swap advances the rest, then it sweeps back, alternating.
    out.extend((0..n - 1).rev());
    let mut at_front = true;
    for &s in &inner {
        out.push(if at_front { s + 1 } else { s });
        if at_front {
            out.extend(0..n - 1);
        } else {
            out.extend((0..n - 1).rev());
        }
        at_front = !at_front;
    }
    out
}

fn factorial(n: usize) -> usize {
    (1..=n).product()
}

/// Exact NPN canonical form for `n <= 6`: the numerically smallest packed
/// table over the whole orbit, with a witness transform.
///
/// # Panics
///
/// Panics if `f.vars() > 6`.
pub fn exact_canonize(f: &TruthTable) -> NpnCanon {
    let n = f.vars();
    assert!(n <= 6, "exact_canonize is limited to 6 variables");
    let size_mask = if n == 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << n)) - 1
    };
    let base = f.as_words()[0] & size_mask;
    let swaps = sjt_swaps(n);
    // best: (table, occ, input_neg, output_neg) where occ[p] is the
    // original variable at canonical position p.
    let mut best: Option<(u64, Vec<usize>, u32, bool)> = None;
    for output_neg in [false, true] {
        for neg in 0..1u32 << n {
            let mut w = if output_neg { !base & size_mask } else { base };
            for v in 0..n {
                if neg >> v & 1 == 1 {
                    w = negate_var_u64(w, v);
                }
            }
            let mut occ: Vec<usize> = (0..n).collect();
            let consider =
                |w: u64, occ: &[usize], best: &mut Option<(u64, Vec<usize>, u32, bool)>| {
                    let smaller = match best {
                        None => true,
                        Some((bw, ..)) => w < *bw,
                    };
                    if smaller {
                        *best = Some((w, occ.to_vec(), neg, output_neg));
                    }
                };
            consider(w, &occ, &mut best);
            for &s in &swaps {
                w = swap_adjacent_u64(w, s);
                occ.swap(s, s + 1);
                consider(w, &occ, &mut best);
            }
        }
    }
    let (w, occ, input_neg, output_neg) = best.expect("orbit is never empty");
    let mut perm = vec![0usize; n];
    for (p, &v) in occ.iter().enumerate() {
        perm[v] = p;
    }
    NpnCanon {
        table: TruthTable::from_words(n, vec![w & size_mask]),
        transform: NpnTransform {
            perm,
            input_neg,
            output_neg,
        },
    }
}

// ---------------------------------------------------------------------
// Greedy canonizer (n > 6, word-array tables)
// ---------------------------------------------------------------------

/// Number of minterms with variable `v` = 1 on which `words` is true.
fn cofactor_ones(words: &[u64], v: usize) -> u64 {
    if v >= 6 {
        let stride = 1usize << (v - 6);
        words
            .chunks(2 * stride)
            .map(|c| {
                c[stride..]
                    .iter()
                    .map(|w| u64::from(w.count_ones()))
                    .sum::<u64>()
            })
            .sum()
    } else {
        let m = !LO_MASKS[v];
        words.iter().map(|w| u64::from((w & m).count_ones())).sum()
    }
}

/// Like [`cofactor_ones`] but restricted to minterms where `u` = 1 too.
fn pair_ones(words: &[u64], v: usize, u: usize) -> u64 {
    debug_assert_ne!(v, u);
    let mask_low = |x: usize| !LO_MASKS[x];
    let mut total = 0u64;
    for (i, &w) in words.iter().enumerate() {
        let mut sel = w;
        for x in [v, u] {
            if x >= 6 {
                if (i >> (x - 6)) & 1 == 0 {
                    sel = 0;
                }
            } else {
                sel &= mask_low(x);
            }
        }
        total += u64::from(sel.count_ones());
    }
    total
}

/// Negates variable `v` of a packed word-array table in place.
fn negate_var_words(words: &mut [u64], v: usize) {
    if v >= 6 {
        let stride = 1usize << (v - 6);
        for chunk in words.chunks_mut(2 * stride) {
            let (a, b) = chunk.split_at_mut(stride);
            a.swap_with_slice(b);
        }
    } else {
        let sh = 1u32 << v;
        let m = LO_MASKS[v];
        for w in words.iter_mut() {
            *w = ((*w & m) << sh) | ((*w >> sh) & m);
        }
    }
}

/// Greedy signature-based canonical form for `n > 6`.
fn greedy_canonize(f: &TruthTable) -> NpnCanon {
    let n = f.vars();
    let total = 1u64 << n;
    let mut words: Vec<u64> = f.as_words().to_vec();
    // Output polarity: minority of ones (ties keep the original).
    let ones: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
    let output_neg = ones * 2 > total;
    if output_neg {
        for w in &mut words {
            *w = !*w;
        }
    }
    // Input polarities: each variable's positive cofactor carries the
    // minority of the ones (ties keep the original polarity). The
    // per-variable counts are independent, so order does not matter.
    let mut input_neg = 0u32;
    let now_ones = if output_neg { total - ones } else { ones };
    for v in 0..n {
        let c1 = cofactor_ones(&words, v);
        if c1 * 2 > now_ones {
            input_neg |= 1 << v;
            negate_var_words(&mut words, v);
        }
    }
    // Input order: ascending by (cofactor weight, pairwise refinement).
    // The refinement vector is each variable's sorted multiset of pair
    // weights, which is permutation-invariant over the tied group.
    let sigs: Vec<u64> = (0..n).map(|v| cofactor_ones(&words, v)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| sigs[v]);
    let mut refined: Vec<(u64, Vec<u64>)> = Vec::with_capacity(n);
    for &v in &order {
        let tied = order.iter().filter(|&&u| sigs[u] == sigs[v]).count() > 1;
        let pairs = if tied {
            let mut p: Vec<u64> = (0..n)
                .filter(|&u| u != v)
                .map(|u| pair_ones(&words, v, u))
                .collect();
            p.sort_unstable();
            p
        } else {
            Vec::new()
        };
        refined.push((sigs[v], pairs));
    }
    // Stable sort so unresolved ties keep ascending original order: the
    // result is still deterministic, just not a true orbit invariant.
    let mut slots: Vec<usize> = (0..order.len()).collect();
    slots.sort_by(|&x, &y| refined[x].cmp(&refined[y]));
    let final_order: Vec<usize> = slots.iter().map(|&s| order[s]).collect();
    // perm[v] = canonical position of v: final_order[j] lands at j.
    let mut perm = vec![0usize; n];
    for (j, &v) in final_order.iter().enumerate() {
        perm[v] = j;
    }
    // Apply the permutation with promotion passes: promoting in
    // final_order leaves final_order[j] at position j.
    let mut cur: Vec<usize> = (0..n).collect();
    let mut scratch = vec![0u64; words.len()];
    let mut src = &mut words;
    let mut dst = &mut scratch;
    for &v in &final_order {
        let pos = cur[v];
        crate::chart::promote_to_top(src, dst, pos);
        std::mem::swap(&mut src, &mut dst);
        for c in cur.iter_mut() {
            if *c > pos {
                *c -= 1;
            }
        }
        cur[v] = n - 1;
    }
    NpnCanon {
        table: TruthTable::from_words(n, src.clone()),
        transform: NpnTransform {
            perm,
            input_neg,
            output_neg,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    /// Random NPN transform over `n` variables.
    fn random_transform(n: usize, rng: &mut StdRng) -> NpnTransform {
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(rng);
        NpnTransform {
            perm,
            input_neg: rng.gen::<u32>() & ((1u32 << n) - 1),
            output_neg: rng.gen(),
        }
    }

    #[test]
    fn sjt_tour_visits_every_permutation() {
        for n in 2..=6 {
            let swaps = sjt_swaps(n);
            assert_eq!(swaps.len(), factorial(n) - 1);
            let mut arr: Vec<usize> = (0..n).collect();
            let mut seen = std::collections::HashSet::new();
            seen.insert(arr.clone());
            for &s in &swaps {
                arr.swap(s, s + 1);
                assert!(seen.insert(arr.clone()), "duplicate permutation");
            }
            assert_eq!(seen.len(), factorial(n));
        }
    }

    #[test]
    fn word_ops_match_reference_apply() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in 2..=6usize {
            for _ in 0..10 {
                let f = TruthTable::random(n, &mut rng);
                let w = f.as_words()[0];
                // Negation of a random variable.
                let v = rng.gen_range(0..n);
                let neg = apply(
                    &f,
                    &NpnTransform {
                        input_neg: 1 << v,
                        ..NpnTransform::identity(n)
                    },
                );
                assert_eq!(
                    negate_var_u64(w, v) & neg_mask_for(n),
                    neg.as_words()[0],
                    "negate n={n} v={v}"
                );
                // Adjacent swap.
                if n >= 2 {
                    let p = rng.gen_range(0..n - 1);
                    let mut perm: Vec<usize> = (0..n).collect();
                    perm.swap(p, p + 1);
                    let sw = apply(
                        &f,
                        &NpnTransform {
                            perm,
                            input_neg: 0,
                            output_neg: false,
                        },
                    );
                    assert_eq!(
                        swap_adjacent_u64(w, p) & neg_mask_for(n),
                        sw.as_words()[0],
                        "swap n={n} p={p}"
                    );
                }
            }
        }
    }

    fn neg_mask_for(n: usize) -> u64 {
        if n >= 6 {
            u64::MAX
        } else {
            (1u64 << (1usize << n)) - 1
        }
    }

    #[test]
    fn exact_transform_witnesses_its_table() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in 1..=6usize {
            for _ in 0..8 {
                let f = TruthTable::random(n, &mut rng);
                let canon = exact_canonize(&f);
                assert_eq!(
                    apply(&f, &canon.transform),
                    canon.table,
                    "witness failed for n={n}"
                );
            }
        }
    }

    #[test]
    fn exact_canonical_form_is_orbit_invariant() {
        // The ISSUE's property: the canonical form of any NPN transform
        // of f equals the canonical form of f itself (n <= 6).
        let mut rng = StdRng::seed_from_u64(31);
        for n in 2..=6usize {
            for _ in 0..6 {
                let f = TruthTable::random(n, &mut rng);
                let base = exact_canonize(&f).table;
                for _ in 0..4 {
                    let t = random_transform(n, &mut rng);
                    let g = apply(&f, &t);
                    assert_eq!(
                        exact_canonize(&g).table,
                        base,
                        "orbit split for n={n} transform {t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn npn_class_counts_match_known_values() {
        // Exhaustive over all functions: the number of distinct exact
        // canonical forms must equal the published NPN class counts
        // (OEIS A000370): n=0: 2, n=1: 2, n=2: 4, n=3: 14, n=4: 222.
        for (n, expect) in [(1usize, 2usize), (2, 4), (3, 14)] {
            let mut classes = std::collections::HashSet::new();
            for bits in 0u64..1 << (1usize << n) {
                let f = TruthTable::from_words(n, vec![bits]);
                classes.insert(exact_canonize(&f).table);
            }
            assert_eq!(classes.len(), expect, "n={n}");
        }
        // n=4 exhaustively (65536 functions) — the heavyweight check.
        let mut classes = std::collections::HashSet::new();
        for bits in 0u64..1 << 16 {
            let f = TruthTable::from_words(4, vec![bits]);
            classes.insert(exact_canonize(&f).table);
        }
        assert_eq!(classes.len(), 222, "n=4 NPN class count");
    }

    #[test]
    fn greedy_transform_witnesses_its_table() {
        let mut rng = StdRng::seed_from_u64(41);
        for n in 7..=9usize {
            for _ in 0..6 {
                let f = TruthTable::random(n, &mut rng);
                let canon = canonize(&f);
                assert_eq!(
                    apply(&f, &canon.transform),
                    canon.table,
                    "witness failed for n={n}"
                );
            }
        }
    }

    #[test]
    fn greedy_is_idempotent_and_often_orbit_stable() {
        // Greedy gives no exactness guarantee, but canonizing a canonical
        // table must be a fixpoint up to the identity-orbit choice, and
        // structured functions should land on one representative.
        let mut rng = StdRng::seed_from_u64(51);
        for n in 7..=8usize {
            let f = TruthTable::random(n, &mut rng);
            let c1 = canonize(&f);
            let c2 = canonize(&c1.table);
            assert_eq!(c2.table, canonize(&c2.table).table);
        }
        // Permuting the inputs of a function with all-distinct cofactor
        // weights must not change the greedy representative.
        let f = TruthTable::from_fn(7, |m| {
            (m.count_ones() + (m & 0b101).count_ones() * 2 + (m >> 5)) % 3 == 0
        });
        let base = canonize(&f).table;
        let mut rng = StdRng::seed_from_u64(61);
        let mut stable = 0;
        for _ in 0..8 {
            let mut perm: Vec<usize> = (0..7).collect();
            perm.shuffle(&mut rng);
            let g = apply(
                &f,
                &NpnTransform {
                    perm,
                    input_neg: 0,
                    output_neg: false,
                },
            );
            if canonize(&g).table == base {
                stable += 1;
            }
        }
        assert!(stable >= 6, "greedy was orbit-stable only {stable}/8 times");
    }

    #[test]
    fn bound_translation_preserves_class_counts() {
        // The whole point of the cache: search on the canonical table,
        // translate the bound set back, get the same class count.
        let mut rng = StdRng::seed_from_u64(71);
        for n in [5usize, 6, 8] {
            for _ in 0..5 {
                let f = TruthTable::random(n, &mut rng);
                let canon = canonize(&f);
                for canon_bound in [vec![0usize, 1], vec![1, n - 1], vec![0, 2, 3]] {
                    let orig = canon.transform.bound_to_original(&canon_bound);
                    assert_eq!(orig.len(), canon_bound.len());
                    let a = crate::chart::class_count(&canon.table, &canon_bound).unwrap();
                    let b = crate::chart::class_count(&f, &orig).unwrap();
                    assert_eq!(a, b, "n={n} canon bound {canon_bound:?}");
                }
            }
        }
    }
}
