//! λ-set (bound set) selection — Problem 1 of the paper.
//!
//! HYDE adopts the BDD-based variable partitioning of Jiang et al.
//! (ASP-DAC 1997, reference `[2]`): among candidate bound sets of the target
//! size, pick the one minimizing the number of compatible classes. Small
//! functions are searched exhaustively on truth-table charts; larger ones
//! switch to BDD cut counting and, beyond a candidate budget, seeded
//! sampling.

use crate::chart::{class_count, class_floor_with, ClassCountScratch};
use crate::dcache::{CacheKey, DecompCache};
use crate::parallel;
use crate::CoreError;
use hyde_logic::TruthTable;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Search strategy for bound-set candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchStrategy {
    /// Enumerate every size-`k` subset of the support.
    Exhaustive,
    /// Evaluate a fixed number of random subsets (seeded).
    Sampled {
        /// Number of candidate subsets.
        candidates: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Enumerate exhaustively up to a candidate budget, then sample.
    Auto {
        /// Budget on the number of candidates before switching to sampling.
        budget: usize,
        /// RNG seed for the sampled fallback.
        seed: u64,
    },
}

/// λ-set selector.
///
/// # Example
///
/// ```
/// use hyde_core::varpart::VariablePartitioner;
/// use hyde_logic::TruthTable;
///
/// // (a&b)|(c&d): bound {a,b} (or {c,d}) yields only 2 classes.
/// let f = (TruthTable::var(4, 0) & TruthTable::var(4, 1))
///     | (TruthTable::var(4, 2) & TruthTable::var(4, 3));
/// let vp = VariablePartitioner::default();
/// let (bound, classes) = vp.best_bound_set(&f, 2).unwrap();
/// assert_eq!(classes, 2);
/// assert!(bound == vec![0, 1] || bound == vec![2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct VariablePartitioner {
    strategy: SearchStrategy,
    /// Use BDD cut counting instead of chart hashing above this support
    /// size. The chart path's prefix-sharing scorer keeps winning well
    /// past word width — the crossover sits where materializing and
    /// repeatedly sweeping the 2^n-bit table loses to BDD restricts.
    bdd_threshold: usize,
    /// Hard cap on the number of candidates a search may evaluate; a
    /// search needing more fails with [`CoreError::OutOfBudget`].
    candidate_cap: Option<usize>,
    /// Node cap applied to the per-worker BDD managers on the cut-count
    /// path (root build only, so the outcome is identical at any
    /// `HYDE_THREADS`).
    bdd_node_cap: Option<usize>,
    /// Optional NPN-keyed search memo shared across partitioner clones
    /// (and, through the flow, across circuits). `None` searches directly.
    cache: Option<Arc<DecompCache>>,
}

impl Default for VariablePartitioner {
    fn default() -> Self {
        VariablePartitioner {
            strategy: SearchStrategy::Auto {
                budget: 1200,
                seed: 0x9D5E_C0DE,
            },
            bdd_threshold: 20,
            candidate_cap: None,
            bdd_node_cap: None,
            cache: None,
        }
    }
}

impl VariablePartitioner {
    /// Creates a partitioner with an explicit strategy.
    pub fn new(strategy: SearchStrategy) -> Self {
        VariablePartitioner {
            strategy,
            ..Self::default()
        }
    }

    /// Applies the candidate and BDD-node limits from a pipeline budget.
    /// Searches exceeding either limit fail with
    /// [`CoreError::OutOfBudget`] so the caller can step down the
    /// fallback ladder.
    pub fn with_budget(mut self, budget: &hyde_guard::Budget) -> Self {
        self.candidate_cap = budget.candidates;
        self.bdd_node_cap = budget.bdd_nodes;
        self
    }

    /// Attaches a shared NPN-keyed search memo. Searches on functions the
    /// cache [covers](DecompCache::covers) are canonized, answered from
    /// the memo when possible, and run *on the canonical table* otherwise
    /// (see the [`crate::dcache`] determinism contract). Without a cache
    /// the partitioner behaves exactly as before.
    pub fn with_cache(mut self, cache: Arc<DecompCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// [`Self::with_cache`] with an optional handle (convenience for
    /// callers threading a configuration through).
    pub fn with_cache_opt(mut self, cache: Option<Arc<DecompCache>>) -> Self {
        self.cache = cache;
        self
    }

    /// Finds the bound set of size `k` (over the support of `f`) with the
    /// fewest compatible classes. Returns `(bound, class_count)`.
    ///
    /// Ties are broken toward the lexicographically smallest bound set so
    /// runs are reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBoundSet`] if `k` is zero or not smaller
    /// than the support size.
    pub fn best_bound_set(
        &self,
        f: &TruthTable,
        k: usize,
    ) -> Result<(Vec<usize>, usize), CoreError> {
        let support = f.support();
        if k == 0 || k >= support.len() {
            return Err(CoreError::InvalidBoundSet(format!(
                "bound size {k} invalid for support of {} variables",
                support.len()
            )));
        }
        if let Some(cache) = &self.cache {
            if cache.covers(f) {
                return self.best_bound_set_cached(f, k, cache);
            }
        }
        let candidates = self.candidates(&support, k);
        self.select_best(f, candidates)
    }

    /// The memoized search: canonize, look up, and on a miss run the
    /// search on the canonical table so the cached value is a pure
    /// function of the key (identical warm or cold, at any thread count).
    /// The returned bound set is the cached canonical bound translated
    /// through the NPN witness; among class-count ties it is the
    /// lexicographically smallest *canonical* candidate, which may be a
    /// different (equally good) tie pick than the uncached search makes.
    fn best_bound_set_cached(
        &self,
        f: &TruthTable,
        k: usize,
        cache: &DecompCache,
    ) -> Result<(Vec<usize>, usize), CoreError> {
        let canon = cache.canonize_timed(f);
        let key = CacheKey::new(&canon.table, k, self.strategy);
        if let Some((canon_bound, classes)) = cache.lookup(&key) {
            return Ok((canon.transform.bound_to_original(&canon_bound), classes));
        }
        // NPN transforms are variable bijections, so the canonical support
        // has the same size and the k-validity check above still holds.
        let canon_support = canon.table.support();
        let candidates = self.candidates(&canon_support, k);
        let (canon_bound, classes) = self.select_best(&canon.table, candidates)?;
        cache.insert(key, canon_bound.clone(), classes);
        Ok((canon.transform.bound_to_original(&canon_bound), classes))
    }

    /// Like [`Self::best_bound_set`], but prunes candidates through the
    /// symmetry classes of `f` first: bound sets that are permutations of
    /// each other within a symmetry class give identical class counts, so
    /// only one canonical representative is evaluated. On symmetric
    /// functions (parity, counters, `9sym`) this collapses the search
    /// dramatically.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::best_bound_set`].
    pub fn best_bound_set_pruned(
        &self,
        f: &TruthTable,
        k: usize,
    ) -> Result<(Vec<usize>, usize), CoreError> {
        let support = f.support();
        if k == 0 || k >= support.len() {
            return Err(CoreError::InvalidBoundSet(format!(
                "bound size {k} invalid for support of {} variables",
                support.len()
            )));
        }
        let mut seen = std::collections::HashSet::new();
        let mut pruned = Vec::new();
        for cand in self.candidates(&support, k) {
            let canon = crate::symmetry::canonical_bound_set(f, &cand);
            if seen.insert(canon.clone()) {
                pruned.push(canon);
            }
        }
        let mut best: Option<(Vec<usize>, usize)> = None;
        for cand in pruned {
            let count = class_count(f, &cand)?;
            let better = match &best {
                None => true,
                Some((bb, bc)) => count < *bc || (count == *bc && cand < *bb),
            };
            if better {
                best = Some((cand, count));
            }
        }
        best.ok_or_else(|| CoreError::InvalidBoundSet("no candidate bound sets".into()))
    }

    /// Like [`Self::best_bound_set`], but candidates are drawn only from
    /// `allowed` (intersected with the support). Used by hyper-function
    /// decomposition to keep pseudo primary inputs in the μ set
    /// (Section 4.3 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBoundSet`] if fewer than `k` allowed
    /// support variables exist or `k` is zero / not smaller than the
    /// support size.
    pub fn best_bound_set_among(
        &self,
        f: &TruthTable,
        k: usize,
        allowed: &[usize],
    ) -> Result<(Vec<usize>, usize), CoreError> {
        let support = f.support();
        let pool: Vec<usize> = support
            .iter()
            .copied()
            .filter(|v| allowed.contains(v))
            .collect();
        if k == 0 || k >= support.len() || pool.len() < k {
            return Err(CoreError::InvalidBoundSet(format!(
                "bound size {k} invalid for {} allowed support variables (support {})",
                pool.len(),
                support.len()
            )));
        }
        if pool == support {
            // An unrestricted pool is exactly best_bound_set's search, so
            // take the memoized path when a cache is attached. Restricted
            // pools stay uncached: the allowed set does not survive NPN
            // relabeling, so it cannot participate in the canonical key.
            if let Some(cache) = &self.cache {
                if cache.covers(f) {
                    return self.best_bound_set_cached(f, k, cache);
                }
            }
        }
        let candidates = self.candidates(&pool, k);
        self.select_best(f, candidates)
    }

    /// Counts compatible classes for every candidate (in parallel when
    /// worker threads are available) and reduces to the best bound set.
    ///
    /// The candidate fan-out is embarrassingly parallel: counts are pure
    /// per-candidate integers, workers on the BDD path each build a
    /// private manager, and the reduction walks the counts at their input
    /// indices — so the result is identical for any `HYDE_THREADS`.
    fn select_best(
        &self,
        f: &TruthTable,
        candidates: Vec<Vec<usize>>,
    ) -> Result<(Vec<usize>, usize), CoreError> {
        let _obs = hyde_obs::span!("varpart.select_best");
        hyde_obs::counter("varpart.candidates", candidates.len() as u64);
        if let Some(cap) = self.candidate_cap {
            if candidates.len() > cap {
                return Err(CoreError::OutOfBudget(hyde_guard::OutOfBudget::new(
                    hyde_guard::Resource::Candidates,
                    cap as u64,
                )));
            }
        }
        let threads = parallel::thread_count();
        let counts: Vec<Result<usize, CoreError>> = if f.vars() > self.bdd_threshold {
            parallel::map_chunked_init(
                "varpart.score",
                &candidates,
                threads,
                || {
                    let mut b = hyde_bdd::Bdd::with_capacity(f.vars(), 1 << 12);
                    // Cap only the root build: it is identical in every
                    // worker, so success or failure cannot depend on how
                    // candidates are chunked across threads.
                    b.set_node_cap(self.bdd_node_cap);
                    let root = b.guarded(|b| b.from_fn(|m| f.eval(m)));
                    b.set_node_cap(None);
                    (b, root)
                },
                |(b, root), cand| match root {
                    Ok(r) => {
                        // Candidate boundaries are GC safe points for the
                        // worker-private manager: only the root survives
                        // between candidates. No-op unless armed (the
                        // node cap above arms a growth-pressure trigger).
                        b.maybe_gc(&[*r]);
                        Ok(b.compatible_class_count(*r, cand))
                    }
                    Err(e) => Err(CoreError::OutOfBudget(*e)),
                },
            )
        } else {
            self.chart_scores(f, &candidates, threads)?
        };
        let mut best: Option<(Vec<usize>, usize)> = None;
        for (cand, count) in candidates.into_iter().zip(counts) {
            let count = count?;
            // Pruned candidates carry `usize::MAX`: provably worse than
            // the winner, so they can never take the argmin or a tie.
            let better = match &best {
                None => count != usize::MAX,
                Some((bb, bc)) => count < *bc || (count == *bc && cand < *bb),
            };
            if better {
                best = Some((cand, count));
            }
        }
        let mut best =
            best.ok_or_else(|| CoreError::InvalidBoundSet("no candidate bound sets".into()))?;
        if f.vars() > 6 && f.vars() <= self.bdd_threshold {
            // Certify the winner: the digest-based score can (with
            // ~2^-128 probability) understate the class count, so the
            // value handed onward is recounted exactly — one call per
            // search instead of one per candidate.
            best.1 = class_count(f, &best.0)?;
        }
        Ok(best)
    }

    /// Chart-path candidate scoring: exact packed class counts behind a
    /// branch-and-bound prune.
    ///
    /// A first parallel pass computes each candidate's cheap class-count
    /// floor ([`class_floor_with`]); candidates are then counted exactly
    /// in ascending-floor order so the running best drops fast, and any
    /// candidate whose floor strictly exceeds the best seen so far is
    /// skipped (score `usize::MAX`). The skip test is conservative at any
    /// thread interleaving — the shared best only decreases, so a skipped
    /// candidate's exact count strictly exceeds the final best and cannot
    /// win the argmin or tie with it — which keeps the selection
    /// byte-identical at every `HYDE_THREADS`.
    fn chart_scores(
        &self,
        f: &TruthTable,
        candidates: &[Vec<usize>],
        threads: usize,
    ) -> Result<Vec<Result<usize, CoreError>>, CoreError> {
        let floors: Vec<usize> = parallel::map_chunked_init(
            "varpart.floor",
            candidates,
            threads,
            ClassCountScratch::new,
            |scratch, cand| class_floor_with(f, cand, scratch),
        )
        .into_iter()
        .collect::<Result<_, _>>()?;
        // Score in lexicographic candidate order: consecutive candidates
        // then share long sorted prefixes, which is what lets the
        // per-worker [`PrefixScorer`] reuse its promotion stack.
        let mut items: Vec<usize> = (0..candidates.len()).collect();
        items.sort_unstable_by(|&x, &y| candidates[x].cmp(&candidates[y]));
        let best = std::sync::atomic::AtomicUsize::new(usize::MAX);
        let scored: Vec<Result<usize, CoreError>> = parallel::map_chunked_init(
            "varpart.score",
            &items,
            threads,
            || crate::chart::PrefixScorer::new(f),
            |scorer, &i| {
                if floors[i] > best.load(std::sync::atomic::Ordering::Relaxed) {
                    return Ok(usize::MAX);
                }
                let count = scorer.score(&candidates[i])?;
                // sa:allow(SA011): the bound only ever decreases and is
                // used for a strict-inequality skip, so any interleaving
                // yields the same argmin (see the doc comment above).
                best.fetch_min(count, std::sync::atomic::Ordering::Relaxed);
                Ok(count)
            },
        );
        let mut counts: Vec<Result<usize, CoreError>> =
            (0..candidates.len()).map(|_| Ok(usize::MAX)).collect();
        for (&i, res) in items.iter().zip(scored) {
            counts[i] = res;
        }
        Ok(counts)
    }

    /// Like [`Self::best_bound_set`] but only counts classes for one given
    /// bound set (convenience for evaluation loops).
    ///
    /// # Errors
    ///
    /// Propagates chart construction errors.
    pub fn count_classes(&self, f: &TruthTable, bound: &[usize]) -> Result<usize, CoreError> {
        class_count(f, bound)
    }

    fn candidates(&self, support: &[usize], k: usize) -> Vec<Vec<usize>> {
        let total = binomial(support.len(), k);
        match self.strategy {
            SearchStrategy::Exhaustive => combinations(support, k),
            SearchStrategy::Sampled { candidates, seed } => {
                sample_subsets(support, k, candidates, seed)
            }
            SearchStrategy::Auto { budget, seed } => {
                if total <= budget as u128 {
                    combinations(support, k)
                } else {
                    sample_subsets(support, k, budget, seed)
                }
            }
        }
    }
}

fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let mut r: u128 = 1;
    for i in 0..k.min(n - k) {
        r = r * (n - i) as u128 / (i + 1) as u128;
    }
    r
}

fn combinations(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    let n = items.len();
    loop {
        out.push(idx.iter().map(|&i| items[i]).collect());
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        if idx[i] == i + n - k {
            return out;
        }
        idx[i] += 1;
        for j in (i + 1)..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

fn sample_subsets(items: &[usize], k: usize, count: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 8 {
        attempts += 1;
        let mut pick: Vec<usize> = items.to_vec();
        pick.shuffle(&mut rng);
        pick.truncate(k);
        pick.sort_unstable();
        if seen.insert(pick.clone()) {
            out.push(pick);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(16, 5), 4368);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(7, 0), 1);
    }

    #[test]
    fn combinations_enumerate_all() {
        let c = combinations(&[10, 20, 30, 40], 2);
        assert_eq!(c.len(), 6);
        assert!(c.contains(&vec![10, 40]));
        assert!(c.contains(&vec![20, 30]));
    }

    #[test]
    fn finds_the_decomposable_bound() {
        let f = (TruthTable::var(6, 0) & TruthTable::var(6, 1) & TruthTable::var(6, 2))
            | (TruthTable::var(6, 3) & TruthTable::var(6, 4) & TruthTable::var(6, 5));
        let vp = VariablePartitioner::new(SearchStrategy::Exhaustive);
        let (bound, classes) = vp.best_bound_set(&f, 3).unwrap();
        assert_eq!(classes, 2);
        assert!(bound == vec![0, 1, 2] || bound == vec![3, 4, 5]);
    }

    #[test]
    fn sampled_strategy_is_deterministic() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let f = TruthTable::random(10, &mut rng);
        let vp = VariablePartitioner::new(SearchStrategy::Sampled {
            candidates: 30,
            seed: 11,
        });
        let a = vp.best_bound_set(&f, 4).unwrap();
        let b = vp.best_bound_set(&f, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn auto_matches_exhaustive_when_small() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(6);
        let f = TruthTable::random(7, &mut rng);
        let auto = VariablePartitioner::default()
            .best_bound_set(&f, 3)
            .unwrap();
        let exh = VariablePartitioner::new(SearchStrategy::Exhaustive)
            .best_bound_set(&f, 3)
            .unwrap();
        assert_eq!(auto, exh);
    }

    #[test]
    fn bdd_path_agrees_with_chart_path() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        let f = TruthTable::random(9, &mut rng);
        let chart_vp = VariablePartitioner {
            strategy: SearchStrategy::Exhaustive,
            bdd_threshold: 30,
            ..VariablePartitioner::default()
        };
        let bdd_vp = VariablePartitioner {
            strategy: SearchStrategy::Exhaustive,
            bdd_threshold: 1,
            ..VariablePartitioner::default()
        };
        let a = chart_vp.best_bound_set(&f, 3).unwrap();
        let b = bdd_vp.best_bound_set(&f, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_sizes() {
        let f = TruthTable::var(3, 0) & TruthTable::var(3, 1);
        let vp = VariablePartitioner::default();
        assert!(vp.best_bound_set(&f, 0).is_err());
        assert!(vp.best_bound_set(&f, 2).is_err()); // support is only 2
    }

    #[test]
    fn pruned_search_agrees_with_plain_search() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2024);
        let vp = VariablePartitioner::new(SearchStrategy::Exhaustive);
        for _ in 0..5 {
            let f = TruthTable::random(7, &mut rng);
            let plain = vp.best_bound_set(&f, 3).unwrap();
            let pruned = vp.best_bound_set_pruned(&f, 3).unwrap();
            assert_eq!(plain.1, pruned.1, "class counts must agree");
        }
        // Totally symmetric function: pruning is massive but the count is
        // identical.
        let sym = TruthTable::from_fn(9, |m| (3..=6).contains(&m.count_ones()));
        let plain = vp.best_bound_set(&sym, 4).unwrap();
        let pruned = vp.best_bound_set_pruned(&sym, 4).unwrap();
        assert_eq!(plain.1, pruned.1);
        assert_eq!(pruned.0, vec![0, 1, 2, 3]);
    }

    #[test]
    fn candidate_cap_fails_typed_not_silent() {
        let f = (TruthTable::var(6, 0) & TruthTable::var(6, 1) & TruthTable::var(6, 2))
            | (TruthTable::var(6, 3) & TruthTable::var(6, 4) & TruthTable::var(6, 5));
        // C(6,3) = 20 candidates; a cap of 5 must trip.
        let vp = VariablePartitioner::new(SearchStrategy::Exhaustive)
            .with_budget(&hyde_guard::Budget::unlimited().with_candidates(5));
        match vp.best_bound_set(&f, 3) {
            Err(CoreError::OutOfBudget(e)) => {
                assert_eq!(e.resource, hyde_guard::Resource::Candidates);
                assert_eq!(e.limit, 5);
            }
            other => panic!("expected OutOfBudget, got {other:?}"),
        }
        // A cap above the candidate count changes nothing.
        let roomy = VariablePartitioner::new(SearchStrategy::Exhaustive)
            .with_budget(&hyde_guard::Budget::unlimited().with_candidates(50));
        let plain = VariablePartitioner::new(SearchStrategy::Exhaustive);
        assert_eq!(
            roomy.best_bound_set(&f, 3).unwrap(),
            plain.best_bound_set(&f, 3).unwrap()
        );
    }

    #[test]
    fn bdd_node_cap_fails_typed_on_cut_count_path() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(31);
        let f = TruthTable::random(8, &mut rng);
        let vp = VariablePartitioner {
            strategy: SearchStrategy::Exhaustive,
            bdd_threshold: 1,      // force the BDD path
            bdd_node_cap: Some(8), // a random 8-var function won't fit
            ..VariablePartitioner::default()
        };
        match vp.best_bound_set(&f, 3) {
            Err(CoreError::OutOfBudget(e)) => {
                assert_eq!(e.resource, hyde_guard::Resource::BddNodes)
            }
            other => panic!("expected OutOfBudget, got {other:?}"),
        }
    }

    #[test]
    fn cached_search_matches_class_count_and_hits_npn_variants() {
        use crate::npn::{self, NpnTransform};
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let cache = Arc::new(crate::dcache::DecompCache::new());
        let plain = VariablePartitioner::new(SearchStrategy::Exhaustive);
        let cached = plain.clone().with_cache(cache.clone());
        let mut rng = StdRng::seed_from_u64(99);
        for n in [5usize, 7, 9] {
            let f = TruthTable::random(n, &mut rng);
            let (pb, pc) = plain.best_bound_set(&f, 3).unwrap();
            let (cb, cc) = cached.best_bound_set(&f, 3).unwrap();
            // Class counts must agree exactly; the bound may be a
            // different tie pick but must realize the same count.
            assert_eq!(pc, cc, "n={n}");
            assert_eq!(
                class_count(&f, &cb).unwrap(),
                class_count(&f, &pb).unwrap(),
                "n={n}"
            );
            // Repeat lookups are deterministic (warm equals first answer).
            assert_eq!(cached.best_bound_set(&f, 3).unwrap(), (cb.clone(), cc));
            // An NPN variant of f must hit the same entry and return the
            // same class count on its own variables.
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let t = NpnTransform {
                perm,
                input_neg: rng.gen::<u32>() & ((1 << n) - 1),
                output_neg: rng.gen(),
            };
            let g = npn::apply(&f, &t);
            let hits_before = cache.stats().hits;
            let (gb, gc) = cached.best_bound_set(&g, 3).unwrap();
            assert_eq!(gc, cc, "NPN variant class count n={n}");
            assert_eq!(class_count(&g, &gb).unwrap(), gc);
            if n <= 6 {
                // The exact canonizer guarantees orbit collapse, so the
                // variant must be answered from the cache.
                assert!(cache.stats().hits > hits_before, "expected a hit at n={n}");
            }
        }
        let s = cache.stats();
        assert!(s.misses >= 3 && s.entries >= 3, "stats: {s:?}");
    }

    #[test]
    fn cached_among_delegates_only_on_full_pool() {
        let cache = Arc::new(crate::dcache::DecompCache::new());
        let vp = VariablePartitioner::new(SearchStrategy::Exhaustive).with_cache(cache.clone());
        let f = (TruthTable::var(6, 0) & TruthTable::var(6, 1) & TruthTable::var(6, 2))
            | (TruthTable::var(6, 3) & TruthTable::var(6, 4) & TruthTable::var(6, 5));
        // Full pool: memoized (one miss, then a hit).
        let all: Vec<usize> = (0..6).collect();
        let a = vp.best_bound_set_among(&f, 3, &all).unwrap();
        let b = vp.best_bound_set_among(&f, 3, &all).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.stats().hits, 1);
        // Restricted pool: uncached, and the restriction is honored.
        let (bound, _) = vp.best_bound_set_among(&f, 3, &[1, 2, 3, 4]).unwrap();
        assert!(bound.iter().all(|v| [1, 2, 3, 4].contains(v)));
        assert_eq!(
            cache.stats().hits,
            1,
            "restricted pool must not touch the cache"
        );
    }

    #[test]
    fn ignores_vacuous_variables() {
        // f over 6 vars but depends only on 0..4.
        let f = (TruthTable::var(6, 0) & TruthTable::var(6, 1))
            | (TruthTable::var(6, 2) & TruthTable::var(6, 3));
        let vp = VariablePartitioner::new(SearchStrategy::Exhaustive);
        let (bound, classes) = vp.best_bound_set(&f, 2).unwrap();
        assert!(bound.iter().all(|&v| v < 4));
        assert_eq!(classes, 2);
    }
}
