//! OBDD-based functional decomposition.
//!
//! The paper performs decomposition on BDDs (following Lai/Pan/Pedram `[4]`
//! and the λ-set selection of `[2]`): with the bound variables cofactored
//! away, the distinct subfunctions below the cut are the compatible
//! classes. This module mirrors [`crate::decompose`] on that
//! representation, which lifts the truth-table width limit — functions are
//! decomposed symbolically and only the α functions (κ inputs) and the
//! image cofactor structure are enumerated.

use crate::encoding::{ceil_log2, CodeAssignment};
use crate::CoreError;
use hyde_bdd::{Bdd, Ref};
use std::collections::HashMap;

/// A disjoint decomposition computed on BDDs.
#[derive(Debug, Clone)]
pub struct BddDecomposition {
    /// Bound (λ) set variables.
    pub bound: Vec<usize>,
    /// α functions as BDDs over the *bound* variables (same manager).
    pub alphas: Vec<Ref>,
    /// The image function `g` as a BDD over the original manager extended
    /// with `alphas.len()` fresh α variables (see [`bdd_decompose`]).
    pub image: Ref,
    /// Index of the first α variable in the image manager.
    pub alpha_base: usize,
    /// Codes assigned to the compatible classes.
    pub codes: CodeAssignment,
    /// Compatible class of each bound-set assignment.
    pub class_of: Vec<usize>,
}

/// Decomposes `f` (owned by `bdd`) with respect to `bound`, strict
/// lexicographic encoding.
///
/// Returns a decomposition whose `image` lives in a *new* manager with
/// variables `0..n` copying the original order plus α variables appended at
/// `n..n+t`; the new manager is returned alongside.
///
/// # Errors
///
/// Returns [`CoreError::InvalidBoundSet`] for malformed bound sets.
// sa:allow(SA010): operates on the caller's manager, whose node cap
// (`set_node_cap`) already bounds every operation performed here.
pub fn bdd_decompose(
    bdd: &mut Bdd,
    f: Ref,
    bound: &[usize],
    codes: Option<&CodeAssignment>,
) -> Result<(BddDecomposition, Bdd), CoreError> {
    let n = bdd.num_vars();
    if bound.is_empty() || bound.len() >= n {
        return Err(CoreError::InvalidBoundSet(format!(
            "bound of size {} over {n} variables",
            bound.len()
        )));
    }
    let mut seen = std::collections::HashSet::new();
    for &v in bound {
        if v >= n || !seen.insert(v) {
            return Err(CoreError::InvalidBoundSet(format!(
                "variable {v} repeated or out of range"
            )));
        }
    }
    // Distinct cofactors = compatible classes.
    let subs = bdd.cut_subfunctions(f, bound);
    let mut class_of = Vec::with_capacity(subs.len());
    let mut reps: Vec<Ref> = Vec::new();
    let mut index: HashMap<Ref, usize> = HashMap::new();
    for &s in &subs {
        let next = reps.len();
        let id = *index.entry(s).or_insert(next);
        if id == next {
            reps.push(s);
        }
        class_of.push(id);
    }
    let m = reps.len();
    let t = ceil_log2(m);
    let codes = match codes {
        Some(c) => {
            if c.len() != m {
                return Err(CoreError::CodeSpaceTooSmall {
                    classes: m,
                    bits: c.bits(),
                });
            }
            c.clone()
        }
        None => CodeAssignment::new((0..m as u32).collect(), t.max(1))?,
    };
    let t = codes.bits();

    // α functions over the bound variables, built directly in `bdd`.
    let mut alphas = Vec::with_capacity(t);
    for bit in 0..t {
        let mut acc = bdd.zero();
        for (c, &cls) in class_of.iter().enumerate() {
            if codes.code(cls) >> bit & 1 != 1 {
                continue;
            }
            let mut cube = bdd.one();
            for (i, &v) in bound.iter().enumerate() {
                let lit = if c >> i & 1 == 1 {
                    bdd.var(v)
                } else {
                    bdd.nvar(v)
                };
                cube = bdd.and(cube, lit);
            }
            acc = bdd.or(acc, cube);
        }
        alphas.push(acc);
    }

    // Image manager: original variables plus α variables at the end.
    // g = OR over classes of (α-code cube ∧ class representative), where
    // representatives are independent of the bound variables.
    // Pre-size for the copied representatives: the image holds one copy of
    // each class representative plus the code cubes, all bounded by the
    // source manager's population.
    let mut gman = Bdd::with_capacity(n + t, bdd.len());
    let mut g = gman.zero();
    for (cls, &rep) in reps.iter().enumerate() {
        // Copy the representative into the new manager by structural
        // rebuild over the shared variable indices.
        let rep_copy = copy_into(bdd, rep, &mut gman);
        let mut cube = gman.one();
        for bit in 0..t {
            let lit = if codes.code(cls) >> bit & 1 == 1 {
                gman.var(n + bit)
            } else {
                gman.nvar(n + bit)
            };
            cube = gman.and(cube, lit);
        }
        let term = gman.and(cube, rep_copy);
        g = gman.or(g, term);
    }

    Ok((
        BddDecomposition {
            bound: bound.to_vec(),
            alphas,
            image: g,
            alpha_base: n,
            codes,
            class_of,
        },
        gman,
    ))
}

/// Structurally copies `f` from `src` into `dst` (same variable indices).
///
/// # Panics
///
/// Panics if `dst` has fewer variables than `src` uses.
pub fn copy_into(src: &Bdd, f: Ref, dst: &mut Bdd) -> Ref {
    let map: Vec<usize> = (0..src.num_vars()).collect();
    copy_into_mapped(src, f, dst, &map)
}

/// Structurally copies `f` from `src` into `dst`, renaming variable `v` to
/// `map[v]`. The map must be monotonically increasing on the support of
/// `f` so the ROBDD order is preserved during the copy.
///
/// # Panics
///
/// Panics if a mapped variable exceeds `dst`'s variable count.
pub fn copy_into_mapped(src: &Bdd, f: Ref, dst: &mut Bdd, map: &[usize]) -> Ref {
    let mut memo: HashMap<Ref, Ref> = HashMap::new();
    copy_rec(src, f, dst, map, &mut memo)
}

// sa:allow(SA010): structure-preserving copy — one node per source
// node, bounded by `compact_to_support`'s pre-sized destination.
fn copy_rec(src: &Bdd, f: Ref, dst: &mut Bdd, map: &[usize], memo: &mut HashMap<Ref, Ref>) -> Ref {
    if f == Ref::FALSE {
        return dst.zero();
    }
    if f == Ref::TRUE {
        return dst.one();
    }
    if let Some(&r) = memo.get(&f) {
        return r;
    }
    let (var, lo, hi) = src.node_parts(f);
    let lo_c = copy_rec(src, lo, dst, map, memo);
    let hi_c = copy_rec(src, hi, dst, map, memo);
    let v = dst.var(map[var]);
    let r = dst.ite(v, hi_c, lo_c);
    memo.insert(f, r);
    r
}

/// Compacts `f` onto its support: returns a new manager over exactly the
/// support variables (in order) plus the translated root, and the support
/// itself (`support[i]` is the old variable at new position `i`).
// sa:allow(SA010): a structure-preserving copy bounded by the source
// node count; it cannot allocate more nodes than already exist.
pub fn compact_to_support(src: &Bdd, f: Ref) -> (Bdd, Ref, Vec<usize>) {
    let support = src.support(f);
    let mut map = vec![usize::MAX; src.num_vars()];
    for (i, &v) in support.iter().enumerate() {
        map[v] = i;
    }
    // The compacted copy can't have more nodes than the source population.
    let mut dst = Bdd::with_capacity(support.len().max(1), src.node_count(f) + 2);
    let g = copy_into_mapped(src, f, &mut dst, &map);
    (dst, g, support)
}

/// Verifies a BDD decomposition by sampling (or exhausting) the input
/// space: `g(x, α(x_bound)) == f(x)`.
pub fn verify_bdd_decomposition(
    bdd: &Bdd,
    f: Ref,
    d: &BddDecomposition,
    gman: &Bdd,
    max_exhaustive_vars: usize,
) -> bool {
    let n = bdd.num_vars();
    let t = d.alphas.len();
    let check = |m: u32| -> bool {
        let mut g_in = u64::from(m);
        for (bit, &alpha) in d.alphas.iter().enumerate() {
            if bdd.eval(alpha, m) {
                g_in |= 1 << (n + bit);
            }
        }
        let _ = t;
        gman.eval(d.image, g_in as u32) == bdd.eval(f, m)
    };
    if n <= max_exhaustive_vars {
        (0..(1u32 << n)).all(check)
    } else {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xBDD);
        (0..4096).all(|_| check(rng.gen_range(0..(1u64 << n)) as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposes_and_verifies_small_function() {
        let mut bdd = Bdd::new(6);
        let f = bdd.from_fn(|m| (m & 0b111).count_ones() >= 2 || m >> 3 == 0b101);
        let (d, gman) = bdd_decompose(&mut bdd, f, &[0, 1, 2], None).unwrap();
        assert!(verify_bdd_decomposition(&bdd, f, &d, &gman, 20));
        assert!(d.codes.is_strict());
    }

    #[test]
    fn class_count_matches_chart_path() {
        use hyde_logic::TruthTable;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let tt = TruthTable::random(7, &mut rng);
        let mut bdd = Bdd::new(7);
        let f = bdd.from_fn(|m| tt.eval(m));
        let (d, _) = bdd_decompose(&mut bdd, f, &[1, 3, 5], None).unwrap();
        let chart_classes = crate::chart::class_count(&tt, &[1, 3, 5]).unwrap();
        let bdd_classes = d
            .class_of
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert_eq!(chart_classes, bdd_classes);
    }

    #[test]
    fn custom_codes_accepted() {
        let mut bdd = Bdd::new(5);
        let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
        // Parity has 2 classes under any bound.
        let codes = CodeAssignment::new(vec![1, 0], 1).unwrap();
        let (d, gman) = bdd_decompose(&mut bdd, f, &[0, 1], Some(&codes)).unwrap();
        assert_eq!(d.codes.codes(), &[1, 0]);
        assert!(verify_bdd_decomposition(&bdd, f, &d, &gman, 20));
    }

    #[test]
    fn wrong_code_count_rejected() {
        let mut bdd = Bdd::new(5);
        let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
        let codes = CodeAssignment::new(vec![0, 1, 2], 2).unwrap();
        assert!(bdd_decompose(&mut bdd, f, &[0, 1], Some(&codes)).is_err());
    }

    #[test]
    fn wide_function_decomposes_symbolically() {
        // 18 variables: far beyond comfortable chart materialization per
        // candidate, trivial for the BDD path.
        let mut bdd = Bdd::new(18);
        let mut f = bdd.zero();
        // f = AND of pairs ORed together: (x0&x1) | (x2&x3) | ...
        for i in (0..18).step_by(2) {
            let a = bdd.var(i);
            let b = bdd.var(i + 1);
            let ab = bdd.and(a, b);
            f = bdd.or(f, ab);
        }
        let (d, gman) = bdd_decompose(&mut bdd, f, &[0, 1, 2, 3], None).unwrap();
        // Classes: pairs (x0&x1)|(x2&x3) has 2 classes: "already true" and
        // "not yet true".
        let classes = d
            .class_of
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert_eq!(classes, 2);
        assert!(verify_bdd_decomposition(&bdd, f, &d, &gman, 0));
    }

    #[test]
    fn copy_into_preserves_semantics() {
        let mut a = Bdd::new(5);
        let f = a.from_fn(|m| m % 3 == 0);
        let mut b = Bdd::new(7);
        let g = copy_into(&a, f, &mut b);
        for m in 0u32..32 {
            assert_eq!(a.eval(f, m), b.eval(g, m));
        }
    }

    #[test]
    fn invalid_bounds_rejected() {
        let mut bdd = Bdd::new(4);
        let f = bdd.from_fn(|m| m == 3);
        assert!(bdd_decompose(&mut bdd, f, &[], None).is_err());
        assert!(bdd_decompose(&mut bdd, f, &[0, 0], None).is_err());
        assert!(bdd_decompose(&mut bdd, f, &[0, 1, 2, 3], None).is_err());
        assert!(bdd_decompose(&mut bdd, f, &[9], None).is_err());
    }
}
