//! Hyper-function decomposition (Section 4 of the HYDE paper).
//!
//! A set of `n` distinct functions (*ingredients*) over a shared input
//! space is folded into one single-output *hyper-function* by `⌈log₂ n⌉`
//! *pseudo primary inputs* (Definition 4.1). Single-output decomposition of
//! the hyper-function then extracts sub-logic common to the outputs; only
//! the *duplication cone* — the transitive fanout of nodes fed by pseudo
//! inputs (Definitions 4.2–4.4) — must be replicated per ingredient, with
//! the pseudo inputs collapsed to that ingredient's code (Section 4.2).
//!
//! The ingredient codes are chosen by the same compatible-class encoding
//! machinery (Theorems 4.1/4.2 extend Theorems 3.1/3.2 to this setting):
//! ingredients play the role of compatible class functions.

use crate::classes::CompatibleClasses;
use crate::decompose::{DecomposeStats, Decomposer};
use crate::encoding::{build_image, CodeAssignment, EncoderKind};
use crate::CoreError;
use hyde_logic::network::structural_merge;
use hyde_logic::{Network, NodeId, NodeRole, TruthTable};
use std::collections::HashSet;

/// A hyper-function built from ingredient functions.
///
/// Variable layout of [`HyperFunction::table`]: variables `0..pseudo_bits`
/// are the pseudo primary inputs `η_0..`, variables
/// `pseudo_bits..pseudo_bits + num_inputs` are the shared real inputs.
///
/// # Example
///
/// ```
/// use hyde_core::hyper::HyperFunction;
/// use hyde_core::encoding::EncoderKind;
/// use hyde_logic::TruthTable;
///
/// let f0 = TruthTable::var(3, 0) & TruthTable::var(3, 1);
/// let f1 = TruthTable::var(3, 1) | TruthTable::var(3, 2);
/// let h = HyperFunction::new(vec![f0.clone(), f1], &EncoderKind::Lexicographic, 5).unwrap();
/// assert_eq!(h.pseudo_bits(), 1);
/// assert_eq!(h.recover(0), f0);
/// ```
#[derive(Debug, Clone)]
pub struct HyperFunction {
    ingredients: Vec<TruthTable>,
    num_inputs: usize,
    pseudo_bits: usize,
    codes: CodeAssignment,
    table: TruthTable,
    dc: TruthTable,
}

impl HyperFunction {
    /// Builds a hyper-function from distinct ingredients over the same
    /// input space, encoding the ingredients with `encoder` (κ = `k`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBoundSet`] if `ingredients` is empty or
    /// the ingredients disagree in arity; duplicate ingredients are
    /// rejected too (Definition 4.1 requires distinct functions).
    pub fn new(
        ingredients: Vec<TruthTable>,
        encoder: &EncoderKind,
        k: usize,
    ) -> Result<Self, CoreError> {
        if ingredients.is_empty() {
            return Err(CoreError::InvalidBoundSet("no ingredients".into()));
        }
        let u = ingredients[0].vars();
        if ingredients.iter().any(|f| f.vars() != u) {
            return Err(CoreError::InvalidBoundSet(
                "ingredients must share one input space".into(),
            ));
        }
        let distinct: HashSet<&TruthTable> = ingredients.iter().collect();
        if distinct.len() != ingredients.len() {
            return Err(CoreError::InvalidBoundSet(
                "ingredients must be distinct functions".into(),
            ));
        }
        let _obs = hyde_obs::span!("hyper.fold");
        // Ingredients as "compatible classes": reuse the encoder machinery.
        let classes =
            CompatibleClasses::from_parts((0..ingredients.len()).collect(), ingredients.clone());
        let codes = encoder.build().encode(&classes, k)?;
        let (table, dc) = build_image(&classes, &codes);
        let h = HyperFunction {
            ingredients,
            num_inputs: u,
            pseudo_bits: codes.bits(),
            codes,
            table,
            dc,
        };
        // Invariant gate (HY203): every ingredient must be recoverable by
        // collapsing the pseudo inputs to its code. Active in debug builds
        // and in release builds with `strict-checks`.
        #[cfg(any(debug_assertions, feature = "strict-checks"))]
        for i in 0..h.ingredients.len() {
            assert_eq!(
                h.recover(i),
                h.ingredients[i],
                "HY203: ingredient {i} does not recover from the hyper-function"
            );
        }
        Ok(h)
    }

    /// The ingredient functions.
    pub fn ingredients(&self) -> &[TruthTable] {
        &self.ingredients
    }

    /// Number of shared real inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of pseudo primary inputs (`⌈log₂ n⌉` for rigid encodings).
    pub fn pseudo_bits(&self) -> usize {
        self.pseudo_bits
    }

    /// The ingredient codes.
    pub fn codes(&self) -> &CodeAssignment {
        &self.codes
    }

    /// The hyper-function truth table (pseudo inputs are variables
    /// `0..pseudo_bits`).
    pub fn table(&self) -> &TruthTable {
        &self.table
    }

    /// Don't-care set (pseudo-input codes assigned to no ingredient).
    pub fn dc_set(&self) -> &TruthTable {
        &self.dc
    }

    /// Flips one minterm of the hyper-function table.
    ///
    /// This deliberately breaks the recovery invariant; it exists so the
    /// `hyde-verify` mutation tests can exercise the `HY203` lint. Never
    /// use it in flows.
    #[doc(hidden)]
    pub fn corrupt_table_bit(&mut self, minterm: u32) {
        let v = self.table.eval(minterm);
        self.table.set(minterm, !v);
    }

    /// Proof hook: ingredient `idx`'s code as `(pseudo_var, value)`
    /// unit constraints over the hyper-table variable space, ready to be
    /// asserted as SAT assumptions or BDD cofactors.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn code_units(&self, idx: usize) -> Vec<(usize, bool)> {
        let code = self.codes.code(idx);
        (0..self.pseudo_bits)
            .map(|bit| (bit, code >> bit & 1 == 1))
            .collect()
    }

    /// Recovers ingredient `idx` by cofactoring the pseudo inputs to its
    /// code — must equal the original ingredient.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn recover(&self, idx: usize) -> TruthTable {
        let code = self.codes.code(idx);
        let mut f = self.table.clone();
        for bit in 0..self.pseudo_bits {
            f = f.cofactor(bit, code >> bit & 1 == 1);
        }
        hyde_logic::network::project_to_support(
            &f,
            &(self.pseudo_bits..self.pseudo_bits + self.num_inputs).collect::<Vec<_>>(),
        )
    }

    /// Decomposes the hyper-function into a κ-feasible network whose
    /// primary inputs are `eta0..` (pseudo) followed by `x0..` (real).
    ///
    /// # Errors
    ///
    /// Propagates decomposition errors.
    pub fn decompose(&self, dec: &Decomposer) -> Result<HyperNetwork, CoreError> {
        let _obs = hyde_obs::span!("hyper.decompose");
        let mut net = Network::new("hyper");
        let mut signals = Vec::new();
        let mut pseudo_inputs = Vec::new();
        for b in 0..self.pseudo_bits {
            let id = net.add_input(&format!("eta{b}"));
            pseudo_inputs.push(id);
            signals.push(id);
        }
        for i in 0..self.num_inputs {
            signals.push(net.add_input(&format!("x{i}")));
        }
        let mut stats = DecomposeStats::default();
        // Keep pseudo primary inputs in the μ set wherever possible so the
        // duplication cone stays small (Section 4.3).
        let avoid: std::collections::HashSet<NodeId> = pseudo_inputs.iter().copied().collect();
        let out =
            dec.decompose_onto_avoiding(&mut net, &self.table, &signals, &avoid, "F", &mut stats)?;
        net.mark_output("F", out);
        Ok(HyperNetwork {
            hyper: self.clone(),
            network: net,
            pseudo_inputs,
            stats,
        })
    }
}

/// A decomposed hyper-function network plus its duplication analysis.
#[derive(Debug, Clone)]
pub struct HyperNetwork {
    hyper: HyperFunction,
    /// The κ-feasible network computing the hyper-function.
    pub network: Network,
    /// The pseudo primary input nodes (`η`).
    pub pseudo_inputs: Vec<NodeId>,
    /// Decomposition statistics.
    pub stats: DecomposeStats,
}

impl HyperNetwork {
    /// The hyper-function this network implements.
    pub fn hyper(&self) -> &HyperFunction {
        &self.hyper
    }

    /// Duplication source (Definition 4.3): nodes with at least one pseudo
    /// primary input as a direct fanin.
    pub fn duplication_source(&self) -> Vec<NodeId> {
        let pseudo: HashSet<NodeId> = self.pseudo_inputs.iter().copied().collect();
        self.network
            .node_ids()
            .into_iter()
            .filter(|&id| {
                self.network.role(id) == NodeRole::Internal
                    && self.network.fanins(id).iter().any(|f| pseudo.contains(f))
            })
            .collect()
    }

    /// Duplication cone (Definition 4.4): union of transitive fanouts of
    /// the duplication source.
    pub fn duplication_cone(&self) -> Vec<NodeId> {
        let mut cone: HashSet<NodeId> = HashSet::new();
        for src in self.duplication_source() {
            cone.extend(self.network.transitive_fanout(src));
        }
        // sa:allow(SA001): collected then sorted, so order cannot leak.
        let mut out: Vec<NodeId> = cone.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// `m`-th layer duplication set (Definition 4.5): nodes in the
    /// transitive fanout of exactly `m` pseudo primary inputs.
    pub fn dset(&self, m: usize) -> Vec<NodeId> {
        let mut count: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
        for &eta in &self.pseudo_inputs {
            for id in self.network.transitive_fanout(eta) {
                if self.network.role(id) == NodeRole::Internal {
                    *count.entry(id).or_insert(0) += 1;
                }
            }
        }
        // sa:allow(SA001): collected then sorted, so order cannot leak.
        let mut out: Vec<NodeId> = count
            .into_iter()
            .filter(|&(_, c)| c == m)
            .map(|(id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Proof hook: ingredient `idx`'s code as `(pseudo_node, value)`
    /// unit constraints over the decomposed network's pseudo primary
    /// inputs. A constant-collapse proof asserts these units and checks
    /// the hyper output against the implemented ingredient output.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn ingredient_units(&self, idx: usize) -> Vec<(NodeId, bool)> {
        let code = self.hyper.codes().code(idx);
        self.pseudo_inputs
            .iter()
            .enumerate()
            .map(|(bit, &eta)| (eta, code >> bit & 1 == 1))
            .collect()
    }

    /// Predicted number of LUTs after implementing every ingredient, using
    /// the paper's duplication arithmetic: a node in `DSet_m` (`m < n`)
    /// needs `2^m − 1` extra copies, a node in `DSet_n` needs
    /// `ingredients − 1` extras, and everything outside the cone is shared.
    ///
    /// This is an upper bound: constant collapapse usually erases part of the
    /// cone (compare with [`HyperNetwork::implement_ingredients`]).
    pub fn predicted_lut_bound(&self) -> usize {
        let n = self.pseudo_inputs.len();
        let base = self.network.internal_count();
        let mut extra = 0usize;
        for m in 1..=n {
            let copies = if m == n {
                self.hyper.ingredients().len().saturating_sub(1)
            } else {
                (1usize << m) - 1
            };
            extra += self.dset(m).len() * copies;
        }
        base + extra
    }

    /// Implements every ingredient: clones the network per ingredient,
    /// collapses the pseudo inputs to that ingredient's code, sweeps, and
    /// structurally merges the results so logic outside the duplication
    /// cone is shared (Section 4.2 / Example 4.1).
    ///
    /// # Errors
    ///
    /// Propagates network manipulation failures.
    pub fn implement_ingredients(&self) -> Result<Network, CoreError> {
        let _obs = hyde_obs::span!("hyper.implement");
        hyde_obs::counter("hyper.ingredients", self.hyper.ingredients().len() as u64);
        // Each ingredient collapse works on its own clone, so the fan-out
        // runs on worker threads; results land at their ingredient index
        // and the structural merge below walks them in that order, keeping
        // the network byte-identical for any HYDE_THREADS.
        let indices: Vec<usize> = (0..self.hyper.ingredients().len()).collect();
        let threads = crate::parallel::thread_count();
        let parts: Vec<Network> = crate::parallel::map_chunked(
            "hyper.collapse",
            &indices,
            threads,
            |&idx| -> Result<Network, CoreError> {
                let code = self.hyper.codes().code(idx);
                let mut net = self.network.clone();
                for (bit, &eta) in self.pseudo_inputs.iter().enumerate() {
                    net.collapse_input_constant(eta, code >> bit & 1 == 1)?;
                }
                net.sweep();
                net.rename_outputs(|_| format!("f{idx}"));
                Ok(net)
            },
        )
        .into_iter()
        .collect::<Result<_, _>>()?;
        let refs: Vec<&Network> = parts.iter().collect();
        let mut merged = structural_merge("ingredients", &refs);
        merged.sweep();
        // Invariant gate (HY201): every pseudo input must have been
        // collapsed away; none may survive into the merged implementation.
        // Active in debug builds and in release builds with `strict-checks`.
        #[cfg(any(debug_assertions, feature = "strict-checks"))]
        assert!(
            merged
                .inputs()
                .iter()
                .all(|&id| !merged.node_name(id).starts_with("eta")),
            "HY201: a pseudo primary input leaked into the implemented network"
        );
        Ok(merged)
    }

    /// Time-multiplexed implementation (the paper's conclusion): keep the
    /// decomposed hyper network as-is and drive the pseudo primary inputs
    /// as *mode* pins at run time — no duplication cone replication at all.
    ///
    /// Returns the network (a clone) whose first inputs are the mode pins;
    /// selecting mode `codes().code(i)` makes the single output compute
    /// ingredient `i`.
    pub fn time_multiplexed(&self) -> TimeMultiplexed {
        TimeMultiplexed {
            network: self.network.clone(),
            mode_inputs: self.pseudo_inputs.clone(),
            codes: self.hyper.codes().clone(),
        }
    }

    /// LUTs of the time-multiplexed implementation — always exactly the
    /// hyper network's size, independent of the duplication cone.
    pub fn time_multiplexed_lut_count(&self) -> usize {
        self.network.internal_count()
    }

    /// Convenience: LUT count of [`HyperNetwork::implement_ingredients`].
    ///
    /// # Errors
    ///
    /// Propagates implementation failures.
    pub fn implemented_lut_count(&self) -> Result<usize, CoreError> {
        Ok(self.implement_ingredients()?.internal_count())
    }

    /// Verifies that every implemented output matches its ingredient.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Verification`] on any mismatch.
    pub fn verify_ingredients(&self) -> Result<(), CoreError> {
        let merged = self.implement_ingredients()?;
        let _obs = hyde_obs::span!("hyper.verify");
        let u = self.hyper.num_inputs();
        // Map merged PIs (subset of x0..) by name to variable positions.
        let pi_positions: Vec<usize> = merged
            .inputs()
            .iter()
            .map(|&id| {
                let name = merged.node_name(id);
                name.strip_prefix('x')
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| {
                        CoreError::Verification(format!(
                            "implemented input '{name}' is not named x<i>"
                        ))
                    })
            })
            .collect::<Result<_, _>>()?;
        // Scan the minterm space in contiguous blocks on worker threads;
        // evaluation is pure per minterm. Blocks report their first
        // mismatch, and walking the reports in block order reproduces the
        // sequential scan's error exactly.
        let total = 1u32 << u;
        let threads = crate::parallel::thread_count();
        let block = total.div_ceil(threads as u32).max(1);
        let ranges: Vec<(u32, u32)> = (0..threads as u32)
            .map(|i| (i * block, ((i + 1) * block).min(total)))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let first_bad =
            crate::parallel::map_chunked("hyper.scan", &ranges, threads, |&(lo, hi)| {
                for m in lo..hi {
                    let bits: Vec<bool> = pi_positions.iter().map(|&p| m >> p & 1 == 1).collect();
                    let got = merged.eval(&bits);
                    for (o, &g) in got.iter().enumerate() {
                        if g != self.hyper.ingredients()[o].eval(m) {
                            return Some((o, m));
                        }
                    }
                }
                None
            });
        if let Some((o, m)) = first_bad.into_iter().flatten().next() {
            return Err(CoreError::Verification(format!(
                "ingredient {o} differs at minterm {m}"
            )));
        }
        Ok(())
    }
}

/// A time-multiplexed realization of a hyper-function: one physical copy
/// of the logic whose mode pins select which ingredient it computes
/// (the reconfigurable-computing application sketched in the paper's
/// conclusion).
#[derive(Debug, Clone)]
pub struct TimeMultiplexed {
    /// The κ-feasible network; mode pins are ordinary primary inputs.
    pub network: Network,
    /// The mode (pseudo primary input) pins.
    pub mode_inputs: Vec<NodeId>,
    /// Mode code of each ingredient.
    pub codes: CodeAssignment,
}

impl TimeMultiplexed {
    /// Evaluates ingredient `idx` on `real_inputs` (in `x0..` order) by
    /// driving the mode pins with the ingredient's code.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or `real_inputs` has the wrong
    /// length.
    pub fn eval_ingredient(&self, idx: usize, real_inputs: &[bool]) -> bool {
        let code = self.codes.code(idx);
        let mode_count = self.mode_inputs.len();
        assert_eq!(
            real_inputs.len(),
            self.network.inputs().len() - mode_count,
            "wrong number of real input values"
        );
        let mut values = Vec::with_capacity(self.network.inputs().len());
        for b in 0..mode_count {
            values.push(code >> b & 1 == 1);
        }
        values.extend_from_slice(real_inputs);
        self.network.eval(&values)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_ingredients() -> Vec<TruthTable> {
        vec![
            TruthTable::var(4, 0) & TruthTable::var(4, 1),
            TruthTable::var(4, 1) | TruthTable::var(4, 2),
            TruthTable::var(4, 0) ^ TruthTable::var(4, 3),
            TruthTable::from_fn(4, |m| m.count_ones() >= 3),
        ]
    }

    #[test]
    fn construction_and_recovery() {
        let ing = sample_ingredients();
        let h = HyperFunction::new(ing.clone(), &EncoderKind::Lexicographic, 5).unwrap();
        assert_eq!(h.pseudo_bits(), 2);
        assert_eq!(h.num_inputs(), 4);
        for (i, f) in ing.iter().enumerate() {
            assert_eq!(h.recover(i), *f, "ingredient {i}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(HyperFunction::new(vec![], &EncoderKind::Lexicographic, 5).is_err());
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(3, 0);
        assert!(HyperFunction::new(vec![a.clone(), b], &EncoderKind::Lexicographic, 5).is_err());
        assert!(HyperFunction::new(vec![a.clone(), a], &EncoderKind::Lexicographic, 5).is_err());
    }

    #[test]
    fn dc_covers_unused_codes() {
        // 3 ingredients need 2 bits; one code unused.
        let ing = sample_ingredients()[..3].to_vec();
        let h = HyperFunction::new(ing, &EncoderKind::Lexicographic, 5).unwrap();
        assert!(!h.dc_set().is_zero());
        assert_eq!(h.dc_set().count_ones(), 1 << h.num_inputs());
    }

    #[test]
    fn decompose_and_analyze_cone() {
        let ing = sample_ingredients();
        let h = HyperFunction::new(ing, &EncoderKind::Hyde { seed: 3 }, 5).unwrap();
        let dec = Decomposer::new(5, EncoderKind::Hyde { seed: 3 });
        let hn = h.decompose(&dec).unwrap();
        assert!(hn.network.is_k_feasible(5) || hn.network.is_k_feasible(5));
        let ds = hn.duplication_source();
        let cone = hn.duplication_cone();
        // Every source node is in the cone.
        for s in &ds {
            assert!(cone.contains(s));
        }
        // DSets partition the internal cone nodes by pseudo-input reach.
        let total: usize = (1..=hn.pseudo_inputs.len()).map(|m| hn.dset(m).len()).sum();
        let internal_cone = cone
            .iter()
            .filter(|&&id| hn.network.role(id) == NodeRole::Internal)
            .count();
        assert_eq!(total, internal_cone);
        assert!(hn.predicted_lut_bound() >= hn.network.internal_count());
    }

    #[test]
    fn implement_ingredients_is_correct() {
        let ing = sample_ingredients();
        let h = HyperFunction::new(ing.clone(), &EncoderKind::Lexicographic, 5).unwrap();
        let dec = Decomposer::new(5, EncoderKind::Lexicographic);
        let hn = h.decompose(&dec).unwrap();
        hn.verify_ingredients().unwrap();
        let merged = hn.implement_ingredients().unwrap();
        assert_eq!(merged.outputs().len(), ing.len());
        assert!(merged.is_k_feasible(5));
    }

    #[test]
    fn sharing_beats_duplication_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(40);
        let ing: Vec<TruthTable> = (0..4).map(|_| TruthTable::random(6, &mut rng)).collect();
        let h = HyperFunction::new(ing, &EncoderKind::Hyde { seed: 9 }, 5).unwrap();
        let dec = Decomposer::new(5, EncoderKind::Hyde { seed: 9 });
        let hn = h.decompose(&dec).unwrap();
        let implemented = hn.implemented_lut_count().unwrap();
        assert!(
            implemented <= hn.predicted_lut_bound(),
            "constant collapse must not exceed the duplication arithmetic"
        );
    }

    #[test]
    fn time_multiplexed_uses_no_duplication() {
        let ing = sample_ingredients();
        let h = HyperFunction::new(ing.clone(), &EncoderKind::Hyde { seed: 5 }, 5).unwrap();
        let dec = Decomposer::new(5, EncoderKind::Hyde { seed: 5 });
        let hn = h.decompose(&dec).unwrap();
        let tm = hn.time_multiplexed();
        assert_eq!(tm.network.internal_count(), hn.time_multiplexed_lut_count());
        // Never more than the duplicated implementation's bound; usually
        // much less when the cone is non-trivial.
        assert!(hn.time_multiplexed_lut_count() <= hn.predicted_lut_bound());
        // Functional check per mode.
        for (i, f) in ing.iter().enumerate() {
            for m in 0u32..16 {
                let bits: Vec<bool> = (0..4).map(|v| m >> v & 1 == 1).collect();
                assert_eq!(tm.eval_ingredient(i, &bits), f.eval(m), "mode {i} m {m}");
            }
        }
    }

    #[test]
    fn two_ingredients_single_pseudo_input() {
        let a = TruthTable::var(3, 0) & TruthTable::var(3, 1);
        let b = TruthTable::var(3, 0) ^ TruthTable::var(3, 2);
        let h =
            HyperFunction::new(vec![a.clone(), b.clone()], &EncoderKind::Lexicographic, 4).unwrap();
        assert_eq!(h.pseudo_bits(), 1);
        // Hyper table: eta=0 -> a, eta=1 -> b (lexicographic codes).
        for m in 0u32..8 {
            assert_eq!(h.table().eval(m << 1), a.eval(m));
            assert_eq!(h.table().eval((m << 1) | 1), b.eval(m));
        }
    }
}
