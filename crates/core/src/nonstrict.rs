//! Non-strict encodings (Section 2 and Section 4.3 of the paper).
//!
//! A *strict* encoding gives every compatible class exactly one code; a
//! *non-strict* encoding may give a class several codes. The paper notes
//! that hyper-function decomposition naturally produces non-strict
//! per-ingredient encodings: a strict encoding of the hyper-function's
//! classes splits, from one ingredient's point of view, a single class over
//! several codes (the conjunction partition broke its patterns apart).
//!
//! [`NonStrictAssignment`] models code *sets* per class, the induced α
//! functions (each bound assignment picks one concrete code), and the
//! image construction whose extra code points become don't cares.

use crate::classes::CompatibleClasses;
use crate::encoding::CodeAssignment;
use crate::CoreError;
use hyde_logic::TruthTable;
use std::collections::{HashMap, HashSet};

/// A (possibly) non-strict encoding: each class owns a non-empty set of
/// codes, and each chart column is pinned to one concrete code of its
/// class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonStrictAssignment {
    /// Code sets per class.
    code_sets: Vec<Vec<u32>>,
    /// Concrete code per chart column (must belong to the column's class).
    column_code: Vec<u32>,
    bits: usize,
}

impl NonStrictAssignment {
    /// Builds a non-strict assignment.
    ///
    /// `code_sets[cls]` lists the codes owned by class `cls`;
    /// `column_code[c]` is the code used at bound assignment `c` and must
    /// be a member of `code_sets[class_of[c]]`. Code sets must be disjoint
    /// across classes (otherwise the α functions could not identify a
    /// class function for some code).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CodeSpaceTooSmall`] when codes collide, exceed
    /// `bits`, a set is empty, or a column uses a foreign code.
    pub fn new(
        code_sets: Vec<Vec<u32>>,
        column_code: Vec<u32>,
        class_of: &[usize],
        bits: usize,
    ) -> Result<Self, CoreError> {
        let too_small = || CoreError::CodeSpaceTooSmall {
            classes: code_sets.len(),
            bits,
        };
        let mut seen: HashSet<u32> = HashSet::new();
        for set in &code_sets {
            if set.is_empty() {
                return Err(too_small());
            }
            for &c in set {
                if c as usize >= 1usize << bits || !seen.insert(c) {
                    return Err(too_small());
                }
            }
        }
        if column_code.len() != class_of.len() {
            return Err(too_small());
        }
        for (col, (&code, &cls)) in column_code.iter().zip(class_of).enumerate() {
            if !code_sets.get(cls).is_some_and(|s| s.contains(&code)) {
                return Err(CoreError::InvalidBoundSet(format!(
                    "column {col} uses code {code} outside its class {cls}"
                )));
            }
        }
        Ok(NonStrictAssignment {
            code_sets,
            column_code,
            bits,
        })
    }

    /// Lifts a strict assignment over a column map.
    pub fn from_strict(codes: &CodeAssignment, class_of: &[usize]) -> Self {
        NonStrictAssignment {
            code_sets: codes.codes().iter().map(|&c| vec![c]).collect(),
            column_code: class_of.iter().map(|&cls| codes.code(cls)).collect(),
            bits: codes.bits(),
        }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.code_sets.len()
    }

    /// Whether there are no classes.
    pub fn is_empty(&self) -> bool {
        self.code_sets.is_empty()
    }

    /// Code bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Whether the encoding is strict (every class has exactly one code).
    pub fn is_strict(&self) -> bool {
        self.code_sets.iter().all(|s| s.len() == 1)
    }

    /// The code sets.
    pub fn code_sets(&self) -> &[Vec<u32>] {
        &self.code_sets
    }

    /// α functions over `bound_vars` bound variables: bit `b` of the code
    /// chosen at each column.
    ///
    /// # Panics
    ///
    /// Panics if `column_code.len() != 2^bound_vars`.
    pub fn alphas(&self, bound_vars: usize) -> Vec<TruthTable> {
        assert_eq!(self.column_code.len(), 1 << bound_vars, "column count");
        (0..self.bits)
            .map(|bit| {
                TruthTable::from_fn(bound_vars, |c| self.column_code[c as usize] >> bit & 1 == 1)
            })
            .collect()
    }

    /// Image `(on, dc)` over `bits + μ` variables: every code of a class
    /// maps to the class function; unused code points are don't care.
    ///
    /// # Panics
    ///
    /// Panics if `classes.len() != self.len()`.
    pub fn build_image(&self, classes: &CompatibleClasses) -> (TruthTable, TruthTable) {
        assert_eq!(classes.len(), self.len(), "one code set per class");
        let mu = classes.class_fn(0).vars();
        let mut by_code: HashMap<u32, usize> = HashMap::new();
        for (cls, set) in self.code_sets.iter().enumerate() {
            for &c in set {
                by_code.insert(c, cls);
            }
        }
        let vars = self.bits + mu;
        let mask = (1u32 << self.bits) - 1;
        let on = TruthTable::from_fn(vars, |m| {
            by_code
                .get(&(m & mask))
                .is_some_and(|&cls| classes.class_fn(cls).eval(m >> self.bits))
        });
        let dc = TruthTable::from_fn(vars, |m| !by_code.contains_key(&(m & mask)));
        (on, dc)
    }

    /// Verifies the decomposition against `f` (chart semantics: bound
    /// variables in column-bit order, free variables ascending).
    pub fn verify(&self, f: &TruthTable, bound: &[usize], classes: &CompatibleClasses) -> bool {
        let alphas = self.alphas(bound.len());
        let (on, _) = self.build_image(classes);
        let free: Vec<usize> = (0..f.vars()).filter(|v| !bound.contains(v)).collect();
        for m in 0..f.num_minterms() as u32 {
            let mut x = 0u32;
            for (i, &v) in bound.iter().enumerate() {
                if m >> v & 1 == 1 {
                    x |= 1 << i;
                }
            }
            let mut g_in = 0u32;
            for (bit, alpha) in alphas.iter().enumerate() {
                if alpha.eval(x) {
                    g_in |= 1 << bit;
                }
            }
            for (i, &v) in free.iter().enumerate() {
                if m >> v & 1 == 1 {
                    g_in |= 1 << (self.bits + i);
                }
            }
            if on.eval(g_in) != f.eval(m) {
                return false;
            }
        }
        true
    }
}

/// Extracts, from a strict encoding of a hyper-function's joint classes,
/// the per-ingredient view: the ingredient's own classes and the
/// (generally non-strict) code sets they receive. This is the §4.3
/// observation made computational.
///
/// `joint_class_of[c]` and `joint_codes` describe the hyper-function
/// encoding; `ingredient_class_of[c]` are the ingredient's own classes.
pub fn per_ingredient_view(
    joint_class_of: &[usize],
    joint_codes: &CodeAssignment,
    ingredient_class_of: &[usize],
) -> Vec<Vec<u32>> {
    assert_eq!(joint_class_of.len(), ingredient_class_of.len());
    let n_classes = ingredient_class_of.iter().max().map_or(0, |m| m + 1);
    let mut sets: Vec<HashSet<u32>> = vec![HashSet::new(); n_classes];
    for (c, &own_cls) in ingredient_class_of.iter().enumerate() {
        sets[own_cls].insert(joint_codes.code(joint_class_of[c]));
    }
    // sa:allow(SA001): `sets` is a Vec visited in index order; each inner
    // set is sorted after collection.
    sets.into_iter()
        .map(|s| {
            let mut v: Vec<u32> = s.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::DecompositionChart;
    use rand::SeedableRng;

    #[test]
    fn strict_lift_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let f = TruthTable::random(6, &mut rng);
        let chart = DecompositionChart::new(&f, &[0, 1]).unwrap();
        let classes = chart.classes().clone();
        let t = crate::encoding::ceil_log2(classes.len());
        let strict = CodeAssignment::new((0..classes.len() as u32).collect(), t).unwrap();
        let ns = NonStrictAssignment::from_strict(&strict, classes.class_map());
        assert!(ns.is_strict());
        assert!(ns.verify(&f, &[0, 1], &classes));
    }

    #[test]
    fn genuinely_non_strict_encoding_verifies() {
        // f with 2 classes under a 2-var bound; give class 0 two codes.
        let f = TruthTable::from_fn(5, |m| {
            let col = m & 0b11;
            if col == 0b11 {
                (m >> 2) == 0b101
            } else {
                (m >> 2) % 2 == 1
            }
        });
        let chart = DecompositionChart::new(&f, &[0, 1]).unwrap();
        let classes = chart.classes().clone();
        assert_eq!(classes.len(), 2);
        // class of columns: [0,0,0,1]; codes: class0 -> {0,1}, class1 -> {2}.
        let ns = NonStrictAssignment::new(
            vec![vec![0, 1], vec![2]],
            vec![0, 1, 0, 2],
            classes.class_map(),
            2,
        )
        .unwrap();
        assert!(!ns.is_strict());
        assert!(ns.verify(&f, &[0, 1], &classes));
        let (on, dc) = ns.build_image(&classes);
        assert!((&on & &dc).is_zero());
        // Code 3 is unused -> dc.
        assert!(dc.eval(0b00011));
    }

    #[test]
    fn rejects_overlapping_code_sets() {
        let r = NonStrictAssignment::new(vec![vec![0, 1], vec![1]], vec![0, 1], &[0, 1], 1);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_foreign_column_code() {
        let r = NonStrictAssignment::new(vec![vec![0], vec![1]], vec![1, 1], &[0, 1], 1);
        assert!(r.is_err());
    }

    #[test]
    fn hyper_induced_non_strictness() {
        // Joint classes refine ingredient classes: joint has 4, the
        // ingredient only 2, so some ingredient class owns 2 codes.
        let joint_class_of = [0usize, 1, 2, 3];
        let joint_codes = CodeAssignment::new(vec![0, 1, 2, 3], 2).unwrap();
        let ingredient_class_of = [0usize, 0, 1, 1];
        let sets = per_ingredient_view(&joint_class_of, &joint_codes, &ingredient_class_of);
        assert_eq!(sets, vec![vec![0, 1], vec![2, 3]]);
        // That is exactly a non-strict (and pliable) per-ingredient code.
        let strict_bits_needed = crate::encoding::ceil_log2(2);
        assert!(joint_codes.bits() > strict_bits_needed);
    }
}
