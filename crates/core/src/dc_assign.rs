//! Don't-care assignment (Section 3.1 of the HYDE paper).
//!
//! For an incompletely specified function, two chart columns are compatible
//! iff they agree on every row where both are specified. HYDE assigns the
//! don't cares so as to *minimize the number of compatible classes* — a
//! clique partitioning of the column compatibility graph (in contrast to
//! Sawada et al. `[8]`, who assign don't cares to minimize supports). The
//! NP-complete partitioning is solved with the polynomial heuristic of
//! [`hyde_graph::partition_into_cliques`].

use crate::chart::IsfChart;
use crate::classes::CompatibleClasses;
use crate::CoreError;
use hyde_logic::{Isf, TruthTable};

/// Result of a don't-care assignment on an ISF chart.
#[derive(Debug, Clone)]
pub struct DcAssignment {
    /// The merged compatible classes (columns of a clique share a class).
    pub classes: CompatibleClasses,
    /// The completed (fully specified) function equivalent to the input ISF
    /// on its care set, with don't cares fixed by the assignment.
    pub completed: TruthTable,
}

/// Assigns the don't cares of `f` (with respect to `bound`) by clique
/// partitioning, merging as many columns as possible into shared classes.
///
/// Every column of a clique receives the clique's merged pattern; rows
/// where no member specifies a value are resolved to 0.
///
/// # Errors
///
/// Propagates [`CoreError::InvalidBoundSet`] from chart construction.
///
/// # Example
///
/// ```
/// use hyde_core::dc_assign::assign_dont_cares;
/// use hyde_logic::{Isf, TruthTable};
///
/// // 3-variable ISF where half the space is don't care: columns collapse.
/// let on = TruthTable::from_fn(3, |m| m == 0b110);
/// let dc = TruthTable::from_fn(3, |m| m & 1 == 1);
/// let f = Isf::new(on, dc).unwrap();
/// let a = assign_dont_cares(&f, &[0, 1]).unwrap();
/// assert!(a.classes.len() <= 2);
/// ```
pub fn assign_dont_cares(f: &Isf, bound: &[usize]) -> Result<DcAssignment, CoreError> {
    let chart = IsfChart::new(f, bound)?;
    let n_cols = chart.columns().len();
    let partition =
        hyde_graph::partition_into_cliques(n_cols, |a, b| chart.columns_compatible(a, b));

    // Merge each clique into one completed class function.
    let free_vars = chart.free().len();
    let mut class_fn = Vec::with_capacity(partition.len());
    for clique in &partition.cliques {
        let mut on = TruthTable::zero(free_vars);
        for &c in clique {
            on = &on | chart.columns()[c].on_set();
        }
        // Unspecified-by-all rows default to 0 (already are).
        class_fn.push(on);
    }
    let class_of: Vec<usize> = partition.class_of.clone();
    let classes = CompatibleClasses::from_parts(class_of, class_fn);

    // Rebuild the completed global function from the chart.
    let completed = recompose_from_classes(f.vars(), chart.bound(), chart.free(), &classes);
    debug_assert!(f.admits(&completed), "completion must respect care set");
    Ok(DcAssignment { classes, completed })
}

/// Rebuilds a function over the original variable space from per-column
/// class patterns.
fn recompose_from_classes(
    vars: usize,
    bound: &[usize],
    free: &[usize],
    classes: &CompatibleClasses,
) -> TruthTable {
    TruthTable::from_fn(vars, |m| {
        let mut col = 0usize;
        for (i, &v) in bound.iter().enumerate() {
            if m >> v & 1 == 1 {
                col |= 1 << i;
            }
        }
        let mut row = 0u32;
        for (i, &v) in free.iter().enumerate() {
            if m >> v & 1 == 1 {
                row |= 1 << i;
            }
        }
        classes.class_fn(classes.class_of(col)).eval(row)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::class_count;
    use rand::SeedableRng;

    #[test]
    fn no_dc_means_plain_classes() {
        let f_tt = TruthTable::from_fn(4, |m| (m & 0b11) == (m >> 2));
        let f = Isf::completely_specified(f_tt.clone());
        let a = assign_dont_cares(&f, &[0, 1]).unwrap();
        assert_eq!(a.classes.len(), class_count(&f_tt, &[0, 1]).unwrap());
        assert_eq!(a.completed, f_tt);
    }

    #[test]
    fn dc_reduces_class_count() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut reduced = 0;
        for _ in 0..20 {
            let on = TruthTable::random(6, &mut rng);
            let dc_mask = TruthTable::from_fn(6, |_| rng.gen_bool(0.4));
            let dc = &dc_mask & &!&on;
            let f = Isf::new(on.clone(), dc).unwrap();
            let a = assign_dont_cares(&f, &[0, 1, 2]).unwrap();
            let baseline = class_count(&on, &[0, 1, 2]).unwrap();
            assert!(a.classes.len() <= baseline);
            if a.classes.len() < baseline {
                reduced += 1;
            }
            assert!(f.admits(&a.completed));
            assert_eq!(
                class_count(&a.completed, &[0, 1, 2]).unwrap(),
                a.classes.len()
            );
        }
        assert!(
            reduced > 5,
            "dc assignment should usually help (helped {reduced}/20)"
        );
    }

    #[test]
    fn all_dc_collapses_to_one_class() {
        let vars = 4;
        let f = Isf::new(TruthTable::zero(vars), TruthTable::one(vars)).unwrap();
        let a = assign_dont_cares(&f, &[0, 1]).unwrap();
        assert_eq!(a.classes.len(), 1);
    }

    #[test]
    fn completion_matches_on_set_everywhere_specified() {
        let on = TruthTable::from_minterms(4, &[3, 5, 9]);
        let dc = TruthTable::from_minterms(4, &[0, 15]);
        let f = Isf::new(on.clone(), dc.clone()).unwrap();
        let a = assign_dont_cares(&f, &[1, 2]).unwrap();
        for m in 0u32..16 {
            if !dc.eval(m) {
                assert_eq!(a.completed.eval(m), on.eval(m), "care minterm {m}");
            }
        }
    }
}
