//! Decomposition charts.
//!
//! For a function `f(X, Y)` with bound (λ) set `X` and free (μ) set `Y`,
//! the decomposition chart has one column per assignment of `X` and one row
//! per assignment of `Y`. Two bound-set vertices are *compatible*
//! (Definition 2.1) iff their columns are identical; the distinct columns
//! are the compatible classes.

use crate::classes::CompatibleClasses;
use crate::CoreError;
use hyde_logic::{Isf, TruthTable};
use std::collections::HashMap;

/// A materialized decomposition chart for a completely specified function.
///
/// The bound set is an ordered list of variable indices of `f`; column `c`
/// corresponds to the assignment where bound variable `i` receives bit `i`
/// of `c` (little-endian). The free set is the remaining variables in
/// ascending order, indexed the same way by rows.
#[derive(Debug, Clone)]
pub struct DecompositionChart {
    bound: Vec<usize>,
    free: Vec<usize>,
    /// Column patterns: `columns[c]` is the function of the free variables
    /// observed in column `c` (arity = `free.len()`).
    columns: Vec<TruthTable>,
    classes: CompatibleClasses,
}

impl DecompositionChart {
    /// Builds the chart of `f` for the given bound set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBoundSet`] if a bound variable is out of
    /// range, repeated, or the bound set is empty or covers all variables.
    pub fn new(f: &TruthTable, bound: &[usize]) -> Result<Self, CoreError> {
        let (bound, free) = split_bound_free(f.vars(), bound)?;
        let columns = column_patterns(f, &bound, &free);
        let classes = CompatibleClasses::from_columns(&columns);
        Ok(DecompositionChart {
            bound,
            free,
            columns,
            classes,
        })
    }

    /// Bound (λ) set variables, in column bit order.
    pub fn bound(&self) -> &[usize] {
        &self.bound
    }

    /// Free (μ) set variables, ascending, in row bit order.
    pub fn free(&self) -> &[usize] {
        &self.free
    }

    /// Column pattern of column `c` as a function of the free variables.
    ///
    /// # Panics
    ///
    /// Panics if `c >= 2^bound.len()`.
    pub fn column(&self, c: usize) -> &TruthTable {
        &self.columns[c]
    }

    /// All column patterns in column order.
    pub fn columns(&self) -> &[TruthTable] {
        &self.columns
    }

    /// The compatible classes of the chart.
    pub fn classes(&self) -> &CompatibleClasses {
        &self.classes
    }

    /// Number of compatible classes — the decomposability cost used
    /// throughout the paper.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

/// Validates and splits a bound set, returning `(bound, free)`.
pub(crate) fn split_bound_free(
    vars: usize,
    bound: &[usize],
) -> Result<(Vec<usize>, Vec<usize>), CoreError> {
    if bound.is_empty() {
        return Err(CoreError::InvalidBoundSet("bound set is empty".into()));
    }
    if bound.len() >= vars {
        return Err(CoreError::InvalidBoundSet(format!(
            "bound set of size {} leaves no free variables (function has {vars})",
            bound.len()
        )));
    }
    let mut seen = vec![false; vars];
    for &v in bound {
        if v >= vars {
            return Err(CoreError::InvalidBoundSet(format!(
                "variable {v} out of range for {vars}-variable function"
            )));
        }
        if seen[v] {
            return Err(CoreError::InvalidBoundSet(format!("variable {v} repeated")));
        }
        seen[v] = true;
    }
    let free: Vec<usize> = (0..vars).filter(|&v| !seen[v]).collect();
    Ok((bound.to_vec(), free))
}

/// Extracts the column patterns of `f` for an ordered bound set.
pub(crate) fn column_patterns(f: &TruthTable, bound: &[usize], free: &[usize]) -> Vec<TruthTable> {
    let n_cols = 1usize << bound.len();
    let mut out = Vec::with_capacity(n_cols);
    for c in 0..n_cols {
        let mut col = f.clone();
        for (i, &v) in bound.iter().enumerate() {
            col = col.cofactor(v, c >> i & 1 == 1);
        }
        out.push(hyde_logic::network::project_to_support(&col, free));
    }
    out
}

/// A decomposition chart for an incompletely specified function.
///
/// Column entries can be don't cares, so compatibility (equal wherever both
/// are specified) is not transitive; the compatible classes of an ISF chart
/// come from the clique partitioning of [`crate::dc_assign`].
#[derive(Debug, Clone)]
pub struct IsfChart {
    bound: Vec<usize>,
    free: Vec<usize>,
    /// Column patterns as ISFs over the free variables.
    columns: Vec<Isf>,
}

impl IsfChart {
    /// Builds the ISF chart of `f` for the given bound set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DecompositionChart::new`].
    pub fn new(f: &Isf, bound: &[usize]) -> Result<Self, CoreError> {
        let (bound, free) = split_bound_free(f.vars(), bound)?;
        let on_cols = column_patterns(f.on_set(), &bound, &free);
        let dc_cols = column_patterns(f.dc_set(), &bound, &free);
        let columns: Vec<Isf> = on_cols
            .into_iter()
            .zip(dc_cols)
            .map(|(on, dc)| Isf::new(on, dc).expect("arities agree by construction"))
            .collect();
        Ok(IsfChart {
            bound,
            free,
            columns,
        })
    }

    /// Bound (λ) set variables.
    pub fn bound(&self) -> &[usize] {
        &self.bound
    }

    /// Free (μ) set variables.
    pub fn free(&self) -> &[usize] {
        &self.free
    }

    /// Column patterns.
    pub fn columns(&self) -> &[Isf] {
        &self.columns
    }

    /// Whether columns `a` and `b` are compatible: they agree on every row
    /// where both are specified.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn columns_compatible(&self, a: usize, b: usize) -> bool {
        let (ca, cb) = (&self.columns[a], &self.columns[b]);
        let both_care = !&(ca.dc_set() | cb.dc_set());
        ((ca.on_set() ^ cb.on_set()) & both_care).is_zero()
    }
}

/// Counts compatible classes of `f` under `bound` without keeping the chart.
///
/// This is the hot path of λ-set selection; it hashes column patterns.
///
/// # Errors
///
/// Same conditions as [`DecompositionChart::new`].
pub fn class_count(f: &TruthTable, bound: &[usize]) -> Result<usize, CoreError> {
    let (bound, free) = split_bound_free(f.vars(), bound)?;
    let mut distinct: HashMap<TruthTable, ()> = HashMap::new();
    for col in column_patterns(f, &bound, &free) {
        distinct.insert(col, ());
    }
    Ok(distinct.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f_ab_cd() -> TruthTable {
        (TruthTable::var(4, 0) & TruthTable::var(4, 1))
            | (TruthTable::var(4, 2) & TruthTable::var(4, 3))
    }

    #[test]
    fn chart_of_and_or() {
        let chart = DecompositionChart::new(&f_ab_cd(), &[0, 1]).unwrap();
        assert_eq!(chart.bound(), &[0, 1]);
        assert_eq!(chart.free(), &[2, 3]);
        assert_eq!(chart.class_count(), 2);
        // Columns 0..2 have pattern c&d, column 3 is constant 1.
        let cd = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        assert_eq!(*chart.column(0), cd);
        assert_eq!(*chart.column(3), TruthTable::one(2));
    }

    #[test]
    fn parity_has_two_classes_any_bound() {
        let f = TruthTable::from_fn(6, |m| m.count_ones() % 2 == 1);
        for bound in [[0usize, 1, 2], [1, 3, 5], [0, 2, 4]] {
            assert_eq!(class_count(&f, &bound).unwrap(), 2);
        }
    }

    #[test]
    fn nondecomposable_function_has_many_classes() {
        // A random-looking function usually has close to 2^|bound| classes.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let f = TruthTable::random(8, &mut rng);
        let n = class_count(&f, &[0, 1, 2, 3]).unwrap();
        assert!(n > 8, "random function had only {n} classes");
    }

    #[test]
    fn bound_order_affects_column_indexing_not_classes() {
        let f = f_ab_cd();
        let a = DecompositionChart::new(&f, &[0, 1]).unwrap();
        let b = DecompositionChart::new(&f, &[1, 0]).unwrap();
        assert_eq!(a.class_count(), b.class_count());
    }

    #[test]
    fn invalid_bound_sets_rejected() {
        let f = f_ab_cd();
        assert!(DecompositionChart::new(&f, &[]).is_err());
        assert!(DecompositionChart::new(&f, &[0, 0]).is_err());
        assert!(DecompositionChart::new(&f, &[9]).is_err());
        assert!(DecompositionChart::new(&f, &[0, 1, 2, 3]).is_err());
    }

    #[test]
    fn class_count_matches_chart() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let f = TruthTable::random(6, &mut rng);
            for bound in [[0usize, 3], [1, 4], [2, 5]] {
                let fast = class_count(&f, &bound).unwrap();
                let chart = DecompositionChart::new(&f, &bound).unwrap();
                assert_eq!(fast, chart.class_count());
            }
        }
    }

    #[test]
    fn isf_chart_compatibility() {
        // f over 3 vars, bound {0}: columns over (x1,x2).
        // on = {m: x0=0, x1=1}, dc = {m: x0=1}.
        let on = TruthTable::from_fn(3, |m| m & 1 == 0 && m >> 1 & 1 == 1);
        let dc = TruthTable::from_fn(3, |m| m & 1 == 1);
        let f = Isf::new(on, dc).unwrap();
        let chart = IsfChart::new(&f, &[0]).unwrap();
        // Column 1 is all-dc, so compatible with column 0.
        assert!(chart.columns_compatible(0, 1));
        assert!(chart.columns_compatible(0, 0));
    }

    #[test]
    fn isf_chart_incompatibility() {
        // Column 0 says row0=1, column 1 says row0=0 -> incompatible.
        let on = TruthTable::from_fn(2, |m| m == 0); // x0=0,x1=0 -> 1
        let f = Isf::completely_specified(on);
        let chart = IsfChart::new(&f, &[0]).unwrap();
        assert!(!chart.columns_compatible(0, 1));
    }

    #[test]
    fn chart_agrees_with_bdd_cut() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..5 {
            let f = TruthTable::random(7, &mut rng);
            let mut bdd = hyde_bdd::Bdd::new(7);
            let fr = bdd.from_fn(|m| f.eval(m));
            for bound in [[0usize, 1, 2], [2, 4, 6], [1, 3, 5]] {
                assert_eq!(
                    class_count(&f, &bound).unwrap(),
                    bdd.compatible_class_count(fr, &bound),
                    "bound {bound:?}"
                );
            }
        }
    }
}
