//! Decomposition charts.
//!
//! For a function `f(X, Y)` with bound (λ) set `X` and free (μ) set `Y`,
//! the decomposition chart has one column per assignment of `X` and one row
//! per assignment of `Y`. Two bound-set vertices are *compatible*
//! (Definition 2.1) iff their columns are identical; the distinct columns
//! are the compatible classes.

use crate::classes::CompatibleClasses;
use crate::CoreError;
use hyde_logic::{Isf, TruthTable};

/// A materialized decomposition chart for a completely specified function.
///
/// The bound set is an ordered list of variable indices of `f`; column `c`
/// corresponds to the assignment where bound variable `i` receives bit `i`
/// of `c` (little-endian). The free set is the remaining variables in
/// ascending order, indexed the same way by rows.
#[derive(Debug, Clone)]
pub struct DecompositionChart {
    bound: Vec<usize>,
    free: Vec<usize>,
    /// Column patterns: `columns[c]` is the function of the free variables
    /// observed in column `c` (arity = `free.len()`).
    columns: Vec<TruthTable>,
    classes: CompatibleClasses,
}

impl DecompositionChart {
    /// Builds the chart of `f` for the given bound set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBoundSet`] if a bound variable is out of
    /// range, repeated, or the bound set is empty or covers all variables.
    pub fn new(f: &TruthTable, bound: &[usize]) -> Result<Self, CoreError> {
        let (bound, free) = split_bound_free(f.vars(), bound)?;
        let columns = column_patterns(f, &bound, &free);
        let classes = CompatibleClasses::from_columns(&columns);
        Ok(DecompositionChart {
            bound,
            free,
            columns,
            classes,
        })
    }

    /// Bound (λ) set variables, in column bit order.
    pub fn bound(&self) -> &[usize] {
        &self.bound
    }

    /// Free (μ) set variables, ascending, in row bit order.
    pub fn free(&self) -> &[usize] {
        &self.free
    }

    /// Column pattern of column `c` as a function of the free variables.
    ///
    /// # Panics
    ///
    /// Panics if `c >= 2^bound.len()`.
    pub fn column(&self, c: usize) -> &TruthTable {
        &self.columns[c]
    }

    /// All column patterns in column order.
    pub fn columns(&self) -> &[TruthTable] {
        &self.columns
    }

    /// The compatible classes of the chart.
    pub fn classes(&self) -> &CompatibleClasses {
        &self.classes
    }

    /// Number of compatible classes — the decomposability cost used
    /// throughout the paper.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

/// Validates and splits a bound set, returning `(bound, free)`.
pub(crate) fn split_bound_free(
    vars: usize,
    bound: &[usize],
) -> Result<(Vec<usize>, Vec<usize>), CoreError> {
    if bound.is_empty() {
        return Err(CoreError::InvalidBoundSet("bound set is empty".into()));
    }
    if bound.len() >= vars {
        return Err(CoreError::InvalidBoundSet(format!(
            "bound set of size {} leaves no free variables (function has {vars})",
            bound.len()
        )));
    }
    let mut seen = vec![false; vars];
    for &v in bound {
        if v >= vars {
            return Err(CoreError::InvalidBoundSet(format!(
                "variable {v} out of range for {vars}-variable function"
            )));
        }
        if seen[v] {
            return Err(CoreError::InvalidBoundSet(format!("variable {v} repeated")));
        }
        seen[v] = true;
    }
    let free: Vec<usize> = (0..vars).filter(|&v| !seen[v]).collect();
    Ok((bound.to_vec(), free))
}

/// Extracts the column patterns of `f` for an ordered bound set.
pub(crate) fn column_patterns(f: &TruthTable, bound: &[usize], free: &[usize]) -> Vec<TruthTable> {
    let n_cols = 1usize << bound.len();
    let mut out = Vec::with_capacity(n_cols);
    for c in 0..n_cols {
        let mut col = f.clone();
        for (i, &v) in bound.iter().enumerate() {
            col = col.cofactor(v, c >> i & 1 == 1);
        }
        out.push(hyde_logic::network::project_to_support(&col, free));
    }
    out
}

/// A decomposition chart for an incompletely specified function.
///
/// Column entries can be don't cares, so compatibility (equal wherever both
/// are specified) is not transitive; the compatible classes of an ISF chart
/// come from the clique partitioning of [`crate::dc_assign`].
#[derive(Debug, Clone)]
pub struct IsfChart {
    bound: Vec<usize>,
    free: Vec<usize>,
    /// Column patterns as ISFs over the free variables.
    columns: Vec<Isf>,
}

impl IsfChart {
    /// Builds the ISF chart of `f` for the given bound set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DecompositionChart::new`].
    pub fn new(f: &Isf, bound: &[usize]) -> Result<Self, CoreError> {
        let (bound, free) = split_bound_free(f.vars(), bound)?;
        let on_cols = column_patterns(f.on_set(), &bound, &free);
        let dc_cols = column_patterns(f.dc_set(), &bound, &free);
        let columns: Vec<Isf> = on_cols
            .into_iter()
            .zip(dc_cols)
            .map(|(on, dc)| Isf::new(on, dc).expect("arities agree by construction"))
            .collect();
        Ok(IsfChart {
            bound,
            free,
            columns,
        })
    }

    /// Bound (λ) set variables.
    pub fn bound(&self) -> &[usize] {
        &self.bound
    }

    /// Free (μ) set variables.
    pub fn free(&self) -> &[usize] {
        &self.free
    }

    /// Column patterns.
    pub fn columns(&self) -> &[Isf] {
        &self.columns
    }

    /// Whether columns `a` and `b` are compatible: they agree on every row
    /// where both are specified.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn columns_compatible(&self, a: usize, b: usize) -> bool {
        let (ca, cb) = (&self.columns[a], &self.columns[b]);
        let both_care = !&(ca.dc_set() | cb.dc_set());
        ((ca.on_set() ^ cb.on_set()) & both_care).is_zero()
    }
}

/// Counts compatible classes of `f` under `bound` without keeping the chart.
///
/// This is the hot path of λ-set selection. It never materializes column
/// truth tables: the packed counter permutes the raw table words so each
/// column becomes a contiguous bit run, then sorts and dedups the runs
/// (see [`class_count_with`] for the allocation-free variant).
///
/// # Errors
///
/// Same conditions as [`DecompositionChart::new`].
pub fn class_count(f: &TruthTable, bound: &[usize]) -> Result<usize, CoreError> {
    class_count_with(f, bound, &mut ClassCountScratch::new())
}

/// Reusable buffers for [`class_count_with`]: two ping-pong word arrays
/// for the in-place bit permutation and a key buffer for sub-word column
/// dedup. One scratch per worker turns the candidate-scoring loop
/// allocation-free.
#[derive(Debug, Default)]
pub struct ClassCountScratch {
    a: Vec<u64>,
    b: Vec<u64>,
    keys: Vec<u64>,
    order: Vec<u32>,
}

impl ClassCountScratch {
    /// Empty scratch; buffers grow to the largest function scored.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`class_count`] with caller-provided scratch buffers.
///
/// The column multiset of a chart is invariant under any relabeling of
/// columns and rows, so the counter is free to pick whatever bound-var
/// order makes the word-level gather cheapest; only *distinctness* is
/// compared, never column indices.
///
/// # Errors
///
/// Same conditions as [`DecompositionChart::new`].
pub fn class_count_with(
    f: &TruthTable,
    bound: &[usize],
    scratch: &mut ClassCountScratch,
) -> Result<usize, CoreError> {
    let (bound, _free) = split_bound_free(f.vars(), bound)?;
    let n = f.vars();
    if n <= 6 {
        return Ok(class_count_small(f, &bound));
    }
    let words = f.as_words();
    scratch.a.clear();
    scratch.a.extend_from_slice(words);
    scratch.b.resize(words.len(), 0);
    // Promote each bound variable to the top of the variable order,
    // highest original position first (promotion only shifts positions
    // *above* the promoted variable, so lower bound positions stay
    // valid). Afterwards the table is 2^k contiguous blocks, one column
    // per block, with the free variables in ascending row order.
    let mut desc: Vec<usize> = bound.clone();
    desc.sort_unstable_by(|x, y| y.cmp(x));
    let mut src = &mut scratch.a;
    let mut dst = &mut scratch.b;
    for &pos in &desc {
        promote_to_top(src, dst, pos);
        std::mem::swap(&mut src, &mut dst);
    }
    let k = bound.len();
    let row_bits = n - k;
    if row_bits >= 6 {
        // Whole-word columns: sort column indices by their word run.
        let cw = 1usize << (row_bits - 6);
        scratch.order.clear();
        scratch.order.extend(0..(1u32 << k));
        let cols = &*src;
        scratch.order.sort_unstable_by(|&x, &y| {
            cols[x as usize * cw..][..cw].cmp(&cols[y as usize * cw..][..cw])
        });
        let mut distinct = 1usize;
        for w in scratch.order.windows(2) {
            if cols[w[0] as usize * cw..][..cw] != cols[w[1] as usize * cw..][..cw] {
                distinct += 1;
            }
        }
        Ok(distinct)
    } else {
        // Sub-word columns: extract each 2^row_bits-bit run into a key.
        let mask = (1u64 << (1usize << row_bits)) - 1;
        scratch.keys.clear();
        for c in 0..1usize << k {
            let bitpos = c << row_bits;
            scratch
                .keys
                .push((src[bitpos >> 6] >> (bitpos & 63)) & mask);
        }
        scratch.keys.sort_unstable();
        scratch.keys.dedup();
        Ok(scratch.keys.len())
    }
}

/// Cheap lower bound on [`class_count`]: the number of distinct column
/// *prefixes*, each column restricted to the rows where every free
/// variable at position `>= 6` is zero (at most one word-segment per
/// column, extracted in place — no column materialization).
///
/// Distinct prefixes imply distinct columns, so the bound never exceeds
/// the exact count, and for functions whose free variables all live in
/// the word (`<= 6` of them, none at position `>= 6` bound-free) the
/// prefix *is* the whole column and the bound is exact. Candidate-
/// ranking loops use it to skip exact counting for bound sets provably
/// worse than a running best: the floor costs one strided word read per
/// high-bound assignment instead of a full table permutation.
///
/// # Errors
///
/// Same conditions as [`DecompositionChart::new`].
pub fn class_floor_with(
    f: &TruthTable,
    bound: &[usize],
    scratch: &mut ClassCountScratch,
) -> Result<usize, CoreError> {
    let (bound, _free) = split_bound_free(f.vars(), bound)?;
    let n = f.vars();
    if n <= 6 {
        return Ok(class_count_small(f, &bound));
    }
    let words = f.as_words();
    // Split the bound set at the word boundary: in-word variables
    // (`< 6`) are brought to the top of their word with delta-swaps so a
    // column's prefix becomes one contiguous segment; word-index
    // variables (`>= 6`) select strided words, enumerated with the
    // carry-propagation submask walk (no per-bit scatter).
    let mut bl: Vec<usize> = bound.iter().copied().filter(|&v| v < 6).collect();
    bl.sort_unstable_by(|x, y| y.cmp(x));
    let kl = bl.len();
    let kh = bound.len() - kl;
    let mut high_mask = 0usize;
    for &v in &bound {
        if v >= 6 {
            high_mask |= 1 << (v - 6);
        }
    }
    let sw = 64usize >> kl;
    let seg_mask = if kl == 0 { u64::MAX } else { (1u64 << sw) - 1 };
    scratch.keys.clear();
    let mut ch_bits = 0usize;
    for _ in 0..1usize << kh {
        let mut w = words[ch_bits];
        for &p in &bl {
            let (lo, hi) = unshuffle64(w, p);
            w = lo | (hi << 32);
        }
        for cl in 0..1usize << kl {
            scratch.keys.push((w >> (cl * sw)) & seg_mask);
        }
        ch_bits = ch_bits.wrapping_sub(high_mask) & high_mask;
    }
    scratch.keys.sort_unstable();
    scratch.keys.dedup();
    Ok(scratch.keys.len())
}

/// Exact candidate scorer that amortizes table permutations across a
/// lexicographically ordered candidate stream.
///
/// [`class_count_with`] promotes each bound variable with its own pass
/// over the table, so scoring `C(n, k)` candidates re-derives the same
/// partial permutations over and over. This scorer keeps a stack of
/// intermediate tables, one per promoted prefix variable (ascending
/// order, each variable's position adjusted for the prefix already
/// above it), and on the next candidate only redoes the passes past the
/// longest shared sorted-prefix — amortized ~1 pass per candidate on a
/// lexicographic stream instead of `k`. Column dedup folds each column
/// into two independent 64-bit hash streams in one sequential pass and
/// counts distinct 128-bit digests: equal columns always digest equal,
/// and two *distinct* columns collide only if both streams collide
/// (~`2^-128` per pair), so the count can understate [`class_count`]
/// only with negligible probability — and deterministically, since the
/// digests are a fixed function of the table. Ranking loops that need a
/// certified count recompute the selected winner with [`class_count`].
pub struct PrefixScorer<'f> {
    f: &'f TruthTable,
    /// Promoted prefix variables, ascending original positions.
    prefix: Vec<usize>,
    /// `bufs[j]` holds the table with `prefix[..=j]` promoted to the top.
    bufs: Vec<Vec<u64>>,
    sorted: Vec<usize>,
    keys: Vec<u64>,
    digests: Vec<u128>,
}

impl<'f> PrefixScorer<'f> {
    /// A scorer for candidates over `f`; buffers grow on first use.
    pub fn new(f: &'f TruthTable) -> Self {
        PrefixScorer {
            f,
            prefix: Vec::new(),
            bufs: Vec::new(),
            sorted: Vec::new(),
            keys: Vec::new(),
            digests: Vec::new(),
        }
    }

    /// Compatible-class count of `bound`: equal to
    /// [`class_count`]`(f, bound)` unless two distinct columns collide in
    /// both hash streams (probability ~`2^-128` per pair, and a fixed
    /// function of `f` — the result is identical on every run and thread
    /// count either way).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DecompositionChart::new`].
    pub fn score(&mut self, bound: &[usize]) -> Result<usize, CoreError> {
        let (bound, _free) = split_bound_free(self.f.vars(), bound)?;
        let n = self.f.vars();
        if n <= 6 {
            return Ok(class_count_small(self.f, &bound));
        }
        self.sorted.clear();
        self.sorted.extend_from_slice(&bound);
        self.sorted.sort_unstable();
        let k = self.sorted.len();
        let words = self.f.as_words();
        // Reuse the promotion stack up to the longest shared prefix.
        let mut shared = 0;
        while shared < self.prefix.len() && shared < k && self.prefix[shared] == self.sorted[shared]
        {
            shared += 1;
        }
        self.prefix.truncate(shared);
        while self.bufs.len() < k {
            self.bufs.push(vec![0; words.len()]);
        }
        for j in shared..k {
            let v = self.sorted[j];
            // Promoting ascending: the `j` prefix variables already at
            // the top all started below `v`, so `v` sits `j` lower.
            let pos = v - j;
            if j == 0 {
                promote_to_top(words, &mut self.bufs[0], pos);
            } else {
                let (lo, hi) = self.bufs.split_at_mut(j);
                promote_to_top(&lo[j - 1], &mut hi[0], pos);
            }
            self.prefix.push(v);
        }
        let src = &self.bufs[k - 1];
        let row_bits = n - k;
        if row_bits < 6 {
            // Sub-word columns: extract each run into a key directly.
            let mask = (1u64 << (1usize << row_bits)) - 1;
            self.keys.clear();
            for c in 0..1usize << k {
                let bitpos = c << row_bits;
                self.keys.push((src[bitpos >> 6] >> (bitpos & 63)) & mask);
            }
            self.keys.sort_unstable();
            self.keys.dedup();
            return Ok(self.keys.len());
        }
        // Whole-word columns: fold each column's word run into two
        // independent 64-bit streams (FNV-1a and a Murmur-constant
        // variant) and count distinct 128-bit digests.
        let cw = 1usize << (row_bits - 6);
        let cols = 1usize << k;
        self.digests.clear();
        for c in 0..cols {
            let mut h1 = 0xcbf2_9ce4_8422_2325u64;
            let mut h2 = 0x9e37_79b9_7f4a_7c15u64;
            for &w in &src[c * cw..(c + 1) * cw] {
                h1 = (h1 ^ w).wrapping_mul(0x0000_0100_0000_01b3);
                h2 = (h2 ^ w).wrapping_mul(0xff51_afd7_ed55_8ccd);
            }
            self.digests.push(u128::from(h1) << 64 | u128::from(h2));
        }
        self.digests.sort_unstable();
        self.digests.dedup();
        Ok(self.digests.len())
    }
}

/// Naive column extraction for single-word functions (`n <= 6`): at most
/// 64 bit probes total, cheaper than any setup.
fn class_count_small(f: &TruthTable, bound: &[usize]) -> usize {
    let n = f.vars();
    let free: Vec<usize> = (0..n).filter(|v| !bound.contains(v)).collect();
    let mut keys: Vec<u64> = Vec::with_capacity(1 << bound.len());
    for c in 0..1u32 << bound.len() {
        let mut key = 0u64;
        for r in 0..1u32 << free.len() {
            let mut m = 0u32;
            for (i, &v) in bound.iter().enumerate() {
                m |= (c >> i & 1) << v;
            }
            for (i, &v) in free.iter().enumerate() {
                m |= (r >> i & 1) << v;
            }
            key |= u64::from(f.eval(m)) << r;
        }
        keys.push(key);
    }
    keys.sort_unstable();
    keys.dedup();
    keys.len()
}

/// Reorders `src` (a `2^n`-bit table, `n >= 7`) into `dst` so the
/// variable at `pos` becomes the top (most significant) index bit, with
/// all other variables keeping their relative order. One linear pass:
/// block copies when `pos >= 6`, word-level perfect unshuffles below.
pub(crate) fn promote_to_top(src: &[u64], dst: &mut [u64], pos: usize) {
    let half = src.len() / 2;
    if pos >= 6 {
        let stride = 1usize << (pos - 6);
        let mut out = 0;
        let mut i = 0;
        while i < src.len() {
            dst[out..out + stride].copy_from_slice(&src[i..i + stride]);
            dst[half + out..half + out + stride].copy_from_slice(&src[i + stride..i + 2 * stride]);
            out += stride;
            i += 2 * stride;
        }
    } else {
        for j in 0..half {
            let (l0, h0) = unshuffle64(src[2 * j], pos);
            let (l1, h1) = unshuffle64(src[2 * j + 1], pos);
            dst[j] = l0 | (l1 << 32);
            dst[half + j] = h0 | (h1 << 32);
        }
    }
}

/// Delta-swap mask for the perfect-unshuffle step with shift `s`: bits
/// `i` with `i mod 4s` in `[s, 2s)` (Hacker's Delight 7-2, generalized
/// to 64 bits and arbitrary power-of-two group sizes).
const fn unshuffle_mask(s: u32) -> u64 {
    let mut m = 0u64;
    let mut i = 0u32;
    while i < 64 {
        let r = i % (4 * s);
        if r >= s && r < 2 * s {
            m |= 1u64 << i;
        }
        i += 1;
    }
    m
}

const UNSHUFFLE_MASKS: [u64; 5] = [
    unshuffle_mask(1),
    unshuffle_mask(2),
    unshuffle_mask(4),
    unshuffle_mask(8),
    unshuffle_mask(16),
];

/// Splits `w` into `(lo, hi)`: `lo` packs the bit groups of size
/// `2^pos` at even group indices into the low 32 bits (order preserved),
/// `hi` the odd group indices. `pos` must be in `0..6`.
#[inline]
fn unshuffle64(w: u64, pos: usize) -> (u64, u64) {
    if pos >= 5 {
        return (w & 0xFFFF_FFFF, w >> 32);
    }
    let mut x = w;
    let mut s = 1u32 << pos;
    while s < 32 {
        let m = UNSHUFFLE_MASKS[s.trailing_zeros() as usize];
        let t = (x ^ (x >> s)) & m;
        x ^= t ^ (t << s);
        s <<= 1;
    }
    (x & 0xFFFF_FFFF, x >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f_ab_cd() -> TruthTable {
        (TruthTable::var(4, 0) & TruthTable::var(4, 1))
            | (TruthTable::var(4, 2) & TruthTable::var(4, 3))
    }

    #[test]
    fn chart_of_and_or() {
        let chart = DecompositionChart::new(&f_ab_cd(), &[0, 1]).unwrap();
        assert_eq!(chart.bound(), &[0, 1]);
        assert_eq!(chart.free(), &[2, 3]);
        assert_eq!(chart.class_count(), 2);
        // Columns 0..2 have pattern c&d, column 3 is constant 1.
        let cd = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        assert_eq!(*chart.column(0), cd);
        assert_eq!(*chart.column(3), TruthTable::one(2));
    }

    #[test]
    fn parity_has_two_classes_any_bound() {
        let f = TruthTable::from_fn(6, |m| m.count_ones() % 2 == 1);
        for bound in [[0usize, 1, 2], [1, 3, 5], [0, 2, 4]] {
            assert_eq!(class_count(&f, &bound).unwrap(), 2);
        }
    }

    #[test]
    fn nondecomposable_function_has_many_classes() {
        // A random-looking function usually has close to 2^|bound| classes.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let f = TruthTable::random(8, &mut rng);
        let n = class_count(&f, &[0, 1, 2, 3]).unwrap();
        assert!(n > 8, "random function had only {n} classes");
    }

    #[test]
    fn bound_order_affects_column_indexing_not_classes() {
        let f = f_ab_cd();
        let a = DecompositionChart::new(&f, &[0, 1]).unwrap();
        let b = DecompositionChart::new(&f, &[1, 0]).unwrap();
        assert_eq!(a.class_count(), b.class_count());
    }

    #[test]
    fn invalid_bound_sets_rejected() {
        let f = f_ab_cd();
        assert!(DecompositionChart::new(&f, &[]).is_err());
        assert!(DecompositionChart::new(&f, &[0, 0]).is_err());
        assert!(DecompositionChart::new(&f, &[9]).is_err());
        assert!(DecompositionChart::new(&f, &[0, 1, 2, 3]).is_err());
    }

    #[test]
    fn class_count_matches_chart() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let f = TruthTable::random(6, &mut rng);
            for bound in [[0usize, 3], [1, 4], [2, 5]] {
                let fast = class_count(&f, &bound).unwrap();
                let chart = DecompositionChart::new(&f, &bound).unwrap();
                assert_eq!(fast, chart.class_count());
            }
        }
    }

    #[test]
    fn isf_chart_compatibility() {
        // f over 3 vars, bound {0}: columns over (x1,x2).
        // on = {m: x0=0, x1=1}, dc = {m: x0=1}.
        let on = TruthTable::from_fn(3, |m| m & 1 == 0 && m >> 1 & 1 == 1);
        let dc = TruthTable::from_fn(3, |m| m & 1 == 1);
        let f = Isf::new(on, dc).unwrap();
        let chart = IsfChart::new(&f, &[0]).unwrap();
        // Column 1 is all-dc, so compatible with column 0.
        assert!(chart.columns_compatible(0, 1));
        assert!(chart.columns_compatible(0, 0));
    }

    #[test]
    fn isf_chart_incompatibility() {
        // Column 0 says row0=1, column 1 says row0=0 -> incompatible.
        let on = TruthTable::from_fn(2, |m| m == 0); // x0=0,x1=0 -> 1
        let f = Isf::completely_specified(on);
        let chart = IsfChart::new(&f, &[0]).unwrap();
        assert!(!chart.columns_compatible(0, 1));
    }

    /// Reference counter: the original materializing implementation.
    fn class_count_naive(f: &TruthTable, bound: &[usize]) -> usize {
        let (bound, free) = split_bound_free(f.vars(), bound).unwrap();
        let mut distinct: std::collections::HashMap<TruthTable, ()> =
            std::collections::HashMap::new();
        for col in column_patterns(f, &bound, &free) {
            distinct.insert(col, ());
        }
        distinct.len()
    }

    #[test]
    fn packed_counter_matches_naive_reference() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
        let mut scratch = ClassCountScratch::new();
        let bounds: &[&[usize]] = &[
            &[0],
            &[0, 1],
            &[0, 1, 2],
            &[1, 3, 5],
            &[0, 2, 4, 6],
            &[0, 1, 2, 3, 4],
            &[2, 5, 6, 7],
            &[6, 7],
            &[0, 7],
        ];
        for n in 7..=10 {
            for _ in 0..6 {
                let f = TruthTable::random(n, &mut rng);
                for bound in bounds {
                    if bound.iter().any(|&v| v >= n) || bound.len() >= n {
                        continue;
                    }
                    assert_eq!(
                        class_count_with(&f, bound, &mut scratch).unwrap(),
                        class_count_naive(&f, bound),
                        "n={n} bound {bound:?}"
                    );
                }
            }
        }
        // Structured functions too (naive-random charts are mostly full).
        let parity = TruthTable::from_fn(9, |m| m.count_ones() % 2 == 1);
        assert_eq!(
            class_count_with(&parity, &[0, 3, 8], &mut scratch).unwrap(),
            2
        );
        let f = (TruthTable::var(8, 0) & TruthTable::var(8, 1))
            | (TruthTable::var(8, 6) & TruthTable::var(8, 7));
        assert_eq!(
            class_count_with(&f, &[0, 1], &mut scratch).unwrap(),
            class_count_naive(&f, &[0, 1])
        );
    }

    #[test]
    fn packed_counter_handles_subword_and_whole_word_rows() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut scratch = ClassCountScratch::new();
        let f = TruthTable::random(8, &mut rng);
        // 5 bound vars -> 8-bit rows (sub-word path).
        let b5 = [0usize, 2, 4, 5, 7];
        assert_eq!(
            class_count_with(&f, &b5, &mut scratch).unwrap(),
            class_count_naive(&f, &b5)
        );
        // 2 bound vars -> 64-bit rows (whole-word path).
        let b2 = [3usize, 4];
        assert_eq!(
            class_count_with(&f, &b2, &mut scratch).unwrap(),
            class_count_naive(&f, &b2)
        );
    }

    #[test]
    fn unshuffle_matches_bitwise_reference() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for pos in 0..6usize {
            let g = 1usize << pos;
            for _ in 0..50 {
                let w = TruthTable::random(6, &mut rng).as_words()[0];
                let (lo, hi) = unshuffle64(w, pos);
                let (mut rlo, mut rhi) = (0u64, 0u64);
                let (mut nlo, mut nhi) = (0usize, 0usize);
                for i in 0..64 {
                    let bit = w >> i & 1;
                    if (i / g).is_multiple_of(2) {
                        rlo |= bit << nlo;
                        nlo += 1;
                    } else {
                        rhi |= bit << nhi;
                        nhi += 1;
                    }
                }
                assert_eq!((lo, hi), (rlo, rhi), "pos {pos} word {w:#x}");
            }
        }
    }

    #[test]
    fn floor_never_exceeds_exact_count() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
        let mut scratch = ClassCountScratch::new();
        let mut exact_scratch = ClassCountScratch::new();
        for n in [4usize, 7, 8, 9, 10] {
            for _ in 0..8 {
                let f = TruthTable::random(n, &mut rng);
                for k in [2usize, 3, 5] {
                    if k >= n {
                        continue;
                    }
                    // Random bound set mixing in-word (<6) and word-index
                    // (>=6) variables — both gather paths of the floor.
                    let mut vars: Vec<usize> = (0..n).collect();
                    vars.shuffle(&mut rng);
                    let bound: Vec<usize> = vars[..k].to_vec();
                    let floor = class_floor_with(&f, &bound, &mut scratch).unwrap();
                    let exact = class_count_with(&f, &bound, &mut exact_scratch).unwrap();
                    assert!(floor <= exact, "n {n} bound {bound:?}: {floor} > {exact}");
                    // Every word-index variable bound => single-word
                    // columns => the prefix is the whole column.
                    let kh = bound.iter().filter(|&&v| v >= 6).count();
                    if n > 6 && kh == n - 6 {
                        assert_eq!(floor, exact, "n {n} bound {bound:?}");
                    }
                }
            }
        }
        // Structured functions exercise heavy column duplication.
        let g = (TruthTable::var(9, 0) & TruthTable::var(9, 7)) ^ TruthTable::var(9, 3);
        for bound in [vec![0, 7], vec![1, 2, 4], vec![0, 3, 7, 8], vec![5, 6]] {
            let floor = class_floor_with(&g, &bound, &mut scratch).unwrap();
            let exact = class_count_with(&g, &bound, &mut exact_scratch).unwrap();
            assert!(floor <= exact, "structured bound {bound:?}");
        }
    }

    #[test]
    fn prefix_scorer_matches_class_count_in_any_order() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
        for n in [5usize, 7, 9, 11] {
            let f = TruthTable::random(n, &mut rng);
            let mut scorer = PrefixScorer::new(&f);
            let mut scratch = ClassCountScratch::new();
            // Lexicographic stream (maximal prefix reuse), then a shuffled
            // stream (stack constantly invalidated) — both must agree.
            for k in [2usize, 3, 4] {
                if k >= n {
                    continue;
                }
                let vars: Vec<usize> = (0..n).collect();
                let mut cands: Vec<Vec<usize>> = Vec::new();
                for _ in 0..20 {
                    let mut v = vars.clone();
                    v.shuffle(&mut rng);
                    let mut b = v[..k].to_vec();
                    b.sort_unstable();
                    cands.push(b);
                }
                let mut lex = cands.clone();
                lex.sort();
                for c in lex.iter().chain(cands.iter()) {
                    assert_eq!(
                        scorer.score(c).unwrap(),
                        class_count_with(&f, c, &mut scratch).unwrap(),
                        "n {n} bound {c:?}"
                    );
                }
            }
        }
        // Structured function: heavy column duplication means most
        // digests land in equal runs.
        let g = (TruthTable::var(9, 0) & TruthTable::var(9, 7)) ^ TruthTable::var(9, 3);
        let mut scorer = PrefixScorer::new(&g);
        let mut scratch = ClassCountScratch::new();
        for bound in [
            vec![0, 7],
            vec![1, 2, 4],
            vec![0, 3, 7, 8],
            vec![5, 6],
            vec![0, 1, 2],
        ] {
            assert_eq!(
                scorer.score(&bound).unwrap(),
                class_count_with(&g, &bound, &mut scratch).unwrap(),
                "structured bound {bound:?}"
            );
        }
    }

    #[test]
    fn chart_agrees_with_bdd_cut() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..5 {
            let f = TruthTable::random(7, &mut rng);
            let mut bdd = hyde_bdd::Bdd::new(7);
            let fr = bdd.from_fn(|m| f.eval(m));
            for bound in [[0usize, 1, 2], [2, 4, 6], [1, 3, 5]] {
                assert_eq!(
                    class_count(&f, &bound).unwrap(),
                    bdd.compatible_class_count(fr, &bound),
                    "bound {bound:?}"
                );
            }
        }
    }
}
