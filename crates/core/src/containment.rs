//! Partition containment and pliable α-function sharing
//! (Definition 4.6, Theorems 4.3/4.4, Example 4.2 of the HYDE paper).
//!
//! If partition `A` of `f_a` is *contained* by partition `B` of `f_b`
//! (w.r.t. the same λ set), then the decomposition functions of `f_b`
//! distinguish the compatible classes of `f_a` as well, so they can be
//! reused — possibly with more bits than `f_a` strictly needs (a *pliable*
//! encoding), which is exactly the LUT saving of Example 4.2.

use crate::chart::{column_patterns, split_bound_free};
use crate::partition::Partition;
use crate::CoreError;
use hyde_logic::diag::{any_deny, Code, Diagnostic, Location};
use hyde_logic::TruthTable;
use std::collections::HashMap;

/// The partition (Definition 3.1) of `f` with respect to a λ set: position
/// `c` (a bound-set assignment) carries a symbol identifying the column
/// pattern, in a per-call canonical alphabet.
///
/// # Errors
///
/// Propagates bound-set validation errors.
pub fn function_partition(f: &TruthTable, bound: &[usize]) -> Result<Partition, CoreError> {
    let (bound, free) = split_bound_free(f.vars(), bound)?;
    let mut alphabet: HashMap<TruthTable, u32> = HashMap::new();
    let symbols = column_patterns(f, &bound, &free)
        .into_iter()
        .map(|pat| {
            let next = alphabet.len() as u32;
            *alphabet.entry(pat).or_insert(next)
        })
        .collect();
    Ok(Partition::new(symbols))
}

/// Result of reusing another function's α functions.
#[derive(Debug, Clone)]
pub struct SharedAlphas {
    /// The reused decomposition functions (over the bound variables).
    pub alphas: Vec<TruthTable>,
    /// Image of `f_a` under the shared α functions: variables
    /// `0..alphas.len()` are the α bits, then the free variables.
    pub image: TruthTable,
}

/// Attempts to reuse the α functions that strictly encode the classes of
/// `f_b` as the α functions of `f_a` (Theorem 4.4).
///
/// Returns `None` when `f_a`'s partition is not contained by `f_b`'s (two
/// columns of `f_a` with different patterns would receive the same code).
///
/// # Errors
///
/// Propagates bound-set validation errors.
pub fn share_alphas(
    f_a: &TruthTable,
    f_b: &TruthTable,
    bound: &[usize],
) -> Result<Option<SharedAlphas>, CoreError> {
    if f_a.vars() != f_b.vars() {
        return Err(CoreError::InvalidBoundSet(
            "functions must share one input space".into(),
        ));
    }
    let pa = function_partition(f_a, bound)?;
    let pb = function_partition(f_b, bound)?;
    if !pa.is_contained_by(&pb) {
        return Ok(None);
    }
    let (bound_v, free_v) = split_bound_free(f_a.vars(), bound)?;
    // Strict encoding of f_b's classes: class i -> code i.
    let t = crate::encoding::ceil_log2(pb.multiplicity());
    let alphas: Vec<TruthTable> = (0..t)
        .map(|bit| TruthTable::from_fn(bound_v.len(), |c| pb.symbol(c as usize) >> bit & 1 == 1))
        .collect();
    // Image of f_a: code -> the (unique, by containment) column pattern of
    // f_a among columns with that code.
    let cols_a = column_patterns(f_a, &bound_v, &free_v);
    let mut by_code: HashMap<u32, TruthTable> = HashMap::new();
    for (c, pat) in cols_a.iter().enumerate() {
        let code = pb.symbol(c);
        if let Some(prev) = by_code.get(&code) {
            debug_assert_eq!(prev, pat, "containment guarantees uniqueness");
        } else {
            by_code.insert(code, pat.clone());
        }
    }
    let mu = free_v.len();
    let image = TruthTable::from_fn(t + mu, |m| {
        let code = m & ((1u32 << t) - 1);
        let y = m >> t;
        by_code.get(&code).is_some_and(|pat| pat.eval(y))
    });
    Ok(Some(SharedAlphas { alphas, image }))
}

/// Verifies that shared α functions recompose `f_a` exactly.
///
/// Thin wrapper over [`shared_diagnostics`]: true iff no deny-level
/// diagnostic fires.
pub fn verify_shared(f_a: &TruthTable, bound: &[usize], shared: &SharedAlphas) -> bool {
    !any_deny(&shared_diagnostics(f_a, bound, shared))
}

/// Runs the structured invariant checks of a pliable α-sharing step.
///
/// Emits `HY104` when the shared α functions plus the rebuilt image fail
/// to recompose `f_a` (first mismatching minterm reported), or when the
/// bound set itself is malformed.
pub fn shared_diagnostics(
    f_a: &TruthTable,
    bound: &[usize],
    shared: &SharedAlphas,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Ok((bound_v, free_v)) = split_bound_free(f_a.vars(), bound) else {
        out.push(Diagnostic::new(
            Code::EncodingRecomposition,
            format!(
                "bound set {bound:?} is invalid for a {}-variable function",
                f_a.vars()
            ),
        ));
        return out;
    };
    let t = shared.alphas.len();
    for m in 0..f_a.num_minterms() as u32 {
        let mut x = 0u32;
        for (i, &v) in bound_v.iter().enumerate() {
            if m >> v & 1 == 1 {
                x |= 1 << i;
            }
        }
        let mut g_in = 0u32;
        for (bit, alpha) in shared.alphas.iter().enumerate() {
            if alpha.eval(x) {
                g_in |= 1 << bit;
            }
        }
        for (i, &v) in free_v.iter().enumerate() {
            if m >> v & 1 == 1 {
                g_in |= 1 << (t + i);
            }
        }
        if shared.image.eval(g_in) != f_a.eval(m) {
            out.push(
                Diagnostic::new(
                    Code::EncodingRecomposition,
                    format!("shared α recomposition differs from f_a at minterm {m}"),
                )
                .at(Location::Minterm(m as usize)),
            );
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn function_partition_symbols() {
        // (a&b)|(c&d) with bound {a,b}: columns 00,01,10 share a pattern.
        let f = (TruthTable::var(4, 0) & TruthTable::var(4, 1))
            | (TruthTable::var(4, 2) & TruthTable::var(4, 3));
        let p = function_partition(&f, &[0, 1]).unwrap();
        assert_eq!(p.symbols(), &[0, 0, 0, 1]);
        assert_eq!(p.multiplicity(), 2);
    }

    #[test]
    fn coarser_partition_shares_finer_alphas() {
        // f_b distinguishes more columns than f_a: sharing must work.
        let f_b = TruthTable::from_fn(5, |m| {
            // Image depends on both bound bits individually.
            let (a, b, y) = (m & 1, m >> 1 & 1, m >> 2);
            (a ^ b) == 1 || (a & b) == 1 && y == 0b111
        });
        let f_a = TruthTable::from_fn(5, |m| {
            // Depends only on a&b of the bound set.
            let (a, b, y) = (m & 1, m >> 1 & 1, m >> 2);
            (a & b) == 1 && y % 2 == 1
        });
        let bound = [0usize, 1];
        let pa = function_partition(&f_a, &bound).unwrap();
        let pb = function_partition(&f_b, &bound).unwrap();
        assert!(pa.is_contained_by(&pb), "pa={pa} pb={pb}");
        let shared = share_alphas(&f_a, &f_b, &bound).unwrap().unwrap();
        assert!(verify_shared(&f_a, &bound, &shared));
    }

    #[test]
    fn incomparable_partitions_cannot_share() {
        // f_a distinguishes a column f_b merges.
        let f_a = TruthTable::from_fn(4, |m| (m & 0b11) == 0 && m >> 2 == 0b01);
        let f_b = TruthTable::from_fn(4, |m| (m & 0b11) == 3 && m >> 2 == 0b10);
        let bound = [0usize, 1];
        let pa = function_partition(&f_a, &bound).unwrap();
        let pb = function_partition(&f_b, &bound).unwrap();
        if !pa.is_contained_by(&pb) {
            assert!(share_alphas(&f_a, &f_b, &bound).unwrap().is_none());
        }
    }

    #[test]
    fn self_sharing_always_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        for _ in 0..10 {
            let f = TruthTable::random(6, &mut rng);
            let shared = share_alphas(&f, &f, &[0, 1, 2]).unwrap().unwrap();
            assert!(verify_shared(&f, &[0, 1, 2], &shared));
        }
    }

    #[test]
    fn pliable_sharing_example_4_2_shape() {
        // Build three functions where f0's partition is contained by the
        // conjunction of f1 and f2 (the hyper-function of f1,f2), mirroring
        // Example 4.2: f0 can reuse the 3 shared α functions even though it
        // alone would need only 2.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        loop {
            let f1 = TruthTable::random(6, &mut rng);
            let _f2 = TruthTable::random(6, &mut rng);
            let bound = [0usize, 1, 2, 3];
            // f0: a function whose columns only distinguish what f1 does.
            let p1 = function_partition(&f1, &bound).unwrap();
            let f0 = TruthTable::from_fn(6, |m| {
                let c = (m & 0b1111) as usize;
                p1.symbol(c).is_multiple_of(2) && (m >> 4) == 0b01
            });
            let p0 = function_partition(&f0, &bound).unwrap();
            if p0.multiplicity() < 2 {
                continue;
            }
            assert!(p0.is_contained_by(&p1));
            // Sharing f1's alphas with f0 works even when f0 needs fewer
            // bits (pliable encoding).
            let shared = share_alphas(&f0, &f1, &bound).unwrap().unwrap();
            assert!(verify_shared(&f0, &bound, &shared));
            let own_bits = crate::encoding::ceil_log2(p0.multiplicity());
            assert!(shared.alphas.len() >= own_bits);
            break;
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(4, 0);
        assert!(share_alphas(&a, &b, &[0]).is_err());
    }
}
