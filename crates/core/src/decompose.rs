//! Roth–Karp decomposition steps and recursive LUT network construction.
//!
//! A single [`decompose_step`] performs `f(X, Y) = g(α(X), Y)` for a chosen
//! bound set and encoder; [`Decomposer`] drives the full recursion that the
//! HYDE mapping flow applies to every function: select a λ set, extract
//! compatible classes, encode them, emit the α functions as LUTs, and
//! recurse on the image until everything is κ-feasible. A Shannon-expansion
//! fallback guarantees termination when no bound set is gainful.

use crate::chart::DecompositionChart;
use crate::encoding::{build_alphas, build_image, ceil_log2, CodeAssignment, EncoderKind};
use crate::varpart::VariablePartitioner;
use crate::CoreError;
use hyde_logic::diag::{any_deny, Code, Diagnostic, Location};
use hyde_logic::network::project_to_support;
use hyde_logic::{Network, NodeId, TruthTable};

/// The artifacts of one disjoint decomposition step.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Bound (λ) set variables of the original function.
    pub bound: Vec<usize>,
    /// Free (μ) set variables, ascending.
    pub free: Vec<usize>,
    /// Decomposition (α) functions over the bound variables.
    pub alphas: Vec<TruthTable>,
    /// Image function `g` over `alphas.len() + free.len()` variables
    /// (α bits first), with unused code points resolved to 0.
    pub image: TruthTable,
    /// Don't-care set of the image (unused code points).
    pub image_dc: TruthTable,
    /// The codes assigned to the compatible classes.
    pub codes: CodeAssignment,
}

impl Decomposition {
    /// Number of α functions (`t`).
    pub fn alpha_count(&self) -> usize {
        self.alphas.len()
    }

    /// Recomposes `g(α(x), y)` and checks equality with `f` on every
    /// minterm.
    ///
    /// Thin wrapper over [`Decomposition::diagnostics`]: true iff no
    /// deny-level diagnostic fires.
    pub fn verify(&self, f: &TruthTable) -> bool {
        !any_deny(&self.diagnostics(f))
    }

    /// Proof hook: materializes `g(α(x), y)` as a truth table over the
    /// original variable space, so independent oracles (exhaustive
    /// simulation, SAT/BDD equivalence checks) can compare it against
    /// `f` without re-deriving the recomposition arithmetic.
    pub fn recomposed_table(&self) -> TruthTable {
        let n = self.bound.len() + self.free.len();
        let t = self.alphas.len();
        TruthTable::from_fn(n, |m| {
            let mut x = 0u32;
            for (i, &v) in self.bound.iter().enumerate() {
                if m >> v & 1 == 1 {
                    x |= 1 << i;
                }
            }
            let mut g_in = 0u32;
            for (bit, alpha) in self.alphas.iter().enumerate() {
                if alpha.eval(x) {
                    g_in |= 1 << bit;
                }
            }
            for (i, &v) in self.free.iter().enumerate() {
                if m >> v & 1 == 1 {
                    g_in |= 1 << (t + i);
                }
            }
            self.image.eval(g_in)
        })
    }

    /// Runs the structured invariant checks of one decomposition step.
    ///
    /// Emits `HY101` for non-injective codes, `HY102` (warn) for pliable
    /// code widths, and `HY104` for every recomposition mismatch between
    /// `g(α(x), y)` and `f` (first mismatching minterm reported).
    pub fn diagnostics(&self, f: &TruthTable) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        crate::encoding::code_diagnostics(&self.codes, &mut out);
        let t = self.alphas.len();
        for m in 0..f.num_minterms() as u32 {
            let mut x = 0u32;
            for (i, &v) in self.bound.iter().enumerate() {
                if m >> v & 1 == 1 {
                    x |= 1 << i;
                }
            }
            let mut g_in = 0u32;
            for (bit, alpha) in self.alphas.iter().enumerate() {
                if alpha.eval(x) {
                    g_in |= 1 << bit;
                }
            }
            for (i, &v) in self.free.iter().enumerate() {
                if m >> v & 1 == 1 {
                    g_in |= 1 << (t + i);
                }
            }
            if self.image.eval(g_in) != f.eval(m) {
                out.push(
                    Diagnostic::new(
                        Code::EncodingRecomposition,
                        format!("g(α(x), y) differs from f at minterm {m}"),
                    )
                    .at(Location::Minterm(m as usize)),
                );
                break;
            }
        }
        out
    }
}

/// Performs one decomposition step of `f` with the given bound set and
/// encoder.
///
/// # Errors
///
/// Returns [`CoreError::InvalidBoundSet`] for malformed bound sets and
/// propagates encoder failures.
pub fn decompose_step(
    f: &TruthTable,
    bound: &[usize],
    encoder: &EncoderKind,
    k: usize,
) -> Result<Decomposition, CoreError> {
    decompose_step_budgeted(f, bound, encoder, k, &hyde_guard::Budget::unlimited())
}

/// Like [`decompose_step`], but the encoder's internal searches run under
/// `budget` and fail with [`CoreError::OutOfBudget`] instead of blowing
/// up on adversarial class structures.
///
/// # Errors
///
/// As [`decompose_step`], plus [`CoreError::OutOfBudget`].
pub fn decompose_step_budgeted(
    f: &TruthTable,
    bound: &[usize],
    encoder: &EncoderKind,
    k: usize,
    budget: &hyde_guard::Budget,
) -> Result<Decomposition, CoreError> {
    decompose_step_with(f, bound, encoder, k, budget, None)
}

/// Like [`decompose_step_budgeted`], with an optional shared NPN search
/// memo forwarded to encoders that run internal λ-set searches (the HYDE
/// encoder). `None` behaves exactly like [`decompose_step_budgeted`].
///
/// # Errors
///
/// As [`decompose_step_budgeted`].
pub fn decompose_step_with(
    f: &TruthTable,
    bound: &[usize],
    encoder: &EncoderKind,
    k: usize,
    budget: &hyde_guard::Budget,
    cache: Option<&std::sync::Arc<crate::dcache::DecompCache>>,
) -> Result<Decomposition, CoreError> {
    let _obs = hyde_obs::span!("decompose.step");
    hyde_obs::counter("decompose.steps", 1);
    let chart = {
        let _obs = hyde_obs::span!("chart.build");
        DecompositionChart::new(f, bound)?
    };
    let classes = chart.classes();
    hyde_obs::counter("decompose.classes", classes.len() as u64);
    let codes = {
        let _obs = hyde_obs::span!("encoding.encode");
        let mut enc = encoder.build();
        enc.set_budget(*budget);
        if let Some(cache) = cache {
            enc.set_decomp_cache(cache.clone());
        }
        enc.encode(classes, k)?
    };
    let alphas = build_alphas(classes.class_map(), &codes, bound.len());
    let (image, image_dc) = build_image(classes, &codes);
    let d = Decomposition {
        bound: chart.bound().to_vec(),
        free: chart.free().to_vec(),
        alphas,
        image,
        image_dc,
        codes,
    };
    // Invariant gate at the Decomposer step boundary: in debug builds (or
    // release builds with `strict-checks`) every step must lint clean (no
    // deny-level diagnostic).
    #[cfg(any(debug_assertions, feature = "strict-checks"))]
    {
        let diags = d.diagnostics(f);
        assert!(
            !any_deny(&diags),
            "decompose_step invariant gate failed: {}",
            diags
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
    Ok(d)
}

/// Statistics of one recursive decomposition run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecomposeStats {
    /// Number of Roth–Karp steps taken.
    pub steps: usize,
    /// Number of Shannon-expansion fallbacks.
    pub shannon_fallbacks: usize,
    /// Total α functions emitted.
    pub alpha_luts: usize,
}

/// Recursive decomposer producing κ-feasible LUT networks.
///
/// # Example
///
/// ```
/// use hyde_core::decompose::Decomposer;
/// use hyde_core::encoding::EncoderKind;
/// use hyde_logic::TruthTable;
///
/// let f = TruthTable::from_fn(7, |m| m.count_ones() % 2 == 1); // parity-7
/// let dec = Decomposer::new(5, EncoderKind::Hyde { seed: 1 });
/// let (net, _stats) = dec.decompose_to_network(&f, "par7").unwrap();
/// assert!(net.is_k_feasible(5));
/// // The network still computes parity:
/// let bits = [true, false, true, true, false, false, false];
/// assert_eq!(net.eval(&bits), vec![true]);
/// ```
#[derive(Debug, Clone)]
pub struct Decomposer {
    k: usize,
    encoder: EncoderKind,
    partitioner: VariablePartitioner,
    budget: hyde_guard::Budget,
    chaos: Option<hyde_guard::Chaos>,
    /// Chaos site context (usually the circuit name); combined with the
    /// node prefix it keys injection deterministically.
    chaos_ctx: String,
    /// Shared NPN-keyed search memo, forwarded to the partitioner and the
    /// encoder at every step (see [`crate::dcache`]).
    cache: Option<std::sync::Arc<crate::dcache::DecompCache>>,
}

impl Decomposer {
    /// Creates a decomposer targeting `k`-input LUTs.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3` (Shannon fallback needs 3-input muxes).
    pub fn new(k: usize, encoder: EncoderKind) -> Self {
        assert!(k >= 3, "LUT size must be at least 3");
        Decomposer {
            k,
            encoder,
            partitioner: VariablePartitioner::default(),
            budget: hyde_guard::Budget::unlimited(),
            chaos: None,
            chaos_ctx: String::new(),
            cache: None,
        }
    }

    /// Overrides the λ-set selector.
    pub fn with_partitioner(mut self, partitioner: VariablePartitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Applies a resource budget: the λ-set search fails with
    /// [`CoreError::OutOfBudget`] instead of evaluating more candidates
    /// (or growing a BDD larger) than the budget allows, and an expired
    /// deadline aborts the recursion at the next step boundary.
    pub fn with_budget(mut self, budget: hyde_guard::Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Arms deterministic fault injection. `ctx` (usually the circuit
    /// name) keys the injection sites together with each node prefix.
    pub fn with_chaos(mut self, chaos: Option<hyde_guard::Chaos>, ctx: &str) -> Self {
        self.chaos = chaos;
        self.chaos_ctx = ctx.to_string();
        self
    }

    /// Attaches a shared NPN-keyed search memo: λ-set searches at every
    /// recursion level (and inside the HYDE encoder) are answered from
    /// the cache when possible. `None` disables memoization.
    pub fn with_cache(mut self, cache: Option<std::sync::Arc<crate::dcache::DecompCache>>) -> Self {
        self.cache = cache;
        self
    }

    /// The resource budget in force.
    pub fn budget(&self) -> &hyde_guard::Budget {
        &self.budget
    }

    /// Target LUT size κ.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Decomposes `f` into a fresh κ-feasible network with one output.
    ///
    /// # Errors
    ///
    /// Propagates decomposition errors; verification failures surface as
    /// [`CoreError::Verification`].
    pub fn decompose_to_network(
        &self,
        f: &TruthTable,
        name: &str,
    ) -> Result<(Network, DecomposeStats), CoreError> {
        let mut net = Network::new(name);
        let inputs: Vec<NodeId> = (0..f.vars())
            .map(|i| net.add_input(&format!("x{i}")))
            .collect();
        let mut stats = DecomposeStats::default();
        let out = self.decompose_onto(&mut net, f, &inputs, name, &mut stats)?;
        net.mark_output(name, out);
        Ok((net, stats))
    }

    /// Decomposes `f` inside an existing network, with `signals[i]` driving
    /// variable `i` of `f`. Returns the node computing `f`.
    ///
    /// # Errors
    ///
    /// Propagates decomposition errors.
    pub fn decompose_onto(
        &self,
        net: &mut Network,
        f: &TruthTable,
        signals: &[NodeId],
        prefix: &str,
        stats: &mut DecomposeStats,
    ) -> Result<NodeId, CoreError> {
        self.decompose_onto_avoiding(
            net,
            f,
            signals,
            &std::collections::HashSet::new(),
            prefix,
            stats,
        )
    }

    /// Like [`Self::decompose_onto`], but treats the signals in `avoid` as
    /// pseudo primary inputs to be kept out of bound sets wherever possible
    /// (Section 4.3: "pseudo primary inputs are preferred to be kept in the
    /// μ set during decomposition" so the duplication cone stays small).
    ///
    /// # Errors
    ///
    /// Propagates decomposition errors.
    pub fn decompose_onto_avoiding(
        &self,
        net: &mut Network,
        f: &TruthTable,
        signals: &[NodeId],
        avoid: &std::collections::HashSet<NodeId>,
        prefix: &str,
        stats: &mut DecomposeStats,
    ) -> Result<NodeId, CoreError> {
        assert_eq!(f.vars(), signals.len(), "one signal per variable");
        // Support minimization first.
        let support = f.support();
        if support.len() < f.vars() {
            let reduced = project_to_support(f, &support);
            let sigs: Vec<NodeId> = support.iter().map(|&v| signals[v]).collect();
            return self.decompose_onto_avoiding(net, &reduced, &sigs, avoid, prefix, stats);
        }
        if f.vars() == 0 {
            return Ok(net.add_constant(&format!("{prefix}_const"), !f.is_zero()));
        }
        if f.vars() <= self.k {
            return net
                .add_node(prefix, signals.to_vec(), f.clone())
                .map_err(CoreError::from);
        }
        // Budget gates fire only on non-trivial steps: k-feasible
        // functions above never cost anything worth bounding.
        self.budget.check_deadline()?;
        if let Some(chaos) = self.chaos {
            let site = format!("exact:{}:{}", self.chaos_ctx, prefix);
            if chaos.trips(&site, 4) {
                return Err(CoreError::OutOfBudget(hyde_guard::OutOfBudget::injected(
                    hyde_guard::Resource::Candidates,
                )));
            }
        }
        // Choose a λ set of size k (classes must fit in < k bits to make
        // progress: t + (n-k) < n). Prefer bound sets avoiding pseudo
        // signals; fall back to the unrestricted search.
        let vp = self
            .partitioner
            .clone()
            .with_budget(&self.budget)
            .with_cache_opt(self.cache.clone());
        let clean: Vec<usize> = (0..f.vars())
            .filter(|&v| !avoid.contains(&signals[v]))
            .collect();
        let mut pick = if clean.len() >= self.k && !avoid.is_empty() {
            match vp.best_bound_set_among(f, self.k, &clean) {
                Ok(p) => Some(p),
                // Budget exhaustion must surface, not be swallowed like
                // an infeasible clean bound set.
                Err(e @ CoreError::OutOfBudget(_)) => return Err(e),
                Err(_) => None,
            }
        } else {
            None
        };
        if pick.as_ref().is_none_or(|(_, c)| ceil_log2(*c) >= self.k) {
            let unrestricted = vp.best_bound_set(f, self.k)?;
            let take_unrestricted = match &pick {
                None => true,
                // Only give up the clean bound set if it makes no progress
                // and the unrestricted one does.
                Some((_, c)) => ceil_log2(*c) >= self.k && ceil_log2(unrestricted.1) < self.k,
            };
            if take_unrestricted {
                pick = Some(unrestricted);
            }
        }
        let (bound, class_cnt) =
            pick.ok_or_else(|| CoreError::InvalidBoundSet("no bound set selected".into()))?;
        let t = ceil_log2(class_cnt);
        if t >= self.k {
            // No gainful bound set: Shannon-expand, preferring a pseudo
            // variable (duplication happens at recovery anyway).
            stats.shannon_fallbacks += 1;
            hyde_obs::counter("decompose.shannon", 1);
            let var = (0..f.vars())
                .rev()
                .find(|&v| avoid.contains(&signals[v]))
                .unwrap_or(f.vars() - 1);
            let f0 = f.cofactor(var, false);
            let f1 = f.cofactor(var, true);
            let n0 = self.decompose_onto_avoiding(
                net,
                &f0,
                signals,
                avoid,
                &format!("{prefix}_lo"),
                stats,
            )?;
            let n1 = self.decompose_onto_avoiding(
                net,
                &f1,
                signals,
                avoid,
                &format!("{prefix}_hi"),
                stats,
            )?;
            // mux(s, a, b) = s ? b : a over vars (s, a, b).
            let mux = TruthTable::from_fn(3, |m| {
                if m & 1 == 1 {
                    m >> 2 & 1 == 1
                } else {
                    m >> 1 & 1 == 1
                }
            });
            return net
                .add_node(prefix, vec![signals[var], n0, n1], mux)
                .map_err(CoreError::from);
        }
        stats.steps += 1;
        let d = decompose_step_with(
            f,
            &bound,
            &self.encoder,
            self.k,
            &self.budget,
            self.cache.as_ref(),
        )?;
        if !d.verify(f) {
            return Err(CoreError::Verification(format!(
                "recomposition mismatch at node {prefix}"
            )));
        }
        // Emit α LUTs (each has |bound| = k inputs). An α built over a
        // pseudo signal is itself pseudo-derived (duplication source).
        let bound_sigs: Vec<NodeId> = d.bound.iter().map(|&v| signals[v]).collect();
        let alpha_tainted = bound_sigs.iter().any(|s| avoid.contains(s));
        let mut next_avoid = avoid.clone();
        let mut g_sigs: Vec<NodeId> = Vec::with_capacity(d.alphas.len() + d.free.len());
        for (i, alpha) in d.alphas.iter().enumerate() {
            let id = net
                .add_node(&format!("{prefix}_a{i}"), bound_sigs.clone(), alpha.clone())
                .map_err(CoreError::from)?;
            stats.alpha_luts += 1;
            if alpha_tainted {
                next_avoid.insert(id);
            }
            g_sigs.push(id);
        }
        for &v in &d.free {
            g_sigs.push(signals[v]);
        }
        // Recurse on the image.
        self.decompose_onto_avoiding(
            net,
            &d.image,
            &g_sigs,
            &next_avoid,
            &format!("{prefix}_g"),
            stats,
        )
    }
}

/// Decomposes a wide function held as a BDD into a κ-feasible network,
/// without ever materializing a full truth table of the function.
///
/// Bound sets are chosen greedily over the BDD (sampled candidates scored
/// by [`hyde_bdd::Bdd::compatible_class_count`]); each step emits the α
/// LUTs (κ-input truth tables enumerated from the α BDDs) and recurses on
/// the image BDD. A Shannon fallback on the topmost support variable
/// guarantees termination.
///
/// # Errors
///
/// Propagates decomposition errors.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use hyde_core::decompose::decompose_bdd_to_network;
/// use hyde_bdd::Bdd;
///
/// // 18-input OR-of-AND-pairs: far beyond truth-table width comfort.
/// let mut bdd = Bdd::new(18);
/// let mut f = bdd.zero();
/// for i in (0..18).step_by(2) {
///     let a = bdd.var(i);
///     let b = bdd.var(i + 1);
///     let ab = bdd.and(a, b);
///     f = bdd.or(f, ab);
/// }
/// let net = decompose_bdd_to_network(&mut bdd, f, 5, "wide", 64)?;
/// assert!(net.is_k_feasible(5));
/// # Ok(())
/// # }
/// ```
pub fn decompose_bdd_to_network(
    bdd: &mut hyde_bdd::Bdd,
    f: hyde_bdd::Ref,
    k: usize,
    name: &str,
    candidate_budget: usize,
) -> Result<Network, CoreError> {
    assert!(k >= 3, "LUT size must be at least 3");
    let _obs = hyde_obs::span!("decompose.bdd");
    let n = bdd.num_vars();
    let mut net = Network::new(name);
    let signals: Vec<NodeId> = (0..n).map(|i| net.add_input(&format!("x{i}"))).collect();
    let out = bdd_rec(
        bdd,
        f,
        k,
        &mut net,
        &signals,
        name,
        candidate_budget,
        0,
        &[],
    )?;
    net.mark_output(name, out);
    net.sweep();
    Ok(net)
}

#[allow(clippy::too_many_arguments)]
fn bdd_rec(
    bdd: &mut hyde_bdd::Bdd,
    f: hyde_bdd::Ref,
    k: usize,
    net: &mut Network,
    signals: &[NodeId],
    prefix: &str,
    budget: usize,
    depth: usize,
    keep: &[hyde_bdd::Ref],
) -> Result<NodeId, CoreError> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    // Recursion entry is a GC safe point: the only live refs in this
    // manager are `f` and the caller-held `keep` roots (pending Shannon
    // siblings). No-op unless a threshold is armed (see set_gc_threshold).
    {
        let mut roots = keep.to_vec();
        roots.push(f);
        bdd.maybe_gc(&roots);
    }
    let support = bdd.support(f);
    if support.is_empty() {
        return Ok(net.add_constant(&format!("{prefix}_const"), f == bdd.one()));
    }
    if support.len() <= k {
        // Enumerate the local truth table over the support.
        let table = TruthTable::from_fn(support.len(), |m| {
            let mut full = 0u32;
            for (i, &v) in support.iter().enumerate() {
                if m >> i & 1 == 1 {
                    full |= 1 << v;
                }
            }
            bdd.eval(f, full)
        });
        let sigs: Vec<NodeId> = support.iter().map(|&v| signals[v]).collect();
        return net.add_node(prefix, sigs, table).map_err(CoreError::from);
    }
    // Candidate bound sets: seeded random k-subsets of the support.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB0_0D + depth as u64);
    let mut best: Option<(Vec<usize>, usize)> = None;
    for _ in 0..budget {
        let mut cand = support.clone();
        cand.shuffle(&mut rng);
        cand.truncate(k);
        cand.sort_unstable();
        let classes = bdd.compatible_class_count(f, &cand);
        if best.as_ref().is_none_or(|(_, c)| classes < *c) {
            best = Some((cand, classes));
        }
    }
    let (bound, classes) = best.ok_or_else(|| {
        CoreError::OutOfBudget(hyde_guard::OutOfBudget::new(
            hyde_guard::Resource::Candidates,
            budget as u64,
        ))
    })?;
    let t = crate::encoding::ceil_log2(classes);
    if t >= k {
        // Shannon fallback on the first support variable.
        let var = support[0];
        let f0 = bdd.cofactor(f, var, false);
        let f1 = bdd.cofactor(f, var, true);
        // The low recursion must keep f1 alive (it is still pending in
        // this frame); the high recursion inherits only the caller's
        // roots — f and f0 are dead by then.
        let mut keep_lo = keep.to_vec();
        keep_lo.push(f1);
        let n0 = bdd_rec(
            bdd,
            f0,
            k,
            net,
            signals,
            &format!("{prefix}_lo"),
            budget,
            depth + 1,
            &keep_lo,
        )?;
        let n1 = bdd_rec(
            bdd,
            f1,
            k,
            net,
            signals,
            &format!("{prefix}_hi"),
            budget,
            depth + 1,
            keep,
        )?;
        let mux = TruthTable::from_fn(3, |m| {
            if m & 1 == 1 {
                m >> 2 & 1 == 1
            } else {
                m >> 1 & 1 == 1
            }
        });
        return net
            .add_node(prefix, vec![signals[var], n0, n1], mux)
            .map_err(CoreError::from);
    }
    let (d, gman) = crate::bdd_decompose::bdd_decompose(bdd, f, &bound, None)?;
    // α LUTs: enumerate over the k bound variables.
    let bound_sigs: Vec<NodeId> = d.bound.iter().map(|&v| signals[v]).collect();
    let mut g_signals = signals.to_vec();
    for (i, &alpha) in d.alphas.iter().enumerate() {
        let table = TruthTable::from_fn(d.bound.len(), |m| {
            let mut full = 0u32;
            for (j, &v) in d.bound.iter().enumerate() {
                if m >> j & 1 == 1 {
                    full |= 1 << v;
                }
            }
            bdd.eval(alpha, full)
        });
        let id = net
            .add_node(&format!("{prefix}_a{i}"), bound_sigs.clone(), table)
            .map_err(CoreError::from)?;
        g_signals.push(id);
    }
    // Compact the image onto its support so managers do not grow without
    // bound across recursion levels, then recurse.
    let (mut compacted, g, g_support) = crate::bdd_decompose::compact_to_support(&gman, d.image);
    let compact_signals: Vec<NodeId> = g_support.iter().map(|&v| g_signals[v]).collect();
    drop(gman);
    // Fresh manager for the image: caller-held roots live in the old
    // manager, so the recursion starts with no extra keeps (but inherits
    // the old manager's GC arming so deep recursions stay bounded).
    compacted.set_gc_threshold(bdd.gc_threshold());
    bdd_rec(
        &mut compacted,
        g,
        k,
        net,
        &compact_signals,
        &format!("{prefix}_g"),
        budget,
        depth + 1,
        &[],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn single_step_verifies() {
        let f = (TruthTable::var(5, 0) & TruthTable::var(5, 1))
            ^ (TruthTable::var(5, 2) & TruthTable::var(5, 3) & TruthTable::var(5, 4));
        let d = decompose_step(&f, &[0, 1], &EncoderKind::Lexicographic, 4).unwrap();
        assert!(d.verify(&f));
        assert_eq!(d.alpha_count(), 1); // 2 classes -> 1 bit
    }

    #[test]
    fn step_with_random_codes_verifies() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for seed in 0..5 {
            let f = TruthTable::random(7, &mut rng);
            let d = decompose_step(&f, &[0, 2, 4], &EncoderKind::Random { seed }, 5).unwrap();
            assert!(d.verify(&f), "seed {seed}");
            assert!(d.codes.is_strict());
        }
    }

    #[test]
    fn parity_decomposes_without_fallback() {
        let f = TruthTable::from_fn(9, |m| m.count_ones() % 2 == 1);
        let dec = Decomposer::new(4, EncoderKind::Lexicographic);
        let (net, stats) = dec.decompose_to_network(&f, "par9").unwrap();
        assert!(net.is_k_feasible(4));
        assert_eq!(stats.shannon_fallbacks, 0);
        for m in 0u32..512 {
            let bits: Vec<bool> = (0..9).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(net.eval(&bits)[0], m.count_ones() % 2 == 1, "m={m}");
        }
    }

    #[test]
    fn random_functions_decompose_correctly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        for trial in 0..6 {
            let f = TruthTable::random(8, &mut rng);
            for enc in [
                EncoderKind::Lexicographic,
                EncoderKind::Random { seed: trial },
                EncoderKind::Hyde { seed: trial },
            ] {
                let dec = Decomposer::new(5, enc);
                let (net, _) = dec.decompose_to_network(&f, "rnd").unwrap();
                assert!(net.is_k_feasible(5));
                for m in (0u32..256).step_by(7) {
                    let bits: Vec<bool> = (0..8).map(|i| m >> i & 1 == 1).collect();
                    assert_eq!(net.eval(&bits)[0], f.eval(m), "trial {trial} m {m}");
                }
            }
        }
    }

    #[test]
    fn small_function_is_single_lut() {
        let f = TruthTable::from_fn(4, |m| m.count_ones() >= 2);
        let dec = Decomposer::new(5, EncoderKind::Lexicographic);
        let (net, stats) = dec.decompose_to_network(&f, "maj4").unwrap();
        assert_eq!(net.internal_count(), 1);
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn vacuous_variables_are_dropped() {
        // 8-var function depending on 3 vars only.
        let f = TruthTable::from_fn(8, |m| {
            let (a, b, c) = (m & 1, m >> 3 & 1, m >> 6 & 1);
            a & b | c == 1
        });
        let dec = Decomposer::new(5, EncoderKind::Lexicographic);
        let (net, _) = dec.decompose_to_network(&f, "vac").unwrap();
        assert_eq!(net.internal_count(), 1);
    }

    #[test]
    fn constant_function() {
        let f = TruthTable::one(6);
        let dec = Decomposer::new(4, EncoderKind::Lexicographic);
        let (net, _) = dec.decompose_to_network(&f, "one").unwrap();
        assert_eq!(net.eval(&[false; 6]), vec![true]);
    }

    #[test]
    fn shannon_fallback_still_correct() {
        // Force fallbacks by using a tiny k on dense random functions.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let f = TruthTable::random(6, &mut rng);
        let dec = Decomposer::new(3, EncoderKind::Lexicographic);
        let (net, _stats) = dec.decompose_to_network(&f, "hard").unwrap();
        assert!(net.is_k_feasible(3));
        for m in 0u32..64 {
            let bits: Vec<bool> = (0..6).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(net.eval(&bits)[0], f.eval(m), "m={m}");
        }
    }

    #[test]
    fn bdd_path_maps_wide_functions() {
        // 20-input function: OR of 2-input ANDs, decomposes cleanly.
        let mut bdd = hyde_bdd::Bdd::new(20);
        let mut f = bdd.zero();
        for i in (0..20).step_by(2) {
            let a = bdd.var(i);
            let b = bdd.var(i + 1);
            let ab = bdd.and(a, b);
            f = bdd.or(f, ab);
        }
        let net = decompose_bdd_to_network(&mut bdd, f, 5, "wide20", 32).unwrap();
        assert!(net.is_k_feasible(5));
        // Spot-check correctness via network eval against the BDD.
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let positions: Vec<usize> = net
            .inputs()
            .iter()
            .map(|&id| {
                net.node_name(id)
                    .strip_prefix('x')
                    .and_then(|s| s.parse().ok())
                    .unwrap()
            })
            .collect();
        for _ in 0..500 {
            let m: u32 = rng.gen_range(0..1 << 20);
            let bits: Vec<bool> = positions.iter().map(|&p| m >> p & 1 == 1).collect();
            assert_eq!(net.eval(&bits)[0], bdd.eval(f, m), "m={m}");
        }
    }

    #[test]
    fn bdd_path_agrees_with_table_path_on_small_functions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let tt = TruthTable::random(8, &mut rng);
        let mut bdd = hyde_bdd::Bdd::new(8);
        let f = bdd.from_fn(|m| tt.eval(m));
        let net = decompose_bdd_to_network(&mut bdd, f, 5, "cmp", 64).unwrap();
        assert!(net.is_k_feasible(5));
        let positions: Vec<usize> = net
            .inputs()
            .iter()
            .map(|&id| {
                net.node_name(id)
                    .strip_prefix('x')
                    .and_then(|s| s.parse().ok())
                    .unwrap()
            })
            .collect();
        for m in 0u32..256 {
            let bits: Vec<bool> = positions.iter().map(|&p| m >> p & 1 == 1).collect();
            assert_eq!(net.eval(&bits)[0], tt.eval(m), "m={m}");
        }
    }

    #[test]
    fn decompose_onto_shares_signals() {
        // Two functions over the same inputs inside one network.
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let f = TruthTable::random(7, &mut rng);
        let g = TruthTable::random(7, &mut rng);
        let dec = Decomposer::new(5, EncoderKind::Lexicographic);
        let mut net = Network::new("two");
        let inputs: Vec<NodeId> = (0..7).map(|i| net.add_input(&format!("i{i}"))).collect();
        let mut stats = DecomposeStats::default();
        let nf = dec
            .decompose_onto(&mut net, &f, &inputs, "f", &mut stats)
            .unwrap();
        let ng = dec
            .decompose_onto(&mut net, &g, &inputs, "g", &mut stats)
            .unwrap();
        net.mark_output("f", nf);
        net.mark_output("g", ng);
        for m in (0u32..128).step_by(3) {
            let bits: Vec<bool> = (0..7).map(|i| m >> i & 1 == 1).collect();
            let out = net.eval(&bits);
            assert_eq!(out[0], f.eval(m));
            assert_eq!(out[1], g.eval(m));
        }
    }
}
