//! Multi-output decomposition charts (the FGSyn-style column encoding view).
//!
//! Lai, Pan and Pedram's column encoding (reference `[4]`, which Section 4.3
//! of the HYDE paper shows to be the pseudo-inputs-in-μ special case of
//! hyper-function decomposition) decomposes a function *vector* with one
//! joint chart: two bound-set vertices are compatible iff **every** output's
//! column patterns agree. The shared α functions encode the joint classes
//! and each output keeps its own image function.

use crate::chart::{column_patterns, split_bound_free};
use crate::encoding::{build_alphas, ceil_log2, code_diagnostics, CodeAssignment};
use crate::CoreError;
use hyde_logic::diag::{any_deny, Code, Diagnostic, Location};
use hyde_logic::TruthTable;
use std::collections::HashMap;

/// A joint decomposition chart over several outputs sharing one bound set.
#[derive(Debug, Clone)]
pub struct MultiChart {
    bound: Vec<usize>,
    free: Vec<usize>,
    /// `columns[f][c]` — column pattern of output `f` at bound assignment
    /// `c`, as a function of the free variables.
    columns: Vec<Vec<TruthTable>>,
    /// Joint class of each column.
    class_of: Vec<usize>,
    /// A representative column per class.
    representatives: Vec<usize>,
}

impl MultiChart {
    /// Builds the joint chart of `outputs` for `bound`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBoundSet`] for malformed bound sets or
    /// when outputs disagree in arity / no outputs are given.
    pub fn new(outputs: &[TruthTable], bound: &[usize]) -> Result<Self, CoreError> {
        if outputs.is_empty() {
            return Err(CoreError::InvalidBoundSet("no outputs".into()));
        }
        let vars = outputs[0].vars();
        if outputs.iter().any(|f| f.vars() != vars) {
            return Err(CoreError::InvalidBoundSet(
                "outputs must share one input space".into(),
            ));
        }
        let (bound, free) = split_bound_free(vars, bound)?;
        let columns: Vec<Vec<TruthTable>> = outputs
            .iter()
            .map(|f| column_patterns(f, &bound, &free))
            .collect();
        let n_cols = 1usize << bound.len();
        let mut class_of = vec![0usize; n_cols];
        let mut representatives = Vec::new();
        let mut index: HashMap<Vec<Vec<u64>>, usize> = HashMap::new();
        for c in 0..n_cols {
            let key: Vec<Vec<u64>> = columns
                .iter()
                .map(|cols| cols[c].as_words().to_vec())
                .collect();
            let next = representatives.len();
            let id = *index.entry(key).or_insert(next);
            if id == next {
                representatives.push(c);
            }
            class_of[c] = id;
        }
        Ok(MultiChart {
            bound,
            free,
            columns,
            class_of,
            representatives,
        })
    }

    /// Bound (λ) set variables.
    pub fn bound(&self) -> &[usize] {
        &self.bound
    }

    /// Free (μ) set variables.
    pub fn free(&self) -> &[usize] {
        &self.free
    }

    /// Number of joint compatible classes.
    pub fn class_count(&self) -> usize {
        self.representatives.len()
    }

    /// Joint class of each bound assignment.
    pub fn class_map(&self) -> &[usize] {
        &self.class_of
    }

    /// Number of α bits a rigid strict encoding needs.
    pub fn code_bits(&self) -> usize {
        ceil_log2(self.class_count())
    }

    /// Shared α functions for the given strict codes.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != class_count()`.
    pub fn alphas(&self, codes: &CodeAssignment) -> Vec<TruthTable> {
        assert_eq!(codes.len(), self.class_count(), "one code per class");
        build_alphas(&self.class_of, codes, self.bound.len())
    }

    /// Image function of output `o` under the given codes: variables
    /// `0..t` are the α bits, then the free variables.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range or codes mismatch the classes.
    pub fn image(&self, o: usize, codes: &CodeAssignment) -> TruthTable {
        assert_eq!(codes.len(), self.class_count(), "one code per class");
        let t = codes.bits();
        let mu = self.free.len();
        let mut by_code: HashMap<u32, usize> = HashMap::new();
        for (cls, &code) in codes.codes().iter().enumerate() {
            by_code.insert(code, cls);
        }
        TruthTable::from_fn(t + mu, |m| {
            let a = m & ((1u32 << t) - 1);
            let y = m >> t;
            match by_code.get(&a) {
                Some(&cls) => self.columns[o][self.representatives[cls]].eval(y),
                None => false,
            }
        })
    }

    /// Verifies that the shared α functions plus the per-output images
    /// recompose every output exactly.
    ///
    /// Thin wrapper over [`MultiChart::diagnostics`]: true iff no
    /// deny-level diagnostic fires.
    pub fn verify(&self, outputs: &[TruthTable], codes: &CodeAssignment) -> bool {
        !any_deny(&self.diagnostics(outputs, codes))
    }

    /// Runs the structured invariant checks of the joint decomposition.
    ///
    /// Emits `HY101`/`HY102` for the code assignment and `HY104` (with the
    /// offending output as location) for every output whose shared-α
    /// recomposition differs from the specification.
    pub fn diagnostics(&self, outputs: &[TruthTable], codes: &CodeAssignment) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        code_diagnostics(codes, &mut out);
        let alphas = self.alphas(codes);
        let t = alphas.len();
        for (o, f) in outputs.iter().enumerate() {
            let image = self.image(o, codes);
            for m in 0..f.num_minterms() as u32 {
                let mut x = 0u32;
                for (i, &v) in self.bound.iter().enumerate() {
                    if m >> v & 1 == 1 {
                        x |= 1 << i;
                    }
                }
                let mut g_in = 0u32;
                for (bit, alpha) in alphas.iter().enumerate() {
                    if alpha.eval(x) {
                        g_in |= 1 << bit;
                    }
                }
                for (i, &v) in self.free.iter().enumerate() {
                    if m >> v & 1 == 1 {
                        g_in |= 1 << (t + i);
                    }
                }
                if image.eval(g_in) != f.eval(m) {
                    out.push(
                        Diagnostic::new(
                            Code::EncodingRecomposition,
                            format!(
                                "output {o} differs from its joint recomposition at minterm {m}"
                            ),
                        )
                        .at(Location::Output(o)),
                    );
                    break;
                }
            }
        }
        out
    }
}

/// Counts joint compatible classes without keeping the chart (hot path of
/// joint λ-set selection).
///
/// # Errors
///
/// Same conditions as [`MultiChart::new`].
pub fn joint_class_count(outputs: &[TruthTable], bound: &[usize]) -> Result<usize, CoreError> {
    MultiChart::new(outputs, bound).map(|c| c.class_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn adder_outputs() -> Vec<TruthTable> {
        (0..3)
            .map(|o| {
                TruthTable::from_fn(4, move |m| {
                    let a = m & 0b11;
                    let b = m >> 2;
                    ((a + b) >> o) & 1 == 1
                })
            })
            .collect()
    }

    #[test]
    fn joint_classes_refine_individual_classes() {
        let outs = adder_outputs();
        let chart = MultiChart::new(&outs, &[0, 1]).unwrap();
        for f in &outs {
            let solo = crate::chart::class_count(f, &[0, 1]).unwrap();
            assert!(chart.class_count() >= solo);
        }
        assert!(chart.class_count() <= 4);
    }

    #[test]
    fn recomposition_all_outputs() {
        let outs = adder_outputs();
        let chart = MultiChart::new(&outs, &[0, 1]).unwrap();
        let codes =
            CodeAssignment::new((0..chart.class_count() as u32).collect(), chart.code_bits())
                .unwrap();
        assert!(chart.verify(&outs, &codes));
    }

    #[test]
    fn random_vectors_recompose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(66);
        for _ in 0..10 {
            let outs: Vec<TruthTable> = (0..3).map(|_| TruthTable::random(6, &mut rng)).collect();
            let chart = MultiChart::new(&outs, &[0, 2, 4]).unwrap();
            let codes =
                CodeAssignment::new((0..chart.class_count() as u32).collect(), chart.code_bits())
                    .unwrap();
            assert!(chart.verify(&outs, &codes));
        }
    }

    #[test]
    fn single_output_matches_plain_chart() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let f = TruthTable::random(6, &mut rng);
        let multi = MultiChart::new(std::slice::from_ref(&f), &[0, 1, 2]).unwrap();
        let solo = crate::chart::class_count(&f, &[0, 1, 2]).unwrap();
        assert_eq!(multi.class_count(), solo);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(MultiChart::new(&[], &[0]).is_err());
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(4, 0);
        assert!(MultiChart::new(&[a.clone(), b], &[0]).is_err());
        assert!(MultiChart::new(&[a], &[0, 1, 2]).is_err());
    }

    #[test]
    fn shared_alphas_really_shared() {
        // The α functions depend only on the chart, not the output index.
        let outs = adder_outputs();
        let chart = MultiChart::new(&outs, &[0, 1]).unwrap();
        let codes =
            CodeAssignment::new((0..chart.class_count() as u32).collect(), chart.code_bits())
                .unwrap();
        let a1 = chart.alphas(&codes);
        let a2 = chart.alphas(&codes);
        assert_eq!(a1, a2);
        assert!(a1.iter().all(|a| a.vars() == 2));
    }
}
