//! Chunked fork/join helpers for the embarrassingly parallel fan-out
//! loops (bound-set candidate evaluation, per-ingredient implementation).
//!
//! The build is offline, so there is no rayon: workers are plain
//! [`std::thread::scope`] threads. Work items are distributed in
//! contiguous chunks and every result lands at its input index, so callers
//! observe *input order* regardless of scheduling — the parallel paths are
//! bit-for-bit deterministic with the sequential ones.
//!
//! The worker count comes from [`thread_count`]: the `HYDE_THREADS`
//! environment variable when set (clamped to `1..=256`), otherwise the
//! machine's available parallelism. With one worker the helpers degrade to
//! a plain loop on the calling thread — no threads are spawned.

/// Upper bound on the worker count accepted from `HYDE_THREADS`.
const MAX_THREADS: usize = 256;

/// Number of worker threads the parallel fan-out loops use.
///
/// Resolution order: `HYDE_THREADS` (values outside `1..=256` are
/// clamped, unparsable values ignored), then
/// [`std::thread::available_parallelism`], then 1.
pub fn thread_count() -> usize {
    // sa:allow(SA002): thread count only partitions work; chunked merge
    // order is fixed, so results stay byte-identical at any width
    // (tests/parallel_determinism.rs proves it).
    if let Ok(v) = std::env::var("HYDE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, MAX_THREADS);
        }
    }
    // sa:allow(SA002): same as above — width never affects results.
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Whether workers of a fan-out spawned on the current thread should
/// claim the stable per-worker obs tracks (`worker-0`, `worker-1`, ...).
/// Only top-level fan-outs (spawned from the main track) do; nested
/// fan-outs fall back to auto-assigned tracks so two live threads never
/// share a lane.
fn claim_worker_tracks() -> bool {
    hyde_obs::enabled() && hyde_obs::current_track() == hyde_obs::MAIN_TRACK
}

/// Applies `f` to every index/item pair of `items`, returning the results
/// in input order. Runs on `threads` scoped workers over contiguous
/// chunks; `threads <= 1` (or a short input) runs inline.
///
/// `label` names the per-worker chunk span recorded when tracing is
/// active (one span per worker, on that worker's track), making the
/// fan-out visible in Chrome-trace exports.
///
/// `f` must be deterministic per item for the parallel and sequential
/// paths to agree; the merge itself preserves input order by construction.
pub fn map_chunked<T, R, F>(label: &'static str, items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        let _obs = hyde_obs::enter_chunk(label);
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let claim = claim_worker_tracks();
    std::thread::scope(|scope| {
        let f = &f;
        // Pair each output chunk with its input chunk; each worker owns
        // one disjoint output slice, so no synchronization is needed.
        for (w, (out_chunk, in_chunk)) in results
            .chunks_mut(chunk)
            .zip(items.chunks(chunk))
            .enumerate()
        {
            scope.spawn(move || {
                if claim {
                    hyde_obs::worker_track(w);
                }
                let _obs = hyde_obs::enter_chunk(label);
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk was processed"))
        .collect()
}

/// Like [`map_chunked`], but each worker first builds private state with
/// `init` (e.g. its own BDD manager) and threads it through its chunk.
///
/// `init` runs once per worker, so it may be expensive relative to a
/// single item; results still land at their input indices. `label` names
/// the per-worker chunk span as in [`map_chunked`].
pub fn map_chunked_init<T, R, S, I, F>(
    label: &'static str,
    items: &[T],
    threads: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        let _obs = hyde_obs::enter_chunk(label);
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let claim = claim_worker_tracks();
    std::thread::scope(|scope| {
        let init = &init;
        let f = &f;
        for (w, (out_chunk, in_chunk)) in results
            .chunks_mut(chunk)
            .zip(items.chunks(chunk))
            .enumerate()
        {
            scope.spawn(move || {
                if claim {
                    hyde_obs::worker_track(w);
                }
                let _obs = hyde_obs::enter_chunk(label);
                let mut state = init();
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(&mut state, item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_threaded_agree() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = map_chunked("test.sq", &items, 1, |&x| x * x + 1);
        for t in [2, 3, 8, 64] {
            assert_eq!(
                map_chunked("test.sq", &items, t, |&x| x * x + 1),
                seq,
                "{t} threads"
            );
        }
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..17).rev().collect();
        let out = map_chunked("test.id", &items, 4, |&x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_chunked("test.id", &empty, 8, |&x| x).is_empty());
        assert_eq!(map_chunked("test.id", &[7u32], 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(
            map_chunked("test.dbl", &items, 100, |&x| x * 2),
            vec![2, 4, 6]
        );
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn init_variant_matches_plain_map() {
        let items: Vec<u64> = (0..321).collect();
        let plain = map_chunked("test.tri", &items, 1, |&x| x * 3);
        for t in [1, 2, 7, 32] {
            // State tracks a per-worker running offset that must NOT leak
            // into results (each item's output depends only on the item).
            let out = map_chunked_init(
                "test.tri",
                &items,
                t,
                || 0u64,
                |seen, &x| {
                    *seen += 1;
                    x * 3
                },
            );
            assert_eq!(out, plain, "{t} threads");
        }
    }
}
