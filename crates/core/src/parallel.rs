//! Deterministic work-stealing fork/join helpers for the embarrassingly
//! parallel fan-out loops (bound-set candidate evaluation, per-ingredient
//! implementation).
//!
//! The build is offline, so there is no rayon: workers are plain
//! [`std::thread::scope`] threads. Work items are pre-split into blocks
//! (several per worker) and workers *claim* blocks from a shared atomic
//! cursor, so a worker that finishes its share early steals the blocks a
//! slow worker never reached — the slowest single block, not the slowest
//! static chunk, bounds the wall clock. Every result still lands at its
//! input index during the final merge, so callers observe *input order*
//! regardless of which worker computed what: the parallel paths are
//! bit-for-bit deterministic with the sequential ones at any thread count.
//!
//! The worker count comes from [`thread_count`]: the `HYDE_THREADS`
//! environment variable when set (clamped to `1..=256`), otherwise the
//! machine's available parallelism. With one worker the helpers degrade to
//! a plain loop on the calling thread — no threads are spawned.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on the worker count accepted from `HYDE_THREADS`.
const MAX_THREADS: usize = 256;

/// Target number of claimable blocks per worker. More blocks mean finer
/// stealing granularity (better balance under skewed item costs); fewer
/// amortize the atomic claim better. Eight is the usual sweet spot.
const BLOCKS_PER_WORKER: usize = 8;

/// Number of worker threads the parallel fan-out loops use.
///
/// Resolution order: `HYDE_THREADS` (values outside `1..=256` are
/// clamped, unparsable values ignored), then
/// [`std::thread::available_parallelism`], then 1.
pub fn thread_count() -> usize {
    // sa:allow(SA002): thread count only partitions work; the input-order
    // merge is fixed, so results stay byte-identical at any width
    // (tests/parallel_determinism.rs proves it).
    if let Ok(v) = std::env::var("HYDE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, MAX_THREADS);
        }
    }
    // sa:allow(SA002): same as above — width never affects results.
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Whether workers of a fan-out spawned on the current thread should
/// claim the stable per-worker obs tracks (`worker-0`, `worker-1`, ...).
/// Only top-level fan-outs (spawned from the main track) do; nested
/// fan-outs fall back to auto-assigned tracks so two live threads never
/// share a lane.
fn claim_worker_tracks() -> bool {
    hyde_obs::enabled() && hyde_obs::current_track() == hyde_obs::MAIN_TRACK
}

/// Applies `f` to every item of `items`, returning the results in input
/// order. Runs on `threads` scoped workers via the work-stealing block
/// scheduler; `threads <= 1` (or a short input) runs inline.
///
/// `label` names the per-worker span recorded when tracing is active (one
/// span per worker, on that worker's track), making the fan-out visible
/// in Chrome-trace exports.
///
/// `f` must be deterministic per item for the parallel and sequential
/// paths to agree; the merge itself preserves input order by construction.
pub fn map_chunked<T, R, F>(label: &'static str, items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_stealing_init(label, items, threads, || (), |(), item| f(item))
}

/// Like [`map_chunked`], but each worker first builds private state with
/// `init` (e.g. its own BDD manager) and threads it through every block
/// it claims.
///
/// `init` runs once per worker, so it may be expensive relative to a
/// single item; results still land at their input indices. `label` names
/// the per-worker span as in [`map_chunked`].
pub fn map_chunked_init<T, R, S, I, F>(
    label: &'static str,
    items: &[T],
    threads: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    map_stealing_init(label, items, threads, init, f)
}

/// The work-stealing scheduler behind [`map_chunked`] and
/// [`map_chunked_init`].
///
/// Items are pre-split into `min(threads * 8, len)` equal blocks with
/// fixed boundaries; workers claim block indices from one shared atomic
/// cursor and compute each claimed block into a private buffer. After the
/// scope joins, blocks are merged back at their input positions. The
/// schedule (who computed what) is timing-dependent, but the *result* is
/// not: `f` is applied to the same items with the same per-item inputs
/// whatever the claim order, and the merge is indexed by block, so the
/// output is byte-identical at any `HYDE_THREADS` — the property checked
/// by hyde-sa's SA011 pass on every worker closure.
///
/// Obs counters (recorded only while tracing is enabled):
/// `sched.steal.blocks` (blocks scheduled) and `sched.steal.steals`
/// (blocks claimed by a worker other than its static home worker — the
/// amount of rebalancing the stealer performed over a static split).
pub fn map_stealing_init<T, R, S, I, F>(
    label: &'static str,
    items: &[T],
    threads: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        let _obs = hyde_obs::enter_chunk(label);
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let nblocks = (threads * BLOCKS_PER_WORKER).min(items.len());
    let cursor = AtomicUsize::new(0);
    let claim = claim_worker_tracks();
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let mut steals = 0u64;
    std::thread::scope(|scope| {
        let cursor = &cursor;
        let init = &init;
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    if claim {
                        hyde_obs::worker_track(w);
                    }
                    let _obs = hyde_obs::enter_chunk(label);
                    let mut state = init();
                    let mut blocks: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                        if b >= nblocks {
                            break;
                        }
                        let lo = b * items.len() / nblocks;
                        let hi = (b + 1) * items.len() / nblocks;
                        let mut out = Vec::with_capacity(hi - lo);
                        for item in &items[lo..hi] {
                            out.push(f(&mut state, item));
                        }
                        blocks.push((b, out));
                    }
                    blocks
                })
            })
            .collect();
        // Merge in worker order; every block lands at its fixed input
        // range, so the claim schedule cannot leak into the output.
        for (w, handle) in handles.into_iter().enumerate() {
            let blocks = handle.join().expect("scheduler worker panicked");
            for (b, out) in blocks {
                // The static split would have given block b to this home
                // worker; a different claimant is a steal.
                if b * threads / nblocks != w {
                    steals += 1;
                }
                let lo = b * items.len() / nblocks;
                for (offset, r) in out.into_iter().enumerate() {
                    results[lo + offset] = Some(r);
                }
            }
        }
    });
    if hyde_obs::enabled() {
        hyde_obs::counter("sched.steal.blocks", nblocks as u64);
        hyde_obs::counter("sched.steal.steals", steals);
    }
    results
        .into_iter()
        .map(|r| r.expect("every block was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_threaded_agree() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = map_chunked("test.sq", &items, 1, |&x| x * x + 1);
        for t in [2, 3, 8, 64] {
            assert_eq!(
                map_chunked("test.sq", &items, t, |&x| x * x + 1),
                seq,
                "{t} threads"
            );
        }
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..17).rev().collect();
        let out = map_chunked("test.id", &items, 4, |&x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_chunked("test.id", &empty, 8, |&x| x).is_empty());
        assert_eq!(map_chunked("test.id", &[7u32], 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(
            map_chunked("test.dbl", &items, 100, |&x| x * 2),
            vec![2, 4, 6]
        );
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn init_variant_matches_plain_map() {
        let items: Vec<u64> = (0..321).collect();
        let plain = map_chunked("test.tri", &items, 1, |&x| x * 3);
        for t in [1, 2, 7, 32] {
            // State tracks a per-worker running offset that must NOT leak
            // into results (each item's output depends only on the item).
            let out = map_chunked_init(
                "test.tri",
                &items,
                t,
                || 0u64,
                |seen, &x| {
                    *seen += 1;
                    x * 3
                },
            );
            assert_eq!(out, plain, "{t} threads");
        }
    }

    #[test]
    fn stealing_rebalances_skewed_items() {
        // One pathologically slow item at the front: a static split would
        // serialize the whole first chunk behind it; the stealer lets the
        // other workers drain every remaining block. We can't assert
        // timing, but we can assert correctness under heavy skew.
        let items: Vec<u64> = (0..500).collect();
        let slow = |&x: &u64| {
            if x == 0 {
                // Busy-ish work: a deterministic hash chain.
                let mut acc = 0x9E37_79B9u64;
                for i in 0..50_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                acc % 2 + x
            } else {
                x
            }
        };
        let seq = map_chunked("test.skew", &items, 1, slow);
        let par = map_chunked("test.skew", &items, 8, slow);
        assert_eq!(seq, par);
    }

    #[test]
    fn block_boundaries_tile_the_input() {
        // Every (len, threads) pair must cover each index exactly once.
        for len in [2usize, 3, 7, 64, 100, 257] {
            for threads in [2usize, 3, 8, 16] {
                let nblocks = (threads * BLOCKS_PER_WORKER).min(len);
                let mut seen = vec![0u8; len];
                for b in 0..nblocks {
                    let lo = b * len / nblocks;
                    let hi = (b + 1) * len / nblocks;
                    assert!(lo < hi, "empty block {b} for len {len}");
                    for s in &mut seen[lo..hi] {
                        *s += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&s| s == 1),
                    "len {len} threads {threads} not tiled exactly once"
                );
            }
        }
    }

    #[test]
    fn stealing_entry_point_matches_wrappers() {
        let items: Vec<u64> = (0..123).collect();
        let a = map_chunked("test.eq", &items, 4, |&x| x ^ 0xFF);
        let b = map_stealing_init("test.eq", &items, 4, || (), |(), &x| x ^ 0xFF);
        assert_eq!(a, b);
    }
}
