//! NPN-keyed decomposition cache.
//!
//! Profiling the benchmark suite shows ~90% of the wall clock inside
//! `varpart.select_best`, and the same cone truth tables recur constantly:
//! the hyper-function pipeline re-searches a function after pseudo-input
//! substitution, A/B flow candidates search overlapping cones, and circuits
//! share textbook subfunctions (adders, muxes, parity slices) that differ
//! only by input permutation or polarity. [`DecompCache`] memoizes
//! bound-set searches keyed on the [NPN-canonical form](crate::npn) of the
//! cone, so all of those collapse to one search.
//!
//! # Determinism contract
//!
//! Cached values are **pure functions of the key**. On a miss the search
//! runs *on the canonical table itself* (not the caller's table), so the
//! stored `(bound, classes)` pair depends only on `(canonical table, k,
//! strategy)` — never on which caller happened to miss first, the thread
//! count, or warm-vs-cold cache state. Callers translate the canonical
//! bound back through the recorded [`NpnTransform`](crate::npn::NpnTransform)
//! witness; the class count is NPN-invariant so it transfers unchanged.
//!
//! Failed searches (budget trips, invalid sizes) are never inserted, so an
//! error path can never poison later successes.
//!
//! # Scoping & eviction
//!
//! The cache is opt-in (partitioners built without one behave exactly as
//! before) and is shared by `Arc`: within a circuit across candidates and
//! recursion levels, and across circuits within a `hyde-bench` run. There
//! is no eviction — entries are immutable and small — but two caps bound
//! memory: an entry cap and a total table-word budget. When either is
//! reached the cache *freezes*: lookups keep hitting, inserts are dropped.
//! Freezing (rather than evicting) keeps warm/cold runs byte-identical —
//! an LRU would make results depend on visit order pressure.

use crate::npn::{self, NpnCanon};
use crate::varpart::SearchStrategy;
use hyde_logic::TruthTable;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Largest cone arity the cache will key on. Beyond this the canonize +
/// hash cost and key size outgrow the expected reuse (wide cones are rare
/// and near-unique), so callers fall through to the uncached search.
pub const CACHE_MAX_VARS: usize = 16;

/// Default cap on cached entries.
const DEFAULT_ENTRY_CAP: usize = 1 << 16;

/// Default budget on total stored table words (keys), ~16 MiB.
const DEFAULT_WORD_BUDGET: usize = 1 << 21;

/// Cache key: the canonical table plus everything else the search result
/// depends on. `candidate_cap` is deliberately absent — successful
/// searches do not depend on it (caps only turn successes into errors,
/// and errors are never cached) — as is `bdd_threshold`, because the BDD
/// and chart scorers compute identical counts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    words: Box<[u64]>,
    vars: u8,
    k: u8,
    strategy: SearchStrategy,
}

impl CacheKey {
    /// Builds the key for searching `canonical` for a size-`k` bound set
    /// under `strategy`. The table must already be canonical — the cache
    /// does not re-canonize.
    pub fn new(canonical: &TruthTable, k: usize, strategy: SearchStrategy) -> Self {
        CacheKey {
            words: canonical.as_words().into(),
            vars: canonical.vars() as u8,
            k: k as u8,
            strategy,
        }
    }

    fn weight(&self) -> usize {
        self.words.len()
    }
}

/// A cached search result in canonical coordinates.
#[derive(Debug, Clone)]
struct CachedBound {
    bound: Vec<usize>,
    classes: usize,
}

/// Counter snapshot from [`DecompCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecompCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real search.
    pub misses: u64,
    /// Inserts dropped because the cache was frozen (full).
    pub rejected: u64,
    /// Entries currently stored.
    pub entries: u64,
    /// Total µs spent canonizing through [`DecompCache::canonize_timed`].
    pub canonize_us: u64,
}

/// Shared, thread-safe memo of NPN-canonical bound-set searches.
///
/// See the [module docs](self) for the determinism contract and scoping
/// policy. Obs counters `hyde.npn.hits`, `hyde.npn.misses` and
/// `hyde.npn.canonize_us` are recorded when tracing is enabled.
#[derive(Debug)]
pub struct DecompCache {
    map: Mutex<HashMap<CacheKey, CachedBound>>,
    entry_cap: usize,
    word_budget: usize,
    words_used: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    canonize_us: AtomicU64,
}

impl Default for DecompCache {
    fn default() -> Self {
        Self::new()
    }
}

impl DecompCache {
    /// Creates an empty cache with the default caps (64Ki entries,
    /// ~16 MiB of table words).
    pub fn new() -> Self {
        Self::with_caps(DEFAULT_ENTRY_CAP, DEFAULT_WORD_BUDGET)
    }

    /// Creates an empty cache with explicit caps. When either cap is
    /// reached the cache freezes (keeps serving hits, drops inserts).
    pub fn with_caps(entry_cap: usize, word_budget: usize) -> Self {
        DecompCache {
            map: Mutex::new(HashMap::new()),
            entry_cap,
            word_budget,
            words_used: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            canonize_us: AtomicU64::new(0),
        }
    }

    /// Whether the cache keys functions of this arity at all.
    pub fn covers(&self, f: &TruthTable) -> bool {
        (1..=CACHE_MAX_VARS).contains(&f.vars())
    }

    /// Canonizes `f`, charging the elapsed time to the cache's
    /// `canonize_us` counter (and the `hyde.npn.canonize_us` obs counter
    /// when tracing).
    pub fn canonize_timed(&self, f: &TruthTable) -> NpnCanon {
        // sa:allow(SA002): the clock feeds only the canonize_us counter;
        // the canonical form itself is a pure function of `f`.
        let start = std::time::Instant::now();
        let canon = npn::canonize(f);
        let us = start.elapsed().as_micros() as u64;
        self.canonize_us.fetch_add(us, Ordering::Relaxed);
        if hyde_obs::enabled() {
            hyde_obs::counter("hyde.npn.canonize_us", us);
        }
        canon
    }

    /// Looks up a previous search result, returning the canonical bound
    /// set and its class count.
    pub fn lookup(&self, key: &CacheKey) -> Option<(Vec<usize>, usize)> {
        let found = {
            let map = self
                .map
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            map.get(key).map(|c| (c.bound.clone(), c.classes))
        };
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if hyde_obs::enabled() {
                hyde_obs::counter("hyde.npn.hits", 1);
            }
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if hyde_obs::enabled() {
                hyde_obs::counter("hyde.npn.misses", 1);
            }
        }
        found
    }

    /// Stores a successful search result (canonical coordinates). Dropped
    /// silently when the cache is frozen; a concurrent duplicate insert
    /// keeps the first value (both are identical by the determinism
    /// contract, so the choice is unobservable).
    pub fn insert(&self, key: CacheKey, bound: Vec<usize>, classes: usize) {
        let weight = key.weight() as u64;
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if map.len() >= self.entry_cap
            || self.words_used.load(Ordering::Relaxed) + weight > self.word_budget as u64
        {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        map.entry(key).or_insert_with(|| {
            self.words_used.fetch_add(weight, Ordering::Relaxed);
            CachedBound { bound, classes }
        });
    }

    /// Snapshot of the hit/miss/size counters.
    pub fn stats(&self) -> DecompCacheStats {
        DecompCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            entries: self
                .map
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len() as u64,
            canonize_us: self.canonize_us.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_for(bits: u64, vars: usize, k: usize) -> CacheKey {
        CacheKey::new(
            &TruthTable::from_words(vars, vec![bits]),
            k,
            SearchStrategy::Exhaustive,
        )
    }

    #[test]
    fn miss_then_hit_roundtrips_the_value() {
        let cache = DecompCache::new();
        let key = key_for(0x8000_0000_0000_0001, 6, 2);
        assert_eq!(cache.lookup(&key), None);
        cache.insert(key.clone(), vec![0, 3], 2);
        assert_eq!(cache.lookup(&key), Some((vec![0, 3], 2)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_k_and_strategy_do_not_collide() {
        let cache = DecompCache::new();
        let t = TruthTable::from_words(6, vec![0xDEAD_BEEF_0BAD_F00D]);
        let k2 = CacheKey::new(&t, 2, SearchStrategy::Exhaustive);
        let k3 = CacheKey::new(&t, 3, SearchStrategy::Exhaustive);
        let ks = CacheKey::new(
            &t,
            2,
            SearchStrategy::Sampled {
                candidates: 8,
                seed: 1,
            },
        );
        cache.insert(k2.clone(), vec![0, 1], 4);
        cache.insert(k3.clone(), vec![0, 1, 2], 7);
        cache.insert(ks.clone(), vec![2, 3], 5);
        assert_eq!(cache.lookup(&k2).unwrap().1, 4);
        assert_eq!(cache.lookup(&k3).unwrap().1, 7);
        assert_eq!(cache.lookup(&ks).unwrap().1, 5);
    }

    #[test]
    fn freezes_at_entry_cap_instead_of_evicting() {
        let cache = DecompCache::with_caps(2, usize::MAX >> 1);
        for i in 0..4u64 {
            cache.insert(key_for(i, 6, 2), vec![0, 1], i as usize);
        }
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.rejected, 2);
        // The first two inserts survive; later ones were dropped.
        assert!(cache.lookup(&key_for(0, 6, 2)).is_some());
        assert!(cache.lookup(&key_for(1, 6, 2)).is_some());
        assert!(cache.lookup(&key_for(3, 6, 2)).is_none());
    }

    #[test]
    fn freezes_at_word_budget() {
        // 8-var tables are 4 words each; budget 9 words admits two.
        let cache = DecompCache::with_caps(1024, 9);
        for i in 0..4u64 {
            let t = TruthTable::from_words(8, vec![i, !i, i ^ 7, i << 3]);
            cache.insert(
                CacheKey::new(&t, 3, SearchStrategy::Exhaustive),
                vec![0, 1, 2],
                3,
            );
        }
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.rejected, 2);
    }

    #[test]
    fn duplicate_insert_keeps_first_value_and_size() {
        let cache = DecompCache::new();
        let key = key_for(42, 6, 2);
        cache.insert(key.clone(), vec![0, 1], 3);
        cache.insert(key.clone(), vec![0, 1], 3);
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(cache.lookup(&key), Some((vec![0, 1], 3)));
    }

    #[test]
    fn covers_respects_arity_bounds() {
        let cache = DecompCache::new();
        assert!(cache.covers(&TruthTable::from_words(4, vec![0b1010])));
        let wide = TruthTable::zero(CACHE_MAX_VARS + 1);
        assert!(!cache.covers(&wide));
    }
}
