//! Variable symmetry detection.
//!
//! Two inputs are *symmetric* in `f` when swapping them leaves the function
//! unchanged. Symmetric variables are interchangeable inside bound sets, so
//! λ-set selection only needs one representative per symmetry class — the
//! pruning used by the bound-set selection literature the paper builds on
//! (Shen et al. `[1]`). [`symmetry_classes`] powers
//! [`crate::varpart::VariablePartitioner::best_bound_set_pruned`].

use hyde_logic::TruthTable;

/// Whether variables `a` and `b` are (non-skew) symmetric in `f`:
/// `f(..a=0, b=1..) == f(..a=1, b=0..)`.
///
/// # Panics
///
/// Panics if `a` or `b` is out of range.
pub fn symmetric(f: &TruthTable, a: usize, b: usize) -> bool {
    if a == b {
        return true;
    }
    let f01 = f.cofactor(a, false).cofactor(b, true);
    let f10 = f.cofactor(a, true).cofactor(b, false);
    f01 == f10
}

/// Partitions the support of `f` into maximal symmetry classes.
///
/// Pairwise symmetry is transitive on a function's support, so the classes
/// are well defined. Variables outside the support are omitted. Classes are
/// sorted by their smallest member.
///
/// # Example
///
/// ```
/// use hyde_core::symmetry::symmetry_classes;
/// use hyde_logic::TruthTable;
///
/// // Majority of three inputs is totally symmetric.
/// let maj = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
/// assert_eq!(symmetry_classes(&maj), vec![vec![0, 1, 2]]);
/// ```
pub fn symmetry_classes(f: &TruthTable) -> Vec<Vec<usize>> {
    let support = f.support();
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for &v in &support {
        match classes.iter_mut().find(|class| symmetric(f, class[0], v)) {
            Some(class) => class.push(v),
            None => classes.push(vec![v]),
        }
    }
    classes.sort_by_key(|c| c[0]);
    classes
}

/// A compact signature of the symmetry structure: the sorted class sizes.
/// Totally symmetric functions of `n` support variables report `[n]`.
pub fn symmetry_profile(f: &TruthTable) -> Vec<usize> {
    let mut sizes: Vec<usize> = symmetry_classes(f).iter().map(Vec::len).collect();
    sizes.sort_unstable();
    sizes
}

/// Canonicalizes a bound set under the symmetry classes of `f`: within each
/// class only the *number* of chosen variables matters, so the canonical
/// form takes the smallest members of each class. Two bound sets with the
/// same canonical form yield identical compatible class counts.
pub fn canonical_bound_set(f: &TruthTable, bound: &[usize]) -> Vec<usize> {
    let classes = symmetry_classes(f);
    let mut canon = Vec::with_capacity(bound.len());
    let mut outside: Vec<usize> = bound.to_vec();
    for class in &classes {
        let picked = bound.iter().filter(|v| class.contains(v)).count();
        canon.extend(class.iter().take(picked).copied());
        outside.retain(|v| !class.contains(v));
    }
    // Variables outside the support (vacuous) keep their identity.
    canon.extend(outside);
    canon.sort_unstable();
    canon
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::class_count;
    use rand::SeedableRng;

    #[test]
    fn parity_is_totally_symmetric() {
        let f = TruthTable::from_fn(6, |m| m.count_ones() % 2 == 1);
        assert_eq!(symmetry_classes(&f), vec![vec![0, 1, 2, 3, 4, 5]]);
        assert_eq!(symmetry_profile(&f), vec![6]);
    }

    #[test]
    fn mixed_symmetry() {
        // f = (a ^ b) & c: {a,b} symmetric, c separate.
        let f = (TruthTable::var(3, 0) ^ TruthTable::var(3, 1)) & TruthTable::var(3, 2);
        assert_eq!(symmetry_classes(&f), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn asymmetric_function() {
        // f = a & !b is not symmetric in (a, b).
        let f = TruthTable::var(2, 0) & !TruthTable::var(2, 1);
        assert!(!symmetric(&f, 0, 1));
        assert_eq!(symmetry_classes(&f).len(), 2);
    }

    #[test]
    fn vacuous_vars_excluded() {
        let f = TruthTable::var(4, 1) ^ TruthTable::var(4, 3);
        let classes = symmetry_classes(&f);
        assert_eq!(classes, vec![vec![1, 3]]);
    }

    #[test]
    fn symmetric_is_reflexive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let f = TruthTable::random(5, &mut rng);
        for v in 0..5 {
            assert!(symmetric(&f, v, v));
        }
    }

    #[test]
    fn canonical_bound_sets_preserve_class_count() {
        // For 9sym (totally symmetric), every 4-subset has the same count
        // as the canonical {0,1,2,3}.
        let f = TruthTable::from_fn(9, |m| (3..=6).contains(&m.count_ones()));
        let canon = canonical_bound_set(&f, &[2, 4, 6, 8]);
        assert_eq!(canon, vec![0, 1, 2, 3]);
        assert_eq!(
            class_count(&f, &[2, 4, 6, 8]).unwrap(),
            class_count(&f, &canon).unwrap()
        );
    }

    #[test]
    fn canonicalization_respects_partial_symmetry() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        for _ in 0..10 {
            let f = TruthTable::random(6, &mut rng);
            for bound in [[0usize, 1, 2], [1, 3, 5], [0, 2, 4]] {
                let canon = canonical_bound_set(&f, &bound);
                assert_eq!(canon.len(), bound.len());
                assert_eq!(
                    class_count(&f, &bound).unwrap(),
                    class_count(&f, &canon).unwrap(),
                    "bound {bound:?} -> canon {canon:?}"
                );
            }
        }
    }
}
