//! The symbolic partition algebra of Definition 3.1.
//!
//! A [`Partition`] `Π = <s_0, ..., s_{n-1}>` is a symbolic notation of `n`
//! column patterns: `s_i == s_j` iff the i-th and j-th column patterns are
//! equal. Symbols live in a *global alphabet* — equal symbol values in two
//! different partitions denote the same underlying pattern, exactly as in
//! the worked Example 3.2 of the paper (where `Bc_ij` counts shared symbols
//! across `Π_i` and `Π_j`).
//!
//! The encoding procedure manipulates partitions through:
//!
//! * the **conjunction partition** `Πc` (patterns stacked vertically in the
//!   same column of the encoding chart) — [`Partition::conjunction`];
//! * the **disjunction partition** `Πd` (patterns laid side by side in the
//!   same row) — [`Partition::disjunction`];
//! * **multiplicity** (number of distinct symbols) —
//!   [`Partition::multiplicity`];
//! * **positions with the same content** (`Psc`) — [`Partition::psc_sets`];
//! * **containment** (Definition 4.6) — [`Partition::is_contained_by`].

use std::collections::{BTreeMap, HashMap, HashSet};

/// A symbolic partition over a global symbol alphabet.
///
/// # Example
///
/// ```
/// use hyde_core::Partition;
///
/// let p = Partition::new(vec![0, 1, 3, 1]);
/// assert_eq!(p.multiplicity(), 3);
/// assert_eq!(p.psc_sets(), vec![vec![1, 3]]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Partition {
    symbols: Vec<u32>,
}

impl Partition {
    /// Creates a partition from its symbol vector.
    pub fn new(symbols: Vec<u32>) -> Self {
        Partition { symbols }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the partition has no positions.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Symbol at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn symbol(&self, i: usize) -> u32 {
        self.symbols[i]
    }

    /// The raw symbol vector.
    pub fn symbols(&self) -> &[u32] {
        &self.symbols
    }

    /// Number of distinct symbols — the *multiplicity* of the partition.
    pub fn multiplicity(&self) -> usize {
        self.symbols.iter().collect::<HashSet<_>>().len()
    }

    /// Conjunction partition `Πc` of a set of partitions: position `i`
    /// carries the tuple of the members' symbols at `i`, renumbered
    /// canonically (tuples are "stacked column patterns", so they get fresh
    /// symbols in a *local* alphabet).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or lengths disagree.
    pub fn conjunction(parts: &[&Partition]) -> Partition {
        assert!(!parts.is_empty(), "conjunction of zero partitions");
        let n = parts[0].len();
        assert!(
            parts.iter().all(|p| p.len() == n),
            "conjunction requires equal lengths"
        );
        let mut ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut symbols = Vec::with_capacity(n);
        for i in 0..n {
            let key: Vec<u32> = parts.iter().map(|p| p.symbols[i]).collect();
            let next = ids.len() as u32;
            let id = *ids.entry(key).or_insert(next);
            symbols.push(id);
        }
        Partition { symbols }
    }

    /// Disjunction partition `Πd` of a set of partitions: the partitions'
    /// positions concatenated, keeping the *global* symbols (patterns laid
    /// side by side in a row of the encoding chart).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn disjunction(parts: &[&Partition]) -> Partition {
        assert!(!parts.is_empty(), "disjunction of zero partitions");
        let symbols: Vec<u32> = parts
            .iter()
            .flat_map(|p| p.symbols.iter().copied())
            .collect();
        Partition { symbols }
    }

    /// The groups of positions sharing a symbol, restricted to groups of at
    /// least two positions — the candidate `Psc`s of this partition (see
    /// Figure 4(a)). Groups are sorted by their first position.
    pub fn psc_sets(&self) -> Vec<Vec<usize>> {
        let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, &s) in self.symbols.iter().enumerate() {
            groups.entry(s).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().filter(|g| g.len() >= 2).collect();
        out.sort_by_key(|g| g[0]);
        out
    }

    /// Whether some same-symbol group of this partition contains every
    /// position of `psc` (i.e. this partition "has" the `Psc`).
    pub fn has_psc(&self, psc: &[usize]) -> bool {
        if psc.is_empty() {
            return true;
        }
        let s = self.symbols[psc[0]];
        psc.iter().all(|&p| self.symbols[p] == s)
    }

    /// Containment per Definition 4.6: `self` is contained by `other` iff
    /// the multiplicity of `other` equals the multiplicity of the
    /// conjunction of the two.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn is_contained_by(&self, other: &Partition) -> bool {
        Partition::conjunction(&[self, other]).multiplicity() == other.multiplicity()
    }

    /// Canonically renumbers the symbols by first occurrence (0, 1, ...),
    /// losing the global alphabet — useful for structural comparison.
    pub fn canonicalize(&self) -> Partition {
        let mut ids: HashMap<u32, u32> = HashMap::new();
        let symbols = self
            .symbols
            .iter()
            .map(|&s| {
                let next = ids.len() as u32;
                *ids.entry(s).or_insert(next)
            })
            .collect();
        Partition { symbols }
    }

    /// Whether two partitions induce the same equivalence on positions
    /// (equal up to renaming of symbols).
    pub fn same_grouping(&self, other: &Partition) -> bool {
        self.len() == other.len() && self.canonicalize() == other.canonicalize()
    }
}

impl std::fmt::Display for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for (i, s) in self.symbols.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ">")
    }
}

/// A `Psc` shared by several partitions: the position set plus the indices
/// of the partitions having it (Figure 4(b)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedPsc {
    /// Positions with the same content.
    pub positions: Vec<usize>,
    /// Indices (into the input slice) of partitions having this `Psc`.
    pub partitions: Vec<usize>,
}

/// Collects every candidate `Psc` appearing in some partition and lists,
/// for each, the partitions having it; only `Psc`s shared by at least two
/// partitions are returned (the paper's Figure 4(b) filter).
///
/// Results are sorted by descending `#partitions`, then descending `|Psc|`,
/// then position order, for deterministic downstream matching.
pub fn shared_psc_sets(partitions: &[Partition]) -> Vec<SharedPsc> {
    let mut candidates: Vec<Vec<usize>> = Vec::new();
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    for p in partitions {
        for g in p.psc_sets() {
            if seen.insert(g.clone()) {
                candidates.push(g);
            }
        }
    }
    let mut out = Vec::new();
    for positions in candidates {
        let having: Vec<usize> = partitions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.has_psc(&positions))
            .map(|(i, _)| i)
            .collect();
        if having.len() >= 2 {
            out.push(SharedPsc {
                positions,
                partitions: having,
            });
        }
    }
    out.sort_by(|a, b| {
        b.partitions
            .len()
            .cmp(&a.partitions.len())
            .then(b.positions.len().cmp(&a.positions.len()))
            .then(a.positions.cmp(&b.positions))
    });
    out
}

/// The ten partitions `Π_0 … Π_9` of the paper's Example 3.2, used by the
/// figure-reproduction tests and benches.
pub fn example_3_2_partitions() -> Vec<Partition> {
    vec![
        Partition::new(vec![0, 1, 2, 3]),
        Partition::new(vec![0, 2, 1, 3]),
        Partition::new(vec![3, 0, 1, 3]),
        Partition::new(vec![2, 1, 0, 1]),
        Partition::new(vec![0, 1, 3, 1]),
        Partition::new(vec![0, 1, 0, 2]),
        Partition::new(vec![1, 0, 0, 0]),
        Partition::new(vec![1, 1, 2, 1]),
        Partition::new(vec![1, 2, 1, 2]),
        Partition::new(vec![3, 2, 1, 0]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_partitions() -> Vec<Partition> {
        example_3_2_partitions()
    }

    #[test]
    fn multiplicity() {
        let ps = example_partitions();
        assert_eq!(ps[0].multiplicity(), 4);
        assert_eq!(ps[2].multiplicity(), 3);
        assert_eq!(ps[6].multiplicity(), 2);
    }

    #[test]
    fn psc_sets_match_figure_4a() {
        let ps = example_partitions();
        assert_eq!(ps[2].psc_sets(), vec![vec![0, 3]]);
        assert_eq!(ps[3].psc_sets(), vec![vec![1, 3]]);
        assert_eq!(ps[4].psc_sets(), vec![vec![1, 3]]);
        assert_eq!(ps[5].psc_sets(), vec![vec![0, 2]]);
        assert_eq!(ps[6].psc_sets(), vec![vec![1, 2, 3]]);
        assert_eq!(ps[7].psc_sets(), vec![vec![0, 1, 3]]);
        assert_eq!(ps[8].psc_sets(), vec![vec![0, 2], vec![1, 3]]);
        assert!(ps[0].psc_sets().is_empty());
        assert!(ps[1].psc_sets().is_empty());
        assert!(ps[9].psc_sets().is_empty());
    }

    #[test]
    fn shared_psc_match_figure_4b() {
        let ps = example_partitions();
        let shared = shared_psc_sets(&ps);
        // Expected: p1p3 -> {3,4,6,7,8}; p0p3 -> {2,7}; p0p2 -> {5,8}.
        assert_eq!(shared.len(), 3);
        assert_eq!(shared[0].positions, vec![1, 3]);
        assert_eq!(shared[0].partitions, vec![3, 4, 6, 7, 8]);
        let mut rest: Vec<(Vec<usize>, Vec<usize>)> = shared[1..]
            .iter()
            .map(|s| (s.positions.clone(), s.partitions.clone()))
            .collect();
        rest.sort();
        assert_eq!(
            rest,
            vec![(vec![0, 2], vec![5, 8]), (vec![0, 3], vec![2, 7])]
        );
    }

    #[test]
    fn conjunction_examples_from_figure_4b() {
        let ps = example_partitions();
        // Πc of {Π2, Π7} has same content in p0,p3.
        let c = Partition::conjunction(&[&ps[2], &ps[7]]);
        assert_eq!(c.psc_sets(), vec![vec![0, 3]]);
        // Πc of {Π3,Π4,Π6,Π7,Π8} has same content in p1,p3.
        let c = Partition::conjunction(&[&ps[3], &ps[4], &ps[6], &ps[7], &ps[8]]);
        assert_eq!(c.psc_sets(), vec![vec![1, 3]]);
        // Πc of {Π5, Π8} has same content in p0,p2.
        let c = Partition::conjunction(&[&ps[5], &ps[8]]);
        assert_eq!(c.psc_sets(), vec![vec![0, 2]]);
    }

    #[test]
    fn disjunction_concatenates_global_symbols() {
        let a = Partition::new(vec![0, 1]);
        let b = Partition::new(vec![1, 2]);
        let d = Partition::disjunction(&[&a, &b]);
        assert_eq!(d.symbols(), &[0, 1, 1, 2]);
        assert_eq!(d.multiplicity(), 3);
    }

    #[test]
    fn conjunction_multiplicity_bounds() {
        let ps = example_partitions();
        for i in 0..ps.len() {
            for j in 0..ps.len() {
                let c = Partition::conjunction(&[&ps[i], &ps[j]]);
                assert!(c.multiplicity() >= ps[i].multiplicity().max(ps[j].multiplicity()));
                assert!(c.multiplicity() <= ps[i].multiplicity() * ps[j].multiplicity());
            }
        }
    }

    #[test]
    fn containment_definition_4_6() {
        // A refined partition contains a coarser one.
        let coarse = Partition::new(vec![0, 0, 1, 1]);
        let fine = Partition::new(vec![0, 1, 2, 3]);
        assert!(coarse.is_contained_by(&fine));
        assert!(!fine.is_contained_by(&coarse));
        // Every partition contains itself.
        assert!(coarse.is_contained_by(&coarse));
    }

    #[test]
    fn containment_example_4_2() {
        let p0 = Partition::new(vec![0, 0, 1, 0, 1, 2, 2, 0, 3, 2, 0, 0, 0, 0, 0, 2]);
        let p1 = Partition::new(vec![0, 1, 2, 0, 2, 3, 3, 2, 4, 3, 0, 2, 1, 5, 1, 3]);
        let p2 = Partition::new(vec![0, 1, 1, 0, 1, 2, 2, 3, 3, 2, 0, 3, 1, 4, 5, 2]);
        // Symbols of Π1 and Π2 are local alphabets in the paper; rebuild
        // Πc12 treating them as distinct patterns (offset Π2's symbols).
        let p2_global = Partition::new(p2.symbols().iter().map(|&s| s + 100).collect());
        let c12 = Partition::conjunction(&[&p1, &p2_global]);
        let c012 = Partition::conjunction(&[&p0, &c12]);
        assert_eq!(c12.multiplicity(), 8, "paper: multiplicity of Πc012 is 8");
        assert_eq!(c012.multiplicity(), c12.multiplicity());
        assert!(p0.is_contained_by(&c12));
    }

    #[test]
    fn canonicalize_and_same_grouping() {
        let a = Partition::new(vec![7, 7, 9]);
        let b = Partition::new(vec![0, 0, 1]);
        assert!(a.same_grouping(&b));
        assert_eq!(a.canonicalize(), b);
        let c = Partition::new(vec![0, 1, 1]);
        assert!(!a.same_grouping(&c));
    }

    #[test]
    fn display_format() {
        let p = Partition::new(vec![0, 2, 1]);
        assert_eq!(p.to_string(), "<0,2,1>");
    }
}
