//! The benchmark circuit suite for the HYDE evaluation.
//!
//! The paper evaluates on MCNC benchmarks; the original `.pla`/`.blif`
//! files are not redistributed here, so this crate rebuilds the suite
//! constructively (see `DESIGN.md` for the substitution policy):
//!
//! * circuits whose functional specification is public are implemented
//!   exactly ([`sym9`], [`rd73`], [`rd84`], parity);
//! * arithmetic-flavoured benchmarks get faithful same-flavour
//!   replacements at a tractable input count (ALUs for `alu2`/`alu4`,
//!   a 4×4 multiplier for `f51m`, a two-bit adder for `z4ml`, a clipper
//!   for `clip`, a rotator for `rot`, a Hamming corrector for `C499`, an
//!   ALU slice for `C880`, real DES S-boxes for `des`);
//! * the remaining names become seeded synthetic SOP circuits with matched
//!   (or scaled) input/output counts.
//!
//! Every circuit is a vector of truth tables over a shared input space,
//! which is what the `hyde-map` flows consume.
//!
//! # Example
//!
//! ```
//! use hyde_circuits::{sym9, suite};
//!
//! let c = sym9();
//! assert_eq!(c.inputs, 9);
//! assert_eq!(c.outputs.len(), 1);
//! assert!(suite().len() >= 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod extras;
mod generators;
mod suite;

pub use extras::*;
pub use generators::*;
pub use suite::{suite, suite_small, Circuit, Origin};
