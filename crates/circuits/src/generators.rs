//! Constructive circuit generators.
//!
//! Each generator documents whether it is the exact public specification or
//! a same-flavour substitute (see `DESIGN.md`). All circuits are capped at
//! 16 inputs so the mapping flows stay exact (truth-table based).

use crate::suite::{Circuit, Origin};
use hyde_logic::TruthTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Helper: outputs of an integer function `f(x) -> y`, `out_bits` wide.
fn arith_outputs(inputs: usize, out_bits: usize, f: impl Fn(u32) -> u64) -> Vec<TruthTable> {
    (0..out_bits)
        .map(|b| TruthTable::from_fn(inputs, |m| f(m) >> b & 1 == 1))
        .collect()
}

/// Seeded synthetic SOP circuit: each output is a disjunction of random
/// cubes (used for benchmarks whose exact spec is not public).
fn random_sop(
    name: &str,
    inputs: usize,
    outputs: usize,
    cubes: usize,
    lits: usize,
    seed: u64,
) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let fns = (0..outputs)
        .map(|_| {
            let mut f = TruthTable::zero(inputs);
            for _ in 0..cubes {
                let mut cube = TruthTable::one(inputs);
                let mut vars: Vec<usize> = (0..inputs).collect();
                for _ in 0..(inputs - lits.min(inputs)) {
                    vars.remove(rng.gen_range(0..vars.len()));
                }
                for &v in &vars {
                    let lit = TruthTable::var(inputs, v);
                    cube = if rng.gen_bool(0.5) {
                        &cube & &lit
                    } else {
                        &cube & &!&lit
                    };
                }
                f = &f | &cube;
            }
            f
        })
        .collect();
    Circuit::new(name, inputs, fns, Origin::Substitute)
}

/// `9sym` — exact: 1 iff the number of set inputs is between 3 and 6.
pub fn sym9() -> Circuit {
    let f = TruthTable::from_fn(9, |m| (3..=6).contains(&m.count_ones()));
    Circuit::new("9sym", 9, vec![f], Origin::ExactSpec)
}

/// `rd73` — exact: the 3-bit binary count of ones over 7 inputs.
pub fn rd73() -> Circuit {
    let outs = arith_outputs(7, 3, |m| m.count_ones() as u64);
    Circuit::new("rd73", 7, outs, Origin::ExactSpec)
}

/// `rd84` — exact: the 4-bit binary count of ones over 8 inputs.
pub fn rd84() -> Circuit {
    let outs = arith_outputs(8, 4, |m| m.count_ones() as u64);
    Circuit::new("rd84", 8, outs, Origin::ExactSpec)
}

/// `z4ml` — substitute: two-bit add with carry-in (7 inputs, 4 outputs:
/// 3 sum bits plus an overflow flag), matching the benchmark's documented
/// two-bit-adder character.
pub fn z4ml() -> Circuit {
    let outs = arith_outputs(7, 4, |m| {
        let a = m & 0b11;
        let b = m >> 2 & 0b11;
        let cin = m >> 4 & 1;
        let extra = m >> 5 & 0b11; // fold the remaining inputs in as a bias
        (a + b + cin) as u64 | ((u64::from(extra == 0b11)) << 3)
    });
    Circuit::new("z4ml", 7, outs, Origin::Substitute)
}

/// `5xp1` — substitute: `x² + x` over a 7-bit operand, low 10 result bits
/// (the benchmark is a small arithmetic polynomial circuit).
pub fn x5p1() -> Circuit {
    let outs = arith_outputs(7, 10, |m| {
        let x = m as u64;
        x * x + x
    });
    Circuit::new("5xp1", 7, outs, Origin::Substitute)
}

/// `clip` — substitute: signed 9-bit input clipped to the 5-bit range
/// `[-16, 15]` (the benchmark is a clipping function; 9 inputs, 5 outputs).
pub fn clip() -> Circuit {
    let outs = arith_outputs(9, 5, |m| {
        // sign-extend 9-bit to i32
        let x = ((m as i32) << 23) >> 23;
        let clipped = x.clamp(-16, 15);
        (clipped & 0x1F) as u64
    });
    Circuit::new("clip", 9, outs, Origin::Substitute)
}

/// `count` — substitute: 8-bit up-counter next-state with enable
/// (9 inputs, 8 outputs), matching the carry-chain character of the
/// original counter benchmark.
pub fn count() -> Circuit {
    let outs = arith_outputs(9, 8, |m| {
        let state = (m & 0xFF) as u64;
        let en = m >> 8 & 1;
        if en == 1 {
            (state + 1) & 0xFF
        } else {
            state
        }
    });
    Circuit::new("count", 9, outs, Origin::Substitute)
}

/// `f51m` — substitute: 4×4 unsigned multiplier (8 inputs, 8 outputs),
/// matching the original's arithmetic character.
pub fn f51m() -> Circuit {
    let outs = arith_outputs(8, 8, |m| {
        let a = (m & 0xF) as u64;
        let b = (m >> 4 & 0xF) as u64;
        a * b
    });
    Circuit::new("f51m", 8, outs, Origin::Substitute)
}

/// `alu2` — substitute: 4-bit ALU (a, b, 2 control bits; 10 inputs, 6
/// outputs: 4 result bits, carry, zero flag). Ops: add, and, or, xor.
pub fn alu2() -> Circuit {
    let outs = arith_outputs(10, 6, |m| {
        let a = (m & 0xF) as u64;
        let b = (m >> 4 & 0xF) as u64;
        let op = m >> 8 & 0b11;
        let r = match op {
            0 => a + b,
            1 => a & b,
            2 => a | b,
            _ => a ^ b,
        };
        let result = r & 0xF;
        let carry = u64::from(r > 0xF);
        let zero = u64::from(result == 0);
        result | (carry << 4) | (zero << 5)
    });
    Circuit::new("alu2", 10, outs, Origin::Substitute)
}

/// `alu4` — substitute: 5-bit ALU with 4 control bits (14 inputs, 8
/// outputs), in the 74181 style: 8 arithmetic/logic ops selected by the
/// control nibble.
pub fn alu4() -> Circuit {
    let outs = arith_outputs(14, 8, |m| {
        let a = (m & 0x1F) as u64;
        let b = (m >> 5 & 0x1F) as u64;
        let op = m >> 10 & 0xF;
        let r = match op % 8 {
            0 => a + b,
            1 => a.wrapping_sub(b) & 0x3F,
            2 => a & b,
            3 => a | b,
            4 => a ^ b,
            5 => !a & 0x1F,
            6 => (a << 1) & 0x3F,
            _ => a >> 1,
        };
        let result = r & 0x1F;
        let carry = u64::from(r > 0x1F);
        let zero = u64::from(result == 0);
        let sign = r >> 4 & 1;
        result | (carry << 5) | (zero << 6) | (sign << 7)
    });
    Circuit::new("alu4", 14, outs, Origin::Substitute)
}

/// `e64` — substitute: 16-way priority encoder matrix (16 inputs, 16
/// outputs: `o_i = x_i & !(x_0 | ... | x_{i-1})`), matching the chain
/// structure of the original.
pub fn e64() -> Circuit {
    let outs: Vec<TruthTable> = (0..16)
        .map(|i| TruthTable::from_fn(16, move |m| m >> i & 1 == 1 && (m & ((1u32 << i) - 1)) == 0))
        .collect();
    Circuit::new("e64", 16, outs, Origin::Substitute)
}

/// `rot` — substitute: 8-bit barrel rotator (8 data + 3 amount = 11
/// inputs, 8 outputs).
pub fn rot() -> Circuit {
    let outs = arith_outputs(11, 8, |m| {
        let data = (m & 0xFF) as u64;
        let amt = m >> 8 & 0b111;
        ((data << amt) | (data >> (8 - amt % 8).min(8))) & 0xFF
    });
    Circuit::new("rot", 11, outs, Origin::Substitute)
}

/// The real DES S-boxes S1 and S2 (row = bits 0,5; column = bits 1..4).
const DES_S1: [[u8; 16]; 4] = [
    [14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7],
    [0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8],
    [4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0],
    [15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13],
];
const DES_S2: [[u8; 16]; 4] = [
    [15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10],
    [3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5],
    [0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15],
    [13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9],
];

fn sbox_lookup(table: &[[u8; 16]; 4], x: u32) -> u64 {
    let row = ((x & 1) | (x >> 4 & 0b10)) as usize;
    let col = (x >> 1 & 0xF) as usize;
    table[row][col] as u64
}

/// `des` — substitute: a two-S-box slice of one DES round using the real
/// S1/S2 tables (12 inputs, 8 outputs). The original `des` is the full
/// 256-input combinational DES; this keeps the S-box logic that dominates
/// its mapping difficulty at a tractable width.
pub fn des() -> Circuit {
    let outs = arith_outputs(12, 8, |m| {
        let x1 = m & 0x3F;
        let x2 = m >> 6 & 0x3F;
        sbox_lookup(&DES_S1, x1) | (sbox_lookup(&DES_S2, x2) << 4)
    });
    Circuit::new("des", 12, outs, Origin::Substitute)
}

/// `C499` — substitute: Hamming(15,11) single-error corrector (15 inputs:
/// the received word; 11 outputs: corrected data bits). XOR-dominated like
/// the original 32-bit SEC circuit.
pub fn c499() -> Circuit {
    // Parity positions 1,2,4,8 (1-based); data in the rest.
    let data_pos: Vec<u32> = (1..=15u32).filter(|p| !p.is_power_of_two()).collect();
    let outs: Vec<TruthTable> = (0..11)
        .map(|d| {
            let data_pos = data_pos.clone();
            TruthTable::from_fn(15, move |m| {
                // Compute syndrome.
                let mut syn = 0u32;
                for p in 1..=15u32 {
                    if m >> (p - 1) & 1 == 1 {
                        syn ^= p;
                    }
                }
                let corrected = if syn != 0 { m ^ (1 << (syn - 1)) } else { m };
                corrected >> (data_pos[d] - 1) & 1 == 1
            })
        })
        .collect();
    Circuit::new("C499", 15, outs, Origin::Substitute)
}

/// `C880` — substitute: a 4-bit ALU slice with carry-in and 2 mode bits
/// (11 inputs, 6 outputs), echoing the original's 8-bit ALU structure.
pub fn c880() -> Circuit {
    let outs = arith_outputs(11, 6, |m| {
        let a = (m & 0xF) as u64;
        let b = (m >> 4 & 0xF) as u64;
        let cin = (m >> 8 & 1) as u64;
        let mode = m >> 9 & 0b11;
        let r = match mode {
            0 => a + b + cin,
            1 => a.wrapping_sub(b).wrapping_sub(cin) & 0x1F,
            2 => (a & b) | (cin << 3),
            _ => a ^ b ^ (cin * 0xF),
        };
        let result = r & 0xF;
        let cout = u64::from(r > 0xF);
        let zero = u64::from(result == 0);
        result | (cout << 4) | (zero << 5)
    });
    Circuit::new("C880", 11, outs, Origin::Substitute)
}

/// `misex1` — substitute at the original's exact 8-in/7-out dimensions.
pub fn misex1() -> Circuit {
    random_sop("misex1", 8, 7, 6, 4, 0x01EC1)
}

/// `misex2` — substitute, scaled from 25 to 14 inputs, 18 outputs.
pub fn misex2() -> Circuit {
    random_sop("misex2", 14, 18, 5, 6, 0x01EC2)
}

/// `misex3` — substitute at the original's exact 14-in/14-out dimensions.
pub fn misex3() -> Circuit {
    random_sop("misex3", 14, 14, 10, 7, 0x01EC3)
}

/// `apex4` — substitute at the original's exact 9-in/19-out dimensions.
pub fn apex4() -> Circuit {
    random_sop("apex4", 9, 19, 12, 5, 0x0A9E4)
}

/// `apex6` — substitute, scaled from 135 to 16 inputs, 16 outputs.
pub fn apex6() -> Circuit {
    random_sop("apex6", 16, 16, 8, 6, 0x0A9E6)
}

/// `apex7` — substitute, scaled from 49 to 14 inputs, 12 outputs.
pub fn apex7() -> Circuit {
    random_sop("apex7", 14, 12, 7, 6, 0x0A9E7)
}

/// `b9` — substitute, scaled from 41 to 14 inputs, 10 outputs.
pub fn b9() -> Circuit {
    random_sop("b9", 14, 10, 5, 5, 0x000B9)
}

/// `sao2` — substitute at the original's exact 10-in/4-out dimensions.
pub fn sao2() -> Circuit {
    random_sop("sao2", 10, 4, 14, 7, 0x05A02)
}

/// `vg2` — substitute, scaled from 25 to 14 inputs, 8 outputs.
pub fn vg2() -> Circuit {
    random_sop("vg2", 14, 8, 6, 7, 0x00762)
}

/// `duke2` — substitute, scaled from 22 to 14 inputs, 16 outputs.
pub fn duke2() -> Circuit {
    random_sop("duke2", 14, 16, 9, 7, 0x0D0CE)
}

/// `parity` over `n` inputs — exact.
///
/// # Panics
///
/// Panics if `n` is 0 or exceeds [`TruthTable::MAX_VARS`].
pub fn parity(n: usize) -> Circuit {
    assert!((1..=TruthTable::MAX_VARS).contains(&n));
    let f = TruthTable::from_fn(n, |m| m.count_ones() % 2 == 1);
    Circuit::new(&format!("parity{n}"), n, vec![f], Origin::ExactSpec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym9_counts() {
        let c = sym9();
        let f = &c.outputs[0];
        assert!(f.eval(0b000000111)); // 3 ones
        assert!(f.eval(0b000111111)); // 6 ones
        assert!(!f.eval(0b000000011)); // 2 ones
        assert!(!f.eval(0b111111110)); // 7 ones
        assert_eq!(c.origin, Origin::ExactSpec);
    }

    #[test]
    fn rd73_is_a_ones_counter() {
        let c = rd73();
        for m in 0u32..128 {
            let count = m.count_ones();
            for b in 0..3 {
                assert_eq!(c.outputs[b].eval(m), count >> b & 1 == 1);
            }
        }
    }

    #[test]
    fn rd84_is_a_ones_counter() {
        let c = rd84();
        for m in (0u32..256).step_by(3) {
            let count = m.count_ones() as u64;
            for b in 0..4 {
                assert_eq!(c.outputs[b].eval(m), count >> b & 1 == 1);
            }
        }
    }

    #[test]
    fn f51m_multiplies() {
        let c = f51m();
        for a in 0u32..16 {
            for b in 0u32..16 {
                let m = a | (b << 4);
                let product = (a * b) as u64;
                for bit in 0..8 {
                    assert_eq!(c.outputs[bit].eval(m), product >> bit & 1 == 1);
                }
            }
        }
    }

    #[test]
    fn alu2_adds_and_ands() {
        let c = alu2();
        // 3 + 5 = 8 with op 0.
        let m = 3 | (5 << 4);
        assert!(c.outputs[3].eval(m)); // bit 3 of 8
        assert!(!c.outputs[0].eval(m));
        // 3 & 5 = 1 with op 1.
        let m = 3 | (5 << 4) | (1 << 8);
        assert!(c.outputs[0].eval(m));
        assert!(!c.outputs[1].eval(m));
    }

    #[test]
    fn clip_saturates() {
        let c = clip();
        // +100 (within 9 bits) clips to 15 = 0b01111.
        let m = 100u32;
        let val: u32 = (0..5).map(|b| u32::from(c.outputs[b].eval(m)) << b).sum();
        assert_eq!(val, 15);
        // -100 clips to -16 = 0b10000 (two's complement 5-bit).
        let m = (512i32 - 100) as u32;
        let val: u32 = (0..5).map(|b| u32::from(c.outputs[b].eval(m)) << b).sum();
        assert_eq!(val, 0b10000);
    }

    #[test]
    fn e64_priority_chain() {
        let c = e64();
        // Input with bits 3 and 7 set: only output 3 fires.
        let m = (1 << 3) | (1 << 7);
        assert!(c.outputs[3].eval(m));
        assert!(!c.outputs[7].eval(m));
        assert!(!c.outputs[0].eval(m));
    }

    #[test]
    fn des_uses_real_sboxes() {
        let c = des();
        // S1(0) = 14: row 0 col 0 -> 14.
        let v: u64 = (0..4).map(|b| u64::from(c.outputs[b].eval(0)) << b).sum();
        assert_eq!(v, 14);
        // S2(0) = 15.
        let v: u64 = (0..4)
            .map(|b| u64::from(c.outputs[4 + b].eval(0)) << b)
            .sum();
        assert_eq!(v, 15);
    }

    #[test]
    fn c499_corrects_single_errors() {
        let c = c499();
        // Encode data by choosing a valid codeword: all zeros is valid.
        // Flip bit 5 (1-based position 6): correction restores zeros.
        let received = 1u32 << 5;
        for o in 0..11 {
            assert!(!c.outputs[o].eval(received), "output {o}");
        }
        // No error: zeros stay zeros.
        for o in 0..11 {
            assert!(!c.outputs[o].eval(0));
        }
    }

    #[test]
    fn count_increments_when_enabled() {
        let c = count();
        let m = 5 | (1 << 8);
        let v: u64 = (0..8).map(|b| u64::from(c.outputs[b].eval(m)) << b).sum();
        assert_eq!(v, 6);
        let m = 5;
        let v: u64 = (0..8).map(|b| u64::from(c.outputs[b].eval(m)) << b).sum();
        assert_eq!(v, 5);
    }

    #[test]
    fn rot_rotates() {
        let c = rot();
        let m = 0b0000_0001 | (3 << 8); // rotate 1 left by 3
        let v: u64 = (0..8).map(|b| u64::from(c.outputs[b].eval(m)) << b).sum();
        assert_eq!(v, 0b0000_1000);
    }

    #[test]
    fn synthetic_circuits_are_deterministic() {
        let a = misex1();
        let b = misex1();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.inputs, 8);
        assert_eq!(a.output_count(), 7);
    }

    #[test]
    fn parity_generator() {
        let c = parity(5);
        assert!(c.outputs[0].eval(0b10110));
        assert!(!c.outputs[0].eval(0b10010));
    }
}
