//! Additional exactly-specified circuits beyond the paper's tables.
//!
//! Useful for examples, ablations and stress tests: classic decomposition
//! benchmarks whose functional specifications are unambiguous.

use crate::suite::{Circuit, Origin};
use hyde_logic::TruthTable;

/// 5-input exclusive-or (`xor5`) — exact.
pub fn xor5() -> Circuit {
    let f = TruthTable::from_fn(5, |m| m.count_ones() % 2 == 1);
    Circuit::new("xor5", 5, vec![f], Origin::ExactSpec)
}

/// `n`-input majority — exact.
///
/// # Panics
///
/// Panics if `n` is even or zero, or exceeds [`TruthTable::MAX_VARS`].
pub fn majority(n: usize) -> Circuit {
    assert!(n % 2 == 1 && n > 0 && n <= TruthTable::MAX_VARS);
    let f = TruthTable::from_fn(n, move |m| m.count_ones() as usize > n / 2);
    Circuit::new(&format!("maj{n}"), n, vec![f], Origin::ExactSpec)
}

/// 8-to-1 multiplexer (8 data + 3 select = 11 inputs) — exact.
pub fn mux8() -> Circuit {
    let f = TruthTable::from_fn(11, |m| {
        let sel = (m >> 8) & 0b111;
        m >> sel & 1 == 1
    });
    Circuit::new("mux8", 11, vec![f], Origin::ExactSpec)
}

/// 6-bit magnitude comparator (12 inputs, 3 outputs: lt, eq, gt) — exact.
pub fn comp6() -> Circuit {
    let outs = vec![
        TruthTable::from_fn(12, |m| (m & 0x3F) < (m >> 6)),
        TruthTable::from_fn(12, |m| (m & 0x3F) == (m >> 6)),
        TruthTable::from_fn(12, |m| (m & 0x3F) > (m >> 6)),
    ];
    Circuit::new("comp6", 12, outs, Origin::ExactSpec)
}

/// Gray-code encoder: 8-bit binary to Gray (8 inputs, 8 outputs) — exact.
pub fn bin2gray8() -> Circuit {
    let outs = (0..8)
        .map(|b| TruthTable::from_fn(8, move |m| (m ^ (m >> 1)) >> b & 1 == 1))
        .collect();
    Circuit::new("bin2gray8", 8, outs, Origin::ExactSpec)
}

/// A `t481`-flavoured totally decomposable function: 16 inputs combined as
/// a tree of 2-input functions, mirroring the classic benchmark's perfect
/// decomposability (substitute — the true `t481` table is not public).
pub fn t481_like() -> Circuit {
    let f = TruthTable::from_fn(16, |m| {
        // Level 1: XNOR pairs; level 2: OR pairs; level 3: AND; level 4: XOR.
        let mut level: Vec<bool> = (0..8)
            .map(|i| (m >> (2 * i) & 1) == (m >> (2 * i + 1) & 1))
            .collect();
        level = level.chunks(2).map(|c| c[0] || c[1]).collect();
        level = level.chunks(2).map(|c| c[0] && c[1]).collect();
        level[0] ^ level[1]
    });
    Circuit::new("t481", 16, vec![f], Origin::Substitute)
}

/// Extended suite: the paper's circuits plus the extras above.
pub fn suite_extended() -> Vec<Circuit> {
    let mut s = crate::suite::suite();
    s.push(xor5());
    s.push(majority(7));
    s.push(mux8());
    s.push(comp6());
    s.push(bin2gray8());
    s.push(t481_like());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor5_is_parity() {
        let c = xor5();
        assert!(c.outputs[0].eval(0b00001));
        assert!(!c.outputs[0].eval(0b00011));
    }

    #[test]
    fn majority_counts() {
        let c = majority(5);
        assert!(c.outputs[0].eval(0b00111));
        assert!(!c.outputs[0].eval(0b00011));
    }

    #[test]
    fn mux8_selects() {
        let c = mux8();
        // data = bit pattern 0b01000000 (bit 6 set), sel = 6 -> 1.
        let m = (1 << 6) | (6 << 8);
        assert!(c.outputs[0].eval(m));
        let m = (1 << 6) | (5 << 8);
        assert!(!c.outputs[0].eval(m));
    }

    #[test]
    fn comp6_trichotomy() {
        let c = comp6();
        for (a, b) in [(3u32, 9u32), (17, 17), (40, 2)] {
            let m = a | (b << 6);
            let lt = c.outputs[0].eval(m);
            let eq = c.outputs[1].eval(m);
            let gt = c.outputs[2].eval(m);
            assert_eq!(u32::from(lt) + u32::from(eq) + u32::from(gt), 1);
            assert_eq!(lt, a < b);
            assert_eq!(eq, a == b);
        }
    }

    #[test]
    fn gray_code_adjacent_codes_differ_by_one_bit() {
        let c = bin2gray8();
        let gray = |m: u32| -> u32 { (0..8).map(|b| u32::from(c.outputs[b].eval(m)) << b).sum() };
        for m in 0u32..255 {
            let diff = gray(m) ^ gray(m + 1);
            assert_eq!(diff.count_ones(), 1, "m={m}");
        }
    }

    #[test]
    fn t481_like_is_highly_decomposable() {
        use hyde_logic::TruthTable;
        let c = t481_like();
        let f = &c.outputs[0];
        // Any adjacent input pair is a 2-class bound set.
        let mut distinct = std::collections::HashSet::new();
        for col in 0u32..4 {
            let mut g = f.clone();
            g = g.cofactor(0, col & 1 == 1);
            g = g.cofactor(1, col >> 1 & 1 == 1);
            distinct.insert(g);
        }
        assert_eq!(distinct.len(), 2);
        let _ = TruthTable::zero(1);
    }

    #[test]
    fn extended_suite_is_well_formed() {
        let s = suite_extended();
        assert!(s.len() >= 30);
        for c in &s {
            assert!(c.inputs <= 16);
        }
    }
}
