//! Suite assembly and the circuit model.

use crate::generators;
use hyde_logic::TruthTable;

/// Provenance of a benchmark circuit in this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// The public functional specification, implemented exactly.
    ExactSpec,
    /// A same-flavour substitute (scaled or reconstructed), see `DESIGN.md`.
    Substitute,
}

/// A combinational benchmark circuit.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Benchmark name (matching the paper's tables).
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Output functions over the shared input space.
    pub outputs: Vec<TruthTable>,
    /// Whether the circuit is the exact public spec or a substitute.
    pub origin: Origin,
}

impl Circuit {
    /// Creates a circuit, checking that every output matches `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if an output has the wrong arity or there are no outputs.
    pub fn new(name: &str, inputs: usize, outputs: Vec<TruthTable>, origin: Origin) -> Self {
        assert!(!outputs.is_empty(), "circuit {name} has no outputs");
        for (i, f) in outputs.iter().enumerate() {
            assert_eq!(
                f.vars(),
                inputs,
                "circuit {name} output {i} has arity {} != {inputs}",
                f.vars()
            );
        }
        Circuit {
            name: name.to_owned(),
            inputs,
            outputs,
            origin,
        }
    }

    /// Number of outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Exports the circuit as a multi-output PLA (ISOP cover per output).
    pub fn to_pla(&self) -> hyde_logic::pla::Pla {
        use hyde_logic::pla::{OutputValue, Pla};
        use hyde_logic::SopCover;
        let mut rows: Vec<(hyde_logic::Cube, Vec<OutputValue>)> = Vec::new();
        for (o, f) in self.outputs.iter().enumerate() {
            for cube in SopCover::isop(f).iter() {
                let mut outs = vec![OutputValue::Off; self.outputs.len()];
                outs[o] = OutputValue::On;
                rows.push((cube.clone(), outs));
            }
        }
        Pla {
            inputs: self.inputs,
            input_names: (0..self.inputs).map(|i| format!("x{i}")).collect(),
            output_names: (0..self.outputs.len()).map(|o| format!("o{o}")).collect(),
            rows,
        }
    }
}

/// The full evaluation suite, in the row order of the paper's Table 1/2
/// union.
pub fn suite() -> Vec<Circuit> {
    vec![
        generators::x5p1(),
        generators::sym9(),
        generators::alu2(),
        generators::alu4(),
        generators::apex4(),
        generators::apex6(),
        generators::apex7(),
        generators::b9(),
        generators::clip(),
        generators::count(),
        generators::des(),
        generators::duke2(),
        generators::e64(),
        generators::f51m(),
        generators::misex1(),
        generators::misex2(),
        generators::misex3(),
        generators::rd73(),
        generators::rd84(),
        generators::rot(),
        generators::sao2(),
        generators::vg2(),
        generators::z4ml(),
        generators::c499(),
        generators::c880(),
    ]
}

/// A fast subset for smoke tests and ablations (small input counts).
pub fn suite_small() -> Vec<Circuit> {
    vec![
        generators::x5p1(),
        generators::sym9(),
        generators::clip(),
        generators::misex1(),
        generators::rd73(),
        generators::rd84(),
        generators::z4ml(),
        generators::f51m(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete_and_well_formed() {
        let s = suite();
        assert_eq!(s.len(), 25);
        for c in &s {
            assert!(c.inputs <= 16, "{} too wide for truth tables", c.name);
            assert!(c.output_count() >= 1);
            // No constant-only circuits (they would trivialize flows).
            assert!(
                c.outputs.iter().any(|f| f.is_const().is_none()),
                "{} is constant",
                c.name
            );
        }
        let names: Vec<&str> = s.iter().map(|c| c.name.as_str()).collect();
        for expect in ["9sym", "alu4", "des", "rd84", "C880"] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn small_suite_is_subset_flavour() {
        for c in suite_small() {
            assert!(c.inputs <= 10, "{}", c.name);
        }
    }

    #[test]
    fn pla_export_roundtrip() {
        let c = crate::generators::rd73();
        let text = c.to_pla().to_text();
        let reparsed = hyde_logic::pla::Pla::parse(&text).unwrap();
        let tables = reparsed.output_tables();
        assert_eq!(tables, c.outputs);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn circuit_validates_arity() {
        let _ = Circuit::new("bad", 3, vec![TruthTable::one(2)], Origin::Substitute);
    }
}
