//! The lint registry: the [`Artifact`] input enum, the [`Lint`] trait,
//! and the [`Registry`] that fans an artifact out to every pass.

use hyde_bdd::Bdd;
use hyde_core::chart::IsfChart;
use hyde_core::classes::CompatibleClasses;
use hyde_core::decompose::Decomposition;
use hyde_core::encoding::CodeAssignment;
use hyde_core::hyper::{HyperFunction, HyperNetwork};
use hyde_logic::diag::{Code, Diagnostic};
use hyde_logic::{Network, TruthTable};

/// Anything the registry can lint. Each variant bundles one artifact with
/// the context its invariants are stated against; lints ignore variants
/// they do not understand.
#[derive(Clone, Copy)]
pub enum Artifact<'a> {
    /// A LUT network, optionally with a fanin bound `k` and a
    /// specification (`spec[o]` is output `o` over the primary inputs in
    /// declaration order).
    Network {
        /// The network under inspection.
        net: &'a Network,
        /// LUT fanin bound; `None` skips the `HY002` check.
        k: Option<usize>,
        /// Specification truth tables; `None` skips the `HY005` check.
        spec: Option<&'a [TruthTable]>,
    },
    /// A compatible-class code assignment on its own.
    Encoding {
        /// The code assignment under inspection.
        codes: &'a CodeAssignment,
    },
    /// A don't-care assignment: the ISF chart it was computed from plus
    /// the resulting merged classes (`classes.class_of(c)` maps chart
    /// column `c` to its class).
    DcAssign {
        /// The incompletely specified chart.
        chart: &'a IsfChart,
        /// The merged classes produced by the assignment.
        classes: &'a CompatibleClasses,
    },
    /// One Roth–Karp decomposition step together with the function it
    /// decomposed.
    Decomposition {
        /// The decomposition artifacts.
        decomposition: &'a Decomposition,
        /// The original function.
        function: &'a TruthTable,
    },
    /// A hyper-function on its own (recovery invariants).
    HyperFn(&'a HyperFunction),
    /// A decomposed hyper-function network (duplication bookkeeping).
    Hyper(&'a HyperNetwork),
    /// A hyper network plus the merged per-ingredient implementation
    /// produced from it (pseudo-input leak check).
    Recovery {
        /// The hyper network the implementation came from.
        hyper: &'a HyperNetwork,
        /// The merged per-ingredient network.
        implemented: &'a Network,
    },
    /// A BDD manager.
    Bdd(&'a Bdd),
    /// Degradation events recorded by the guard layer during a mapping
    /// run (`HY5xx`).
    Degradations(&'a [hyde_guard::DegradationEvent]),
}

impl<'a> Artifact<'a> {
    /// A bare network artifact (no fanin bound, no specification).
    pub fn network(net: &'a Network) -> Self {
        Artifact::Network {
            net,
            k: None,
            spec: None,
        }
    }
}

/// One verification pass. Implementations inspect the artifact and append
/// zero or more diagnostics; a lint that does not understand the artifact
/// variant appends nothing.
pub trait Lint {
    /// Short kebab-case name, e.g. `"network-cycle"`.
    fn name(&self) -> &'static str;
    /// The codes this lint can emit.
    fn codes(&self) -> &'static [Code];
    /// Appends findings on `artifact` to `out`.
    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of lints run as one pass.
pub struct Registry {
    lints: Vec<Box<dyn Lint>>,
}

impl Registry {
    /// An empty registry.
    pub fn empty() -> Self {
        Registry { lints: Vec::new() }
    }

    /// A registry with every lint shipped by this crate.
    pub fn with_defaults() -> Self {
        let mut r = Registry::empty();
        r.register(Box::new(crate::network::CycleLint));
        r.register(Box::new(crate::network::FaninLint));
        r.register(Box::new(crate::network::DanglingLint));
        r.register(Box::new(crate::network::SupportLint));
        r.register(Box::new(crate::network::SpecLint));
        r.register(Box::new(crate::encoding::CodesLint));
        r.register(Box::new(crate::encoding::DcAssignLint));
        r.register(Box::new(crate::encoding::RecompositionLint));
        r.register(Box::new(crate::hyper::PseudoLeakLint));
        r.register(Box::new(crate::hyper::ConeBookkeepingLint));
        r.register(Box::new(crate::hyper::RecoveryLint));
        r.register(Box::new(crate::bdd::BddAuditLint));
        r.register(Box::new(crate::guard::DegradationLint));
        r
    }

    /// Adds a lint to the end of the pass order.
    pub fn register(&mut self, lint: Box<dyn Lint>) {
        self.lints.push(lint);
    }

    /// Names of the registered lints, in pass order.
    pub fn lint_names(&self) -> Vec<&'static str> {
        self.lints.iter().map(|l| l.name()).collect()
    }

    /// Runs every lint on `artifact` and collects the diagnostics in pass
    /// order.
    pub fn run(&self, artifact: &Artifact<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for lint in &self.lints {
            lint.check(artifact, &mut out);
        }
        out
    }

    /// Runs every lint on every artifact.
    pub fn run_all(&self, artifacts: &[Artifact<'_>]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for a in artifacts {
            out.extend(self.run(a));
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_defaults()
    }
}
