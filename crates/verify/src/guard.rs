//! `HY5xx`: budgeted execution and graceful degradation.
//!
//! The mapping flows in `hyde-map` run every output down a fallback
//! ladder — exact Roth–Karp, BDD cut decomposition, Shannon split, direct
//! SOP cover — stepping one rung per budget exhaustion and recording each
//! step as a [`hyde_guard::DegradationEvent`]. This module surfaces those
//! events as structured diagnostics so `hyde-lint` output and batch
//! reports carry them next to the semantic findings:
//!
//! * `HY501`/`HY502`/`HY503` (warn) — an output landed on the BDD,
//!   Shannon or direct-cover rung. The result is still verified correct
//!   (the flow's own CEC gate, plus `HY401` under `--deep`); only the
//!   implementation quality changed.
//! * `HY505` (note) — the degradation was injected by the deterministic
//!   chaos layer (`HYDE_CHAOS`), not caused by the input.
//!
//! `HY504` (deny) is emitted by the drivers themselves when a budget
//! exhaustion escapes every rung and a circuit produces no output.

use crate::registry::{Artifact, Lint};
use hyde_guard::{DegradationEvent, Rung};
use hyde_logic::diag::{Code, Diagnostic};

/// Reports recorded degradation events as `HY501`–`HY503`/`HY505`.
pub struct DegradationLint;

impl Lint for DegradationLint {
    fn name(&self) -> &'static str {
        "guard-degradation"
    }

    fn codes(&self) -> &'static [Code] {
        &[
            Code::DegradedBddPath,
            Code::DegradedShannon,
            Code::DegradedDirectCover,
            Code::ChaosInjected,
        ]
    }

    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::Degradations(events) = artifact else {
            return;
        };
        for e in *events {
            out.push(event_diagnostic(e));
        }
    }
}

/// The diagnostic for one degradation event: the code names the rung the
/// work landed on, the message carries the full transition.
pub fn event_diagnostic(e: &DegradationEvent) -> Diagnostic {
    let code = if e.injected {
        Code::ChaosInjected
    } else {
        match e.to {
            Rung::BddThreshold => Code::DegradedBddPath,
            Rung::Shannon => Code::DegradedShannon,
            // `Exact` is never a degradation target; treat a malformed
            // event conservatively as the floor.
            Rung::DirectCover | Rung::Exact => Code::DegradedDirectCover,
        }
    };
    Diagnostic::new(code, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use hyde_guard::Resource;

    fn event(to: Rung, injected: bool) -> DegradationEvent {
        DegradationEvent {
            context: "c17".into(),
            stage: "o0".into(),
            from: Rung::Exact,
            to,
            resource: Resource::Candidates,
            injected,
        }
    }

    #[test]
    fn events_map_to_their_rung_codes() {
        let events = [
            event(Rung::BddThreshold, false),
            event(Rung::Shannon, false),
            event(Rung::DirectCover, false),
            event(Rung::Shannon, true),
        ];
        let mut r = Registry::empty();
        r.register(Box::new(DegradationLint));
        let diags = r.run(&Artifact::Degradations(&events));
        let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                Code::DegradedBddPath,
                Code::DegradedShannon,
                Code::DegradedDirectCover,
                Code::ChaosInjected,
            ]
        );
        assert!(!hyde_logic::diag::any_deny(&diags), "degradations warn");
        assert!(diags[0].message.contains("c17/o0"));
    }

    #[test]
    fn budget_exhausted_denies() {
        // HY504 is the driver-emitted code for an exhaustion no rung
        // absorbed: unlike HY501-HY503 it must deny, because work was
        // actually lost.
        let d = Diagnostic::new(
            Code::BudgetExhausted,
            "c17/o0: budget exhausted below the direct-cover floor",
        );
        assert_eq!(d.code.as_str(), "HY504");
        assert!(hyde_logic::diag::any_deny(&[d]));
    }
}
