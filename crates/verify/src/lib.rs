//! `hyde-verify`: the unified lint/diagnostics subsystem.
//!
//! The HYDE reproduction manipulates four kinds of artifacts — LUT
//! [`hyde_logic::Network`]s, compatible-class
//! [`hyde_core::encoding::CodeAssignment`]s, decomposed hyper-functions
//! and [`hyde_bdd::Bdd`] managers — each with invariants that are
//! easy to violate and expensive to debug after the fact. This crate
//! packages those invariants as *lints*: small passes that inspect an
//! [`Artifact`] and report violations as structured [`Diagnostic`]s with
//! stable `HYxxx` codes (see [`Code`] for the full table).
//!
//! * [`registry`] — the [`Lint`] trait, the [`Artifact`] input enum, and
//!   the [`Registry`] that runs every registered pass.
//! * [`network`] — `HY0xx`: combinational cycles, fanin bounds, dangling
//!   nodes, vacuous support, specification mismatches.
//! * [`encoding`] — `HY1xx`: non-injective codes, pliable widths,
//!   don't-care assignments merging incompatible columns, recomposition.
//! * [`hyper`] — `HY2xx`: pseudo-input leaks, duplication-cone
//!   bookkeeping, ingredient recovery.
//! * [`bdd`] — `HY3xx`: ROBDD ordering/reduction and unique-table audits.
//! * [`guard`] — `HY5xx`: graceful-degradation reports from the budgeted
//!   mapping ladder, including chaos-injected faults.
//! * [`deep`] — `HY4xx`: SAT/BDD-backed semantic *proofs* — combinational
//!   equivalence, encoding injectivity, collapse/recovery correctness and
//!   stuck-at sweeps — opt-in via [`deep::register_deep`] and
//!   `hyde-lint --deep`.
//!
//! The `hyde-lint` binary exposes the registry on BLIF/PLA files and on
//! the bundled circuit suite.
//!
//! # Example
//!
//! ```
//! use hyde_logic::TruthTable;
//! use hyde_verify::{Artifact, Registry};
//!
//! let mut net = hyde_logic::Network::new("demo");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let and = TruthTable::var(2, 0) & TruthTable::var(2, 1);
//! let g = net.add_node("g", vec![a, b], and).unwrap();
//! net.mark_output("g", g);
//!
//! let diags = Registry::with_defaults().run(&Artifact::network(&net));
//! assert!(diags.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdd;
pub mod deep;
pub mod encoding;
pub mod guard;
pub mod hyper;
pub mod network;
pub mod registry;

pub use hyde_logic::diag::{any_deny, Code, Diagnostic, Location, Severity};
pub use registry::{Artifact, Lint, Registry};
