//! Hyper-function lints (`HY2xx`): pseudo-input bookkeeping, duplication
//! cone boundaries and ingredient recovery.
//!
//! Pseudo primary inputs are named `eta<b>` by
//! [`hyde_core::hyper::HyperFunction::decompose`]; the lints treat that
//! naming convention as ground truth when auditing the registration list.

use crate::registry::{Artifact, Lint};
use hyde_logic::diag::{Code, Diagnostic, Location};
use hyde_logic::NodeRole;
use std::collections::HashSet;

/// `HY201`: a pseudo primary input survived into an implemented
/// (per-ingredient) network.
///
/// After ingredient recovery every `eta` input must have been collapsed
/// to a constant; any survivor means logic outside the duplication cone
/// still sees the mode selection.
pub struct PseudoLeakLint;

impl Lint for PseudoLeakLint {
    fn name(&self) -> &'static str {
        "hyper-pseudo-leak"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::HyperPseudoLeak]
    }

    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::Recovery { implemented, .. } = artifact else {
            return;
        };
        for &id in implemented.inputs() {
            if implemented.node_name(id).starts_with("eta") {
                out.push(
                    Diagnostic::new(
                        Code::HyperPseudoLeak,
                        format!(
                            "pseudo input '{}' survived ingredient recovery",
                            implemented.node_name(id)
                        ),
                    )
                    .at(Location::Node(id.index())),
                );
            }
        }
    }
}

/// `HY202`: duplication-cone bookkeeping of a decomposed hyper network.
///
/// Checks that the registered pseudo inputs and the network agree: every
/// registered pseudo input is a live primary input named `eta<b>`, every
/// `eta`-named input is registered, and the registration count matches
/// the hyper-function's pseudo bit width. An unregistered pseudo input
/// breaks the share boundary — the duplication cone is computed from the
/// registration list, so its fanout would wrongly be treated as shared.
pub struct ConeBookkeepingLint;

impl Lint for ConeBookkeepingLint {
    fn name(&self) -> &'static str {
        "hyper-cone-bookkeeping"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::HyperConeViolation]
    }

    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::Hyper(hn) = artifact else {
            return;
        };
        let registered: HashSet<usize> = hn.pseudo_inputs.iter().map(|id| id.index()).collect();
        for &id in &hn.pseudo_inputs {
            let live = hn.network.inputs().contains(&id);
            if !live
                || hn.network.role(id) != NodeRole::PrimaryInput
                || !hn.network.node_name(id).starts_with("eta")
            {
                out.push(
                    Diagnostic::new(
                        Code::HyperConeViolation,
                        format!(
                            "registered pseudo input '{}' is not a live eta primary input",
                            hn.network.node_name(id)
                        ),
                    )
                    .at(Location::Node(id.index())),
                );
            }
        }
        for &id in hn.network.inputs() {
            if hn.network.node_name(id).starts_with("eta") && !registered.contains(&id.index()) {
                out.push(
                    Diagnostic::new(
                        Code::HyperConeViolation,
                        format!(
                            "input '{}' is a pseudo input but is not registered; its fanout \
                             would wrongly be shared across ingredients",
                            hn.network.node_name(id)
                        ),
                    )
                    .at(Location::Node(id.index())),
                );
            }
        }
        let bits = hn.hyper().pseudo_bits();
        if hn.pseudo_inputs.len() != bits {
            out.push(Diagnostic::new(
                Code::HyperConeViolation,
                format!(
                    "{} pseudo inputs registered but the hyper-function has {bits} pseudo bits",
                    hn.pseudo_inputs.len()
                ),
            ));
        }
    }
}

/// `HY203`: recovering an ingredient from the hyper-function table must
/// reproduce the ingredient exactly.
pub struct RecoveryLint;

impl Lint for RecoveryLint {
    fn name(&self) -> &'static str {
        "hyper-recovery"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::HyperRecoveryMismatch]
    }

    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let h = match artifact {
            Artifact::HyperFn(h) => *h,
            Artifact::Hyper(hn) => hn.hyper(),
            _ => return,
        };
        for (idx, ingredient) in h.ingredients().iter().enumerate() {
            if &h.recover(idx) != ingredient {
                out.push(
                    Diagnostic::new(
                        Code::HyperRecoveryMismatch,
                        format!(
                            "ingredient {idx} does not recover from the hyper-function \
                             under code {:#b}",
                            h.codes().code(idx)
                        ),
                    )
                    .at(Location::Class(idx)),
                );
            }
        }
    }
}
