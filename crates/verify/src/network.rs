//! Network lints (`HY0xx`): structural and behavioural invariants of LUT
//! networks.

use crate::registry::{Artifact, Lint};
use hyde_logic::diag::{Code, Diagnostic, Location};
use hyde_logic::{Network, NodeId, NodeRole, TruthTable};
use std::collections::{HashMap, HashSet};

/// `HY001`: combinational cycle detection with the offending cycle
/// reported node by node.
pub struct CycleLint;

/// Finds one cycle through live nodes, in traversal order, or `None` if
/// the network is acyclic.
fn find_cycle(net: &Network) -> Option<Vec<NodeId>> {
    // DFS with an explicit stack; a grey (on-stack) fanin closes a cycle.
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let ids = net.node_ids();
    let mut color: HashMap<usize, u8> = ids.iter().map(|id| (id.index(), WHITE)).collect();
    for &root in &ids {
        if color[&root.index()] != WHITE {
            continue;
        }
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        color.insert(root.index(), GREY);
        while let Some(frame) = stack.last_mut() {
            let (v, i) = (frame.0, frame.1);
            let fanins = net.fanins(v);
            if i < fanins.len() {
                frame.1 += 1;
                let w = fanins[i];
                match color.get(&w.index()).copied().unwrap_or(BLACK) {
                    WHITE => {
                        color.insert(w.index(), GREY);
                        stack.push((w, 0));
                    }
                    GREY => {
                        let pos = stack
                            .iter()
                            .position(|f| f.0 == w)
                            .expect("grey node is on the stack");
                        return Some(stack[pos..].iter().map(|f| f.0).collect());
                    }
                    _ => {}
                }
            } else {
                color.insert(v.index(), BLACK);
                stack.pop();
            }
        }
    }
    None
}

impl Lint for CycleLint {
    fn name(&self) -> &'static str {
        "network-cycle"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::NetworkCycle]
    }

    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::Network { net, .. } = artifact else {
            return;
        };
        if let Some(cycle) = find_cycle(net) {
            let names: Vec<&str> = cycle.iter().map(|&id| net.node_name(id)).collect();
            out.push(
                Diagnostic::new(
                    Code::NetworkCycle,
                    format!("combinational cycle through {}", names.join(" -> ")),
                )
                .at(Location::Cycle(cycle.iter().map(|id| id.index()).collect())),
            );
        }
    }
}

/// `HY002`: a LUT node with more than `k` fanins.
pub struct FaninLint;

impl Lint for FaninLint {
    fn name(&self) -> &'static str {
        "network-fanin"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::NetworkFaninExceedsK]
    }

    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::Network {
            net, k: Some(k), ..
        } = artifact
        else {
            return;
        };
        for id in net.node_ids() {
            if net.role(id) != NodeRole::Internal {
                continue;
            }
            let fanin = net.fanins(id).len();
            if fanin > *k {
                out.push(
                    Diagnostic::new(
                        Code::NetworkFaninExceedsK,
                        format!("LUT '{}' has {fanin} fanins but k = {k}", net.node_name(id)),
                    )
                    .at(Location::Node(id.index())),
                );
            }
        }
    }
}

/// `HY003` (warn): internal nodes unreachable from every primary output.
pub struct DanglingLint;

impl Lint for DanglingLint {
    fn name(&self) -> &'static str {
        "network-dangling"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::NetworkDangling]
    }

    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::Network { net, .. } = artifact else {
            return;
        };
        // Reverse reachability from the outputs over fanin edges.
        let mut reachable: HashSet<usize> = HashSet::new();
        let mut work: Vec<NodeId> = net.outputs().iter().map(|&(_, id)| id).collect();
        while let Some(id) = work.pop() {
            if reachable.insert(id.index()) {
                work.extend(net.fanins(id).iter().copied());
            }
        }
        for id in net.node_ids() {
            if net.role(id) == NodeRole::Internal && !reachable.contains(&id.index()) {
                out.push(
                    Diagnostic::new(
                        Code::NetworkDangling,
                        format!(
                            "node '{}' is unreachable from every primary output",
                            net.node_name(id)
                        ),
                    )
                    .at(Location::Node(id.index())),
                );
            }
        }
    }
}

/// `HY004` (warn): a declared fanin the node's truth table does not
/// actually depend on.
pub struct SupportLint;

impl Lint for SupportLint {
    fn name(&self) -> &'static str {
        "network-support"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::NetworkVacuousSupport]
    }

    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::Network { net, .. } = artifact else {
            return;
        };
        for id in net.node_ids() {
            if net.role(id) != NodeRole::Internal {
                continue;
            }
            let f = net.function(id);
            for (pos, &fanin) in net.fanins(id).iter().enumerate() {
                if !f.depends_on(pos) {
                    out.push(
                        Diagnostic::new(
                            Code::NetworkVacuousSupport,
                            format!(
                                "node '{}' declares fanin '{}' but its table does not depend on it",
                                net.node_name(id),
                                net.node_name(fanin)
                            ),
                        )
                        .at(Location::Node(id.index())),
                    );
                }
            }
        }
    }
}

/// `HY005`: the simulated network differs from its specification tables.
///
/// `spec[o]` is output `o` as a function of the primary inputs in
/// declaration order; the check is exhaustive up to 16 inputs and a
/// strided sample beyond that.
pub struct SpecLint;

/// Sampling budget for wide networks.
const SPEC_SAMPLES: u64 = 1 << 12;

impl Lint for SpecLint {
    fn name(&self) -> &'static str {
        "network-spec"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::NetworkSpecMismatch]
    }

    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::Network {
            net,
            spec: Some(spec),
            ..
        } = artifact
        else {
            return;
        };
        if net.outputs().len() != spec.len() {
            out.push(Diagnostic::new(
                Code::NetworkSpecMismatch,
                format!(
                    "network has {} outputs but the specification has {}",
                    net.outputs().len(),
                    spec.len()
                ),
            ));
            return;
        }
        if spec.is_empty() {
            return;
        }
        if net.topo_order().is_err() {
            // A cyclic network cannot be simulated; HY001 reports it.
            return;
        }
        let n = spec[0].vars();
        if net.inputs().len() != n {
            out.push(Diagnostic::new(
                Code::NetworkSpecMismatch,
                format!(
                    "network has {} inputs but the specification has {n} variables",
                    net.inputs().len()
                ),
            ));
            return;
        }
        check_spec(net, spec, out);
    }
}

fn check_spec(net: &Network, spec: &[TruthTable], out: &mut Vec<Diagnostic>) {
    let n = spec[0].vars();
    let total = 1u64 << n;
    let stride = (total / SPEC_SAMPLES).max(1);
    let mut m = 0u64;
    while m < total {
        let bits: Vec<bool> = (0..n).map(|v| m >> v & 1 == 1).collect();
        let got = net.eval(&bits);
        for (o, f) in spec.iter().enumerate() {
            if got[o] != f.eval(m as u32) {
                out.push(
                    Diagnostic::new(
                        Code::NetworkSpecMismatch,
                        format!("output {o} differs from its specification at minterm {m}"),
                    )
                    .at(Location::Output(o)),
                );
                return;
            }
        }
        m += stride;
    }
}
