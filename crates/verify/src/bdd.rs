//! BDD manager audit (`HY3xx`): ROBDD structural invariants over the
//! manager's node table.

use crate::registry::{Artifact, Lint};
use hyde_bdd::Ref;
use hyde_logic::diag::{Code, Diagnostic, Location};
use std::collections::HashMap;

/// `HY301`/`HY302`: ordering/reduction invariant and unique-table audit.
///
/// Every non-terminal node must satisfy `var(node) < var(lo), var(hi)`
/// (terminals order last), have two distinct children (a node with
/// `lo == hi` is redundant and must have been reduced away), and own a
/// unique `(var, lo, hi)` triple — a duplicate means hash-consing was
/// bypassed and `Ref` equality no longer implies function equality.
pub struct BddAuditLint;

impl Lint for BddAuditLint {
    fn name(&self) -> &'static str {
        "bdd-audit"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::BddOrdering, Code::BddDuplicateTriple]
    }

    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::Bdd(bdd) = artifact else {
            return;
        };
        let num_vars = bdd.num_vars();
        let triples: Vec<(usize, usize, Ref, Ref)> = bdd.node_triples().collect();
        let vars: Vec<usize> = triples.iter().map(|&(_, var, _, _)| var).collect();
        // Level of a node for ordering purposes: terminals sort last.
        let level_of = |r: Ref| -> usize {
            if r.index() < 2 {
                usize::MAX
            } else {
                vars.get(r.index() - 2).copied().unwrap_or(usize::MAX)
            }
        };
        let mut seen: HashMap<(usize, usize, usize), usize> = HashMap::new();
        for &(i, var, lo, hi) in &triples {
            if var >= num_vars {
                out.push(
                    Diagnostic::new(
                        Code::BddOrdering,
                        format!("node {i} labels variable {var} but the order has {num_vars}"),
                    )
                    .at(Location::BddNode(i)),
                );
                continue;
            }
            if lo == hi {
                out.push(
                    Diagnostic::new(
                        Code::BddOrdering,
                        format!(
                            "node {i} is redundant: both children are node {}",
                            lo.index()
                        ),
                    )
                    .at(Location::BddNode(i)),
                );
            }
            for (child, which) in [(lo, "lo"), (hi, "hi")] {
                let lvl = level_of(child);
                if lvl <= var {
                    out.push(
                        Diagnostic::new(
                            Code::BddOrdering,
                            format!(
                                "node {i} (var {var}) has {which} child {} at var {lvl}: \
                                 ordering requires var(node) < var(child)",
                                child.index()
                            ),
                        )
                        .at(Location::BddNode(i)),
                    );
                }
            }
            if let Some(&first) = seen.get(&(var, lo.index(), hi.index())) {
                out.push(
                    Diagnostic::new(
                        Code::BddDuplicateTriple,
                        format!(
                            "nodes {first} and {i} share the triple (var {var}, lo {}, hi {}): \
                             hash-consing was bypassed",
                            lo.index(),
                            hi.index()
                        ),
                    )
                    .at(Location::BddNode(i)),
                );
            } else {
                seen.insert((var, lo.index(), hi.index()), i);
            }
        }
    }
}
