//! `HY4xx`: deep semantic proofs behind `hyde-lint --deep`.
//!
//! Where the `HY0xx`–`HY3xx` passes check *structural* invariants, the
//! passes here *prove* functional properties with an oracle independent
//! of the BDD recomposition path that built the artifacts:
//!
//! * [`DeepCecLint`] — `HY401`: combinational equivalence of a network
//!   against its specification tables (mapped LUT networks against the
//!   original outputs, decomposed hyper networks against the
//!   hyper-function table). Small-support instances go through BDD CEC
//!   ([`hyde_bdd::Bdd::equiv_counterexample`]); larger ones build a
//!   Tseitin miter and run the CDCL solver ([`hyde_sat`]).
//! * [`DeepEncodingLint`] — `HY402`: SAT-proved semantic injectivity of
//!   a compatible-class encoding: UNSAT of
//!   `∃ x₁ x₂ y. α(x₁) = α(x₂) ∧ f(x₁, y) ≠ f(x₂, y)`.
//! * [`DeepCollapseLint`] — `HY403`: constant-collapse correctness of
//!   the duplication cone — asserting an ingredient's code on the pseudo
//!   primary inputs of the decomposed hyper network must reproduce the
//!   implemented ingredient output.
//! * [`DeepRecoveryLint`] — `HY404`: the hyper-function table
//!   cofactored at an ingredient's code equals the ingredient
//!   (independent oracle for the structural `HY203` check).
//! * [`DeepStuckLint`] — `HY405` (warn): internal nodes that are
//!   provably constant over all inputs (stuck-at / dead logic).
//!
//! Every proof is budgeted; a blown budget reports `HY406` so CI fails
//! closed instead of silently skipping an inconclusive proof. Proof
//! effort (engine, variables, clauses, conflicts, time) is appended to a
//! shared [`ProofLog`] that `hyde-lint --deep` prints per artifact.

use crate::registry::{Artifact, Lint, Registry};
use hyde_bdd::{Bdd, Ref};
use hyde_core::decompose::Decomposition;
use hyde_core::hyper::{HyperFunction, HyperNetwork};
use hyde_logic::diag::{Code, Diagnostic, Location};
use hyde_logic::{Network, NodeId, NodeRole, TruthTable};
use hyde_sat::{Budget, CecOutcome, Encoder, Lit, Outcome};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// BDD construction guard: `Bdd::from_fn` enumerates `2^n` minterms and
/// is capped at 28 variables by the manager.
const MAX_SPEC_VARS: usize = 28;

/// Effort limits and engine thresholds for the deep passes.
#[derive(Debug, Clone, Copy)]
pub struct DeepConfig {
    /// Conflict budget per individual proof (`HY406` when exceeded).
    pub max_conflicts: u64,
    /// Wall-clock budget per individual proof (`HY406` when exceeded).
    pub max_time: Duration,
    /// Equivalence checks with at most this many inputs use BDD CEC;
    /// wider ones go through the SAT miter.
    pub bdd_max_inputs: usize,
}

impl Default for DeepConfig {
    fn default() -> Self {
        DeepConfig {
            max_conflicts: 200_000,
            max_time: Duration::from_secs(10),
            bdd_max_inputs: 8,
        }
    }
}

impl DeepConfig {
    fn budget(&self) -> Budget {
        Budget {
            max_conflicts: self.max_conflicts,
            max_time: self.max_time,
        }
    }
}

/// Statistics of one completed proof.
#[derive(Debug, Clone)]
pub struct ProofRecord {
    /// Pass family: `cec`, `inject`, `collapse`, `recover`, `stuck`.
    pub pass: &'static str,
    /// What was proved, e.g. `output 3` or `ingredient 1`.
    pub subject: String,
    /// `sat` or `bdd`.
    pub engine: &'static str,
    /// Solver variables (SAT) or input variables (BDD).
    pub vars: usize,
    /// Problem + learned clauses (SAT) or miter BDD nodes (BDD).
    pub clauses: usize,
    /// Conflicts spent (SAT; zero for BDD proofs).
    pub conflicts: u64,
    /// Wall-clock milliseconds (fractional: sub-millisecond proofs keep
    /// their real duration instead of truncating to zero).
    pub time_ms: f64,
    /// `proved`, `refuted` or `unknown`.
    pub verdict: &'static str,
    /// Operation-cache hit rate of the BDD manager(s) backing the proof
    /// (`None` for pure-SAT proofs that never touched a BDD).
    pub bdd_cache_hit_rate: Option<f64>,
    /// Total unique-table probes of those managers (`None` likewise).
    pub bdd_unique_probes: Option<u64>,
}

/// Combines manager statistics from every BDD a proof consulted into the
/// pair recorded on its [`ProofRecord`].
fn bdd_proof_stats(stats: &[hyde_bdd::BddStats]) -> (Option<f64>, Option<u64>) {
    let lookups: u64 = stats.iter().map(|s| s.cache_lookups).sum();
    let hits: u64 = stats.iter().map(|s| s.cache_hits).sum();
    let probes: u64 = stats.iter().map(|s| s.unique_probes).sum();
    let rate = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };
    (Some(rate), Some(probes))
}

/// Shared, append-only log of proof statistics. The deep lints hold one
/// handle and the caller (CLI, tests) holds another; drain it between
/// artifact groups to attribute records.
pub type ProofLog = Rc<RefCell<Vec<ProofRecord>>>;

/// Registers the five deep passes on `registry`, returning the shared
/// proof log their statistics accumulate into.
pub fn register_deep(registry: &mut Registry, config: DeepConfig) -> ProofLog {
    let log: ProofLog = Rc::new(RefCell::new(Vec::new()));
    registry.register(Box::new(DeepCecLint {
        config,
        log: Rc::clone(&log),
    }));
    registry.register(Box::new(DeepEncodingLint {
        config,
        log: Rc::clone(&log),
    }));
    registry.register(Box::new(DeepCollapseLint {
        config,
        log: Rc::clone(&log),
    }));
    registry.register(Box::new(DeepRecoveryLint {
        config,
        log: Rc::clone(&log),
    }));
    registry.register(Box::new(DeepStuckLint {
        config,
        log: Rc::clone(&log),
    }));
    log
}

fn budget_diag(pass: &str, subject: &str) -> Diagnostic {
    Diagnostic::new(
        Code::DeepProofBudget,
        format!("{pass} proof for {subject} exceeded its conflict/time budget (inconclusive)"),
    )
}

/// Builds per-node BDDs of an acyclic network over `bdd`'s variables
/// (primary input `i` becomes variable `i`).
fn network_bdds(bdd: &mut Bdd, net: &Network) -> HashMap<NodeId, Ref> {
    let mut map: HashMap<NodeId, Ref> = HashMap::new();
    for (i, &id) in net.inputs().iter().enumerate() {
        map.insert(id, bdd.var(i));
    }
    let order = net.topo_order().expect("caller checked acyclicity");
    for id in order {
        if map.contains_key(&id) {
            continue;
        }
        let fanin_refs: Vec<Ref> = net.fanins(id).iter().map(|f| map[f]).collect();
        let t = net.function(id);
        let mut acc = Ref::FALSE;
        for m in 0..t.num_minterms() as u32 {
            if !t.eval(m) {
                continue;
            }
            let mut cube = Ref::TRUE;
            for (i, &r) in fanin_refs.iter().enumerate() {
                let l = if m >> i & 1 == 1 { r } else { bdd.not(r) };
                cube = bdd.and(cube, l);
            }
            acc = bdd.or(acc, cube);
        }
        map.insert(id, acc);
    }
    map
}

/// `HY401`: proves every network output equivalent to its specification.
pub struct DeepCecLint {
    config: DeepConfig,
    log: ProofLog,
}

impl DeepCecLint {
    fn check_net(
        &self,
        net: &Network,
        specs: &[TruthTable],
        label: &str,
        out: &mut Vec<Diagnostic>,
    ) {
        let n = specs.first().map_or(0, TruthTable::vars);
        if specs.is_empty()
            || n > MAX_SPEC_VARS
            || net.inputs().len() != n
            || net.outputs().len() != specs.len()
            || net.topo_order().is_err()
        {
            // Arity/structure problems are HY001/HY005 territory.
            return;
        }
        if n <= self.config.bdd_max_inputs {
            self.check_net_bdd(net, specs, label, out);
        } else {
            self.check_net_sat(net, specs, label, out);
        }
    }

    fn check_net_bdd(
        &self,
        net: &Network,
        specs: &[TruthTable],
        label: &str,
        out: &mut Vec<Diagnostic>,
    ) {
        let n = specs[0].vars();
        let mut bdd = Bdd::new(n);
        let refs = network_bdds(&mut bdd, net);
        for (o, spec) in specs.iter().enumerate() {
            let start = Instant::now();
            let spec_ref = bdd.from_fn(|m| spec.eval(m));
            let out_ref = refs[&net.outputs()[o].1];
            let miter = bdd.miter(out_ref, spec_ref);
            let witness = bdd.any_sat(miter);
            if let Some(m) = witness {
                out.push(
                    Diagnostic::new(
                        Code::DeepCecMismatch,
                        format!(
                            "{label}output {o} ('{}') differs from its specification at \
                             minterm {m} (BDD CEC)",
                            net.outputs()[o].0
                        ),
                    )
                    .at(Location::Output(o)),
                );
            }
            let (rate, probes) = bdd_proof_stats(&[bdd.stats()]);
            self.log.borrow_mut().push(ProofRecord {
                pass: "cec",
                subject: format!("{label}output {o}"),
                engine: "bdd",
                vars: n,
                clauses: bdd.node_count(miter),
                conflicts: 0,
                time_ms: start.elapsed().as_secs_f64() * 1e3,
                verdict: if witness.is_some() {
                    "refuted"
                } else {
                    "proved"
                },
                bdd_cache_hit_rate: rate,
                bdd_unique_probes: probes,
            });
        }
    }

    fn check_net_sat(
        &self,
        net: &Network,
        specs: &[TruthTable],
        label: &str,
        out: &mut Vec<Diagnostic>,
    ) {
        let proofs = hyde_sat::cec_network_vs_tables(net, specs, &self.config.budget());
        for p in proofs {
            let verdict = match p.outcome {
                CecOutcome::Equivalent => "proved",
                CecOutcome::Differ(m) => {
                    out.push(
                        Diagnostic::new(
                            Code::DeepCecMismatch,
                            format!(
                                "{label}output {} ('{}') differs from its specification at \
                                 minterm {m} (SAT miter counterexample)",
                                p.output,
                                net.outputs()[p.output].0
                            ),
                        )
                        .at(Location::Output(p.output)),
                    );
                    "refuted"
                }
                CecOutcome::Unknown => {
                    out.push(budget_diag("cec", &format!("{label}output {}", p.output)));
                    "unknown"
                }
            };
            self.log.borrow_mut().push(ProofRecord {
                pass: "cec",
                subject: format!("{label}output {}", p.output),
                engine: "sat",
                vars: p.vars,
                clauses: p.clauses,
                conflicts: p.conflicts,
                time_ms: p.elapsed.as_secs_f64() * 1e3,
                verdict,
                bdd_cache_hit_rate: None,
                bdd_unique_probes: None,
            });
        }
    }
}

impl Lint for DeepCecLint {
    fn name(&self) -> &'static str {
        "deep-cec"
    }
    fn codes(&self) -> &'static [Code] {
        &[Code::DeepCecMismatch, Code::DeepProofBudget]
    }
    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        match artifact {
            Artifact::Network {
                net,
                spec: Some(spec),
                ..
            } => self.check_net(net, spec, "", out),
            Artifact::Hyper(hn) => {
                // Spec ≡ decomposed: the hyper network against the hyper
                // table (pseudo inputs are table variables 0..).
                let spec = std::slice::from_ref(hn.hyper().table());
                self.check_net(&hn.network, spec, "hyper ", out);
            }
            _ => {}
        }
    }
}

/// `HY402`: SAT-proves the α encoding separates incompatible points:
/// no two bound-set minterms with equal codes may disagree on `f` under
/// any free-set assignment.
pub struct DeepEncodingLint {
    config: DeepConfig,
    log: ProofLog,
}

impl DeepEncodingLint {
    fn check_decomposition(&self, d: &Decomposition, f: &TruthTable, out: &mut Vec<Diagnostic>) {
        let nb = d.bound.len();
        let n = f.vars();
        if nb == 0 || n > MAX_SPEC_VARS || nb + d.free.len() != n {
            return;
        }
        let start = Instant::now();
        let mut enc = Encoder::new();
        let x1 = enc.fresh_inputs(nb);
        let x2 = enc.fresh_inputs(nb);
        let y = enc.fresh_inputs(d.free.len());
        let mut lits1 = vec![enc.lit_false(); n];
        let mut lits2 = vec![enc.lit_false(); n];
        for (i, &v) in d.bound.iter().enumerate() {
            lits1[v] = x1[i];
            lits2[v] = x2[i];
        }
        for (i, &v) in d.free.iter().enumerate() {
            lits1[v] = y[i];
            lits2[v] = y[i];
        }
        let mut bdd = Bdd::new(n);
        let fref = bdd.from_fn(|m| f.eval(m));
        let f1 = enc.encode_bdd(&bdd, fref, &lits1);
        let f2 = enc.encode_bdd(&bdd, fref, &lits2);
        for alpha in &d.alphas {
            let a1 = enc.encode_table(alpha, &x1);
            let a2 = enc.encode_table(alpha, &x2);
            enc.assert_equiv(a1, a2);
        }
        let miter = enc.xor(f1, f2);
        let outcome = enc
            .solver_mut()
            .solve_budgeted(&[miter], &self.config.budget());
        let verdict = match outcome {
            Outcome::Unsat => "proved",
            Outcome::Sat => {
                let read = |lits: &[Lit]| -> u32 {
                    let mut m = 0u32;
                    for (i, l) in lits.iter().enumerate() {
                        if enc.solver().model_value(l.var()) {
                            m |= 1 << i;
                        }
                    }
                    m
                };
                let (m1, m2, my) = (read(&x1), read(&x2), read(&y));
                out.push(
                    Diagnostic::new(
                        Code::DeepEncodingNotInjective,
                        format!(
                            "α maps bound minterms {m1} and {m2} to the same code although \
                             f distinguishes them under free assignment {my}"
                        ),
                    )
                    .at(Location::Minterm(m1 as usize)),
                );
                "refuted"
            }
            Outcome::Unknown => {
                out.push(budget_diag("inject", "the α encoding"));
                "unknown"
            }
        };
        let stats = enc.solver().stats();
        let (rate, probes) = bdd_proof_stats(&[bdd.stats()]);
        self.log.borrow_mut().push(ProofRecord {
            pass: "inject",
            subject: format!("alpha separation (t={}, |bound|={nb})", d.alpha_count()),
            engine: "sat",
            vars: stats.vars,
            clauses: stats.clauses + stats.learned,
            conflicts: stats.conflicts,
            time_ms: start.elapsed().as_secs_f64() * 1e3,
            verdict,
            bdd_cache_hit_rate: rate,
            bdd_unique_probes: probes,
        });
    }
}

impl Lint for DeepEncodingLint {
    fn name(&self) -> &'static str {
        "deep-encoding-injectivity"
    }
    fn codes(&self) -> &'static [Code] {
        &[Code::DeepEncodingNotInjective, Code::DeepProofBudget]
    }
    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        if let Artifact::Decomposition {
            decomposition,
            function,
        } = artifact
        {
            self.check_decomposition(decomposition, function, out);
        }
    }
}

/// Encodes a network's nodes, sharing primary-input literals across
/// networks by PI *name* (how `structural_merge` matches them).
fn encode_named(
    enc: &mut Encoder,
    net: &Network,
    names: &mut HashMap<String, Lit>,
) -> HashMap<NodeId, Lit> {
    let pi_lits: Vec<Lit> = net
        .inputs()
        .iter()
        .map(|&id| {
            let name = net.node_name(id).to_owned();
            if let Some(&l) = names.get(&name) {
                l
            } else {
                let l = enc.fresh_lit();
                names.insert(name, l);
                l
            }
        })
        .collect();
    enc.encode_network(net, &pi_lits)
}

/// `HY403`: proves constant-collapse correctness of the duplication
/// cone — with the pseudo inputs pinned to ingredient `i`'s code, the
/// decomposed hyper network must equal implemented output `fᵢ`.
pub struct DeepCollapseLint {
    config: DeepConfig,
    log: ProofLog,
}

impl Lint for DeepCollapseLint {
    fn name(&self) -> &'static str {
        "deep-collapse"
    }
    fn codes(&self) -> &'static [Code] {
        &[Code::DeepCollapseMismatch, Code::DeepProofBudget]
    }
    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::Recovery { hyper, implemented } = artifact else {
            return;
        };
        let hn: &HyperNetwork = hyper;
        let net = &hn.network;
        if net.topo_order().is_err()
            || implemented.topo_order().is_err()
            || net.outputs().len() != 1
        {
            return;
        }
        // A leaked pseudo input is HY201's finding; the collapse proof
        // would only restate it with a confusing witness.
        if implemented
            .inputs()
            .iter()
            .any(|&id| implemented.node_name(id).starts_with("eta"))
        {
            return;
        }
        let mut enc = Encoder::new();
        let mut names: HashMap<String, Lit> = HashMap::new();
        let hyper_lits = encode_named(&mut enc, net, &mut names);
        let impl_lits = encode_named(&mut enc, implemented, &mut names);
        let hyper_out = hyper_lits[&net.outputs()[0].1];
        let outputs: HashMap<&str, NodeId> = implemented
            .outputs()
            .iter()
            .map(|(name, id)| (name.as_str(), *id))
            .collect();
        for i in 0..hn.hyper().ingredients().len() {
            let subject = format!("ingredient {i}");
            let Some(&impl_id) = outputs.get(format!("f{i}").as_str()) else {
                out.push(Diagnostic::new(
                    Code::DeepCollapseMismatch,
                    format!("implemented network has no output 'f{i}' to prove against"),
                ));
                continue;
            };
            let start = Instant::now();
            let before = enc.solver().stats();
            let mut assumps: Vec<Lit> = hn
                .ingredient_units(i)
                .into_iter()
                .map(|(eta, v)| {
                    let l = hyper_lits[&eta];
                    if v {
                        l
                    } else {
                        !l
                    }
                })
                .collect();
            let miter = enc.xor(hyper_out, impl_lits[&impl_id]);
            assumps.push(miter);
            let outcome = enc
                .solver_mut()
                .solve_budgeted(&assumps, &self.config.budget());
            let verdict = match outcome {
                Outcome::Unsat => "proved",
                Outcome::Sat => {
                    // Read the real-input witness back in x-name order.
                    let mut bits: Vec<String> = Vec::new();
                    for &id in net.inputs() {
                        let name = net.node_name(id);
                        if name.starts_with("eta") {
                            continue;
                        }
                        let l = hyper_lits[&id];
                        let v = enc.solver().model_value(l.var());
                        bits.push(format!("{name}={}", u8::from(v)));
                    }
                    out.push(
                        Diagnostic::new(
                            Code::DeepCollapseMismatch,
                            format!(
                                "collapsing the pseudo inputs to ingredient {i}'s code does \
                                 not reproduce output 'f{i}' (witness: {})",
                                bits.join(", ")
                            ),
                        )
                        .at(Location::Output(i)),
                    );
                    "refuted"
                }
                Outcome::Unknown => {
                    out.push(budget_diag("collapse", &subject));
                    "unknown"
                }
            };
            let after = enc.solver().stats();
            self.log.borrow_mut().push(ProofRecord {
                pass: "collapse",
                subject,
                engine: "sat",
                vars: after.vars,
                clauses: after.clauses + after.learned,
                conflicts: after.conflicts - before.conflicts,
                time_ms: start.elapsed().as_secs_f64() * 1e3,
                verdict,
                bdd_cache_hit_rate: None,
                bdd_unique_probes: None,
            });
        }
    }
}

/// `HY404`: proves the hyper-function table cofactored at each
/// ingredient's code equals the ingredient — an independent oracle for
/// the structural `HY203` recovery check.
pub struct DeepRecoveryLint {
    config: DeepConfig,
    log: ProofLog,
}

impl Lint for DeepRecoveryLint {
    fn name(&self) -> &'static str {
        "deep-recovery"
    }
    fn codes(&self) -> &'static [Code] {
        &[Code::DeepRecoveryMismatch, Code::DeepProofBudget]
    }
    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::HyperFn(h) = artifact else {
            return;
        };
        let h: &HyperFunction = h;
        let pb = h.pseudo_bits();
        let n = h.num_inputs();
        if pb + n > MAX_SPEC_VARS {
            return;
        }
        let mut enc = Encoder::new();
        let eta = enc.fresh_inputs(pb);
        let x = enc.fresh_inputs(n);
        let mut table_lits = eta.clone();
        table_lits.extend_from_slice(&x);
        let mut bdd = Bdd::new(pb + n);
        let href = bdd.from_fn(|m| h.table().eval(m));
        let hyper_lit = enc.encode_bdd(&bdd, href, &table_lits);
        let mut ing_bdd = Bdd::new(n.max(1));
        for (i, ing) in h.ingredients().iter().enumerate() {
            let start = Instant::now();
            let before = enc.solver().stats();
            let iref = ing_bdd.from_fn(|m| ing.eval(m));
            let ing_lit = enc.encode_bdd(&ing_bdd, iref, &x);
            let miter = enc.xor(hyper_lit, ing_lit);
            let mut assumps: Vec<Lit> = h
                .code_units(i)
                .into_iter()
                .map(|(bit, v)| if v { eta[bit] } else { !eta[bit] })
                .collect();
            assumps.push(miter);
            let outcome = enc
                .solver_mut()
                .solve_budgeted(&assumps, &self.config.budget());
            let verdict = match outcome {
                Outcome::Unsat => "proved",
                Outcome::Sat => {
                    let mut m = 0u32;
                    for (b, l) in x.iter().enumerate() {
                        if enc.solver().model_value(l.var()) {
                            m |= 1 << b;
                        }
                    }
                    out.push(
                        Diagnostic::new(
                            Code::DeepRecoveryMismatch,
                            format!(
                                "hyper-function cofactored at ingredient {i}'s code differs \
                                 from the ingredient at input minterm {m}"
                            ),
                        )
                        .at(Location::Minterm(m as usize)),
                    );
                    "refuted"
                }
                Outcome::Unknown => {
                    out.push(budget_diag("recover", &format!("ingredient {i}")));
                    "unknown"
                }
            };
            let after = enc.solver().stats();
            let (rate, probes) = bdd_proof_stats(&[bdd.stats(), ing_bdd.stats()]);
            self.log.borrow_mut().push(ProofRecord {
                pass: "recover",
                subject: format!("ingredient {i}"),
                engine: "sat",
                vars: after.vars,
                clauses: after.clauses + after.learned,
                conflicts: after.conflicts - before.conflicts,
                time_ms: start.elapsed().as_secs_f64() * 1e3,
                verdict,
                bdd_cache_hit_rate: rate,
                bdd_unique_probes: probes,
            });
        }
    }
}

/// `HY405` (warn): SAT-based stuck-at sweep — internal nodes whose value
/// is provably constant for every input assignment are dead logic.
/// Nodes with a *locally* constant function are skipped (they are
/// legitimate constant drivers and structurally obvious); the sweep only
/// flags nodes that look alive but are semantically stuck.
pub struct DeepStuckLint {
    config: DeepConfig,
    log: ProofLog,
}

impl Lint for DeepStuckLint {
    fn name(&self) -> &'static str {
        "deep-stuck"
    }
    fn codes(&self) -> &'static [Code] {
        &[Code::DeepStuckNode, Code::DeepProofBudget]
    }
    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::Network { net, .. } = artifact else {
            return;
        };
        if net.inputs().is_empty() || net.topo_order().is_err() {
            return;
        }
        let start = Instant::now();
        let mut enc = Encoder::new();
        let pi: Vec<Lit> = enc.fresh_inputs(net.inputs().len());
        let lits = enc.encode_network(net, &pi);
        let before = enc.solver().stats();
        let budget = self.config.budget();
        let mut checked: HashSet<Lit> = HashSet::new();
        let mut stuck = 0usize;
        let mut unknown = 0usize;
        for id in net.node_ids() {
            if net.role(id) != NodeRole::Internal {
                continue;
            }
            if net.function(id).is_const().is_some() {
                continue;
            }
            let y = lits[&id];
            if y == enc.lit_true() || y == enc.lit_false() || !checked.insert(y) {
                continue;
            }
            let can_be_true = enc.solver_mut().solve_budgeted(&[y], &budget);
            let can_be_false = enc.solver_mut().solve_budgeted(&[!y], &budget);
            if can_be_true == Outcome::Unknown || can_be_false == Outcome::Unknown {
                unknown += 1;
                out.push(budget_diag(
                    "stuck",
                    &format!("node '{}'", net.node_name(id)),
                ));
                continue;
            }
            let stuck_at = match (can_be_true, can_be_false) {
                (Outcome::Unsat, _) => Some(false),
                (_, Outcome::Unsat) => Some(true),
                _ => None,
            };
            if let Some(v) = stuck_at {
                stuck += 1;
                out.push(
                    Diagnostic::new(
                        Code::DeepStuckNode,
                        format!(
                            "node '{}' is provably stuck at {} (dead logic)",
                            net.node_name(id),
                            u8::from(v)
                        ),
                    )
                    .at(Location::Node(id.index())),
                );
            }
        }
        let after = enc.solver().stats();
        self.log.borrow_mut().push(ProofRecord {
            pass: "stuck",
            subject: format!("sweep ({} nodes)", net.internal_count()),
            engine: "sat",
            vars: after.vars,
            clauses: after.clauses + after.learned,
            conflicts: after.conflicts - before.conflicts,
            time_ms: start.elapsed().as_secs_f64() * 1e3,
            verdict: if unknown > 0 {
                "unknown"
            } else if stuck > 0 {
                "refuted"
            } else {
                "proved"
            },
            bdd_cache_hit_rate: None,
            bdd_unique_probes: None,
        });
    }
}
