//! Encoding lints (`HY1xx`): invariants of compatible-class code
//! assignments, don't-care assignments and decomposition recomposition.

use crate::registry::{Artifact, Lint};
use hyde_core::encoding::code_diagnostics;
use hyde_logic::diag::{Code, Diagnostic, Location};

/// `HY101`/`HY102`: non-injective class codes and pliable code widths on
/// a bare code assignment.
pub struct CodesLint;

impl Lint for CodesLint {
    fn name(&self) -> &'static str {
        "encoding-codes"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::EncodingNonInjective, Code::EncodingWidthMismatch]
    }

    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::Encoding { codes } = artifact else {
            return;
        };
        code_diagnostics(codes, out);
    }
}

/// `HY103`: a don't-care assignment that merged incompatible chart
/// columns into one class.
///
/// Two ISF columns are compatible iff they agree wherever both are
/// specified (Section 3.1 of the paper); an assignment may only merge
/// compatible columns, otherwise the completed function changes on the
/// care set.
pub struct DcAssignLint;

impl Lint for DcAssignLint {
    fn name(&self) -> &'static str {
        "encoding-dc-assign"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::EncodingDcMergesIncompatible]
    }

    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::DcAssign { chart, classes } = artifact else {
            return;
        };
        let columns = chart.columns().len();
        if classes.class_map().len() != columns {
            out.push(Diagnostic::new(
                Code::EncodingDcMergesIncompatible,
                format!(
                    "assignment maps {} columns but the chart has {columns}",
                    classes.class_map().len()
                ),
            ));
            return;
        }
        // Group columns by assigned class, then check pairwise
        // compatibility inside every class.
        let nclasses = classes
            .class_map()
            .iter()
            .max()
            .map_or(classes.len(), |&m| classes.len().max(m + 1));
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); nclasses];
        for (col, &cls) in classes.class_map().iter().enumerate() {
            members[cls].push(col);
        }
        for (cls, cols) in members.iter().enumerate() {
            for (i, &a) in cols.iter().enumerate() {
                for &b in &cols[i + 1..] {
                    if !chart.columns_compatible(a, b) {
                        out.push(
                            Diagnostic::new(
                                Code::EncodingDcMergesIncompatible,
                                format!(
                                    "don't-care assignment merged incompatible columns {a} and {b}"
                                ),
                            )
                            .at(Location::Class(cls)),
                        );
                    }
                }
            }
        }
    }
}

/// `HY104` (plus `HY101`/`HY102` on the step's codes): one decomposition
/// step must recompose to the function it decomposed.
pub struct RecompositionLint;

impl Lint for RecompositionLint {
    fn name(&self) -> &'static str {
        "encoding-recomposition"
    }

    fn codes(&self) -> &'static [Code] {
        &[
            Code::EncodingRecomposition,
            Code::EncodingNonInjective,
            Code::EncodingWidthMismatch,
        ]
    }

    fn check(&self, artifact: &Artifact<'_>, out: &mut Vec<Diagnostic>) {
        let Artifact::Decomposition {
            decomposition,
            function,
        } = artifact
        else {
            return;
        };
        out.extend(decomposition.diagnostics(function));
    }
}
