//! `hyde-lint`: run the `hyde-verify` registry over BLIF/PLA files or the
//! bundled circuit suite, print diagnostics, and exit non-zero when any
//! deny-level finding fires. `--deep` additionally runs the `HY4xx`
//! SAT/BDD semantic proofs and prints per-proof effort statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hyde_core::decompose::{decompose_step, Decomposer};
use hyde_core::encoding::EncoderKind;
use hyde_core::hyper::HyperFunction;
use hyde_logic::diag::{Code, Diagnostic, Location, Severity};
use hyde_logic::{blif, pla::Pla, Network, NodeRole, TruthTable};
use hyde_map::flow::FlowKind;
use hyde_map::session::{Job, JobErrorKind, Session};
use hyde_verify::deep::{register_deep, DeepConfig, ProofLog, ProofRecord};
use hyde_verify::{Artifact, Registry};
use std::collections::HashSet;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
hyde-lint: lint HYDE networks, encodings and hyper-functions

Usage: hyde-lint [OPTIONS] [FILE...]

Inputs are BLIF netlists (linted structurally) or espresso-style PLA
files (each output becomes one LUT over all inputs, linted against its
own table as specification; at most 16 inputs).

Options:
  -k <K>           fanin bound: report HY002 for LUTs with more than K fanins
  --suite          lint the bundled circuit suite end-to-end
                   (decompose -> encode -> hyper-recover, k = 5)
  --deep           also run the HY4xx semantic proofs (SAT/BDD CEC,
                   encoding injectivity, collapse/recovery, stuck-at)
  --proof-budget <N>
                   conflict budget per deep proof (default 200000);
                   a blown budget reports HY406
  --mutate <SEED>  corruption drill: flip one LUT bit in every mapped
                   suite network before linting (the deep CEC pass must
                   then report HY401)
  --json           machine-readable output: one JSON object per
                   diagnostic line instead of human-readable text
  --trace <PATH>   record a hyde-obs trace of the run: Chrome trace-event
                   JSON at PATH (load in chrome://tracing or Perfetto)
                   plus collapsed stacks at PATH with a .folded extension
                   (the HYDE_TRACE environment variable does the same)
  --deny-warnings  treat warn-level diagnostics as deny
  --list-codes     print the diagnostic code table and exit
  -h, --help       this message

Exit codes:
  0  no deny-level findings (and no warns under --deny-warnings)
  1  at least one deny-level finding
  2  usage or input/output error";

/// Prints one line to stdout, ignoring broken-pipe errors so
/// `hyde-lint ... | head` exits cleanly instead of panicking.
fn out(line: &str) {
    use std::io::Write;
    let _ = writeln!(std::io::stdout(), "{line}");
}

struct Options {
    k: Option<usize>,
    suite: bool,
    deny_warnings: bool,
    deep: bool,
    json: bool,
    proof_budget: Option<u64>,
    mutate: Option<u64>,
    trace: Option<String>,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        k: None,
        suite: false,
        deny_warnings: false,
        deep: false,
        json: false,
        proof_budget: None,
        mutate: None,
        trace: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                out(USAGE);
                return Ok(None);
            }
            "--list-codes" => {
                for code in Code::ALL {
                    out(&format!(
                        "{code}  default {:<4}",
                        code.default_severity().to_string()
                    ));
                }
                return Ok(None);
            }
            "-k" | "--k" => {
                let v = it.next().ok_or("-k needs a value")?;
                opts.k = Some(v.parse().map_err(|_| format!("bad -k value '{v}'"))?);
            }
            "--proof-budget" => {
                let v = it.next().ok_or("--proof-budget needs a value")?;
                opts.proof_budget = Some(
                    v.parse()
                        .map_err(|_| format!("bad --proof-budget value '{v}'"))?,
                );
            }
            "--mutate" => {
                let v = it.next().ok_or("--mutate needs a seed")?;
                opts.mutate = Some(v.parse().map_err(|_| format!("bad --mutate seed '{v}'"))?);
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a path")?;
                opts.trace = Some(v.clone());
            }
            "--suite" => opts.suite = true,
            "--deep" => opts.deep = true,
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}' (try --help)"));
            }
            file => opts.files.push(file.to_owned()),
        }
    }
    if !opts.suite && opts.files.is_empty() {
        return Err("no input files (try --help)".into());
    }
    if opts.mutate.is_some() && !opts.suite {
        return Err("--mutate only applies to --suite".into());
    }
    Ok(Some(opts))
}

/// Builds a one-LUT-per-output network from PLA tables so the network
/// lints (and the spec check) apply.
fn network_from_tables(name: &str, tables: &[TruthTable]) -> Network {
    let n = tables.first().map_or(0, TruthTable::vars);
    let mut net = Network::new(name);
    let inputs: Vec<_> = (0..n).map(|i| net.add_input(&format!("x{i}"))).collect();
    for (o, t) in tables.iter().enumerate() {
        let id = net
            .add_node(&format!("f{o}"), inputs.clone(), t.clone())
            .expect("fresh inputs cannot dangle");
        net.mark_output(&format!("f{o}"), id);
    }
    net
}

/// Flips one LUT bit of one internal node, selected by `seed`. Returns a
/// description of the corruption, or `None` for networks with no LUTs.
fn corrupt_one_lut_bit(net: &mut Network, seed: u64) -> Option<String> {
    let internals: Vec<_> = net
        .node_ids()
        .into_iter()
        .filter(|&id| net.role(id) == NodeRole::Internal)
        .collect();
    if internals.is_empty() {
        return None;
    }
    let id = internals[seed as usize % internals.len()];
    let mut t = net.function(id).clone();
    let m = (seed >> 8) as usize % t.num_minterms();
    t.set(m as u32, !t.eval(m as u32));
    let fanins = net.fanins(id).to_vec();
    let name = net.node_name(id).to_owned();
    net.replace_node_unchecked(id, fanins, t);
    Some(format!("node '{name}' minterm {m}"))
}

fn lint_file(path: &str, opts: &Options, registry: &Registry) -> Result<Vec<Diagnostic>, String> {
    let _obs = hyde_obs::span!("lint.file");
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let is_pla = path.ends_with(".pla")
        || (!path.ends_with(".blif") && text.lines().any(|l| l.trim_start().starts_with(".i ")));
    if is_pla {
        let pla = Pla::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        if pla.inputs > 16 {
            return Err(format!(
                "{path}: {} inputs is too wide to materialize truth tables (max 16)",
                pla.inputs
            ));
        }
        let tables = pla.output_tables();
        let net = network_from_tables(path, &tables);
        Ok(registry.run(&Artifact::Network {
            net: &net,
            k: opts.k,
            spec: Some(&tables),
        }))
    } else {
        let net = blif::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        Ok(registry.run(&Artifact::Network {
            net: &net,
            k: opts.k,
            spec: None,
        }))
    }
}

/// Lints the bundled circuit suite end-to-end: every circuit is mapped
/// with the HYDE flow and the result linted against its specification;
/// multi-output circuits additionally go through explicit hyper-function
/// decomposition and ingredient recovery. With `--deep` the first output
/// wide enough to decompose also exercises the encoding-injectivity
/// proof on a single Roth–Karp step.
fn lint_suite(opts: &Options, registry: &Registry) -> Vec<(String, Vec<Diagnostic>)> {
    let k = opts.k.unwrap_or(5);
    // Mapping runs through the same single-attempt Session the bench
    // drivers and hyde-serve share; the outer catch_unwind only guards
    // the lint-only paths (hyper recovery, deep proofs) that run
    // outside the supervised mapping attempt.
    let session = Session::new(k, FlowKind::hyde(0xDA98));
    let mut results = Vec::new();
    for circuit in hyde_circuits::suite() {
        let _obs = hyde_obs::span!("lint.circuit");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lint_suite_circuit(&circuit, opts, registry, &session, k)
        }));
        let diags = outcome.unwrap_or_else(|payload| {
            vec![Diagnostic::new(
                Code::BudgetExhausted,
                format!(
                    "circuit aborted by panic: {}",
                    panic_message(payload.as_ref())
                ),
            )]
        });
        results.push((circuit.name.clone(), diags));
    }
    results
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// The per-circuit body of [`lint_suite`].
fn lint_suite_circuit(
    circuit: &hyde_circuits::Circuit,
    opts: &Options,
    registry: &Registry,
    session: &Session,
    k: usize,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    {
        let job = Job::new(&circuit.name, circuit.outputs.clone());
        // The ladder's degradation trail (HY501–HY503/HY505) comes back
        // attached to the job instead of drained from the global log.
        let degradations = match session.run(&job) {
            Ok(result) => {
                let mut report = result.report;
                if let Some(seed) = opts.mutate {
                    if let Some(what) = corrupt_one_lut_bit(&mut report.network, seed) {
                        eprintln!("{}: mutated {what}", circuit.name);
                    }
                }
                diags.extend(registry.run(&Artifact::Network {
                    net: &report.network,
                    k: Some(k),
                    spec: Some(&circuit.outputs),
                }));
                result.degradations
            }
            Err(e) => {
                diags.push(match &e.kind {
                    // An exhaustion that escaped every rung of the
                    // ladder: the circuit produced no output at all.
                    JobErrorKind::OutOfBudget(ob) => {
                        Diagnostic::new(Code::BudgetExhausted, format!("mapping failed: {ob}"))
                    }
                    JobErrorKind::Panicked(msg) => Diagnostic::new(
                        Code::BudgetExhausted,
                        format!("circuit aborted by panic: {msg}"),
                    ),
                    JobErrorKind::Mapping(msg) => {
                        Diagnostic::new(Code::NetworkSpecMismatch, format!("mapping failed: {msg}"))
                    }
                });
                e.degradations
            }
        };
        if !degradations.is_empty() {
            diags.extend(registry.run(&Artifact::Degradations(&degradations)));
        }
        if opts.deep {
            if let Some(t) = circuit.outputs.iter().find(|t| t.vars() > k) {
                let bound: Vec<usize> = (0..k).collect();
                match decompose_step(t, &bound, &EncoderKind::Hyde { seed: 0xDA98 }, k) {
                    Ok(d) => diags.extend(registry.run(&Artifact::Decomposition {
                        decomposition: &d,
                        function: t,
                    })),
                    Err(e) => diags.push(Diagnostic::new(
                        Code::EncodingRecomposition,
                        format!("decomposition step failed: {e}"),
                    )),
                }
            }
        }
        // Hyper-function path: fold distinct outputs, decompose, recover.
        let mut distinct: Vec<TruthTable> = Vec::new();
        let mut seen: HashSet<TruthTable> = HashSet::new();
        for t in &circuit.outputs {
            if seen.insert(t.clone()) {
                distinct.push(t.clone());
            }
            if distinct.len() == 4 {
                break;
            }
        }
        if distinct.len() >= 2 {
            match HyperFunction::new(distinct, &EncoderKind::Hyde { seed: 0xDA98 }, k) {
                Ok(h) => {
                    diags.extend(registry.run(&Artifact::HyperFn(&h)));
                    let dec = Decomposer::new(k, EncoderKind::Hyde { seed: 0xDA98 });
                    match h.decompose(&dec) {
                        Ok(hn) => {
                            diags.extend(registry.run(&Artifact::Hyper(&hn)));
                            match hn.implement_ingredients() {
                                Ok(merged) => diags.extend(registry.run(&Artifact::Recovery {
                                    hyper: &hn,
                                    implemented: &merged,
                                })),
                                Err(e) => diags.push(Diagnostic::new(
                                    Code::HyperRecoveryMismatch,
                                    format!("ingredient implementation failed: {e}"),
                                )),
                            }
                        }
                        Err(e) => diags.push(Diagnostic::new(
                            Code::HyperRecoveryMismatch,
                            format!("hyper decomposition failed: {e}"),
                        )),
                    }
                }
                Err(e) => diags.push(Diagnostic::new(
                    Code::HyperRecoveryMismatch,
                    format!("hyper-function construction failed: {e}"),
                )),
            }
        }
    }
    diags
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut o = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\t' => o.push_str("\\t"),
            '\r' => o.push_str("\\r"),
            c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
            c => o.push(c),
        }
    }
    o
}

fn json_line(artifact: &str, d: &Diagnostic) -> String {
    let location = if d.location == Location::None {
        "null".to_owned()
    } else {
        format!("\"{}\"", json_escape(&d.location.to_string()))
    };
    format!(
        "{{\"artifact\":\"{}\",\"code\":\"{}\",\"severity\":\"{}\",\"location\":{},\"message\":\"{}\"}}",
        json_escape(artifact),
        d.code,
        d.severity,
        location,
        json_escape(&d.message),
    )
}

fn proof_line(r: &ProofRecord) -> String {
    let mut line = format!(
        "  proof {} {}: {} [{}] vars={} clauses={} conflicts={} time={:.3}ms",
        r.pass, r.subject, r.verdict, r.engine, r.vars, r.clauses, r.conflicts, r.time_ms
    );
    if let Some(rate) = r.bdd_cache_hit_rate {
        line.push_str(&format!(" bdd_cache_hit={:.0}%", rate * 100.0));
    }
    line
}

/// Machine-readable proof record, emitted under `--json --deep` so CI can
/// track proof effort (and BDD cache behaviour) alongside diagnostics.
fn proof_json_line(artifact: &str, r: &ProofRecord) -> String {
    let rate = r
        .bdd_cache_hit_rate
        .map_or("null".to_owned(), |v| format!("{v:.3}"));
    let probes = r
        .bdd_unique_probes
        .map_or("null".to_owned(), |v| v.to_string());
    format!(
        "{{\"artifact\":\"{}\",\"proof\":\"{}\",\"subject\":\"{}\",\"verdict\":\"{}\",\
         \"engine\":\"{}\",\"vars\":{},\"clauses\":{},\"conflicts\":{},\"time_ms\":{},\
         \"bdd_cache_hit_rate\":{},\"bdd_unique_probes\":{}}}",
        json_escape(artifact),
        r.pass,
        json_escape(&r.subject),
        r.verdict,
        r.engine,
        r.vars,
        r.clauses,
        r.conflicts,
        format_args!("{:.3}", r.time_ms),
        rate,
        probes,
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // --trace wins over HYDE_TRACE; either activates span collection.
    let trace_path = opts.trace.clone().or_else(hyde_obs::init_from_env);
    if trace_path.is_some() {
        hyde_obs::reset();
        hyde_obs::enable();
    }
    let mut registry = Registry::with_defaults();
    let log: Option<ProofLog> = if opts.deep {
        let mut config = DeepConfig::default();
        if let Some(b) = opts.proof_budget {
            config.max_conflicts = b;
            config.max_time = Duration::from_secs(60);
        }
        Some(register_deep(&mut registry, config))
    } else {
        None
    };
    let drain = |log: &Option<ProofLog>| -> Vec<ProofRecord> {
        log.as_ref()
            .map(|l| l.borrow_mut().drain(..).collect())
            .unwrap_or_default()
    };
    let mut groups: Vec<(String, Vec<Diagnostic>, Vec<ProofRecord>)> = Vec::new();
    if opts.suite {
        for (name, diags) in lint_suite(&opts, &registry) {
            let proofs = drain(&log);
            groups.push((name, diags, proofs));
        }
    }
    for path in &opts.files {
        match lint_file(path, &opts, &registry) {
            Ok(diags) => {
                let proofs = drain(&log);
                groups.push((path.clone(), diags, proofs));
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut warns = 0usize;
    let mut denies = 0usize;
    let mut proofs = 0usize;
    let mut refuted = 0usize;
    let mut unknown = 0usize;
    let mut proof_ms = 0f64;
    for (name, diags, records) in &groups {
        for d in diags {
            if opts.json {
                out(&json_line(name, d));
            } else {
                out(&format!("{name}: {d}"));
            }
            match d.severity {
                Severity::Deny => denies += 1,
                Severity::Warn => warns += 1,
                Severity::Note => {}
            }
        }
        if !records.is_empty() {
            if opts.json {
                for r in records {
                    out(&proof_json_line(name, r));
                }
            } else {
                out(&format!("{name}:"));
                for r in records {
                    out(&proof_line(r));
                }
            }
        }
        for r in records {
            proofs += 1;
            proof_ms += r.time_ms;
            hyde_obs::counter("proof.records", 1);
            hyde_obs::counter("proof.vars", r.vars as u64);
            hyde_obs::counter("proof.clauses", r.clauses as u64);
            hyde_obs::counter("proof.conflicts", r.conflicts);
            match r.verdict {
                "refuted" => refuted += 1,
                "unknown" => unknown += 1,
                _ => {}
            }
        }
    }
    let checked = groups.len();
    if !opts.json {
        out(&format!(
            "hyde-lint: {checked} artifact group(s), {denies} deny, {warns} warn"
        ));
        if proofs > 0 {
            out(&format!(
                "hyde-lint: {proofs} deep proof(s) ({} proved, {refuted} refuted, \
                 {unknown} inconclusive) in {proof_ms:.1}ms",
                proofs - refuted - unknown
            ));
        }
    }
    if let Some(path) = &trace_path {
        let dropped = hyde_obs::dropped();
        if dropped > 0 {
            // The cap only truncates the event timeline; counters and
            // histogram percentiles are recorded unconditionally.
            let d = Diagnostic::new(
                Code::ObsDroppedEvents,
                format!(
                    "{dropped} trace event(s) dropped at the buffer cap; the exported \
                     timeline is truncated (counters and histogram percentiles are \
                     complete)"
                ),
            );
            if opts.json {
                out(&json_line("trace", &d));
            }
            eprintln!("hyde-lint: {d}");
        }
        match hyde_obs::write_artifacts(path) {
            Ok(folded) => eprintln!("hyde-lint: trace written to {path} and {folded}"),
            Err(e) => {
                eprintln!("error: writing trace {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if denies > 0 || (opts.deny_warnings && warns > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
