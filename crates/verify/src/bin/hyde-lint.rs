//! `hyde-lint`: run the `hyde-verify` registry over BLIF/PLA files or the
//! bundled circuit suite, print diagnostics, and exit non-zero when any
//! deny-level finding fires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hyde_core::decompose::Decomposer;
use hyde_core::encoding::EncoderKind;
use hyde_core::hyper::HyperFunction;
use hyde_logic::diag::{Code, Diagnostic, Severity};
use hyde_logic::{blif, pla::Pla, Network, TruthTable};
use hyde_map::flow::{FlowKind, MappingFlow};
use hyde_verify::{Artifact, Registry};
use std::collections::HashSet;
use std::process::ExitCode;

const USAGE: &str = "\
hyde-lint: lint HYDE networks, encodings and hyper-functions

Usage: hyde-lint [OPTIONS] [FILE...]

Inputs are BLIF netlists (linted structurally) or espresso-style PLA
files (each output becomes one LUT over all inputs, linted against its
own table as specification; at most 16 inputs).

Options:
  -k <K>           fanin bound: report HY002 for LUTs with more than K fanins
  --suite          lint the bundled circuit suite end-to-end
                   (decompose -> encode -> hyper-recover, k = 5)
  --deny-warnings  treat warn-level diagnostics as deny
  --list-codes     print the diagnostic code table and exit
  -h, --help       this message";

/// Prints one line to stdout, ignoring broken-pipe errors so
/// `hyde-lint ... | head` exits cleanly instead of panicking.
fn out(line: &str) {
    use std::io::Write;
    let _ = writeln!(std::io::stdout(), "{line}");
}

struct Options {
    k: Option<usize>,
    suite: bool,
    deny_warnings: bool,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        k: None,
        suite: false,
        deny_warnings: false,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                out(USAGE);
                return Ok(None);
            }
            "--list-codes" => {
                for code in Code::ALL {
                    out(&format!(
                        "{code}  default {:<4}",
                        code.default_severity().to_string()
                    ));
                }
                return Ok(None);
            }
            "-k" | "--k" => {
                let v = it.next().ok_or("-k needs a value")?;
                opts.k = Some(v.parse().map_err(|_| format!("bad -k value '{v}'"))?);
            }
            "--suite" => opts.suite = true,
            "--deny-warnings" => opts.deny_warnings = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}' (try --help)"));
            }
            file => opts.files.push(file.to_owned()),
        }
    }
    if !opts.suite && opts.files.is_empty() {
        return Err("no input files (try --help)".into());
    }
    Ok(Some(opts))
}

/// Builds a one-LUT-per-output network from PLA tables so the network
/// lints (and the spec check) apply.
fn network_from_tables(name: &str, tables: &[TruthTable]) -> Network {
    let n = tables.first().map_or(0, TruthTable::vars);
    let mut net = Network::new(name);
    let inputs: Vec<_> = (0..n).map(|i| net.add_input(&format!("x{i}"))).collect();
    for (o, t) in tables.iter().enumerate() {
        let id = net
            .add_node(&format!("f{o}"), inputs.clone(), t.clone())
            .expect("fresh inputs cannot dangle");
        net.mark_output(&format!("f{o}"), id);
    }
    net
}

fn lint_file(path: &str, opts: &Options, registry: &Registry) -> Result<Vec<Diagnostic>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let is_pla = path.ends_with(".pla")
        || (!path.ends_with(".blif") && text.lines().any(|l| l.trim_start().starts_with(".i ")));
    if is_pla {
        let pla = Pla::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        if pla.inputs > 16 {
            return Err(format!(
                "{path}: {} inputs is too wide to materialize truth tables (max 16)",
                pla.inputs
            ));
        }
        let tables = pla.output_tables();
        let net = network_from_tables(path, &tables);
        Ok(registry.run(&Artifact::Network {
            net: &net,
            k: opts.k,
            spec: Some(&tables),
        }))
    } else {
        let net = blif::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        Ok(registry.run(&Artifact::Network {
            net: &net,
            k: opts.k,
            spec: None,
        }))
    }
}

/// Lints the bundled circuit suite end-to-end: every circuit is mapped
/// with the HYDE flow and the result linted against its specification;
/// multi-output circuits additionally go through explicit hyper-function
/// decomposition and ingredient recovery.
fn lint_suite(opts: &Options, registry: &Registry) -> Vec<(String, Vec<Diagnostic>)> {
    let k = opts.k.unwrap_or(5);
    let flow = MappingFlow::new(k, FlowKind::hyde(0xDA98));
    let mut results = Vec::new();
    for circuit in hyde_circuits::suite() {
        let mut diags = Vec::new();
        match flow.map_outputs(&circuit.name, &circuit.outputs) {
            Ok(report) => {
                diags.extend(registry.run(&Artifact::Network {
                    net: &report.network,
                    k: Some(k),
                    spec: Some(&circuit.outputs),
                }));
            }
            Err(e) => diags.push(Diagnostic::new(
                Code::NetworkSpecMismatch,
                format!("mapping failed: {e}"),
            )),
        }
        // Hyper-function path: fold distinct outputs, decompose, recover.
        let mut distinct: Vec<TruthTable> = Vec::new();
        let mut seen: HashSet<TruthTable> = HashSet::new();
        for t in &circuit.outputs {
            if seen.insert(t.clone()) {
                distinct.push(t.clone());
            }
            if distinct.len() == 4 {
                break;
            }
        }
        if distinct.len() >= 2 {
            match HyperFunction::new(distinct, &EncoderKind::Hyde { seed: 0xDA98 }, k) {
                Ok(h) => {
                    diags.extend(registry.run(&Artifact::HyperFn(&h)));
                    let dec = Decomposer::new(k, EncoderKind::Hyde { seed: 0xDA98 });
                    match h.decompose(&dec) {
                        Ok(hn) => {
                            diags.extend(registry.run(&Artifact::Hyper(&hn)));
                            match hn.implement_ingredients() {
                                Ok(merged) => diags.extend(registry.run(&Artifact::Recovery {
                                    hyper: &hn,
                                    implemented: &merged,
                                })),
                                Err(e) => diags.push(Diagnostic::new(
                                    Code::HyperRecoveryMismatch,
                                    format!("ingredient implementation failed: {e}"),
                                )),
                            }
                        }
                        Err(e) => diags.push(Diagnostic::new(
                            Code::HyperRecoveryMismatch,
                            format!("hyper decomposition failed: {e}"),
                        )),
                    }
                }
                Err(e) => diags.push(Diagnostic::new(
                    Code::HyperRecoveryMismatch,
                    format!("hyper-function construction failed: {e}"),
                )),
            }
        }
        results.push((circuit.name.clone(), diags));
    }
    results
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let registry = Registry::with_defaults();
    let mut groups: Vec<(String, Vec<Diagnostic>)> = Vec::new();
    if opts.suite {
        groups.extend(lint_suite(&opts, &registry));
    }
    for path in &opts.files {
        match lint_file(path, &opts, &registry) {
            Ok(diags) => groups.push((path.clone(), diags)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut warns = 0usize;
    let mut denies = 0usize;
    for (name, diags) in &groups {
        for d in diags {
            out(&format!("{name}: {d}"));
            match d.severity {
                Severity::Deny => denies += 1,
                Severity::Warn => warns += 1,
                Severity::Note => {}
            }
        }
    }
    let checked = groups.len();
    out(&format!(
        "hyde-lint: {checked} artifact group(s), {denies} deny, {warns} warn"
    ));
    if denies > 0 || (opts.deny_warnings && warns > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
