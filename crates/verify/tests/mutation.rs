//! Mutation tests: deliberately corrupt networks, encodings,
//! hyper-functions and BDD managers and assert that the matching `HYxxx`
//! diagnostic fires. Every shipped code has at least one negative test
//! here, plus clean-artifact tests asserting the lints stay quiet.

use hyde_bdd::{Bdd, Ref};
use hyde_core::chart::IsfChart;
use hyde_core::classes::CompatibleClasses;
use hyde_core::decompose::{decompose_step, Decomposer, Decomposition};
use hyde_core::encoding::{CodeAssignment, EncoderKind};
use hyde_core::hyper::HyperFunction;
use hyde_logic::{Isf, Network, TruthTable};
use hyde_verify::{any_deny, Artifact, Code, Diagnostic, Registry};

fn has(diags: &[Diagnostic], code: Code) -> bool {
    diags.iter().any(|d| d.code == code)
}

fn run(artifact: &Artifact<'_>) -> Vec<Diagnostic> {
    Registry::with_defaults().run(artifact)
}

/// A two-input AND network: x0, x1 -> g (output).
fn and_network() -> Network {
    let mut net = Network::new("and2");
    let a = net.add_input("x0");
    let b = net.add_input("x1");
    let and = TruthTable::var(2, 0) & TruthTable::var(2, 1);
    let g = net.add_node("g", vec![a, b], and).unwrap();
    net.mark_output("g", g);
    net
}

#[test]
fn hy001_cycle_fires_with_cycle_location() {
    let mut net = Network::new("cyclic");
    let a = net.add_input("a");
    let buf = TruthTable::var(1, 0);
    let n1 = net.add_node("n1", vec![a], buf.clone()).unwrap();
    let n2 = net.add_node("n2", vec![n1], buf.clone()).unwrap();
    net.mark_output("n2", n2);
    // Normal replace_node refuses to create a cycle; the unchecked hook
    // exists exactly for this test.
    net.replace_node_unchecked(n1, vec![n2], buf);
    let diags = run(&Artifact::network(&net));
    assert!(has(&diags, Code::NetworkCycle), "{diags:?}");
    let cyc = diags.iter().find(|d| d.code == Code::NetworkCycle).unwrap();
    match &cyc.location {
        hyde_verify::Location::Cycle(nodes) => assert!(nodes.len() >= 2, "{nodes:?}"),
        other => panic!("expected a cycle location, got {other:?}"),
    }
    assert!(any_deny(&diags));
}

#[test]
fn hy002_fanin_exceeds_k_fires() {
    let mut net = Network::new("wide");
    let inputs: Vec<_> = (0..6).map(|i| net.add_input(&format!("x{i}"))).collect();
    let parity = TruthTable::from_fn(6, |m| m.count_ones() % 2 == 1);
    let g = net.add_node("g", inputs, parity).unwrap();
    net.mark_output("g", g);
    let diags = run(&Artifact::Network {
        net: &net,
        k: Some(5),
        spec: None,
    });
    assert!(has(&diags, Code::NetworkFaninExceedsK), "{diags:?}");
    // Without a bound the check is skipped.
    assert!(!has(
        &run(&Artifact::network(&net)),
        Code::NetworkFaninExceedsK
    ));
}

#[test]
fn hy003_dangling_node_fires() {
    let mut net = and_network();
    let a = net.inputs()[0];
    let _orphan = net
        .add_node("orphan", vec![a], TruthTable::var(1, 0))
        .unwrap();
    let diags = run(&Artifact::network(&net));
    assert!(has(&diags, Code::NetworkDangling), "{diags:?}");
    // Hygiene finding: warn, not deny.
    assert!(!any_deny(&diags));
}

#[test]
fn hy004_vacuous_support_fires() {
    let mut net = Network::new("vacuous");
    let a = net.add_input("x0");
    let b = net.add_input("x1");
    // Declares two fanins but only depends on the first.
    let g = net
        .add_node("g", vec![a, b], TruthTable::var(2, 0))
        .unwrap();
    net.mark_output("g", g);
    let diags = run(&Artifact::network(&net));
    assert!(has(&diags, Code::NetworkVacuousSupport), "{diags:?}");
    assert!(!any_deny(&diags));
}

#[test]
fn hy005_spec_mismatch_fires() {
    let net = and_network();
    let or = TruthTable::var(2, 0) | TruthTable::var(2, 1);
    let spec = [or];
    let diags = run(&Artifact::Network {
        net: &net,
        k: None,
        spec: Some(&spec),
    });
    assert!(has(&diags, Code::NetworkSpecMismatch), "{diags:?}");
    assert!(any_deny(&diags));
}

#[test]
fn hy101_non_injective_codes_fire() {
    let codes = CodeAssignment::new(vec![0, 0], 1).unwrap();
    let diags = run(&Artifact::Encoding { codes: &codes });
    assert!(has(&diags, Code::EncodingNonInjective), "{diags:?}");
    assert!(any_deny(&diags));
}

#[test]
fn hy102_pliable_width_warns() {
    let codes = CodeAssignment::new(vec![0, 1, 2], 3).unwrap();
    let diags = run(&Artifact::Encoding { codes: &codes });
    assert!(has(&diags, Code::EncodingWidthMismatch), "{diags:?}");
    assert!(
        !any_deny(&diags),
        "pliable widths are legitimate: warn only"
    );
}

#[test]
fn hy103_dc_merge_of_incompatible_columns_fires() {
    // f = x0 & x1, fully specified; bound {x0} gives columns 0 and x1,
    // which disagree at x1 = 1 and therefore must not share a class.
    let on = TruthTable::var(2, 0) & TruthTable::var(2, 1);
    let isf = Isf::completely_specified(on);
    let chart = IsfChart::new(&isf, &[0]).unwrap();
    assert!(!chart.columns_compatible(0, 1));
    let classes = CompatibleClasses::from_parts(vec![0, 0], vec![TruthTable::zero(1)]);
    let diags = run(&Artifact::DcAssign {
        chart: &chart,
        classes: &classes,
    });
    assert!(has(&diags, Code::EncodingDcMergesIncompatible), "{diags:?}");
    assert!(any_deny(&diags));
}

#[test]
fn hy104_recomposition_mismatch_fires() {
    let f = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
    // A decomposition whose image was zeroed out cannot recompose f.
    let d = Decomposition {
        bound: vec![0],
        free: vec![1],
        alphas: vec![TruthTable::var(1, 0)],
        image: TruthTable::zero(2),
        image_dc: TruthTable::zero(2),
        codes: CodeAssignment::new(vec![0, 1], 1).unwrap(),
    };
    assert!(!d.verify(&f), "bool wrapper must agree");
    let diags = run(&Artifact::Decomposition {
        decomposition: &d,
        function: &f,
    });
    assert!(has(&diags, Code::EncodingRecomposition), "{diags:?}");
    assert!(any_deny(&diags));
}

fn small_hyper() -> HyperFunction {
    let f0 = TruthTable::var(3, 0) & TruthTable::var(3, 1);
    let f1 = TruthTable::var(3, 1) | TruthTable::var(3, 2);
    HyperFunction::new(vec![f0, f1], &EncoderKind::Lexicographic, 5).unwrap()
}

#[test]
fn hy201_pseudo_leak_fires() {
    let h = small_hyper();
    let hn = h
        .decompose(&Decomposer::new(5, EncoderKind::Lexicographic))
        .unwrap();
    // "Implement" the ingredients without collapsing the pseudo inputs:
    // the eta input survives and the leak lint must catch it.
    let leaky = hn.network.clone();
    let diags = run(&Artifact::Recovery {
        hyper: &hn,
        implemented: &leaky,
    });
    assert!(has(&diags, Code::HyperPseudoLeak), "{diags:?}");
    assert!(any_deny(&diags));
}

#[test]
fn hy202_unregistered_pseudo_input_fires() {
    let h = small_hyper();
    let mut hn = h
        .decompose(&Decomposer::new(5, EncoderKind::Lexicographic))
        .unwrap();
    // Drop the registration of one pseudo input: the duplication cone is
    // computed from the registration list, so its fanout would wrongly be
    // treated as shared logic.
    hn.pseudo_inputs.pop();
    let diags = run(&Artifact::Hyper(&hn));
    assert!(has(&diags, Code::HyperConeViolation), "{diags:?}");
    assert!(any_deny(&diags));
}

#[test]
fn hy203_recovery_mismatch_fires() {
    let mut h = small_hyper();
    h.corrupt_table_bit(0);
    let diags = run(&Artifact::HyperFn(&h));
    assert!(has(&diags, Code::HyperRecoveryMismatch), "{diags:?}");
    assert!(any_deny(&diags));
}

#[test]
fn hy301_ordering_violation_fires() {
    let mut bdd = Bdd::new(4);
    let v1 = bdd.var(1);
    // A node labelled var 2 whose child is labelled var 1: ordering
    // requires var(node) < var(child).
    bdd.raw_push_node(2, v1, Ref::FALSE);
    let diags = run(&Artifact::Bdd(&bdd));
    assert!(has(&diags, Code::BddOrdering), "{diags:?}");
    assert!(any_deny(&diags));
}

#[test]
fn hy301_redundant_node_fires() {
    let mut bdd = Bdd::new(4);
    bdd.raw_push_node(0, Ref::TRUE, Ref::TRUE);
    let diags = run(&Artifact::Bdd(&bdd));
    assert!(has(&diags, Code::BddOrdering), "{diags:?}");
}

#[test]
fn hy302_duplicate_triple_fires() {
    let mut bdd = Bdd::new(4);
    let _v1 = bdd.var(1);
    // Same (var, lo, hi) triple as the node var(1) just interned.
    bdd.raw_push_node(1, Ref::FALSE, Ref::TRUE);
    let diags = run(&Artifact::Bdd(&bdd));
    assert!(has(&diags, Code::BddDuplicateTriple), "{diags:?}");
    assert!(any_deny(&diags));
}

#[test]
fn clean_artifacts_lint_clean() {
    // Network.
    let net = and_network();
    let and = TruthTable::var(2, 0) & TruthTable::var(2, 1);
    let spec = [and];
    assert!(run(&Artifact::Network {
        net: &net,
        k: Some(5),
        spec: Some(&spec),
    })
    .is_empty());

    // Decomposition step straight from the implementation.
    let f = TruthTable::from_fn(5, |m| m.count_ones() % 2 == 1);
    let d = decompose_step(&f, &[0, 1, 2], &EncoderKind::Lexicographic, 5).unwrap();
    assert!(!any_deny(&run(&Artifact::Decomposition {
        decomposition: &d,
        function: &f,
    })));

    // Hyper-function, its network, and a real implementation.
    let h = small_hyper();
    let hn = h
        .decompose(&Decomposer::new(5, EncoderKind::Lexicographic))
        .unwrap();
    let merged = hn.implement_ingredients().unwrap();
    let r = Registry::with_defaults();
    assert!(!any_deny(&r.run_all(&[
        Artifact::HyperFn(&h),
        Artifact::Hyper(&hn),
        Artifact::Recovery {
            hyper: &hn,
            implemented: &merged,
        },
    ])));

    // BDD built through the public API.
    let mut bdd = Bdd::new(6);
    let mut acc = bdd.zero();
    for v in 0..6 {
        let x = bdd.var(v);
        acc = bdd.xor(acc, x);
    }
    assert!(run(&Artifact::Bdd(&bdd)).is_empty());
}

#[test]
fn registry_reports_names_and_codes() {
    let r = Registry::with_defaults();
    let names = r.lint_names();
    assert!(names.contains(&"network-cycle") && names.contains(&"bdd-audit"));
    // Every shipped code is claimed by some registered lint.
    let empty = Registry::empty();
    assert!(empty.lint_names().is_empty());
}
