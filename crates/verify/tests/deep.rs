//! Integration tests for the `HY4xx` deep semantic proofs: every code
//! has a negative test (a corrupted artifact the proof must refute) and
//! the clean pipeline must prove through without findings. The SAT CEC
//! verdicts are additionally cross-checked against exhaustive
//! simulation, so the solver and the simulator vouch for each other.

use hyde_core::decompose::{decompose_step, Decomposer, Decomposition};
use hyde_core::encoding::{CodeAssignment, EncoderKind};
use hyde_core::hyper::HyperFunction;
use hyde_logic::{Network, NodeRole, TruthTable};
use hyde_map::flow::{FlowKind, MappingFlow};
use hyde_verify::deep::{register_deep, DeepConfig, ProofLog};
use hyde_verify::{any_deny, Artifact, Code, Diagnostic, Registry};
use std::time::Duration;

fn has(diags: &[Diagnostic], code: Code) -> bool {
    diags.iter().any(|d| d.code == code)
}

/// A registry holding *only* the deep lints, so tests observe the proof
/// verdicts without structural-lint noise.
fn deep_registry(config: DeepConfig) -> (Registry, ProofLog) {
    let mut r = Registry::empty();
    let log = register_deep(&mut r, config);
    (r, log)
}

fn sat_only() -> DeepConfig {
    DeepConfig {
        bdd_max_inputs: 0,
        ..DeepConfig::default()
    }
}

fn flip_one_lut_bit(net: &mut Network, minterm: u32) {
    let id = net
        .node_ids()
        .into_iter()
        .find(|&id| net.role(id) == NodeRole::Internal)
        .expect("network has a LUT");
    let mut t = net.function(id).clone();
    let m = minterm % t.num_minterms() as u32;
    t.set(m, !t.eval(m));
    let fanins = net.fanins(id).to_vec();
    net.replace_node_unchecked(id, fanins, t);
}

/// Exhaustive simulation oracle: does `net` compute `specs`?
fn simulates(net: &Network, specs: &[TruthTable]) -> bool {
    let n = specs[0].vars();
    for m in 0u32..1 << n {
        let bits: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
        let got = net.eval(&bits);
        for (o, spec) in specs.iter().enumerate() {
            if got[o] != spec.eval(m) {
                return false;
            }
        }
    }
    true
}

#[test]
fn sat_cec_agrees_with_exhaustive_simulation_on_small_suite() {
    let (registry, _log) = deep_registry(sat_only());
    let flow = MappingFlow::new(5, FlowKind::hyde(0xDA98));
    let mut checked = 0;
    for circuit in hyde_circuits::suite_small() {
        if circuit.outputs[0].vars() > 12 {
            continue;
        }
        let report = flow.map_outputs(&circuit.name, &circuit.outputs).unwrap();
        assert!(
            simulates(&report.network, &circuit.outputs),
            "{}: simulation oracle disagrees with the mapper",
            circuit.name
        );
        let diags = registry.run(&Artifact::Network {
            net: &report.network,
            k: Some(5),
            spec: Some(&circuit.outputs),
        });
        assert!(
            !has(&diags, Code::DeepCecMismatch) && !has(&diags, Code::DeepProofBudget),
            "{}: SAT CEC disagrees with simulation: {diags:?}",
            circuit.name
        );
        checked += 1;
    }
    assert!(checked >= 3, "suite_small should have small circuits");
}

#[test]
fn hy401_mutated_network_is_refuted_by_both_engines() {
    let flow = MappingFlow::new(5, FlowKind::hyde(0xDA98));
    let circuit = &hyde_circuits::suite_small()[0];
    let mut report = flow.map_outputs(&circuit.name, &circuit.outputs).unwrap();
    flip_one_lut_bit(&mut report.network, 0);
    assert!(!simulates(&report.network, &circuit.outputs));
    let artifact = Artifact::Network {
        net: &report.network,
        k: Some(5),
        spec: Some(&circuit.outputs),
    };
    // SAT miter path.
    let (registry, log) = deep_registry(sat_only());
    let diags = registry.run(&artifact);
    assert!(has(&diags, Code::DeepCecMismatch), "{diags:?}");
    assert!(any_deny(&diags));
    assert!(log.borrow().iter().any(|r| r.verdict == "refuted"));
    // BDD CEC path (raise the threshold so the spec width fits).
    let (registry, log) = deep_registry(DeepConfig {
        bdd_max_inputs: 28,
        ..DeepConfig::default()
    });
    let diags = registry.run(&artifact);
    assert!(has(&diags, Code::DeepCecMismatch), "{diags:?}");
    assert!(log.borrow().iter().any(|r| r.engine == "bdd"));
}

#[test]
fn hy401_counterexample_minterm_is_real() {
    let flow = MappingFlow::new(5, FlowKind::hyde(0xDA98));
    let circuit = &hyde_circuits::suite_small()[0];
    let mut report = flow.map_outputs(&circuit.name, &circuit.outputs).unwrap();
    flip_one_lut_bit(&mut report.network, 3);
    let (registry, _log) = deep_registry(sat_only());
    let diags = registry.run(&Artifact::Network {
        net: &report.network,
        k: Some(5),
        spec: Some(&circuit.outputs),
    });
    let cex = diags
        .iter()
        .find(|d| d.code == Code::DeepCecMismatch)
        .expect("mutation must be caught");
    // The reported output location and witness must disagree for real.
    let hyde_verify::Location::Output(o) = cex.location else {
        panic!("expected an output location, got {:?}", cex.location);
    };
    let m: u32 = cex
        .message
        .split("minterm ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("message carries the witness minterm");
    let n = circuit.outputs[0].vars();
    let bits: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
    assert_ne!(report.network.eval(&bits)[o], circuit.outputs[o].eval(m));
}

#[test]
fn hy402_non_separating_alpha_is_refuted() {
    // f = x0 ^ x1 with bound {x0}: a constant α merges the two bound
    // minterms although f distinguishes them for every free assignment.
    let f = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
    let d = Decomposition {
        bound: vec![0],
        free: vec![1],
        alphas: vec![TruthTable::zero(1)],
        image: TruthTable::zero(2),
        image_dc: TruthTable::zero(2),
        codes: CodeAssignment::new(vec![0, 1], 1).unwrap(),
    };
    let (registry, log) = deep_registry(sat_only());
    let diags = registry.run(&Artifact::Decomposition {
        decomposition: &d,
        function: &f,
    });
    assert!(has(&diags, Code::DeepEncodingNotInjective), "{diags:?}");
    assert!(any_deny(&diags));
    assert_eq!(log.borrow().len(), 1);
    assert_eq!(log.borrow()[0].verdict, "refuted");
}

#[test]
fn hy402_real_decomposition_is_proved_injective() {
    let f = TruthTable::from_fn(7, |m| m.count_ones() % 2 == 1);
    let d = decompose_step(&f, &[0, 1, 2, 3, 4], &EncoderKind::Hyde { seed: 7 }, 5).unwrap();
    let (registry, log) = deep_registry(sat_only());
    let diags = registry.run(&Artifact::Decomposition {
        decomposition: &d,
        function: &f,
    });
    assert!(!has(&diags, Code::DeepEncodingNotInjective), "{diags:?}");
    assert!(log.borrow().iter().all(|r| r.verdict == "proved"));
}

fn small_hyper() -> HyperFunction {
    let f0 = TruthTable::var(3, 0) & TruthTable::var(3, 1);
    let f1 = TruthTable::var(3, 1) | TruthTable::var(3, 2);
    HyperFunction::new(vec![f0, f1], &EncoderKind::Lexicographic, 5).unwrap()
}

#[test]
fn hy403_corrupted_implementation_is_refuted() {
    let h = small_hyper();
    let hn = h
        .decompose(&Decomposer::new(5, EncoderKind::Lexicographic))
        .unwrap();
    let mut merged = hn.implement_ingredients().unwrap();
    flip_one_lut_bit(&mut merged, 0);
    let (registry, _log) = deep_registry(sat_only());
    let diags = registry.run(&Artifact::Recovery {
        hyper: &hn,
        implemented: &merged,
    });
    assert!(has(&diags, Code::DeepCollapseMismatch), "{diags:?}");
    assert!(any_deny(&diags));
}

#[test]
fn hy404_corrupted_hyper_table_is_refuted() {
    let mut h = small_hyper();
    h.corrupt_table_bit(0);
    let (registry, _log) = deep_registry(sat_only());
    let diags = registry.run(&Artifact::HyperFn(&h));
    assert!(has(&diags, Code::DeepRecoveryMismatch), "{diags:?}");
    assert!(any_deny(&diags));
}

#[test]
fn hy405_semantically_stuck_node_warns() {
    // g = n1 & n2 where n1 = x0 and n2 = !x0: locally a live AND gate,
    // semantically stuck at 0.
    let mut net = Network::new("stuck");
    let a = net.add_input("x0");
    let n1 = net.add_node("n1", vec![a], TruthTable::var(1, 0)).unwrap();
    let n2 = net.add_node("n2", vec![a], !TruthTable::var(1, 0)).unwrap();
    let and = TruthTable::var(2, 0) & TruthTable::var(2, 1);
    let g = net.add_node("g", vec![n1, n2], and).unwrap();
    net.mark_output("g", g);
    let (registry, _log) = deep_registry(sat_only());
    let diags = registry.run(&Artifact::network(&net));
    let stuck = diags
        .iter()
        .find(|d| d.code == Code::DeepStuckNode)
        .expect("stuck node must be found");
    assert!(stuck.message.contains("stuck at 0"), "{stuck:?}");
    assert!(!any_deny(&diags), "HY405 is a warning: {diags:?}");
}

#[test]
fn hy406_exhausted_budget_is_reported() {
    // A zero budget cannot prove anything about a non-trivial miter.
    let f = TruthTable::from_fn(6, |m| m.count_ones() % 2 == 1);
    let d = decompose_step(&f, &[0, 1, 2], &EncoderKind::Lexicographic, 5).unwrap();
    let (registry, log) = deep_registry(DeepConfig {
        max_conflicts: 0,
        max_time: Duration::ZERO,
        bdd_max_inputs: 0,
    });
    let diags = registry.run(&Artifact::Decomposition {
        decomposition: &d,
        function: &f,
    });
    assert!(has(&diags, Code::DeepProofBudget), "{diags:?}");
    assert!(any_deny(&diags), "an unproved property must fail the run");
    assert!(log.borrow().iter().any(|r| r.verdict == "unknown"));
}

#[test]
fn clean_hyper_pipeline_proves_through() {
    let h = small_hyper();
    let hn = h
        .decompose(&Decomposer::new(5, EncoderKind::Lexicographic))
        .unwrap();
    let merged = hn.implement_ingredients().unwrap();
    let (registry, log) = deep_registry(DeepConfig::default());
    let diags = registry.run_all(&[
        Artifact::HyperFn(&h),
        Artifact::Hyper(&hn),
        Artifact::Recovery {
            hyper: &hn,
            implemented: &merged,
        },
    ]);
    assert!(diags.is_empty(), "{diags:?}");
    let log = log.borrow();
    assert!(!log.is_empty());
    assert!(log.iter().all(|r| r.verdict == "proved"), "{log:?}");
    // The CEC of the decomposed hyper network and the per-ingredient
    // collapse/recovery proofs must all have run.
    for pass in ["cec", "collapse", "recover"] {
        assert!(log.iter().any(|r| r.pass == pass), "missing {pass}");
    }
}
