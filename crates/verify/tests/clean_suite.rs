//! The bundled circuit suite must lint clean: mapping every circuit with
//! the HYDE flow and running the full registry (including the explicit
//! decompose → encode → hyper-recover path) may produce hygiene warnings
//! but never a deny-level diagnostic.

use hyde_core::decompose::Decomposer;
use hyde_core::encoding::EncoderKind;
use hyde_core::hyper::HyperFunction;
use hyde_logic::TruthTable;
use hyde_map::flow::{FlowKind, MappingFlow};
use hyde_verify::{Artifact, Diagnostic, Registry};
use std::collections::HashSet;

fn denies(diags: &[Diagnostic]) -> Vec<String> {
    diags
        .iter()
        .filter(|d| d.is_deny())
        .map(ToString::to_string)
        .collect()
}

#[test]
fn mapped_suite_has_no_deny_diagnostics() {
    let registry = Registry::with_defaults();
    let flow = MappingFlow::new(5, FlowKind::hyde(0xDA98));
    for circuit in hyde_circuits::suite_small() {
        let report = flow
            .map_outputs(&circuit.name, &circuit.outputs)
            .unwrap_or_else(|e| panic!("{}: mapping failed: {e}", circuit.name));
        let diags = registry.run(&Artifact::Network {
            net: &report.network,
            k: Some(5),
            spec: Some(&circuit.outputs),
        });
        assert!(
            denies(&diags).is_empty(),
            "{}: {:?}",
            circuit.name,
            denies(&diags)
        );
    }
}

#[test]
fn hyper_recovery_path_has_no_deny_diagnostics() {
    let registry = Registry::with_defaults();
    for circuit in hyde_circuits::suite_small() {
        // Fold up to three distinct outputs into a hyper-function.
        let mut distinct: Vec<TruthTable> = Vec::new();
        let mut seen: HashSet<TruthTable> = HashSet::new();
        for t in &circuit.outputs {
            if seen.insert(t.clone()) {
                distinct.push(t.clone());
            }
            if distinct.len() == 3 {
                break;
            }
        }
        if distinct.len() < 2 {
            continue;
        }
        let h = HyperFunction::new(distinct, &EncoderKind::Hyde { seed: 0xDA98 }, 5)
            .unwrap_or_else(|e| panic!("{}: hyper construction failed: {e}", circuit.name));
        let hn = h
            .decompose(&Decomposer::new(5, EncoderKind::Hyde { seed: 0xDA98 }))
            .unwrap_or_else(|e| panic!("{}: hyper decomposition failed: {e}", circuit.name));
        let merged = hn
            .implement_ingredients()
            .unwrap_or_else(|e| panic!("{}: implementation failed: {e}", circuit.name));
        hn.verify_ingredients()
            .unwrap_or_else(|e| panic!("{}: ingredient check failed: {e}", circuit.name));
        let diags = registry.run_all(&[
            Artifact::HyperFn(&h),
            Artifact::Hyper(&hn),
            Artifact::Recovery {
                hyper: &hn,
                implemented: &merged,
            },
            Artifact::Network {
                net: &hn.network,
                k: Some(5),
                spec: None,
            },
        ]);
        assert!(
            denies(&diags).is_empty(),
            "{}: {:?}",
            circuit.name,
            denies(&diags)
        );
    }
}
