//! Cubes and sum-of-products covers.
//!
//! The Murgai-style encoding baseline (reference `[3]` of the paper) scores
//! encodings by the number of cubes/literals in the image function, so the
//! reproduction needs an SOP view of truth tables. [`SopCover::isop`]
//! implements the Minato–Morreale irredundant SOP construction, which is
//! also what the PLA writer uses.

use crate::truthtable::TruthTable;
use crate::LogicError;
use std::fmt;

/// Polarity of a variable within a cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Literal {
    /// Variable does not appear in the cube.
    DontCare,
    /// Variable appears complemented.
    Negative,
    /// Variable appears positive.
    Positive,
}

impl Literal {
    /// PLA character for this literal (`-`, `0`, `1`).
    pub fn to_char(self) -> char {
        match self {
            Literal::DontCare => '-',
            Literal::Negative => '0',
            Literal::Positive => '1',
        }
    }

    /// Parses a PLA character.
    pub fn from_char(c: char) -> Option<Self> {
        match c {
            '-' | '2' => Some(Literal::DontCare),
            '0' => Some(Literal::Negative),
            '1' => Some(Literal::Positive),
            _ => None,
        }
    }
}

/// A product term over `n` variables.
///
/// # Example
///
/// ```
/// use hyde_logic::Cube;
///
/// let c: Cube = "1-0".parse().unwrap();
/// assert!(c.contains(0b001));
/// assert!(!c.contains(0b101));
/// assert_eq!(c.literal_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    lits: Vec<Literal>,
}

impl Cube {
    /// The full cube (tautology) over `vars` variables.
    pub fn full(vars: usize) -> Self {
        Cube {
            lits: vec![Literal::DontCare; vars],
        }
    }

    /// Creates a cube from explicit literals.
    pub fn from_literals(lits: Vec<Literal>) -> Self {
        Cube { lits }
    }

    /// Number of variables in the cube's space.
    pub fn vars(&self) -> usize {
        self.lits.len()
    }

    /// Literal at position `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn literal(&self, var: usize) -> Literal {
        self.lits[var]
    }

    /// Restricts the cube by one more literal, returning the refinement.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn with(&self, var: usize, lit: Literal) -> Self {
        let mut c = self.clone();
        c.lits[var] = lit;
        c
    }

    /// Number of non-don't-care literals.
    pub fn literal_count(&self) -> usize {
        self.lits
            .iter()
            .filter(|l| !matches!(l, Literal::DontCare))
            .count()
    }

    /// Whether the minterm lies inside the cube.
    pub fn contains(&self, m: u32) -> bool {
        self.lits.iter().enumerate().all(|(i, l)| match l {
            Literal::DontCare => true,
            Literal::Negative => m >> i & 1 == 0,
            Literal::Positive => m >> i & 1 == 1,
        })
    }

    /// The cube as a truth table.
    pub fn to_truth_table(&self) -> TruthTable {
        let mut t = TruthTable::one(self.vars());
        for (i, l) in self.lits.iter().enumerate() {
            match l {
                Literal::DontCare => {}
                Literal::Negative => t = &t & &!&TruthTable::var(self.vars(), i),
                Literal::Positive => t = &t & &TruthTable::var(self.vars(), i),
            }
        }
        t
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.lits {
            write!(f, "{}", l.to_char())?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Cube {
    type Err = LogicError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lits: Option<Vec<Literal>> = s.chars().map(Literal::from_char).collect();
        lits.map(Cube::from_literals).ok_or(LogicError::Parse {
            line: 0,
            message: format!("invalid cube string {s:?}"),
        })
    }
}

/// A sum-of-products cover: a disjunction of cubes.
///
/// # Example
///
/// ```
/// use hyde_logic::{SopCover, TruthTable};
///
/// let xor = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
/// let sop = SopCover::isop(&xor);
/// assert_eq!(sop.cube_count(), 2);
/// assert_eq!(sop.to_truth_table(2), xor);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SopCover {
    cubes: Vec<Cube>,
}

impl SopCover {
    /// The empty (constant-zero) cover.
    pub fn new() -> Self {
        SopCover { cubes: Vec::new() }
    }

    /// Builds a cover from cubes.
    pub fn from_cubes(cubes: Vec<Cube>) -> Self {
        SopCover { cubes }
    }

    /// The cubes.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Iterates over the cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, Cube> {
        self.cubes.iter()
    }

    /// Adds a cube.
    pub fn push(&mut self, cube: Cube) {
        self.cubes.push(cube);
    }

    /// Number of cubes — the Murgai-style encoding cost.
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Total literal count — the alternative encoding cost of `[3]`.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Evaluates the cover as a truth table over `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if some cube has a different arity than `vars`.
    pub fn to_truth_table(&self, vars: usize) -> TruthTable {
        let mut t = TruthTable::zero(vars);
        for c in &self.cubes {
            assert_eq!(c.vars(), vars, "cube arity mismatch");
            t = &t | &c.to_truth_table();
        }
        t
    }

    /// Computes an irredundant SOP cover of `f` (Minato–Morreale ISOP over
    /// the interval `[f, f]`).
    pub fn isop(f: &TruthTable) -> Self {
        Self::isop_between(f, f)
    }

    /// The CNF export pair `(isop(f), isop(!f))`: a Tseitin encoder turns
    /// each on-set cube into a clause implying the gate output and each
    /// off-set cube into a clause implying its complement.
    pub fn cnf_covers(f: &TruthTable) -> (Self, Self) {
        (Self::isop(f), Self::isop(&!f))
    }

    /// Computes an irredundant SOP `g` with `lower <= g <= upper`
    /// (minterm-wise); `lower` is the on-set that must be covered, `upper`
    /// adds don't cares.
    ///
    /// # Panics
    ///
    /// Panics if arities differ or `lower` is not contained in `upper`.
    pub fn isop_between(lower: &TruthTable, upper: &TruthTable) -> Self {
        assert_eq!(lower.vars(), upper.vars(), "arity mismatch");
        assert!(
            (lower & &!upper).is_zero(),
            "lower bound must be contained in upper bound"
        );
        let mut cubes = Vec::new();
        isop_rec(lower, upper, 0, &Cube::full(lower.vars()), &mut cubes);
        SopCover { cubes }
    }
}

impl FromIterator<Cube> for SopCover {
    fn from_iter<T: IntoIterator<Item = Cube>>(iter: T) -> Self {
        SopCover {
            cubes: iter.into_iter().collect(),
        }
    }
}

impl Extend<Cube> for SopCover {
    fn extend<T: IntoIterator<Item = Cube>>(&mut self, iter: T) {
        self.cubes.extend(iter);
    }
}

impl<'a> IntoIterator for &'a SopCover {
    type Item = &'a Cube;
    type IntoIter = std::slice::Iter<'a, Cube>;
    fn into_iter(self) -> Self::IntoIter {
        self.cubes.iter()
    }
}

impl fmt::Display for SopCover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Recursive ISOP: returns cubes covering at least `lower` and at most
/// `upper`, restricted to the sub-space described by `ctx`, expanding on
/// variable `var` and beyond. The produced cover (as a function) is recorded
/// through `out`.
fn isop_rec(
    lower: &TruthTable,
    upper: &TruthTable,
    var: usize,
    ctx: &Cube,
    out: &mut Vec<Cube>,
) -> TruthTable {
    let vars = lower.vars();
    if lower.is_zero() {
        return TruthTable::zero(vars);
    }
    if var == vars {
        // Nonzero lower bound with no variables left: emit the context cube.
        out.push(ctx.clone());
        return TruthTable::one(vars);
    }
    if !lower.depends_on(var) && !upper.depends_on(var) {
        return isop_rec(lower, upper, var + 1, ctx, out);
    }
    let l0 = lower.cofactor(var, false);
    let l1 = lower.cofactor(var, true);
    let u0 = upper.cofactor(var, false);
    let u1 = upper.cofactor(var, true);

    // Cubes that must contain !var: needed in the 0-half but not allowed in
    // the 1-half.
    let lower0 = &l0 & &!&u1;
    let c0 = isop_rec(
        &lower0,
        &u0,
        var + 1,
        &ctx.with(var, Literal::Negative),
        out,
    );
    // Cubes that must contain var.
    let lower1 = &l1 & &!&u0;
    let c1 = isop_rec(
        &lower1,
        &u1,
        var + 1,
        &ctx.with(var, Literal::Positive),
        out,
    );
    // Remaining minterms can be covered by cubes independent of var.
    let rest = &(&l0 & &!&c0) | &(&l1 & &!&c1);
    let upper_star = &u0 & &u1;
    let cd = isop_rec(&rest, &upper_star, var + 1, ctx, out);

    let v = TruthTable::var(vars, var);
    &(&(&!&v & &c0) | &(&v & &c1)) | &cd
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cube_parse_display_roundtrip() {
        let c: Cube = "1-0-".parse().unwrap();
        assert_eq!(c.to_string(), "1-0-");
        assert_eq!(c.vars(), 4);
        assert_eq!(c.literal_count(), 2);
    }

    #[test]
    fn cube_parse_rejects_garbage() {
        assert!("1x0".parse::<Cube>().is_err());
    }

    #[test]
    fn cube_containment() {
        let c: Cube = "1-0".parse().unwrap();
        // var0='1', var2='0' (string index i = variable i)
        for m in 0u32..8 {
            let expect = (m & 1 == 1) && (m >> 2 & 1 == 0);
            assert_eq!(c.contains(m), expect, "m={m}");
        }
    }

    #[test]
    fn cube_truth_table_matches_contains() {
        let c: Cube = "01-".parse().unwrap();
        let t = c.to_truth_table();
        for m in 0u32..8 {
            assert_eq!(t.eval(m), c.contains(m));
        }
    }

    #[test]
    fn full_cube_is_tautology() {
        assert!(Cube::full(3).to_truth_table().is_one());
        assert_eq!(Cube::full(3).literal_count(), 0);
    }

    #[test]
    fn isop_exact_on_random_functions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for vars in 0..7usize {
            for _ in 0..20 {
                let f = TruthTable::random(vars, &mut rng);
                let sop = SopCover::isop(&f);
                assert_eq!(sop.to_truth_table(vars), f, "vars={vars} f={f:?}");
            }
        }
    }

    #[test]
    fn isop_of_constants() {
        let zero = TruthTable::zero(4);
        assert_eq!(SopCover::isop(&zero).cube_count(), 0);
        let one = TruthTable::one(4);
        let sop = SopCover::isop(&one);
        assert_eq!(sop.cube_count(), 1);
        assert_eq!(sop.literal_count(), 0);
    }

    #[test]
    fn isop_xor_needs_two_cubes() {
        let xor = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
        let sop = SopCover::isop(&xor);
        assert_eq!(sop.cube_count(), 2);
        assert_eq!(sop.literal_count(), 4);
    }

    #[test]
    fn isop_single_cube_function() {
        // f = x0 & !x2 over 3 vars is one cube.
        let f = &TruthTable::var(3, 0) & &!&TruthTable::var(3, 2);
        let sop = SopCover::isop(&f);
        assert_eq!(sop.cube_count(), 1);
        assert_eq!(sop.cubes()[0].to_string(), "1-0");
    }

    #[test]
    fn isop_between_uses_dont_cares() {
        // on = {11}, dc = everything else: single full cube suffices.
        let on = TruthTable::from_minterms(2, &[3]);
        let upper = TruthTable::one(2);
        let sop = SopCover::isop_between(&on, &upper);
        assert_eq!(sop.cube_count(), 1);
        let t = sop.to_truth_table(2);
        assert!((&on & &!&t).is_zero());
    }

    #[test]
    fn isop_between_respects_bounds_randomly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..40 {
            let a = TruthTable::random(5, &mut rng);
            let b = TruthTable::random(5, &mut rng);
            let lower = &a & &b;
            let upper = &a | &b;
            let sop = SopCover::isop_between(&lower, &upper);
            let t = sop.to_truth_table(5);
            assert!((&lower & &!&t).is_zero(), "missed on-set");
            assert!((&t & &!&upper).is_zero(), "exceeded upper bound");
        }
    }

    #[test]
    fn isop_irredundant() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..25 {
            let f = TruthTable::random(5, &mut rng);
            let sop = SopCover::isop(&f);
            // Dropping any single cube must lose some minterm.
            for skip in 0..sop.cube_count() {
                let rest: SopCover = sop
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, c)| c.clone())
                    .collect();
                assert_ne!(rest.to_truth_table(5), f, "cube {skip} was redundant");
            }
        }
    }

    #[test]
    fn cover_display() {
        let sop = SopCover::from_cubes(vec!["1-".parse().unwrap(), "01".parse().unwrap()]);
        assert_eq!(sop.to_string(), "1- + 01");
        assert_eq!(SopCover::new().to_string(), "0");
    }
}
