//! Simulation-based equivalence checking.
//!
//! Every mapping flow in this reproduction verifies its output; this module
//! provides the shared machinery: exhaustive comparison for small input
//! counts, seeded random-vector simulation above that, and a
//! counterexample-reporting API.

use crate::network::{Network, NodeId};
use crate::truthtable::TruthTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// No differing assignment found (exhaustive ⇒ proven, sampled ⇒ high
    /// confidence).
    Equivalent {
        /// Whether every assignment was checked.
        exhaustive: bool,
        /// Number of vectors simulated.
        vectors: u64,
    },
    /// A differing assignment, as input bits in primary-input order.
    Counterexample(Vec<bool>),
}

impl Equivalence {
    /// Whether the check found no mismatch.
    pub fn holds(&self) -> bool {
        matches!(self, Equivalence::Equivalent { .. })
    }
}

/// Compares two networks with identically named primary inputs and the same
/// output count. Inputs are matched by name (order may differ); outputs by
/// position.
///
/// Exhaustive below `2^max_exhaustive_vars` input assignments, otherwise
/// `samples` seeded random vectors.
///
/// # Panics
///
/// Panics if the networks' input *name sets* differ or output counts
/// differ.
pub fn check_networks(
    a: &Network,
    b: &Network,
    max_exhaustive_vars: usize,
    samples: u64,
    seed: u64,
) -> Equivalence {
    let names_a: Vec<&str> = a.inputs().iter().map(|&id| a.node_name(id)).collect();
    let pos_b: Vec<usize> = names_a
        .iter()
        .map(|n| {
            b.inputs()
                .iter()
                .position(|&id| b.node_name(id) == *n)
                .unwrap_or_else(|| panic!("input {n:?} missing from second network"))
        })
        .collect();
    assert_eq!(
        a.inputs().len(),
        b.inputs().len(),
        "input counts must match"
    );
    assert_eq!(
        a.outputs().len(),
        b.outputs().len(),
        "output counts must match"
    );
    let n = names_a.len();
    let check_one = |bits_a: &[bool]| -> Option<Vec<bool>> {
        let mut bits_b = vec![false; n];
        for (i, &p) in pos_b.iter().enumerate() {
            bits_b[p] = bits_a[i];
        }
        if a.eval(bits_a) != b.eval(&bits_b) {
            Some(bits_a.to_vec())
        } else {
            None
        }
    };
    if n <= max_exhaustive_vars {
        for m in 0u64..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
            if let Some(cex) = check_one(&bits) {
                return Equivalence::Counterexample(cex);
            }
        }
        Equivalence::Equivalent {
            exhaustive: true,
            vectors: 1 << n,
        }
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..samples {
            let bits: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            if let Some(cex) = check_one(&bits) {
                return Equivalence::Counterexample(cex);
            }
        }
        Equivalence::Equivalent {
            exhaustive: false,
            vectors: samples,
        }
    }
}

/// Compares a network against specification truth tables. The network's
/// inputs must be named `x<i>` where `i` is the specification variable each
/// input represents (vacuous variables may be absent); outputs are matched
/// by position.
///
/// # Panics
///
/// Panics if an input name does not parse as `x<i>` or output counts
/// differ.
pub fn check_against_tables(net: &Network, spec: &[TruthTable]) -> Equivalence {
    assert_eq!(net.outputs().len(), spec.len(), "output counts must match");
    let n = spec.first().map_or(0, TruthTable::vars);
    let positions: Vec<usize> = net
        .inputs()
        .iter()
        .map(|&id| {
            net.node_name(id)
                .strip_prefix('x')
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("input {:?} is not x<i>", net.node_name(id)))
        })
        .collect();
    // Batch 64 minterms per topological pass: bit j of each input word
    // carries minterm base + j.
    let total = 1u64 << n;
    let mut base = 0u64;
    while base < total {
        let lanes = (total - base).min(64) as u32;
        let lane_mask = if lanes == 64 {
            !0u64
        } else {
            (1u64 << lanes) - 1
        };
        let words: Vec<u64> = positions
            .iter()
            .map(|&p| {
                let mut w = 0u64;
                for j in 0..lanes {
                    w |= ((base + u64::from(j)) >> p & 1) << j;
                }
                w
            })
            .collect();
        let got = net.eval_batch64(&words);
        // Earliest mismatching minterm across every output, matching the
        // scan order of the unbatched loop.
        let mut bad = u64::MAX;
        for (o, f) in spec.iter().enumerate() {
            let mut want = 0u64;
            for j in 0..lanes {
                want |= u64::from(f.eval((base + u64::from(j)) as u32)) << j;
            }
            let diff = (got[o] ^ want) & lane_mask;
            if diff != 0 {
                bad = bad.min(base + u64::from(diff.trailing_zeros()));
            }
        }
        if bad != u64::MAX {
            let m = bad as u32;
            return Equivalence::Counterexample((0..n).map(|i| m >> i & 1 == 1).collect());
        }
        base += u64::from(lanes);
    }
    Equivalence::Equivalent {
        exhaustive: true,
        vectors: 1 << n,
    }
}

/// Simulates `vectors` random input assignments, returning per-node toggle
/// counts — a cheap activity profile for mapped networks.
///
/// # Panics
///
/// Panics if the network is cyclic.
pub fn activity_profile(
    net: &Network,
    vectors: u64,
    seed: u64,
) -> std::collections::HashMap<NodeId, u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let order = net.topo_order().expect("network must be acyclic");
    let mut last: std::collections::HashMap<NodeId, bool> = std::collections::HashMap::new();
    let mut toggles: std::collections::HashMap<NodeId, u64> = std::collections::HashMap::new();
    for t in 0..vectors {
        let bits: Vec<bool> = (0..net.inputs().len()).map(|_| rng.gen()).collect();
        let mut values: std::collections::HashMap<NodeId, bool> = std::collections::HashMap::new();
        for (pi, &v) in net.inputs().iter().zip(&bits) {
            values.insert(*pi, v);
        }
        for &id in &order {
            if values.contains_key(&id) {
                continue;
            }
            let in_bits: Vec<bool> = net.fanins(id).iter().map(|f| values[f]).collect();
            values.insert(id, net.function(id).eval_bits(&in_bits));
        }
        // sa:allow(SA001): independent per-id updates into keyed maps;
        // visit order is immaterial.
        for (&id, &v) in &values {
            if t > 0 && last.get(&id) != Some(&v) {
                *toggles.entry(id).or_insert(0) += 1;
            }
            last.insert(id, v);
        }
    }
    toggles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_net(order_swapped: bool) -> Network {
        let mut net = Network::new("x");
        let (a, b) = if order_swapped {
            let b = net.add_input("b");
            let a = net.add_input("a");
            (a, b)
        } else {
            let a = net.add_input("a");
            let b = net.add_input("b");
            (a, b)
        };
        let xor = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
        let n = net.add_node("n", vec![a, b], xor).unwrap();
        net.mark_output("o", n);
        net
    }

    #[test]
    fn equivalent_networks_with_permuted_inputs() {
        let a = xor_net(false);
        let b = xor_net(true);
        let r = check_networks(&a, &b, 16, 100, 1);
        assert!(r.holds());
        assert_eq!(
            r,
            Equivalence::Equivalent {
                exhaustive: true,
                vectors: 4
            }
        );
    }

    #[test]
    fn counterexample_reported() {
        let a = xor_net(false);
        let mut b = Network::new("y");
        let ba = b.add_input("a");
        let bb = b.add_input("b");
        let and = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        let n = b.add_node("n", vec![ba, bb], and).unwrap();
        b.mark_output("o", n);
        match check_networks(&a, &b, 16, 100, 1) {
            Equivalence::Counterexample(bits) => {
                // xor != and exactly where exactly one input is set or both.
                assert_eq!(bits.len(), 2);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn sampled_mode_above_threshold() {
        let a = xor_net(false);
        let b = xor_net(false);
        let r = check_networks(&a, &b, 1, 64, 9);
        assert_eq!(
            r,
            Equivalence::Equivalent {
                exhaustive: false,
                vectors: 64
            }
        );
    }

    #[test]
    fn table_check() {
        let net = xor_net(false);
        let spec = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
        // inputs are named a/b, not x<i>: rename through a rebuilt net.
        let mut renamed = Network::new("x");
        let a = renamed.add_input("x0");
        let b = renamed.add_input("x1");
        let xor = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
        let n = renamed.add_node("n", vec![a, b], xor).unwrap();
        renamed.mark_output("o", n);
        assert!(check_against_tables(&renamed, &[spec]).holds());
        let _ = net;
    }

    #[test]
    fn activity_profile_counts_toggles() {
        let net = xor_net(false);
        let prof = activity_profile(&net, 200, 3);
        // With random stimulus every node toggles at least once.
        assert!(prof.values().all(|&t| t > 0));
        assert!(prof.len() >= 3);
    }
}
