//! Boolean function and network substrate for the HYDE reproduction.
//!
//! Functional decomposition manipulates three layers of representation, all
//! provided here:
//!
//! * [`truthtable::TruthTable`] — bit-packed complete truth tables, the
//!   workhorse for decomposition charts (exact up to ~24 variables);
//!   [`truthtable::Isf`] pairs an on-set with a don't-care set for
//!   incompletely specified functions (Section 3.1 of the paper).
//! * [`cube::Cube`] / [`cube::SopCover`] — cube-list (PLA) form with an
//!   irredundant sum-of-products generator, used by the Murgai-style
//!   cube-count encoding baseline and the PLA reader/writer.
//! * [`network::Network`] — a multi-level Boolean network in the SIS mold:
//!   topological traversal, simulation, node collapse, sweeping, cone
//!   extraction and constant propagation. The mapping flows of `hyde-map`
//!   rewrite these networks into k-feasible LUT networks.
//!
//! File I/O: [`pla`] reads/writes espresso-style PLA, [`blif`] a BLIF
//! subset (`.model/.inputs/.outputs/.names`).
//!
//! # Example
//!
//! ```
//! use hyde_logic::TruthTable;
//!
//! let a = TruthTable::var(3, 0);
//! let b = TruthTable::var(3, 1);
//! let c = TruthTable::var(3, 2);
//! let maj = (&(&a & &b) | &(&b & &c)) | (&a & &c);
//! assert_eq!(maj.count_ones(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blif;
pub mod cube;
pub mod diag;
pub mod espresso;
pub mod factor;
pub mod network;
pub mod pla;
pub mod sim;
pub mod truthtable;

pub use cube::{Cube, Literal, SopCover};
pub use diag::{Diagnostic, Severity};
pub use network::{Network, NodeId, NodeRole};
pub use truthtable::{Isf, TruthTable};

/// Errors produced by the logic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// Two operands had different variable counts.
    ArityMismatch {
        /// left operand variable count
        left: usize,
        /// right operand variable count
        right: usize,
    },
    /// A variable index was out of range for the function arity.
    VarOutOfRange {
        /// offending variable index
        var: usize,
        /// function arity
        arity: usize,
    },
    /// Parse failure in PLA/BLIF input.
    Parse {
        /// 1-based line number
        line: usize,
        /// description of the problem
        message: String,
    },
    /// A network invariant was violated (dangling reference, cycle, ...).
    Network(String),
}

impl std::fmt::Display for LogicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogicError::ArityMismatch { left, right } => {
                write!(f, "arity mismatch: {left} vs {right} variables")
            }
            LogicError::VarOutOfRange { var, arity } => {
                write!(
                    f,
                    "variable {var} out of range for {arity}-variable function"
                )
            }
            LogicError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            LogicError::Network(msg) => write!(f, "network error: {msg}"),
        }
    }
}

impl std::error::Error for LogicError {}
