//! Algebraic factoring of SOP covers (SIS-style).
//!
//! The paper prepares multi-level circuits with the SIS algebraic script
//! before decomposition; this module supplies the core of that step:
//! algebraic division, kernel/co-kernel extraction, and recursive
//! factoring of a cover into a factor tree whose literal count is the
//! classical quality metric.

use crate::cube::{Cube, Literal, SopCover};
use std::collections::BTreeSet;

/// A factored form: literals combined by AND/OR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Factor {
    /// A single literal (variable, positive?).
    Literal(usize, bool),
    /// Conjunction of factors.
    And(Vec<Factor>),
    /// Disjunction of factors.
    Or(Vec<Factor>),
    /// Constant (true/false) — only for degenerate covers.
    Const(bool),
}

impl Factor {
    /// Number of literals in the factored form — the SIS quality metric.
    pub fn literal_count(&self) -> usize {
        match self {
            Factor::Literal(..) => 1,
            Factor::And(fs) | Factor::Or(fs) => fs.iter().map(Factor::literal_count).sum(),
            Factor::Const(_) => 0,
        }
    }

    /// Evaluates the factored form on a minterm.
    pub fn eval(&self, m: u32) -> bool {
        match self {
            Factor::Literal(v, pos) => (m >> v & 1 == 1) == *pos,
            Factor::And(fs) => fs.iter().all(|f| f.eval(m)),
            Factor::Or(fs) => fs.iter().any(|f| f.eval(m)),
            Factor::Const(b) => *b,
        }
    }
}

impl std::fmt::Display for Factor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Factor::Literal(v, true) => write!(f, "x{v}"),
            Factor::Literal(v, false) => write!(f, "!x{v}"),
            Factor::And(fs) => {
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    if matches!(x, Factor::Or(_)) {
                        write!(f, "({x})")?;
                    } else {
                        write!(f, "{x}")?;
                    }
                }
                Ok(())
            }
            Factor::Or(fs) => {
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
            Factor::Const(true) => write!(f, "1"),
            Factor::Const(false) => write!(f, "0"),
        }
    }
}

/// One signed literal as `(variable, positive?)`.
pub type SignedLit = (usize, bool);

fn cube_literals(c: &Cube) -> BTreeSet<SignedLit> {
    (0..c.vars())
        .filter_map(|v| match c.literal(v) {
            Literal::DontCare => None,
            Literal::Positive => Some((v, true)),
            Literal::Negative => Some((v, false)),
        })
        .collect()
}

fn cube_from_literals(vars: usize, lits: &BTreeSet<SignedLit>) -> Cube {
    let mut c = Cube::full(vars);
    for &(v, pos) in lits {
        c = c.with(
            v,
            if pos {
                Literal::Positive
            } else {
                Literal::Negative
            },
        );
    }
    c
}

/// Algebraic division of `cover` by the cube `divisor`: returns
/// `(quotient, remainder)` with `cover = divisor·quotient + remainder`.
pub fn divide_by_cube(cover: &SopCover, divisor: &Cube, vars: usize) -> (SopCover, SopCover) {
    let dlits = cube_literals(divisor);
    let mut quotient = Vec::new();
    let mut remainder = Vec::new();
    for cube in cover.iter() {
        let clits = cube_literals(cube);
        if dlits.is_subset(&clits) {
            let rest: BTreeSet<SignedLit> = clits.difference(&dlits).copied().collect();
            quotient.push(cube_from_literals(vars, &rest));
        } else {
            remainder.push(cube.clone());
        }
    }
    (
        SopCover::from_cubes(quotient),
        SopCover::from_cubes(remainder),
    )
}

/// The most frequent signed literal of a cover (the `quick_factor` /
/// literal-kernel heuristic), if any cube has at least one literal.
pub fn best_literal(cover: &SopCover, vars: usize) -> Option<SignedLit> {
    let mut counts: std::collections::HashMap<SignedLit, usize> = std::collections::HashMap::new();
    for cube in cover.iter() {
        for lit in cube_literals(cube) {
            *counts.entry(lit).or_insert(0) += 1;
        }
    }
    let _ = vars;
    // sa:allow(SA001): max_by_key keys (count, var, phase) are distinct
    // per entry, so the maximum is unique and visit order cannot matter.
    counts
        .into_iter()
        .filter(|&(_, n)| n >= 2)
        .max_by_key(|&((v, pos), n)| (n, std::cmp::Reverse(v), pos))
        .map(|(lit, _)| lit)
}

/// Level-0 kernels of a cover: cube-free quotients by co-kernel cubes.
/// Returns `(co-kernel, kernel)` pairs; the trivial co-kernel (the full
/// cube) is included when the cover itself is cube-free.
pub fn kernels(cover: &SopCover, vars: usize) -> Vec<(Cube, SopCover)> {
    let mut out: Vec<(Cube, SopCover)> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    // Candidate co-kernels: literals appearing in >= 2 cubes.
    for v in 0..vars {
        for pos in [true, false] {
            let div = cube_from_literals(vars, &BTreeSet::from([(v, pos)]));
            let (q, _) = divide_by_cube(cover, &div, vars);
            if q.cube_count() < 2 {
                continue;
            }
            let q = make_cube_free(&q, vars);
            let key = format!("{q}");
            if q.cube_count() >= 2 && seen.insert(key) {
                out.push((div, q));
            }
        }
    }
    if is_cube_free(cover) && cover.cube_count() >= 2 {
        out.push((Cube::full(vars), cover.clone()));
    }
    out
}

fn common_cube(cover: &SopCover) -> Option<BTreeSet<SignedLit>> {
    let mut iter = cover.iter();
    let first = cube_literals(iter.next()?);
    let common = iter.fold(first, |acc, c| {
        acc.intersection(&cube_literals(c)).copied().collect()
    });
    Some(common)
}

fn is_cube_free(cover: &SopCover) -> bool {
    common_cube(cover).is_none_or(|c| c.is_empty())
}

fn make_cube_free(cover: &SopCover, vars: usize) -> SopCover {
    match common_cube(cover) {
        Some(common) if !common.is_empty() => {
            let div = cube_from_literals(vars, &common);
            divide_by_cube(cover, &div, vars).0
        }
        _ => cover.clone(),
    }
}

/// Recursively factors a cover: `f = l·(f/l) + r`, dividing by the most
/// frequent literal at each step (the classical quick-factor algorithm).
///
/// The result evaluates identically to the cover.
pub fn factor(cover: &SopCover, vars: usize) -> Factor {
    if cover.cube_count() == 0 {
        return Factor::Const(false);
    }
    if cover.cube_count() == 1 {
        let lits = cube_literals(&cover.cubes()[0]);
        if lits.is_empty() {
            return Factor::Const(true);
        }
        let fs: Vec<Factor> = lits
            .into_iter()
            .map(|(v, p)| Factor::Literal(v, p))
            .collect();
        return if fs.len() == 1 {
            fs.into_iter().next().expect("one literal")
        } else {
            Factor::And(fs)
        };
    }
    match best_literal(cover, vars) {
        None => {
            // No shared literal: plain OR of cube factors.
            let fs: Vec<Factor> = cover
                .iter()
                .map(|c| factor(&SopCover::from_cubes(vec![c.clone()]), vars))
                .collect();
            Factor::Or(fs)
        }
        Some((v, pos)) => {
            let div = cube_from_literals(vars, &BTreeSet::from([(v, pos)]));
            let (q, r) = divide_by_cube(cover, &div, vars);
            let mut terms = Vec::new();
            let head = Factor::And(vec![Factor::Literal(v, pos), factor(&q, vars)]);
            terms.push(flatten(head));
            if r.cube_count() > 0 {
                terms.push(factor(&r, vars));
            }
            if terms.len() == 1 {
                terms.into_iter().next().expect("one term")
            } else {
                Factor::Or(terms)
            }
        }
    }
}

fn flatten(f: Factor) -> Factor {
    match f {
        Factor::And(fs) => {
            let mut out = Vec::new();
            for x in fs {
                match flatten(x) {
                    Factor::And(inner) => out.extend(inner),
                    Factor::Const(true) => {}
                    other => out.push(other),
                }
            }
            if out.len() == 1 {
                out.into_iter().next().expect("one factor")
            } else {
                Factor::And(out)
            }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truthtable::TruthTable;
    use rand::SeedableRng;

    #[test]
    fn division_splits_cover() {
        // f = a·b + a·c + d  divided by a -> q = b + c, r = d.
        let cover = SopCover::from_cubes(vec![
            "11--".parse().unwrap(),
            "1-1-".parse().unwrap(),
            "---1".parse().unwrap(),
        ]);
        let div: Cube = "1---".parse().unwrap();
        let (q, r) = divide_by_cube(&cover, &div, 4);
        assert_eq!(q.cube_count(), 2);
        assert_eq!(r.cube_count(), 1);
    }

    #[test]
    fn factoring_preserves_semantics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let f = TruthTable::random(6, &mut rng);
            let cover = SopCover::isop(&f);
            let fac = factor(&cover, 6);
            for m in 0u32..64 {
                assert_eq!(fac.eval(m), f.eval(m), "m={m} factor={fac}");
            }
        }
    }

    #[test]
    fn factoring_reduces_literals() {
        // f = a·b + a·c + a·d: 6 SOP literals, factored a·(b+c+d) = 4.
        let cover = SopCover::from_cubes(vec![
            "11--".parse().unwrap(),
            "1-1-".parse().unwrap(),
            "1--1".parse().unwrap(),
        ]);
        let fac = factor(&cover, 4);
        assert!(fac.literal_count() < cover.literal_count());
        assert_eq!(fac.literal_count(), 4);
    }

    #[test]
    fn kernels_of_textbook_example() {
        // f = a·b + a·c: kernel b + c with co-kernel a.
        let cover = SopCover::from_cubes(vec!["11-".parse().unwrap(), "1-1".parse().unwrap()]);
        let ks = kernels(&cover, 3);
        assert!(!ks.is_empty());
        let (co, k) = &ks[0];
        assert_eq!(co.to_string(), "1--");
        assert_eq!(k.cube_count(), 2);
    }

    #[test]
    fn cube_free_detection() {
        let free = SopCover::from_cubes(vec!["1-".parse().unwrap(), "-1".parse().unwrap()]);
        assert!(is_cube_free(&free));
        let not_free = SopCover::from_cubes(vec!["11".parse().unwrap(), "1-".parse().unwrap()]);
        assert!(!is_cube_free(&not_free));
    }

    #[test]
    fn constants() {
        assert_eq!(factor(&SopCover::new(), 3), Factor::Const(false));
        let taut = SopCover::from_cubes(vec![Cube::full(3)]);
        assert_eq!(factor(&taut, 3), Factor::Const(true));
    }

    #[test]
    fn display_forms() {
        let cover = SopCover::from_cubes(vec!["11".parse().unwrap(), "1-".parse().unwrap()]);
        let fac = factor(&cover, 2);
        let s = fac.to_string();
        assert!(s.contains("x0"), "{s}");
    }

    #[test]
    fn factored_literal_count_never_exceeds_sop() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        for _ in 0..20 {
            let f = TruthTable::random(5, &mut rng);
            let cover = SopCover::isop(&f);
            let fac = factor(&cover, 5);
            assert!(
                fac.literal_count() <= cover.literal_count(),
                "factoring must not add literals"
            );
        }
    }
}
