//! Multi-level Boolean networks in the SIS mold.
//!
//! A [`Network`] is a DAG of nodes, each computing a [`TruthTable`] over its
//! fanins. Primary inputs are nodes without fanins; any node can be marked
//! as a primary output. The HYDE mapping flows build LUT networks from
//! decomposition trees, collapse pseudo primary inputs to constants when
//! recovering hyper-function ingredients (Section 4.2 of the paper), and
//! count k-feasible nodes for the final LUT/CLB reports.

use crate::truthtable::TruthTable;
use crate::LogicError;
use std::collections::HashMap;
use std::fmt;

/// Handle to a node inside a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Dense index of the node (stable across non-destructive edits).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Role of a node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Primary input (no fanins, no function).
    PrimaryInput,
    /// Internal node with a local function over its fanins.
    Internal,
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    role: NodeRole,
    fanins: Vec<NodeId>,
    /// Local function over `fanins` (variable `i` = fanin `i`). For primary
    /// inputs this is the 0-variable constant zero and never consulted.
    function: TruthTable,
    dead: bool,
}

/// A combinational multi-level Boolean network.
///
/// # Example
///
/// ```
/// use hyde_logic::{Network, TruthTable};
///
/// let mut net = Network::new("adder_bit");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let xor = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
/// let sum = net.add_node("sum", vec![a, b], xor).unwrap();
/// net.mark_output("sum", sum);
/// assert_eq!(net.eval(&[true, false]), vec![true]);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
}

impl Network {
    /// Creates an empty network.
    pub fn new(name: &str) -> Self {
        Network {
            name: name.to_owned(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input.
    pub fn add_input(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.to_owned(),
            role: NodeRole::PrimaryInput,
            fanins: Vec::new(),
            function: TruthTable::zero(0),
            dead: false,
        });
        self.inputs.push(id);
        id
    }

    /// Adds an internal node computing `function` over `fanins`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Network`] if the function arity does not match
    /// the fanin count or a fanin id is dangling.
    pub fn add_node(
        &mut self,
        name: &str,
        fanins: Vec<NodeId>,
        function: TruthTable,
    ) -> Result<NodeId, LogicError> {
        if function.vars() != fanins.len() {
            return Err(LogicError::Network(format!(
                "node {name}: function has {} vars but {} fanins",
                function.vars(),
                fanins.len()
            )));
        }
        for &f in &fanins {
            if f.0 >= self.nodes.len() || self.nodes[f.0].dead {
                return Err(LogicError::Network(format!(
                    "node {name}: dangling fanin {f}"
                )));
            }
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.to_owned(),
            role: NodeRole::Internal,
            fanins,
            function,
            dead: false,
        });
        Ok(id)
    }

    /// Adds a constant node.
    pub fn add_constant(&mut self, name: &str, value: bool) -> NodeId {
        let t = if value {
            TruthTable::one(0)
        } else {
            TruthTable::zero(0)
        };
        self.add_node(name, Vec::new(), t)
            .expect("constant node is always valid")
    }

    /// Marks `node` as primary output `name`. The same node may drive
    /// several outputs.
    pub fn mark_output(&mut self, name: &str, node: NodeId) {
        self.outputs.push((name.to_owned(), node));
    }

    /// Renames every output through `f` (receives the current name).
    pub fn rename_outputs<F: FnMut(&str) -> String>(&mut self, mut f: F) {
        for (name, _) in &mut self.outputs {
            *name = f(name);
        }
    }

    /// Reorders the outputs by a key derived from each output's name.
    pub fn sort_outputs_by_key<K: Ord, F: FnMut(&str) -> K>(&mut self, mut f: F) {
        self.outputs.sort_by_key(|(name, _)| f(name));
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs `(name, node)` in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Role of a node.
    ///
    /// # Panics
    ///
    /// Panics on a dangling id.
    pub fn role(&self, id: NodeId) -> NodeRole {
        self.node(id).role
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics on a dangling id.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node(id).name
    }

    /// Fanins of a node.
    ///
    /// # Panics
    ///
    /// Panics on a dangling id.
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).fanins
    }

    /// Local function of a node.
    ///
    /// # Panics
    ///
    /// Panics on a dangling id or if the node is a primary input.
    pub fn function(&self, id: NodeId) -> &TruthTable {
        let n = self.node(id);
        assert!(
            n.role == NodeRole::Internal,
            "primary input {id} has no function"
        );
        &n.function
    }

    /// CNF export hook: the `(isop(f), isop(!f))` cover pair of a node's
    /// local function, ready for clause-per-cube Tseitin encoding.
    ///
    /// # Panics
    ///
    /// Panics on a dangling id or if the node is a primary input.
    pub fn cnf_covers(&self, id: NodeId) -> (crate::SopCover, crate::SopCover) {
        crate::SopCover::cnf_covers(self.function(id))
    }

    /// Replaces the local function and fanins of an internal node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::add_node`], plus the node must be
    /// internal and the new fanins must not create a cycle.
    pub fn replace_node(
        &mut self,
        id: NodeId,
        fanins: Vec<NodeId>,
        function: TruthTable,
    ) -> Result<(), LogicError> {
        if self.node(id).role != NodeRole::Internal {
            return Err(LogicError::Network(format!(
                "cannot replace primary input {id}"
            )));
        }
        if function.vars() != fanins.len() {
            return Err(LogicError::Network(format!("replace {id}: arity mismatch")));
        }
        let old = std::mem::take(&mut self.nodes[id.0].fanins);
        let old_fn = std::mem::replace(&mut self.nodes[id.0].function, function);
        self.nodes[id.0].fanins = fanins;
        if self.topo_order().is_err() {
            // Roll back to preserve the invariant.
            self.nodes[id.0].fanins = old;
            self.nodes[id.0].function = old_fn;
            return Err(LogicError::Network(format!(
                "replace {id}: would create a cycle"
            )));
        }
        let _ = old_fn;
        Ok(())
    }

    /// Replaces fanins/function of an internal node *without* the cycle
    /// check performed by [`Network::replace_node`].
    ///
    /// This deliberately allows constructing broken networks; it exists so
    /// the `hyde-verify` mutation tests can exercise the lints that detect
    /// such breakage (e.g. combinational cycles). Never use it in flows.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a primary input or the arity does not match.
    #[doc(hidden)]
    pub fn replace_node_unchecked(
        &mut self,
        id: NodeId,
        fanins: Vec<NodeId>,
        function: TruthTable,
    ) {
        assert_eq!(self.node(id).role, NodeRole::Internal, "must be internal");
        assert_eq!(function.vars(), fanins.len(), "arity mismatch");
        self.nodes[id.0].fanins = fanins;
        self.nodes[id.0].function = function;
    }

    /// All live node ids in insertion order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].dead)
            .map(NodeId)
            .collect()
    }

    /// Number of live internal nodes — the raw LUT count of a mapped
    /// network.
    pub fn internal_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !n.dead && n.role == NodeRole::Internal)
            .count()
    }

    /// Maximum fanin count over live internal nodes.
    pub fn max_fanin(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !n.dead && n.role == NodeRole::Internal)
            .map(|n| n.fanins.len())
            .max()
            .unwrap_or(0)
    }

    /// Whether every live internal node has at most `k` fanins.
    pub fn is_k_feasible(&self, k: usize) -> bool {
        self.max_fanin() <= k
    }

    /// Topological order over live nodes (inputs first).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Network`] if the network contains a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, LogicError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut fanouts: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut live = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            if node.dead {
                continue;
            }
            live += 1;
            for f in &node.fanins {
                indeg[i] += 1;
                fanouts[f.0].push(i);
            }
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| !self.nodes[i].dead && indeg[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(live);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(NodeId(v));
            for &w in &fanouts[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        if order.len() != live {
            return Err(LogicError::Network("cycle detected".into()));
        }
        Ok(order)
    }

    /// Logic depth of each node (primary inputs at level 0).
    pub fn levels(&self) -> HashMap<NodeId, usize> {
        let order = self.topo_order().expect("network must be acyclic");
        let mut levels = HashMap::new();
        for id in order {
            let node = self.node(id);
            let lvl = node.fanins.iter().map(|f| levels[f] + 1).max().unwrap_or(0);
            levels.insert(id, lvl);
        }
        levels
    }

    /// Maximum logic depth over outputs.
    pub fn depth(&self) -> usize {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|(_, id)| levels.get(id).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the outputs for one primary-input assignment (in input
    /// declaration order).
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the input count or the
    /// network is cyclic.
    pub fn eval(&self, input_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            input_values.len(),
            self.inputs.len(),
            "wrong number of input values"
        );
        let order = self.topo_order().expect("network must be acyclic");
        let mut values: HashMap<NodeId, bool> = HashMap::new();
        for (pi, &v) in self.inputs.iter().zip(input_values) {
            values.insert(*pi, v);
        }
        for id in order {
            let node = self.node(id);
            if node.role == NodeRole::PrimaryInput {
                continue;
            }
            let bits: Vec<bool> = node.fanins.iter().map(|f| values[f]).collect();
            values.insert(id, node.function.eval_bits(&bits));
        }
        self.outputs.iter().map(|(_, id)| values[id]).collect()
    }

    /// Evaluates the outputs for up to 64 primary-input assignments at
    /// once: bit `j` of `input_words[i]` is input `i`'s value (declaration
    /// order, as [`Self::eval`]) in assignment `j`, and bit `j` of output
    /// word `o` is output `o`'s value in assignment `j`.
    ///
    /// One topological pass serves all 64 assignments; each node is
    /// evaluated word-parallel with a Shannon mux tree over its local
    /// function, so verification sampling loops batch their minterms
    /// through this instead of calling [`Self::eval`] per minterm.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the input count or the
    /// network is cyclic.
    pub fn eval_batch64(&self, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(
            input_words.len(),
            self.inputs.len(),
            "wrong number of input words"
        );
        let order = self.topo_order().expect("network must be acyclic");
        let mut values: HashMap<NodeId, u64> = HashMap::new();
        for (pi, &w) in self.inputs.iter().zip(input_words) {
            values.insert(*pi, w);
        }
        let mut ins: Vec<u64> = Vec::new();
        let mut muxes: Vec<u64> = Vec::new();
        for id in order {
            let node = self.node(id);
            if node.role == NodeRole::PrimaryInput {
                continue;
            }
            ins.clear();
            ins.extend(node.fanins.iter().map(|f| values[f]));
            muxes.clear();
            muxes.extend(
                (0..1u32 << ins.len()).map(|e| if node.function.eval(e) { !0u64 } else { 0 }),
            );
            // Mux away one variable per round: after round `i`, entry `j`
            // holds the cofactor words for fanins `i+1..` at index `j`.
            let mut width = muxes.len();
            for &x in &ins {
                width /= 2;
                for j in 0..width {
                    muxes[j] = (muxes[2 * j] & !x) | (muxes[2 * j + 1] & x);
                }
            }
            values.insert(id, muxes[0]);
        }
        self.outputs.iter().map(|(_, id)| values[id]).collect()
    }

    /// Computes, for every live node, its global function over the primary
    /// input space (variable `i` = i-th primary input).
    ///
    /// # Panics
    ///
    /// Panics if the input count exceeds [`TruthTable::MAX_VARS`] or the
    /// network is cyclic.
    pub fn global_tables(&self) -> HashMap<NodeId, TruthTable> {
        let nv = self.inputs.len();
        assert!(
            nv <= TruthTable::MAX_VARS,
            "too many primary inputs for global tables"
        );
        let order = self.topo_order().expect("network must be acyclic");
        let mut tables: HashMap<NodeId, TruthTable> = HashMap::new();
        for (i, pi) in self.inputs.iter().enumerate() {
            tables.insert(*pi, TruthTable::var(nv, i));
        }
        for id in order {
            let node = self.node(id);
            if node.role == NodeRole::PrimaryInput {
                continue;
            }
            // Shannon-expand the local function over the fanins' globals.
            let mut acc = TruthTable::zero(nv);
            for m in 0u32..(1u32 << node.fanins.len()) {
                if !node.function.eval(m) {
                    continue;
                }
                let mut term = TruthTable::one(nv);
                for (j, f) in node.fanins.iter().enumerate() {
                    let g = &tables[f];
                    term = if m >> j & 1 == 1 {
                        &term & g
                    } else {
                        &term & &!g
                    };
                    if term.is_zero() {
                        break;
                    }
                }
                acc = &acc | &term;
            }
            tables.insert(id, acc);
        }
        tables
    }

    /// The global function of output `o` restricted to its support:
    /// returns `(table, support)` where `support[i]` is the primary-input
    /// position feeding table variable `i`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::global_tables`]; also panics if
    /// `o >= outputs().len()`.
    pub fn output_function(&self, o: usize) -> (TruthTable, Vec<usize>) {
        let (_, id) = &self.outputs[o];
        let tables = self.global_tables();
        let global = &tables[id];
        let support = global.support();
        let table = project_to_support(global, &support);
        (table, support)
    }

    /// Substitutes a constant for primary input `pi` everywhere and removes
    /// it from the input list (pseudo-primary-input collapse of Section 4.2).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Network`] if `pi` is not a primary input.
    pub fn collapse_input_constant(&mut self, pi: NodeId, value: bool) -> Result<(), LogicError> {
        if self.node(pi).role != NodeRole::PrimaryInput {
            return Err(LogicError::Network(format!("{pi} is not a primary input")));
        }
        for i in 0..self.nodes.len() {
            if self.nodes[i].dead || self.nodes[i].role == NodeRole::PrimaryInput {
                continue;
            }
            while let Some(pos) = self.nodes[i].fanins.iter().position(|&f| f == pi) {
                let cof = self.nodes[i].function.cofactor(pos, value);
                let (new_fn, new_fanins) = drop_fanin(&cof, &self.nodes[i].fanins, pos);
                self.nodes[i].function = new_fn;
                self.nodes[i].fanins = new_fanins;
            }
        }
        // If the input drives an output directly, replace it by a constant
        // node.
        if self.outputs.iter().any(|(_, id)| *id == pi) {
            let c = self.add_constant(&format!("const_{}", self.node(pi).name), value);
            for (_, id) in &mut self.outputs {
                if *id == pi {
                    *id = c;
                }
            }
        }
        self.inputs.retain(|&i| i != pi);
        self.nodes[pi.0].dead = true;
        Ok(())
    }

    /// Removes dead logic: nodes not reachable from any output, vacuous
    /// fanins, and forwards single-input identity (buffer) nodes. Returns
    /// the number of nodes removed.
    pub fn sweep(&mut self) -> usize {
        let before = self.node_ids().len();
        // Drop vacuous fanins and rewrite buffers until a fixpoint.
        loop {
            let mut changed = false;
            // Vacuous fanin elimination.
            for i in 0..self.nodes.len() {
                if self.nodes[i].dead || self.nodes[i].role == NodeRole::PrimaryInput {
                    continue;
                }
                let mut v = 0;
                while v < self.nodes[i].fanins.len() {
                    if !self.nodes[i].function.depends_on(v) {
                        let cof = self.nodes[i].function.cofactor(v, false);
                        let (new_fn, new_fanins) = drop_fanin(&cof, &self.nodes[i].fanins, v);
                        self.nodes[i].function = new_fn;
                        self.nodes[i].fanins = new_fanins;
                        changed = true;
                    } else {
                        v += 1;
                    }
                }
            }
            // Buffer forwarding: node with one fanin computing identity.
            let mut forward: HashMap<NodeId, NodeId> = HashMap::new();
            for i in 0..self.nodes.len() {
                let n = &self.nodes[i];
                if n.dead || n.role == NodeRole::PrimaryInput {
                    continue;
                }
                if n.fanins.len() == 1 && n.function == TruthTable::var(1, 0) {
                    forward.insert(NodeId(i), n.fanins[0]);
                }
            }
            if !forward.is_empty() {
                changed = true;
                let resolve = |mut id: NodeId| {
                    while let Some(&next) = forward.get(&id) {
                        id = next;
                    }
                    id
                };
                for i in 0..self.nodes.len() {
                    if self.nodes[i].dead {
                        continue;
                    }
                    let fanins = self.nodes[i].fanins.clone();
                    self.nodes[i].fanins = fanins.into_iter().map(resolve).collect();
                }
                for (_, id) in &mut self.outputs {
                    *id = resolve(*id);
                }
                // The bypassed buffers are dead now; removing them here
                // also keeps this loop terminating.
                // sa:allow(SA001): independent per-node flag writes;
                // visit order is immaterial.
                for id in forward.keys() {
                    self.nodes[id.0].dead = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Reachability from outputs.
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self.outputs.iter().map(|(_, id)| id.0).collect();
        while let Some(v) = stack.pop() {
            if reachable[v] {
                continue;
            }
            reachable[v] = true;
            for f in &self.nodes[v].fanins {
                stack.push(f.0);
            }
        }
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if node.role == NodeRole::Internal && !reachable[i] {
                node.dead = true;
            }
        }
        before - self.node_ids().len()
    }

    /// Number of live nodes consuming `id` as a fanin.
    pub fn fanout_count(&self, id: NodeId) -> usize {
        self.nodes
            .iter()
            .filter(|n| !n.dead)
            .map(|n| n.fanins.iter().filter(|&&f| f == id).count())
            .sum()
    }

    /// Collapses (eliminates, in SIS terms) an internal node into every
    /// fanout: each consumer's function is composed with the node's
    /// function and the node is removed. Outputs driven by the node keep a
    /// buffer-free reference via composition into a fresh node when needed.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Network`] if `id` is not an internal node.
    pub fn eliminate(&mut self, id: NodeId) -> Result<(), LogicError> {
        if self.node(id).role != NodeRole::Internal {
            return Err(LogicError::Network(format!("{id} is not internal")));
        }
        let victim_fanins = self.node(id).fanins.clone();
        let victim_fn = self.node(id).function.clone();
        for i in 0..self.nodes.len() {
            if self.nodes[i].dead || self.nodes[i].role == NodeRole::PrimaryInput || NodeId(i) == id
            {
                continue;
            }
            while let Some(pos) = self.nodes[i].fanins.iter().position(|&f| f == id) {
                // New fanin list: existing (minus pos) + victim's fanins.
                let mut fanins: Vec<NodeId> = self.nodes[i].fanins.clone();
                fanins.remove(pos);
                let base = fanins.len();
                let mut victim_map = Vec::with_capacity(victim_fanins.len());
                for &vf in &victim_fanins {
                    match fanins.iter().position(|&f| f == vf) {
                        Some(p) => victim_map.push(p),
                        None => {
                            fanins.push(vf);
                            victim_map.push(fanins.len() - 1);
                        }
                    }
                }
                let _ = base;
                let old_fn = self.nodes[i].function.clone();
                let old_fanins = self.nodes[i].fanins.clone();
                let nv = fanins.len();
                let new_fn = TruthTable::from_fn(nv, |m| {
                    // Evaluate the victim on its mapped inputs.
                    let mut vm = 0u32;
                    for (b, &p) in victim_map.iter().enumerate() {
                        if m >> p & 1 == 1 {
                            vm |= 1 << b;
                        }
                    }
                    let vval = victim_fn.eval(vm);
                    // Rebuild the consumer's original input vector.
                    let mut om = 0u32;
                    for (old_pos, &of) in old_fanins.iter().enumerate() {
                        let bit = if old_pos == pos {
                            vval
                        } else {
                            // Position of of in the new fanin list: for
                            // old_pos < pos it is old_pos, beyond it shifts
                            // down by one.
                            let p = if old_pos < pos { old_pos } else { old_pos - 1 };
                            debug_assert_eq!(fanins[p], of);
                            m >> p & 1 == 1
                        };
                        if bit {
                            om |= 1 << old_pos;
                        }
                    }
                    old_fn.eval(om)
                });
                self.nodes[i].fanins = fanins;
                self.nodes[i].function = new_fn;
            }
        }
        // Outputs driven directly by the victim get a replacement node.
        if self.outputs.iter().any(|(_, o)| *o == id) {
            let name = format!("{}_kept", self.nodes[id.0].name);
            let replacement = self
                .add_node(&name, victim_fanins, victim_fn)
                .expect("victim was valid");
            for (_, o) in &mut self.outputs {
                if *o == id {
                    *o = replacement;
                }
            }
        }
        self.nodes[id.0].dead = true;
        Ok(())
    }

    /// Collapses every internal node with a single fanout and a small
    /// resulting support into its consumer (the SIS `eliminate` sweep used
    /// to prepare circuits for decomposition). Returns how many nodes were
    /// eliminated.
    pub fn eliminate_single_fanout(&mut self, max_support: usize) -> usize {
        let mut eliminated = 0;
        loop {
            let candidate = self.node_ids().into_iter().find(|&id| {
                self.role(id) == NodeRole::Internal
                    && self.fanout_count(id) == 1
                    && !self.outputs.iter().any(|(_, o)| *o == id)
                    && {
                        // Estimate the consumer's support after collapse.
                        let consumer = self.node_ids().into_iter().find(|&c| {
                            self.role(c) == NodeRole::Internal && self.fanins(c).contains(&id)
                        });
                        match consumer {
                            Some(c) => {
                                let mut union: std::collections::HashSet<NodeId> =
                                    self.fanins(c).iter().copied().collect();
                                union.remove(&id);
                                union.extend(self.fanins(id).iter().copied());
                                union.len() <= max_support
                            }
                            None => false,
                        }
                    }
            });
            match candidate {
                Some(id) => {
                    self.eliminate(id).expect("candidate is internal");
                    eliminated += 1;
                }
                None => break,
            }
        }
        eliminated
    }

    /// Summary statistics of the network.
    pub fn stats(&self) -> NetworkStats {
        NetworkStats {
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            internal_nodes: self.internal_count(),
            max_fanin: self.max_fanin(),
            depth: if self.outputs.is_empty() {
                0
            } else {
                self.depth()
            },
        }
    }

    /// The set of nodes in the transitive fanout of `start` (including
    /// `start` itself) — `TFO` in Definition 4.2 of the paper.
    pub fn transitive_fanout(&self, start: NodeId) -> Vec<NodeId> {
        let mut fanouts: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.dead {
                continue;
            }
            for f in &node.fanins {
                fanouts[f.0].push(i);
            }
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start.0];
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            if seen[v] {
                continue;
            }
            seen[v] = true;
            out.push(NodeId(v));
            for &w in &fanouts[v] {
                stack.push(w);
            }
        }
        out.sort_unstable();
        out
    }

    fn node(&self, id: NodeId) -> &Node {
        let n = &self.nodes[id.0];
        assert!(!n.dead, "node {id} has been removed");
        n
    }
}

/// Summary statistics of a network (see [`Network::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkStats {
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Live internal node (LUT) count.
    pub internal_nodes: usize,
    /// Maximum fanin over internal nodes.
    pub max_fanin: usize,
    /// Logic depth in levels.
    pub depth: usize,
}

impl std::fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} in, {} out, {} nodes, max fanin {}, depth {}",
            self.inputs, self.outputs, self.internal_nodes, self.max_fanin, self.depth
        )
    }
}

/// Rebuilds `(function, fanins)` with the variable at `pos` removed; the
/// function must not depend on that variable.
fn drop_fanin(function: &TruthTable, fanins: &[NodeId], pos: usize) -> (TruthTable, Vec<NodeId>) {
    let old_vars = fanins.len();
    debug_assert_eq!(function.vars(), old_vars);
    let map: Vec<usize> = (0..old_vars)
        .map(|i| match i.cmp(&pos) {
            std::cmp::Ordering::Less => i,
            std::cmp::Ordering::Equal => 0, // vacuous, maps anywhere
            std::cmp::Ordering::Greater => i - 1,
        })
        .collect();
    let new_fn = function
        .permute(
            old_vars
                .saturating_sub(1)
                .max(map.iter().copied().max().map_or(0, |m| m + 1)),
            &map,
        )
        .unwrap_or_else(|_| {
            // Only possible for the degenerate 1-fanin case below.
            TruthTable::zero(0)
        });
    let mut new_fanins = fanins.to_vec();
    new_fanins.remove(pos);
    // Degenerate: removing the only fanin of a constant function.
    if new_fanins.is_empty() {
        let c = function.cofactor(pos.min(function.vars().saturating_sub(1)), false);
        let t = if c.is_zero() {
            TruthTable::zero(0)
        } else {
            TruthTable::one(0)
        };
        return (t, new_fanins);
    }
    (new_fn, new_fanins)
}

/// Projects a global table onto its `support` variables: result variable
/// `i` corresponds to `support[i]`.
///
/// # Panics
///
/// Panics if `support` omits a variable the table depends on.
pub fn project_to_support(global: &TruthTable, support: &[usize]) -> TruthTable {
    let k = support.len();
    let mut out = TruthTable::zero(k);
    for m in 0u32..(1u32 << k) {
        // Build one representative full minterm (non-support vars at 0).
        let mut full = 0u32;
        for (i, &v) in support.iter().enumerate() {
            if m >> i & 1 == 1 {
                full |= 1 << v;
            }
        }
        if global.eval(full) {
            out.set(m, true);
        }
    }
    debug_assert!({
        let sup = global.support();
        sup.iter().all(|v| support.contains(v))
    });
    out
}

/// Structurally merges several networks into one multi-output network,
/// sharing nodes that compute the same function over the same (shared)
/// fanins. Primary inputs are matched by name; outputs keep their names
/// (prefixed by the source network's name when duplicates arise).
///
/// This realizes the sharing argument of hyper-function decomposition:
/// after per-ingredient constant collapse, every node outside the
/// duplication cone is structurally identical across ingredients and merges
/// into a single LUT.
///
/// # Panics
///
/// Panics if any input network is cyclic.
pub fn structural_merge(name: &str, nets: &[&Network]) -> Network {
    let mut out = Network::new(name);
    let mut pi_by_name: HashMap<String, NodeId> = HashMap::new();
    // (function words, fanins) -> node
    let mut cons: HashMap<(Vec<u64>, Vec<NodeId>), NodeId> = HashMap::new();
    let mut seen_outputs: HashMap<String, usize> = HashMap::new();
    for net in nets {
        let order = net.topo_order().expect("network must be acyclic");
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        for id in order {
            match net.role(id) {
                NodeRole::PrimaryInput => {
                    let nm = net.node_name(id).to_owned();
                    let pid = *pi_by_name
                        .entry(nm.clone())
                        .or_insert_with(|| out.add_input(&nm));
                    map.insert(id, pid);
                }
                NodeRole::Internal => {
                    let fanins: Vec<NodeId> = net.fanins(id).iter().map(|f| map[f]).collect();
                    let key = (net.function(id).as_words().to_vec(), fanins.clone());
                    let nid = match cons.get(&key) {
                        Some(&n) => n,
                        None => {
                            let n = out
                                .add_node(net.node_name(id), fanins, net.function(id).clone())
                                .expect("arity preserved by construction");
                            cons.insert(key, n);
                            n
                        }
                    };
                    map.insert(id, nid);
                }
            }
        }
        for (oname, oid) in net.outputs() {
            let count = seen_outputs.entry(oname.clone()).or_insert(0);
            let final_name = if *count == 0 {
                oname.clone()
            } else {
                format!("{}_{oname}", net.name())
            };
            *count += 1;
            out.mark_output(&final_name, map[oid]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Network {
        let mut net = Network::new("fa");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let cin = net.add_input("cin");
        let xor3 = TruthTable::from_fn(3, |m| (m.count_ones() % 2) == 1);
        let maj = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let s = net.add_node("sum", vec![a, b, cin], xor3).unwrap();
        let c = net.add_node("cout", vec![a, b, cin], maj).unwrap();
        net.mark_output("sum", s);
        net.mark_output("cout", c);
        net
    }

    #[test]
    fn eval_full_adder() {
        let net = full_adder();
        for m in 0u32..8 {
            let bits = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
            let out = net.eval(&bits);
            let total = bits.iter().filter(|&&b| b).count();
            assert_eq!(out[0], total % 2 == 1);
            assert_eq!(out[1], total >= 2);
        }
    }

    #[test]
    fn global_tables_match_eval() {
        let net = full_adder();
        let tables = net.global_tables();
        let (_, sum_id) = &net.outputs()[0];
        for m in 0u32..8 {
            let bits = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
            assert_eq!(tables[sum_id].eval(m), net.eval(&bits)[0]);
        }
    }

    #[test]
    fn output_function_shrinks_support() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let _unused = net.add_input("b");
        let c = net.add_input("c");
        let and = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        let n = net.add_node("and", vec![a, c], and.clone()).unwrap();
        net.mark_output("o", n);
        let (f, support) = net.output_function(0);
        assert_eq!(support, vec![0, 2]);
        assert_eq!(f, and);
    }

    #[test]
    fn cycle_detection() {
        let mut net = Network::new("cyc");
        let a = net.add_input("a");
        let id1 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        let n1 = net.add_node("n1", vec![a, a], id1.clone()).unwrap();
        // Rewire n1 to feed itself -> cycle.
        assert!(net.replace_node(n1, vec![a, n1], id1).is_err());
        // Network remains valid after rollback.
        assert!(net.topo_order().is_ok());
    }

    #[test]
    fn levels_and_depth() {
        let mut net = Network::new("chain");
        let a = net.add_input("a");
        let inv = !TruthTable::var(1, 0);
        let n1 = net.add_node("n1", vec![a], inv.clone()).unwrap();
        let n2 = net.add_node("n2", vec![n1], inv.clone()).unwrap();
        net.mark_output("o", n2);
        assert_eq!(net.depth(), 2);
        assert_eq!(net.levels()[&a], 0);
        assert_eq!(net.levels()[&n2], 2);
    }

    #[test]
    fn collapse_input_constant_full_adder() {
        // Tie cin=0: sum becomes a^b, cout becomes a&b.
        let mut net = full_adder();
        let cin = net.inputs()[2];
        net.collapse_input_constant(cin, false).unwrap();
        assert_eq!(net.inputs().len(), 2);
        for m in 0u32..4 {
            let bits = [m & 1 == 1, m >> 1 & 1 == 1];
            let out = net.eval(&bits);
            assert_eq!(out[0], bits[0] ^ bits[1]);
            assert_eq!(out[1], bits[0] && bits[1]);
        }
    }

    #[test]
    fn collapse_input_driving_output() {
        let mut net = Network::new("pass");
        let a = net.add_input("a");
        net.mark_output("o", a);
        net.collapse_input_constant(a, true).unwrap();
        assert_eq!(net.eval(&[]), vec![true]);
    }

    #[test]
    fn sweep_removes_dead_and_buffers() {
        let mut net = Network::new("s");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let inv = !TruthTable::var(1, 0);
        let _dead = net.add_node("dead", vec![b], inv.clone()).unwrap();
        let buf = net.add_node("buf", vec![a], TruthTable::var(1, 0)).unwrap();
        let n = net.add_node("inv", vec![buf], inv).unwrap();
        net.mark_output("o", n);
        let removed = net.sweep();
        assert_eq!(removed, 2); // dead + buffer
        assert_eq!(net.eval(&[true, false]), vec![false]);
        assert_eq!(net.internal_count(), 1);
    }

    #[test]
    fn sweep_drops_vacuous_fanins() {
        let mut net = Network::new("v");
        let a = net.add_input("a");
        let b = net.add_input("b");
        // Function over (a,b) that ignores b.
        let f = TruthTable::var(2, 0);
        let n = net.add_node("n", vec![a, b], f).unwrap();
        net.mark_output("o", n);
        net.sweep();
        // n forwarded to a as a buffer, so output is a.
        assert_eq!(net.eval(&[true, false]), vec![true]);
        assert_eq!(net.eval(&[false, true]), vec![false]);
    }

    #[test]
    fn transitive_fanout() {
        let mut net = Network::new("tfo");
        let a = net.add_input("a");
        let inv = !TruthTable::var(1, 0);
        let n1 = net.add_node("n1", vec![a], inv.clone()).unwrap();
        let n2 = net.add_node("n2", vec![n1], inv.clone()).unwrap();
        let n3 = net.add_node("n3", vec![a], inv).unwrap();
        net.mark_output("o2", n2);
        net.mark_output("o3", n3);
        let tfo = net.transitive_fanout(n1);
        assert_eq!(tfo, vec![n1, n2]);
        let tfo_a = net.transitive_fanout(a);
        assert_eq!(tfo_a.len(), 4);
    }

    #[test]
    fn k_feasibility() {
        let net = full_adder();
        assert!(net.is_k_feasible(3));
        assert!(!net.is_k_feasible(2));
        assert_eq!(net.max_fanin(), 3);
        assert_eq!(net.internal_count(), 2);
    }

    #[test]
    fn eliminate_preserves_function() {
        // y = (a & b) | c built as two nodes; eliminating the AND yields a
        // single 3-input node computing the same function.
        let mut net = Network::new("elim");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        let or2 = TruthTable::var(2, 0) | TruthTable::var(2, 1);
        let t = net.add_node("t", vec![a, b], and2).unwrap();
        let y = net.add_node("y", vec![t, c], or2).unwrap();
        net.mark_output("y", y);
        net.eliminate(t).unwrap();
        assert_eq!(net.internal_count(), 1);
        for m in 0u32..8 {
            let bits = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
            let expect = (bits[0] && bits[1]) || bits[2];
            assert_eq!(net.eval(&bits), vec![expect], "m={m}");
        }
    }

    #[test]
    fn eliminate_with_shared_fanin() {
        // Consumer already uses one of the victim's fanins: y = t ^ a,
        // t = a & b. After eliminate: y(a,b) = (a&b)^a.
        let mut net = Network::new("share");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        let xor2 = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
        let t = net.add_node("t", vec![a, b], and2).unwrap();
        let y = net.add_node("y", vec![t, a], xor2).unwrap();
        net.mark_output("y", y);
        net.eliminate(t).unwrap();
        for m in 0u32..4 {
            let (av, bv) = (m & 1 == 1, m >> 1 & 1 == 1);
            assert_eq!(net.eval(&[av, bv]), vec![(av && bv) ^ av], "m={m}");
        }
    }

    #[test]
    fn eliminate_output_driver_keeps_output() {
        let mut net = Network::new("out");
        let a = net.add_input("a");
        let inv = !TruthTable::var(1, 0);
        let n = net.add_node("n", vec![a], inv).unwrap();
        net.mark_output("o", n);
        net.eliminate(n).unwrap();
        assert_eq!(net.eval(&[false]), vec![true]);
    }

    #[test]
    fn eliminate_rejects_primary_input() {
        let mut net = Network::new("pi");
        let a = net.add_input("a");
        assert!(net.eliminate(a).is_err());
    }

    #[test]
    fn eliminate_single_fanout_sweep() {
        // Chain of three inverters collapses into the final node.
        let mut net = Network::new("chain");
        let a = net.add_input("a");
        let inv = !TruthTable::var(1, 0);
        let n1 = net.add_node("n1", vec![a], inv.clone()).unwrap();
        let n2 = net.add_node("n2", vec![n1], inv.clone()).unwrap();
        let n3 = net.add_node("n3", vec![n2], inv).unwrap();
        net.mark_output("o", n3);
        let removed = net.eliminate_single_fanout(8);
        assert_eq!(removed, 2);
        assert_eq!(net.internal_count(), 1);
        assert_eq!(net.eval(&[true]), vec![false]);
    }

    #[test]
    fn stats_report() {
        let net = full_adder();
        let s = net.stats();
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.internal_nodes, 2);
        assert_eq!(s.max_fanin, 3);
        assert_eq!(s.depth, 1);
        assert!(s.to_string().contains("2 nodes"));
    }

    #[test]
    fn fanout_counts() {
        let net = full_adder();
        let a = net.inputs()[0];
        assert_eq!(net.fanout_count(a), 2);
    }

    #[test]
    fn structural_merge_shares_identical_logic() {
        // Two networks computing a^b and (a^b)|c share the xor node.
        let xor = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
        let or2 = TruthTable::var(2, 0) | TruthTable::var(2, 1);
        let mut n1 = Network::new("n1");
        let a = n1.add_input("a");
        let b = n1.add_input("b");
        let x1 = n1.add_node("x", vec![a, b], xor.clone()).unwrap();
        n1.mark_output("y1", x1);
        let mut n2 = Network::new("n2");
        let a2 = n2.add_input("a");
        let b2 = n2.add_input("b");
        let c2 = n2.add_input("c");
        let x2 = n2.add_node("x", vec![a2, b2], xor).unwrap();
        let o2 = n2.add_node("o", vec![x2, c2], or2).unwrap();
        n2.mark_output("y2", o2);
        let merged = structural_merge("m", &[&n1, &n2]);
        assert_eq!(merged.internal_count(), 2, "xor shared, or unique");
        assert_eq!(merged.inputs().len(), 3);
        let out = merged.eval(&[true, false, false]);
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn structural_merge_renames_duplicate_outputs() {
        let mut n1 = Network::new("first");
        let a = n1.add_input("a");
        n1.mark_output("y", a);
        let mut n2 = Network::new("second");
        let a2 = n2.add_input("a");
        let inv = !TruthTable::var(1, 0);
        let o = n2.add_node("inv", vec![a2], inv).unwrap();
        n2.mark_output("y", o);
        let merged = structural_merge("m", &[&n1, &n2]);
        let names: Vec<&str> = merged.outputs().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["y", "second_y"]);
    }

    #[test]
    fn add_node_validates() {
        let mut net = Network::new("bad");
        let a = net.add_input("a");
        assert!(net.add_node("n", vec![a], TruthTable::zero(2)).is_err());
        assert!(net
            .add_node("n", vec![NodeId(99)], TruthTable::zero(1))
            .is_err());
    }
}
