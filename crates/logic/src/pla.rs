//! Espresso-style PLA reader and writer.
//!
//! The MCNC two-level benchmarks the paper evaluates on are distributed in
//! this format; the reproduction's constructive circuit suite can be dumped
//! to PLA for inspection and re-read for round-trip tests.
//!
//! Supported directives: `.i`, `.o`, `.p` (optional), `.ilb`, `.ob`,
//! `.type fr|f` (defaults to `f`: unlisted minterms are off), `.e`/`.end`.
//! Output plane characters: `1` (on), `0`/`~` (off), `-`/`2` (don't care).

use crate::cube::{Cube, Literal};
use crate::truthtable::{Isf, TruthTable};
use crate::LogicError;

/// A parsed multi-output PLA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pla {
    /// Number of inputs.
    pub inputs: usize,
    /// Input labels (generated as `x0..` when absent).
    pub input_names: Vec<String>,
    /// Output labels (generated as `f0..` when absent).
    pub output_names: Vec<String>,
    /// Rows: an input cube plus one output character per output.
    pub rows: Vec<(Cube, Vec<OutputValue>)>,
}

/// Output-plane entry of a PLA row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputValue {
    /// The cube belongs to this output's on-set.
    On,
    /// The cube belongs to the off-set (only meaningful for `.type fr`).
    Off,
    /// The cube belongs to the don't-care set.
    DontCare,
}

impl Pla {
    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.output_names.len()
    }

    /// Materializes output `o` as an incompletely specified function.
    ///
    /// Minterms covered by an `On` row are on; covered by a `DontCare` row
    /// (and not an `On` row) are don't care; everything else is off.
    ///
    /// # Panics
    ///
    /// Panics if `o >= self.outputs()` or `inputs > TruthTable::MAX_VARS`.
    pub fn output_isf(&self, o: usize) -> Isf {
        assert!(o < self.outputs(), "output index out of range");
        let mut on = TruthTable::zero(self.inputs);
        let mut dc = TruthTable::zero(self.inputs);
        for (cube, outs) in &self.rows {
            match outs[o] {
                OutputValue::On => on = &on | &cube.to_truth_table(),
                OutputValue::DontCare => dc = &dc | &cube.to_truth_table(),
                OutputValue::Off => {}
            }
        }
        Isf::new(on, dc).expect("arities agree by construction")
    }

    /// Materializes every output as a completely specified truth table
    /// (don't cares resolved to 0).
    pub fn output_tables(&self) -> Vec<TruthTable> {
        (0..self.outputs())
            .map(|o| self.output_isf(o).on_set().clone())
            .collect()
    }

    /// Parses PLA text.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Parse`] on malformed input (bad directive
    /// arguments, wrong row widths, unknown plane characters, missing
    /// `.i`/`.o`).
    pub fn parse(text: &str) -> Result<Self, LogicError> {
        let mut inputs: Option<usize> = None;
        let mut outputs: Option<usize> = None;
        let mut input_names: Option<Vec<String>> = None;
        let mut output_names: Option<Vec<String>> = None;
        let mut rows: Vec<(Cube, Vec<OutputValue>)> = Vec::new();

        let err = |line: usize, message: String| LogicError::Parse { line, message };

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('.') {
                let mut parts = rest.split_whitespace();
                let dir = parts.next().unwrap_or("");
                match dir {
                    "i" => {
                        if !rows.is_empty() {
                            return Err(err(lineno, ".i after data rows".into()));
                        }
                        let n: usize = parts
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err(lineno, ".i needs a number".into()))?;
                        if n > TruthTable::MAX_VARS {
                            return Err(err(
                                lineno,
                                format!(
                                    ".i {n} exceeds the {}-variable truth-table limit",
                                    TruthTable::MAX_VARS
                                ),
                            ));
                        }
                        inputs = Some(n);
                    }
                    "o" => {
                        if !rows.is_empty() {
                            return Err(err(lineno, ".o after data rows".into()));
                        }
                        outputs = Some(
                            parts
                                .next()
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| err(lineno, ".o needs a number".into()))?,
                        )
                    }
                    "p" | "e" | "end" | "type" | "phase" | "pair" => { /* informative */ }
                    "ilb" => input_names = Some(parts.map(str::to_owned).collect()),
                    "ob" => output_names = Some(parts.map(str::to_owned).collect()),
                    other => {
                        return Err(err(lineno, format!("unknown directive .{other}")));
                    }
                }
                continue;
            }
            // Data row.
            let ni = inputs.ok_or_else(|| err(lineno, "data before .i".into()))?;
            let no = outputs.ok_or_else(|| err(lineno, "data before .o".into()))?;
            let fields: Vec<&str> = line.split_whitespace().collect();
            let (in_part, out_part) = match fields.len() {
                2 => (fields[0].to_string(), fields[1].to_string()),
                1 if fields[0].len() == ni + no => {
                    (fields[0][..ni].to_string(), fields[0][ni..].to_string())
                }
                _ => return Err(err(lineno, format!("malformed row {line:?}"))),
            };
            if in_part.len() != ni {
                return Err(err(
                    lineno,
                    format!("input plane has {} chars, expected {ni}", in_part.len()),
                ));
            }
            if out_part.len() != no {
                return Err(err(
                    lineno,
                    format!("output plane has {} chars, expected {no}", out_part.len()),
                ));
            }
            let lits: Option<Vec<Literal>> = in_part.chars().map(Literal::from_char).collect();
            let cube = Cube::from_literals(
                lits.ok_or_else(|| err(lineno, format!("bad input plane {in_part:?}")))?,
            );
            let outs: Result<Vec<OutputValue>, LogicError> = out_part
                .chars()
                .map(|c| match c {
                    '1' | '4' => Ok(OutputValue::On),
                    '0' | '~' => Ok(OutputValue::Off),
                    '-' | '2' | '3' => Ok(OutputValue::DontCare),
                    other => Err(err(lineno, format!("bad output char {other:?}"))),
                })
                .collect();
            rows.push((cube, outs?));
        }

        let inputs = inputs.ok_or_else(|| err(0, "missing .i".into()))?;
        let outputs = outputs.ok_or_else(|| err(0, "missing .o".into()))?;
        let input_names =
            input_names.unwrap_or_else(|| (0..inputs).map(|i| format!("x{i}")).collect());
        let output_names =
            output_names.unwrap_or_else(|| (0..outputs).map(|o| format!("f{o}")).collect());
        if input_names.len() != inputs {
            return Err(err(0, ".ilb count does not match .i".into()));
        }
        if output_names.len() != outputs {
            return Err(err(0, ".ob count does not match .o".into()));
        }
        Ok(Pla {
            inputs,
            input_names,
            output_names,
            rows,
        })
    }

    /// Serializes back to PLA text (type `fd`: only on/dc rows written).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        // sa:allow(SA012): fmt::Write into a String is infallible
        let _ = self.write_into(&mut s);
        s
    }

    fn write_into(&self, s: &mut String) -> std::fmt::Result {
        use std::fmt::Write as _;
        writeln!(s, ".i {}", self.inputs)?;
        writeln!(s, ".o {}", self.outputs())?;
        writeln!(s, ".ilb {}", self.input_names.join(" "))?;
        writeln!(s, ".ob {}", self.output_names.join(" "))?;
        writeln!(s, ".p {}", self.rows.len())?;
        for (cube, outs) in &self.rows {
            let outstr: String = outs
                .iter()
                .map(|o| match o {
                    OutputValue::On => '1',
                    OutputValue::Off => '0',
                    OutputValue::DontCare => '-',
                })
                .collect();
            writeln!(s, "{cube} {outstr}")?;
        }
        s.push_str(".e\n");
        Ok(())
    }

    /// Builds a single-output PLA from a truth table via ISOP.
    pub fn from_truth_table(name: &str, f: &TruthTable) -> Self {
        let sop = crate::cube::SopCover::isop(f);
        Pla {
            inputs: f.vars(),
            input_names: (0..f.vars()).map(|i| format!("x{i}")).collect(),
            output_names: vec![name.to_owned()],
            rows: sop
                .iter()
                .map(|c| (c.clone(), vec![OutputValue::On]))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const XOR_PLA: &str = "\
# two-input xor
.i 2
.o 1
.p 2
01 1
10 1
.e
";

    #[test]
    fn parse_xor() {
        let pla = Pla::parse(XOR_PLA).unwrap();
        assert_eq!(pla.inputs, 2);
        assert_eq!(pla.outputs(), 1);
        assert_eq!(pla.rows.len(), 2);
        let t = &pla.output_tables()[0];
        assert_eq!(*t, TruthTable::var(2, 0) ^ TruthTable::var(2, 1));
    }

    #[test]
    fn note_bit_order() {
        // PLA column j corresponds to variable j (string index = var index).
        let pla = Pla::parse(".i 2\n.o 1\n10 1\n.e\n").unwrap();
        let t = &pla.output_tables()[0];
        // Cube "10": var0=1, var1=0 -> minterm 0b01 = 1.
        assert!(t.eval(1));
        assert_eq!(t.count_ones(), 1);
    }

    #[test]
    fn multi_output_and_dont_cares() {
        let text = ".i 2\n.o 2\n11 1-\n00 -1\n";
        let pla = Pla::parse(text).unwrap();
        let f0 = pla.output_isf(0);
        assert_eq!(f0.value(3), Some(true));
        assert_eq!(f0.value(0), None); // dc row
        let f1 = pla.output_isf(1);
        assert_eq!(f1.value(0), Some(true));
        assert_eq!(f1.value(3), None);
    }

    #[test]
    fn labels_parsed() {
        let text = ".i 2\n.o 1\n.ilb a b\n.ob out\n11 1\n";
        let pla = Pla::parse(text).unwrap();
        assert_eq!(pla.input_names, vec!["a", "b"]);
        assert_eq!(pla.output_names, vec!["out"]);
    }

    #[test]
    fn concatenated_row_format() {
        // Some PLA writers omit the space between planes.
        let pla = Pla::parse(".i 3\n.o 1\n1-01\n").unwrap();
        assert_eq!(pla.rows.len(), 1);
        assert_eq!(pla.rows[0].0.to_string(), "1-0");
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = Pla::parse(".i 2\n.o 1\n0z 1\n").unwrap_err();
        match e {
            LogicError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(Pla::parse("11 1\n").is_err()); // data before .i
        assert!(Pla::parse(".i 2\n.o 1\n111 1\n").is_err()); // wrong width
        assert!(Pla::parse(".q 2\n").is_err()); // unknown directive
    }

    #[test]
    fn roundtrip_through_text() {
        let f = TruthTable::from_minterms(4, &[1, 2, 4, 8, 15]);
        let pla = Pla::from_truth_table("f", &f);
        let reparsed = Pla::parse(&pla.to_text()).unwrap();
        assert_eq!(reparsed.output_tables()[0], f);
    }
}
