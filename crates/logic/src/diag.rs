//! Structured diagnostics for the verification layer.
//!
//! Every invariant check in the workspace reports violations as
//! [`Diagnostic`] values carrying a stable [`Code`], a [`Severity`], a
//! human-readable message and a [`Location`]. The code space is
//! partitioned by subsystem:
//!
//! | range   | subsystem                          |
//! |---------|------------------------------------|
//! | `HY0xx` | LUT networks                       |
//! | `HY1xx` | compatible-class encodings         |
//! | `HY2xx` | hyper-functions                    |
//! | `HY3xx` | BDD manager                        |
//! | `HY4xx` | deep semantic proofs (SAT/BDD CEC) |
//! | `HY5xx` | budgeted execution / degradation   |
//! | `HY6xx` | observability / telemetry          |
//!
//! The model lives here, at the bottom of the crate stack, so that
//! `hyde-core` and `hyde-map` can emit diagnostics without depending on
//! the lint registry in `hyde-verify`.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never fails a run.
    Note,
    /// Suspicious but not necessarily wrong.
    Warn,
    /// An invariant violation; `hyde-lint` exits non-zero.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Stable diagnostic codes. Codes are append-only: once shipped, a code
/// keeps its meaning forever so downstream tooling can match on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// HY001: the network contains a combinational cycle.
    NetworkCycle,
    /// HY002: a LUT node has more than `k` fanins.
    NetworkFaninExceedsK,
    /// HY003: a node is dangling (no fanout) and unreachable from any
    /// primary output.
    NetworkDangling,
    /// HY004: a node's declared fanin does not affect its truth table
    /// (vacuous support), or the table depends on an undeclared input.
    NetworkVacuousSupport,
    /// HY005: the network's simulated behaviour differs from its
    /// specification truth tables.
    NetworkSpecMismatch,
    /// HY101: two distinct compatible classes share a code word
    /// (non-injective assignment).
    EncodingNonInjective,
    /// HY102: the code width differs from `⌈log₂ #classes⌉`.
    EncodingWidthMismatch,
    /// HY103: a don't-care assignment merged two incompatible columns.
    EncodingDcMergesIncompatible,
    /// HY104: recomposing `f = g(α(λ), μ)` does not reproduce the
    /// original function.
    EncodingRecomposition,
    /// HY201: a pseudo primary input remains alive outside the
    /// duplication cone after ingredient recovery.
    HyperPseudoLeak,
    /// HY202: the duplication cone / share boundary is violated
    /// (a shared node feeds a pseudo input's cone improperly).
    HyperConeViolation,
    /// HY203: recovering an ingredient from the hyper-function does not
    /// reproduce the ingredient.
    HyperRecoveryMismatch,
    /// HY301: a BDD node violates the variable ordering invariant
    /// `var(node) < var(lo), var(hi)`.
    BddOrdering,
    /// HY302: two live BDD nodes share a `(var, lo, hi)` triple
    /// (broken hash-consing).
    BddDuplicateTriple,
    /// HY401: a combinational equivalence proof found an input minterm
    /// on which a network and its specification disagree.
    DeepCecMismatch,
    /// HY402: a SAT proof found two bound-set points with equal codes
    /// (`α(x₁) = α(x₂)`) on which the function differs — the
    /// compatible-class encoding is not semantically injective.
    DeepEncodingNotInjective,
    /// HY403: collapsing the pseudo primary inputs of the duplication
    /// cone to an ingredient's code does not reproduce the implemented
    /// ingredient output (constant-collapse correctness).
    DeepCollapseMismatch,
    /// HY404: a SAT/BDD proof found a minterm where cofactoring the
    /// hyper-function at an ingredient's code differs from the
    /// ingredient (independent oracle for HY203).
    DeepRecoveryMismatch,
    /// HY405: an internal node is provably constant over all reachable
    /// inputs (stuck-at / dead logic).
    DeepStuckNode,
    /// HY406: a deep proof exhausted its conflict/time budget and is
    /// inconclusive.
    DeepProofBudget,
    /// HY501: an output stepped down from exact Roth–Karp decomposition
    /// to the BDD cut path after a budget exhaustion.
    DegradedBddPath,
    /// HY502: an output stepped down to a Shannon-cofactor split.
    DegradedShannon,
    /// HY503: an output stepped down to the direct-cover floor of the
    /// fallback ladder.
    DegradedDirectCover,
    /// HY504: a resource budget was exhausted and no lower rung could
    /// absorb it — the run produced no output for the affected circuit.
    BudgetExhausted,
    /// HY505: a degradation was caused by a chaos-injected fault rather
    /// than a genuine resource exhaustion (`HYDE_CHAOS` armed).
    ChaosInjected,
    /// HY601: the trace event buffer hit its cap and events were
    /// dropped — the exported timeline is truncated (aggregated
    /// counters and latency histograms keep recording past the cap).
    ObsDroppedEvents,
}

impl Code {
    /// All shipped codes, in numeric order.
    pub const ALL: [Code; 26] = [
        Code::NetworkCycle,
        Code::NetworkFaninExceedsK,
        Code::NetworkDangling,
        Code::NetworkVacuousSupport,
        Code::NetworkSpecMismatch,
        Code::EncodingNonInjective,
        Code::EncodingWidthMismatch,
        Code::EncodingDcMergesIncompatible,
        Code::EncodingRecomposition,
        Code::HyperPseudoLeak,
        Code::HyperConeViolation,
        Code::HyperRecoveryMismatch,
        Code::BddOrdering,
        Code::BddDuplicateTriple,
        Code::DeepCecMismatch,
        Code::DeepEncodingNotInjective,
        Code::DeepCollapseMismatch,
        Code::DeepRecoveryMismatch,
        Code::DeepStuckNode,
        Code::DeepProofBudget,
        Code::DegradedBddPath,
        Code::DegradedShannon,
        Code::DegradedDirectCover,
        Code::BudgetExhausted,
        Code::ChaosInjected,
        Code::ObsDroppedEvents,
    ];

    /// The stable `HYxxx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::NetworkCycle => "HY001",
            Code::NetworkFaninExceedsK => "HY002",
            Code::NetworkDangling => "HY003",
            Code::NetworkVacuousSupport => "HY004",
            Code::NetworkSpecMismatch => "HY005",
            Code::EncodingNonInjective => "HY101",
            Code::EncodingWidthMismatch => "HY102",
            Code::EncodingDcMergesIncompatible => "HY103",
            Code::EncodingRecomposition => "HY104",
            Code::HyperPseudoLeak => "HY201",
            Code::HyperConeViolation => "HY202",
            Code::HyperRecoveryMismatch => "HY203",
            Code::BddOrdering => "HY301",
            Code::BddDuplicateTriple => "HY302",
            Code::DeepCecMismatch => "HY401",
            Code::DeepEncodingNotInjective => "HY402",
            Code::DeepCollapseMismatch => "HY403",
            Code::DeepRecoveryMismatch => "HY404",
            Code::DeepStuckNode => "HY405",
            Code::DeepProofBudget => "HY406",
            Code::DegradedBddPath => "HY501",
            Code::DegradedShannon => "HY502",
            Code::DegradedDirectCover => "HY503",
            Code::BudgetExhausted => "HY504",
            Code::ChaosInjected => "HY505",
            Code::ObsDroppedEvents => "HY601",
        }
    }

    /// The severity a diagnostic with this code carries unless overridden.
    ///
    /// Hard invariant violations default to [`Severity::Deny`]; structural
    /// hygiene findings (dangling nodes, vacuous support, width padding,
    /// provably-constant nodes) default to [`Severity::Warn`] because
    /// flows may legitimately produce them transiently. Degradation
    /// reports (`HY501`–`HY503`) warn — the output is still verified
    /// correct, only its quality changed — and `HY505` is a note because
    /// a chaos-injected fault says nothing about the input. A truncated
    /// trace (`HY601`) warns: the run's results are unaffected, but the
    /// exported timeline is incomplete.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::NetworkDangling
            | Code::NetworkVacuousSupport
            | Code::EncodingWidthMismatch
            | Code::DeepStuckNode
            | Code::DegradedBddPath
            | Code::DegradedShannon
            | Code::DegradedDirectCover
            | Code::ObsDroppedEvents => Severity::Warn,
            Code::ChaosInjected => Severity::Note,
            _ => Severity::Deny,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in an artifact a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Location {
    /// No specific location.
    #[default]
    None,
    /// A network node, by index.
    Node(usize),
    /// A primary output, by index.
    Output(usize),
    /// A compatible class, by index.
    Class(usize),
    /// A BDD node, by index.
    BddNode(usize),
    /// An input variable, by index.
    Var(usize),
    /// A minterm of a truth table.
    Minterm(usize),
    /// A cycle through network nodes, in traversal order.
    Cycle(Vec<usize>),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::None => Ok(()),
            Location::Node(n) => write!(f, "node {n}"),
            Location::Output(o) => write!(f, "output {o}"),
            Location::Class(c) => write!(f, "class {c}"),
            Location::BddNode(n) => write!(f, "bdd node {n}"),
            Location::Var(v) => write!(f, "var {v}"),
            Location::Minterm(m) => write!(f, "minterm {m}"),
            Location::Cycle(nodes) => {
                write!(f, "cycle ")?;
                for (i, n) in nodes.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{n}")?;
                }
                Ok(())
            }
        }
    }
}

/// A single finding from a verification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code identifying the finding kind.
    pub code: Code,
    /// Effective severity (defaults to [`Code::default_severity`]).
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Where the finding points.
    pub location: Location,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity and no
    /// location.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            location: Location::None,
        }
    }

    /// Attaches a location.
    #[must_use]
    pub fn at(mut self, location: Location) -> Self {
        self.location = location;
        self
    }

    /// Overrides the severity.
    #[must_use]
    pub fn severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// True if this diagnostic should fail a run.
    pub fn is_deny(&self) -> bool {
        self.severity == Severity::Deny
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.code, self.severity, self.message)?;
        if self.location != Location::None {
            write!(f, " (at {})", self.location)?;
        }
        Ok(())
    }
}

/// True if any diagnostic in `diags` is deny-level.
pub fn any_deny(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_deny)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for code in Code::ALL {
            let s = code.as_str();
            assert!(s.starts_with("HY") && s.len() == 5, "bad code {s}");
            assert!(seen.insert(s), "duplicate code {s}");
        }
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic::new(Code::NetworkCycle, "cycle detected")
            .at(Location::Cycle(vec![1, 2, 3]));
        assert_eq!(
            d.to_string(),
            "HY001 [deny] cycle detected (at cycle 1 -> 2 -> 3)"
        );
        let d = Diagnostic::new(Code::NetworkDangling, "dangling").severity(Severity::Note);
        assert_eq!(d.to_string(), "HY003 [note] dangling");
        assert!(!any_deny(&[d]));
    }

    #[test]
    fn obs_dropped_events_warns_without_denying() {
        let d = Diagnostic::new(Code::ObsDroppedEvents, "1234 event(s) dropped");
        assert_eq!(d.severity, Severity::Warn);
        assert_eq!(d.to_string(), "HY601 [warn] 1234 event(s) dropped");
        assert!(!any_deny(&[d]));
    }
}
