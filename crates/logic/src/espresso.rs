//! Two-level cover optimization in the espresso style.
//!
//! The paper's flow feeds two-level benchmark circuits (PLA form) to the
//! mapper after SIS preprocessing. This module provides the classical
//! EXPAND → IRREDUNDANT → REDUCE iteration on cube covers against an
//! incompletely specified function: cubes grow into the don't-care space,
//! redundant cubes are dropped, and cubes shrink to escape local minima.
//! It is deliberately truth-table backed (exact containment checks) rather
//! than the original's unate recursion — the benchmark sizes here make
//! exactness affordable.

use crate::cube::{Cube, Literal, SopCover};
use crate::truthtable::{Isf, TruthTable};

/// Result of a cover optimization run.
#[derive(Debug, Clone)]
pub struct MinimizedCover {
    /// The optimized cover.
    pub cover: SopCover,
    /// Cube count before optimization.
    pub initial_cubes: usize,
    /// Number of EXPAND/IRREDUNDANT/REDUCE rounds executed.
    pub rounds: usize,
}

/// Minimizes a cover of the incompletely specified function `f`.
///
/// The result covers the entire on-set, stays inside `on ∪ dc`, and is
/// irredundant. Iterates EXPAND → IRREDUNDANT → REDUCE until the cube count
/// stops improving (at most `max_rounds` rounds).
///
/// # Panics
///
/// Panics if `max_rounds` is zero.
///
/// # Example
///
/// ```
/// use hyde_logic::espresso::minimize;
/// use hyde_logic::{Isf, TruthTable};
///
/// // f = a | b with the 00 row as don't care: one full cube suffices.
/// let on = TruthTable::from_fn(2, |m| m != 0);
/// let dc = TruthTable::from_fn(2, |m| m == 0);
/// let f = Isf::new(on, dc).unwrap();
/// let result = minimize(&f, 4);
/// assert_eq!(result.cover.cube_count(), 1);
/// ```
pub fn minimize(f: &Isf, max_rounds: usize) -> MinimizedCover {
    assert!(max_rounds > 0, "at least one round required");
    let upper = f.on_set() | f.dc_set();
    let mut cover = SopCover::isop_between(f.on_set(), &upper);
    let initial_cubes = cover.cube_count();
    let mut rounds = 0;
    let mut best = cover.cube_count();
    for _ in 0..max_rounds {
        rounds += 1;
        cover = expand(&cover, &upper);
        cover = irredundant(&cover, f.on_set());
        let now = cover.cube_count();
        if now >= best && rounds > 1 {
            break;
        }
        best = best.min(now);
        cover = reduce(&cover, f.on_set());
    }
    // Final clean-up: make sure we end expanded + irredundant.
    cover = expand(&cover, &upper);
    cover = irredundant(&cover, f.on_set());
    debug_assert!(covers(&cover, f.on_set()));
    debug_assert!(inside(&cover, &upper));
    MinimizedCover {
        cover,
        initial_cubes,
        rounds,
    }
}

/// EXPAND: enlarge each cube literal-by-literal while it stays inside
/// `upper`; larger cubes subsume more of the cover.
pub fn expand(cover: &SopCover, upper: &TruthTable) -> SopCover {
    let vars = upper.vars();
    let mut out: Vec<Cube> = Vec::with_capacity(cover.cube_count());
    for cube in cover.iter() {
        let mut c = cube.clone();
        for v in 0..vars {
            if matches!(c.literal(v), Literal::DontCare) {
                continue;
            }
            let widened = c.with(v, Literal::DontCare);
            if contained_in(&widened, upper) {
                c = widened;
            }
        }
        // Skip cubes already subsumed by an accepted one.
        if !out.iter().any(|prev| subsumes(prev, &c)) {
            out.retain(|prev| !subsumes(&c, prev));
            out.push(c);
        }
    }
    SopCover::from_cubes(out)
}

/// IRREDUNDANT: drop cubes whose on-set contribution is covered by the
/// rest. Processes cubes in descending literal count so specific cubes are
/// discarded before general ones.
pub fn irredundant(cover: &SopCover, on: &TruthTable) -> SopCover {
    let vars = on.vars();
    let mut cubes: Vec<Cube> = cover.iter().cloned().collect();
    cubes.sort_by_key(|c| std::cmp::Reverse(c.literal_count()));
    let mut keep: Vec<bool> = vec![true; cubes.len()];
    for i in 0..cubes.len() {
        keep[i] = false;
        let rest = union_of(&cubes, &keep, vars);
        // Removing cube i must not expose uncovered on-set minterms.
        let lost = &(on & &cubes[i].to_truth_table()) & &!&rest;
        if !lost.is_zero() {
            keep[i] = true;
        }
    }
    SopCover::from_cubes(
        cubes
            .into_iter()
            .zip(keep)
            .filter(|(_, k)| *k)
            .map(|(c, _)| c)
            .collect(),
    )
}

/// REDUCE: shrink each cube to the smallest cube still covering its unique
/// on-set minterms, giving the next EXPAND room to move.
pub fn reduce(cover: &SopCover, on: &TruthTable) -> SopCover {
    let vars = on.vars();
    let cubes: Vec<Cube> = cover.iter().cloned().collect();
    let mut out: Vec<Cube> = Vec::with_capacity(cubes.len());
    for (i, cube) in cubes.iter().enumerate() {
        // Minterms only this cube is responsible for, against the *current*
        // cover state: cubes before `i` are already reduced, later ones are
        // still original. Sequential processing keeps shared minterms
        // covered by at least one cube (REDUCE is order-dependent).
        let mut others = TruthTable::zero(vars);
        for c in out.iter().chain(cubes.iter().skip(i + 1)) {
            others = &others | &c.to_truth_table();
        }
        let unique = &(on & &cube.to_truth_table()) & &!&others;
        if unique.is_zero() {
            out.push(cube.clone());
            continue;
        }
        // Smallest cube containing `unique`: fix every variable that is
        // constant across the unique minterms.
        let mut c = cube.clone();
        for v in 0..vars {
            if !matches!(c.literal(v), Literal::DontCare) {
                continue;
            }
            let ones = &unique & &TruthTable::var(vars, v);
            let zeros = &unique & &!&TruthTable::var(vars, v);
            if ones.is_zero() {
                c = c.with(v, Literal::Negative);
            } else if zeros.is_zero() {
                c = c.with(v, Literal::Positive);
            }
        }
        out.push(c);
    }
    SopCover::from_cubes(out)
}

fn union_of(cubes: &[Cube], keep: &[bool], vars: usize) -> TruthTable {
    let mut t = TruthTable::zero(vars);
    for (c, &k) in cubes.iter().zip(keep) {
        if k {
            t = &t | &c.to_truth_table();
        }
    }
    t
}

fn contained_in(cube: &Cube, upper: &TruthTable) -> bool {
    (&cube.to_truth_table() & &!upper).is_zero()
}

fn subsumes(a: &Cube, b: &Cube) -> bool {
    // a subsumes b iff every minterm of b lies in a.
    (0..a.vars()).all(|v| match (a.literal(v), b.literal(v)) {
        (Literal::DontCare, _) => true,
        (x, y) => x == y,
    })
}

fn covers(cover: &SopCover, on: &TruthTable) -> bool {
    (on & &!&cover.to_truth_table(on.vars())).is_zero()
}

fn inside(cover: &SopCover, upper: &TruthTable) -> bool {
    (&cover.to_truth_table(upper.vars()) & &!upper).is_zero()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn check_valid(f: &Isf, cover: &SopCover) {
        let t = cover.to_truth_table(f.vars());
        assert!((f.on_set() & &!&t).is_zero(), "on-set not covered");
        let upper = f.on_set() | f.dc_set();
        assert!((&t & &!&upper).is_zero(), "cover exceeds on+dc");
    }

    #[test]
    fn exploits_dont_cares() {
        // on = {11}, dc = rest: single universal cube.
        let on = TruthTable::from_minterms(2, &[3]);
        let dc = !&on;
        let f = Isf::new(on, dc).unwrap();
        let r = minimize(&f, 4);
        assert_eq!(r.cover.cube_count(), 1);
        assert_eq!(r.cover.cubes()[0].literal_count(), 0);
        check_valid(&f, &r.cover);
    }

    #[test]
    fn completely_specified_functions_stay_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let on = TruthTable::random(5, &mut rng);
            let f = Isf::completely_specified(on.clone());
            let r = minimize(&f, 4);
            assert_eq!(r.cover.to_truth_table(5), on);
        }
    }

    #[test]
    fn never_worse_than_isop() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let on = TruthTable::random(6, &mut rng);
            let dc = &TruthTable::random(6, &mut rng) & &!&on;
            let f = Isf::new(on, dc).unwrap();
            let isop = SopCover::isop_between(f.on_set(), &(f.on_set() | f.dc_set()));
            let r = minimize(&f, 5);
            assert!(
                r.cover.cube_count() <= isop.cube_count(),
                "minimize {} > isop {}",
                r.cover.cube_count(),
                isop.cube_count()
            );
            check_valid(&f, &r.cover);
        }
    }

    #[test]
    fn irredundant_result() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let on = TruthTable::random(5, &mut rng);
        let f = Isf::completely_specified(on.clone());
        let r = minimize(&f, 4);
        for skip in 0..r.cover.cube_count() {
            let rest: SopCover = r
                .cover
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, c)| c.clone())
                .collect();
            assert!(
                !(on.clone() & !rest.to_truth_table(5)).is_zero(),
                "cube {skip} redundant"
            );
        }
    }

    #[test]
    fn expand_grows_into_dc_space() {
        // Cover "11" with dc everywhere else expands to the full cube.
        let upper = TruthTable::one(2);
        let cover = SopCover::from_cubes(vec!["11".parse().unwrap()]);
        let e = expand(&cover, &upper);
        assert_eq!(e.cube_count(), 1);
        assert_eq!(e.cubes()[0].literal_count(), 0);
    }

    #[test]
    fn expand_subsumption() {
        // Two cubes where one expansion subsumes the other.
        let upper = TruthTable::from_fn(3, |m| m & 1 == 1); // x0
        let cover = SopCover::from_cubes(vec!["110".parse().unwrap(), "101".parse().unwrap()]);
        let e = expand(&cover, &upper);
        assert_eq!(e.cube_count(), 1);
        assert_eq!(e.cubes()[0].to_string(), "1--");
    }

    #[test]
    fn reduce_shrinks_overlap() {
        // Overlapping cubes: reduce shrinks them to unique responsibilities.
        let on = TruthTable::from_fn(2, |m| m != 0); // a | b
        let cover = SopCover::from_cubes(vec!["1-".parse().unwrap(), "-1".parse().unwrap()]);
        let r = reduce(&cover, &on);
        // Each reduced cube must still exist and the union covers on.
        assert_eq!(r.cube_count(), 2);
        let mut t = TruthTable::zero(2);
        for c in r.iter() {
            t = &t | &c.to_truth_table();
        }
        assert!((on & !t).is_zero());
    }

    #[test]
    fn rounds_reported() {
        let f = Isf::completely_specified(TruthTable::from_minterms(3, &[1, 3, 5, 7]));
        let r = minimize(&f, 6);
        assert!(r.rounds >= 1 && r.rounds <= 6);
        assert!(r.initial_cubes >= r.cover.cube_count());
    }
}
