//! BLIF (Berkeley Logic Interchange Format) reader and writer.
//!
//! Supports the combinational subset used by the MCNC multi-level
//! benchmarks: `.model`, `.inputs`, `.outputs`, `.names` (with `1` or `0`
//! cover polarity), and `.end`. Line continuations with `\` are handled.
//! Latches and subcircuits are rejected with a parse error.

use crate::cube::{Cube, Literal};
use crate::network::{Network, NodeId};
use crate::truthtable::TruthTable;
use crate::LogicError;
use std::collections::HashMap;

/// Parses BLIF text into a [`Network`].
///
/// Signals referenced before their `.names` definition are supported (two
/// passes). A `.names` body with no cubes denotes constant 0; the single
/// row `1` (no inputs) denotes constant 1.
///
/// # Errors
///
/// Returns [`LogicError::Parse`] on malformed text and
/// [`LogicError::Network`] if the described network is cyclic.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "\
/// .model xor2
/// .inputs a b
/// .outputs y
/// .names a b y
/// 01 1
/// 10 1
/// .end
/// ";
/// let net = hyde_logic::blif::parse(text)?;
/// assert_eq!(net.eval(&[true, false]), vec![true]);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Network, LogicError> {
    // Join continuation lines, remember original line numbers.
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let no_comment = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let (cont, body) = match no_comment.trim_end().strip_suffix('\\') {
            Some(b) => (true, b.to_string()),
            None => (false, no_comment.to_string()),
        };
        match pending.take() {
            Some((l, mut acc)) => {
                acc.push(' ');
                acc.push_str(&body);
                if cont {
                    pending = Some((l, acc));
                } else {
                    lines.push((l, acc));
                }
            }
            None => {
                if cont {
                    pending = Some((idx + 1, body));
                } else {
                    lines.push((idx + 1, body));
                }
            }
        }
    }
    if let Some((l, acc)) = pending {
        lines.push((l, acc));
    }

    let err = |line: usize, message: String| LogicError::Parse { line, message };

    let mut model: Option<String> = None;
    let mut input_names: Vec<String> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    // (line, fanin names, output name, rows)
    struct NamesBlock {
        line: usize,
        fanins: Vec<String>,
        output: String,
        rows: Vec<(Cube, bool)>,
    }
    let mut blocks: Vec<NamesBlock> = Vec::new();

    let mut i = 0;
    while i < lines.len() {
        let (lineno, line) = (&lines[i].0, lines[i].1.trim().to_string());
        i += 1;
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let head = parts.next().unwrap();
        if model.is_none() && head != ".model" {
            return Err(err(*lineno, format!("{head} before .model")));
        }
        match head {
            ".model" => {
                let name = parts
                    .next()
                    .ok_or_else(|| err(*lineno, ".model needs a name".into()))?;
                if model.replace(name.to_string()).is_some() {
                    return Err(err(*lineno, "duplicate .model".into()));
                }
            }
            ".inputs" => input_names.extend(parts.map(str::to_owned)),
            ".outputs" => output_names.extend(parts.map(str::to_owned)),
            ".end" => break,
            ".names" => {
                let mut sigs: Vec<String> = parts.map(str::to_owned).collect();
                let output = sigs
                    .pop()
                    .ok_or_else(|| err(*lineno, ".names needs at least an output".into()))?;
                if sigs.len() > TruthTable::MAX_VARS {
                    return Err(err(
                        *lineno,
                        format!(
                            ".names {output:?} has {} fanins, more than the {}-variable \
                             truth-table limit",
                            sigs.len(),
                            TruthTable::MAX_VARS
                        ),
                    ));
                }
                let mut rows = Vec::new();
                while i < lines.len() {
                    let body = lines[i].1.trim().to_string();
                    if body.is_empty() {
                        i += 1;
                        continue;
                    }
                    if body.starts_with('.') {
                        break;
                    }
                    let bl = lines[i].0;
                    i += 1;
                    let fields: Vec<&str> = body.split_whitespace().collect();
                    let (in_part, out_char) = match fields.len() {
                        2 => (fields[0].to_string(), fields[1].to_string()),
                        1 if sigs.is_empty() => (String::new(), fields[0].to_string()),
                        _ => return Err(err(bl, format!("malformed cover row {body:?}"))),
                    };
                    if in_part.len() != sigs.len() {
                        return Err(err(
                            bl,
                            format!(
                                "cover row has {} literals, expected {}",
                                in_part.len(),
                                sigs.len()
                            ),
                        ));
                    }
                    let lits: Option<Vec<Literal>> =
                        in_part.chars().map(Literal::from_char).collect();
                    let cube = Cube::from_literals(
                        lits.ok_or_else(|| err(bl, format!("bad cover row {in_part:?}")))?,
                    );
                    let polarity = match out_char.as_str() {
                        "1" => true,
                        "0" => false,
                        other => return Err(err(bl, format!("bad cover output {other:?}"))),
                    };
                    rows.push((cube, polarity));
                }
                if let Some(first) = rows.first().map(|(_, p)| *p) {
                    if rows.iter().any(|(_, p)| *p != first) {
                        return Err(err(
                            *lineno,
                            format!(".names {output:?} mixes on-set and off-set rows"),
                        ));
                    }
                }
                blocks.push(NamesBlock {
                    line: *lineno,
                    fanins: sigs,
                    output,
                    rows,
                });
            }
            ".latch" | ".subckt" | ".gate" => {
                return Err(err(*lineno, format!("unsupported construct {head}")));
            }
            other => return Err(err(*lineno, format!("unknown directive {other}"))),
        }
    }

    let model = model.ok_or_else(|| err(0, "missing .model".into()))?;

    // Build the network: inputs first, then .names blocks in dependency
    // order (iterate until all resolve).
    let mut net = Network::new(&model);
    let mut by_name: HashMap<String, NodeId> = HashMap::new();
    for name in &input_names {
        if by_name.contains_key(name) {
            return Err(err(0, format!("duplicate input {name:?}")));
        }
        let id = net.add_input(name);
        by_name.insert(name.clone(), id);
    }
    let mut defined: HashMap<&str, usize> = HashMap::new();
    for b in &blocks {
        if input_names.iter().any(|n| n == &b.output) {
            return Err(err(
                b.line,
                format!(".names redefines primary input {:?}", b.output),
            ));
        }
        if defined.insert(&b.output, b.line).is_some() {
            return Err(err(
                b.line,
                format!("duplicate definition of {:?}", b.output),
            ));
        }
    }
    let mut remaining: Vec<&NamesBlock> = blocks.iter().collect();
    let mut build_err: Option<LogicError> = None;
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|b| {
            if build_err.is_some() {
                return true;
            }
            let resolved: Option<Vec<NodeId>> =
                b.fanins.iter().map(|n| by_name.get(n).copied()).collect();
            match resolved {
                None => true, // keep for a later pass
                Some(fanins) => {
                    let nv = fanins.len();
                    // Rows agree in polarity (checked during parsing);
                    // an empty body denotes constant 0.
                    let polarity = b.rows.first().is_none_or(|(_, p)| *p);
                    let mut t = TruthTable::zero(nv);
                    for (cube, _) in &b.rows {
                        t = &t | &cube.to_truth_table();
                    }
                    if !polarity {
                        t = !&t;
                    }
                    match net.add_node(&b.output, fanins, t) {
                        Ok(id) => {
                            by_name.insert(b.output.clone(), id);
                            false
                        }
                        Err(e) => {
                            build_err = Some(err(
                                b.line,
                                format!("cannot build node {:?}: {e}", b.output),
                            ));
                            true
                        }
                    }
                }
            }
        });
        if let Some(e) = build_err {
            return Err(e);
        }
        if remaining.len() == before {
            let b = remaining[0];
            return Err(LogicError::Parse {
                line: b.line,
                message: format!(
                    "unresolved signal among fanins of {:?} (cycle or undeclared)",
                    b.output
                ),
            });
        }
    }
    for name in &output_names {
        let id = *by_name.get(name).ok_or_else(|| LogicError::Parse {
            line: 0,
            message: format!("output {name:?} is never defined"),
        })?;
        net.mark_output(name, id);
    }
    Ok(net)
}

/// Serializes a network to BLIF text.
///
/// Node functions are written as ISOP covers; primary inputs keep their
/// names, internal nodes are written under generated unique names when
/// duplicates exist.
pub fn write(net: &Network) -> String {
    let mut s = String::new();
    // sa:allow(SA012): fmt::Write into a String is infallible
    let _ = write_into(&mut s, net);
    s
}

fn write_into(s: &mut String, net: &Network) -> std::fmt::Result {
    use std::fmt::Write as _;
    writeln!(s, ".model {}", net.name())?;
    let in_names: Vec<String> = net
        .inputs()
        .iter()
        .map(|&id| net.node_name(id).to_owned())
        .collect();
    writeln!(s, ".inputs {}", in_names.join(" "))?;
    let out_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    writeln!(s, ".outputs {}", out_names.join(" "))?;

    // Unique signal names per node id.
    let mut sig: HashMap<NodeId, String> = HashMap::new();
    let mut used: HashMap<String, usize> = HashMap::new();
    for id in net.node_ids() {
        let base = net.node_name(id).to_owned();
        let count = used.entry(base.clone()).or_insert(0);
        let name = if *count == 0 {
            base.clone()
        } else {
            format!("{base}__{count}")
        };
        *count += 1;
        sig.insert(id, name);
    }

    let order = net.topo_order().expect("network must be acyclic");
    for id in order {
        if matches!(net.role(id), crate::network::NodeRole::PrimaryInput) {
            continue;
        }
        let fanin_names: Vec<String> = net.fanins(id).iter().map(|f| sig[f].clone()).collect();
        writeln!(s, ".names {} {}", fanin_names.join(" "), sig[&id])?;
        let sop = crate::cube::SopCover::isop(net.function(id));
        if net.fanins(id).is_empty() {
            if net.function(id).is_one() {
                writeln!(s, "1")?;
            }
            continue;
        }
        for cube in sop.iter() {
            writeln!(s, "{cube} 1")?;
        }
    }
    // Outputs driven by differently-named nodes need buffers.
    for (name, id) in net.outputs() {
        if &sig[id] != name {
            writeln!(s, ".names {} {name}", sig[id])?;
            writeln!(s, "1 1")?;
        }
    }
    s.push_str(".end\n");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_model() {
        let text = "\
.model test
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
";
        let net = parse(text).unwrap();
        assert_eq!(net.inputs().len(), 3);
        for m in 0u32..8 {
            let bits = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
            let expect = (bits[0] && bits[1]) || bits[2];
            assert_eq!(net.eval(&bits), vec![expect], "m={m}");
        }
    }

    #[test]
    fn out_of_order_names_blocks() {
        let text = "\
.model ooo
.inputs a
.outputs y
.names t y
0 1
.names a t
0 1
.end
";
        let net = parse(text).unwrap();
        // y = !t, t = !a -> y = a.
        assert_eq!(net.eval(&[true]), vec![true]);
        assert_eq!(net.eval(&[false]), vec![false]);
    }

    #[test]
    fn constants() {
        let text = "\
.model c
.inputs a
.outputs one zero
.names one
1
.names zero
.end
";
        let net = parse(text).unwrap();
        assert_eq!(net.eval(&[false]), vec![true, false]);
    }

    #[test]
    fn off_set_polarity() {
        let text = "\
.model offset
.inputs a b
.outputs y
.names a b y
11 0
.end
";
        let net = parse(text).unwrap();
        // y = !(a&b)
        assert_eq!(net.eval(&[true, true]), vec![false]);
        assert_eq!(net.eval(&[true, false]), vec![true]);
    }

    #[test]
    fn continuation_lines() {
        let text = ".model k\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let net = parse(text).unwrap();
        assert_eq!(net.inputs().len(), 2);
    }

    #[test]
    fn rejects_latches_and_unknowns() {
        assert!(parse(".model x\n.latch a b\n.end\n").is_err());
        assert!(parse(".model x\n.bogus\n.end\n").is_err());
    }

    #[test]
    fn undefined_output_is_error() {
        let e = parse(".model x\n.inputs a\n.outputs nope\n.end\n");
        assert!(e.is_err());
    }

    #[test]
    fn roundtrip_write_parse() {
        let text = "\
.model rt
.inputs a b c
.outputs s co
.names a b c s
001 1
010 1
100 1
111 1
.names a b c co
11- 1
1-1 1
-11 1
.end
";
        let net = parse(text).unwrap();
        let net2 = parse(&write(&net)).unwrap();
        for m in 0u32..8 {
            let bits = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
            assert_eq!(net.eval(&bits), net2.eval(&bits), "m={m}");
        }
    }
}
