//! Bit-packed complete truth tables and incompletely specified functions.
//!
//! A [`TruthTable`] over `n` variables stores one bit per minterm in
//! little-endian order: bit `m` of the table is `f(x)` where variable `i`
//! contributes bit `i` of the minterm index `m`. Variable 0 is therefore the
//! "fastest toggling" input. All decomposition-chart machinery in
//! `hyde-core` is built on cofactor extraction over these tables.

use crate::LogicError;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

const WORD_BITS: usize = 64;

/// A completely specified Boolean function of `n` variables, `n <= 30`.
///
/// # Example
///
/// ```
/// use hyde_logic::TruthTable;
///
/// let xor = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
/// assert!(xor.eval(0b01));
/// assert!(!xor.eval(0b11));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    vars: usize,
    words: Vec<u64>,
}

fn words_for(vars: usize) -> usize {
    if vars >= 6 {
        1 << (vars - 6)
    } else {
        1
    }
}

/// Mask of the valid bits in the (single) word of a small table.
fn small_mask(vars: usize) -> u64 {
    debug_assert!(vars < 6);
    (1u64 << (1 << vars)) - 1
}

impl TruthTable {
    /// Maximum supported variable count.
    pub const MAX_VARS: usize = 30;

    /// The constant-zero function of `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `vars > Self::MAX_VARS`.
    pub fn zero(vars: usize) -> Self {
        assert!(vars <= Self::MAX_VARS, "too many variables: {vars}");
        TruthTable {
            vars,
            words: vec![0; words_for(vars)],
        }
    }

    /// The constant-one function of `vars` variables.
    pub fn one(vars: usize) -> Self {
        let mut t = Self::zero(vars);
        let fill = if vars < 6 { small_mask(vars) } else { !0u64 };
        for w in &mut t.words {
            *w = fill;
        }
        t
    }

    /// The projection function returning variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= vars` or `vars > Self::MAX_VARS`.
    pub fn var(vars: usize, var: usize) -> Self {
        assert!(var < vars, "variable {var} out of range for {vars} vars");
        let mut t = Self::zero(vars);
        if var < 6 {
            // Pattern repeats within each word.
            let mut pat = 0u64;
            for m in 0..WORD_BITS.min(1 << vars) {
                if m >> var & 1 == 1 {
                    pat |= 1 << m;
                }
            }
            for w in &mut t.words {
                *w = pat;
            }
            if vars < 6 {
                t.words[0] &= small_mask(vars);
            }
        } else {
            let stride = 1usize << (var - 6);
            for (i, w) in t.words.iter_mut().enumerate() {
                if i / stride % 2 == 1 {
                    *w = !0;
                }
            }
        }
        t
    }

    /// Builds a table by evaluating `f` on every minterm.
    ///
    /// # Panics
    ///
    /// Panics if `vars > Self::MAX_VARS`.
    pub fn from_fn<F: FnMut(u32) -> bool>(vars: usize, mut f: F) -> Self {
        let mut t = Self::zero(vars);
        for m in 0u32..(1u32 << vars) {
            if f(m) {
                t.set(m, true);
            }
        }
        t
    }

    /// Builds a table from explicit minterm indices that evaluate to 1.
    ///
    /// # Panics
    ///
    /// Panics if any minterm is out of range.
    pub fn from_minterms(vars: usize, minterms: &[u32]) -> Self {
        let mut t = Self::zero(vars);
        for &m in minterms {
            assert!((m as usize) < (1usize << vars), "minterm out of range");
            t.set(m, true);
        }
        t
    }

    /// Builds a table directly from its packed word representation (the
    /// layout returned by [`TruthTable::as_words`]): bit `m & 63` of word
    /// `m >> 6` is minterm `m`. Bits beyond `2^vars` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` does not match `vars` or
    /// `vars > Self::MAX_VARS`.
    pub fn from_words(vars: usize, words: Vec<u64>) -> Self {
        assert!(vars <= Self::MAX_VARS, "too many variables: {vars}");
        assert_eq!(
            words.len(),
            words_for(vars),
            "word count does not match {vars} variables"
        );
        let mut t = TruthTable { vars, words };
        if vars < 6 {
            t.words[0] &= small_mask(vars);
        }
        t
    }

    /// Uniformly random function, for workloads and property tests.
    pub fn random<R: rand::Rng>(vars: usize, rng: &mut R) -> Self {
        let mut t = Self::zero(vars);
        for w in &mut t.words {
            *w = rng.gen();
        }
        if vars < 6 {
            t.words[0] &= small_mask(vars);
        }
        t
    }

    /// Number of input variables.
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Number of minterms (`2^vars`).
    pub fn num_minterms(&self) -> usize {
        1 << self.vars
    }

    /// Evaluates the function on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^vars`.
    pub fn eval(&self, m: u32) -> bool {
        let m = m as usize;
        assert!(m < self.num_minterms(), "minterm out of range");
        self.words[m / WORD_BITS] >> (m % WORD_BITS) & 1 == 1
    }

    /// Sets the value of minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^vars`.
    pub fn set(&mut self, m: u32, value: bool) {
        let m = m as usize;
        assert!(m < self.num_minterms(), "minterm out of range");
        let (w, b) = (m / WORD_BITS, m % WORD_BITS);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Number of satisfying minterms.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Whether the function is constant zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the function is constant one.
    pub fn is_one(&self) -> bool {
        *self == Self::one(self.vars)
    }

    /// Whether the function is a constant.
    pub fn is_const(&self) -> Option<bool> {
        if self.is_zero() {
            Some(false)
        } else if self.is_one() {
            Some(true)
        } else {
            None
        }
    }

    /// Positive cofactor with respect to `var` (result keeps the arity; the
    /// cofactored variable becomes vacuous).
    ///
    /// # Panics
    ///
    /// Panics if `var >= vars`.
    pub fn cofactor(&self, var: usize, value: bool) -> Self {
        assert!(var < self.vars, "variable out of range");
        let mut out = self.clone();
        if var < 6 {
            let shift = 1usize << var;
            // Select the half of each var-block and duplicate it.
            let block = block_mask(var);
            for w in &mut out.words {
                let half = if value {
                    (*w >> shift) & block
                } else {
                    *w & block
                };
                *w = half | (half << shift);
            }
        } else {
            let stride = 1usize << (var - 6);
            let n = out.words.len();
            let mut i = 0;
            while i < n {
                for j in 0..stride {
                    let src = if value { i + stride + j } else { i + j };
                    let v = out.words[src];
                    out.words[i + j] = v;
                    out.words[i + stride + j] = v;
                }
                i += 2 * stride;
            }
        }
        out
    }

    /// Whether `var` actually influences the function.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// The set of variables the function depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.vars).filter(|&v| self.depends_on(v)).collect()
    }

    /// Returns the same function re-expressed over a (possibly larger)
    /// variable space, mapping old variable `i` to `map[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::VarOutOfRange`] if some `map[i] >= new_vars`,
    /// and [`LogicError::ArityMismatch`] if `map.len() != self.vars()`.
    pub fn permute(&self, new_vars: usize, map: &[usize]) -> Result<Self, LogicError> {
        if map.len() != self.vars {
            return Err(LogicError::ArityMismatch {
                left: map.len(),
                right: self.vars,
            });
        }
        for &t in map {
            if t >= new_vars {
                return Err(LogicError::VarOutOfRange {
                    var: t,
                    arity: new_vars,
                });
            }
        }
        let mut out = Self::zero(new_vars);
        for m in 0u32..(1u32 << new_vars) {
            let mut old = 0u32;
            for (i, &t) in map.iter().enumerate() {
                if m >> t & 1 == 1 {
                    old |= 1 << i;
                }
            }
            if self.eval(old) {
                out.set(m, true);
            }
        }
        Ok(out)
    }

    /// Existential quantification over `var`: `f[var=0] | f[var=1]`.
    pub fn exists(&self, var: usize) -> Self {
        &self.cofactor(var, false) | &self.cofactor(var, true)
    }

    /// Universal quantification over `var`: `f[var=0] & f[var=1]`.
    pub fn forall(&self, var: usize) -> Self {
        &self.cofactor(var, false) & &self.cofactor(var, true)
    }

    /// Composes `sub` into `var`: result is `f` with `var` replaced by the
    /// function `sub` (same arity as `f`).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ArityMismatch`] on arity disagreement and
    /// [`LogicError::VarOutOfRange`] if `var >= vars`.
    pub fn compose(&self, var: usize, sub: &TruthTable) -> Result<Self, LogicError> {
        if sub.vars != self.vars {
            return Err(LogicError::ArityMismatch {
                left: self.vars,
                right: sub.vars,
            });
        }
        if var >= self.vars {
            return Err(LogicError::VarOutOfRange {
                var,
                arity: self.vars,
            });
        }
        let f1 = self.cofactor(var, true);
        let f0 = self.cofactor(var, false);
        Ok(&(sub & &f1) | &(&!sub & &f0))
    }

    /// Raw little-endian words of the table (read-only view).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Evaluates the function on a minterm given per-variable values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != vars`.
    pub fn eval_bits(&self, values: &[bool]) -> bool {
        assert_eq!(values.len(), self.vars, "wrong number of input values");
        let mut m = 0u32;
        for (i, &b) in values.iter().enumerate() {
            if b {
                m |= 1 << i;
            }
        }
        self.eval(m)
    }

    fn assert_same_arity(&self, other: &Self) {
        assert_eq!(
            self.vars, other.vars,
            "truth table arity mismatch: {} vs {}",
            self.vars, other.vars
        );
    }
}

/// Mask selecting, within a 64-bit word, the minterms whose bit `var` is 0
/// (for `var < 6`).
fn block_mask(var: usize) -> u64 {
    match var {
        0 => 0x5555_5555_5555_5555,
        1 => 0x3333_3333_3333_3333,
        2 => 0x0F0F_0F0F_0F0F_0F0F,
        3 => 0x00FF_00FF_00FF_00FF,
        4 => 0x0000_FFFF_0000_FFFF,
        5 => 0x0000_0000_FFFF_FFFF,
        _ => unreachable!("block_mask only defined for var < 6"),
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars; ", self.vars)?;
        if self.vars <= 6 {
            let bits = 1usize << self.vars;
            for m in (0..bits).rev() {
                write!(f, "{}", u8::from(self.eval(m as u32)))?;
            }
        } else {
            write!(f, "{} ones of {}", self.count_ones(), self.num_minterms())?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hex string, most significant word first, like ABC's truth tables.
        for w in self.words.iter().rev() {
            write!(f, "{w:016x}")?;
        }
        Ok(())
    }
}

macro_rules! impl_bitop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: &TruthTable) -> TruthTable {
                self.assert_same_arity(rhs);
                TruthTable {
                    vars: self.vars,
                    words: self
                        .words
                        .iter()
                        .zip(&rhs.words)
                        .map(|(a, b)| a $op b)
                        .collect(),
                }
            }
        }
        impl $trait for TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: TruthTable) -> TruthTable {
                (&self).$method(&rhs)
            }
        }
    };
}

impl_bitop!(BitAnd, bitand, &);
impl_bitop!(BitOr, bitor, |);
impl_bitop!(BitXor, bitxor, ^);

impl Not for &TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        let mut out = TruthTable {
            vars: self.vars,
            words: self.words.iter().map(|w| !w).collect(),
        };
        if self.vars < 6 {
            out.words[0] &= small_mask(self.vars);
        }
        out
    }
}

impl Not for TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        !&self
    }
}

/// An incompletely specified function: on-set plus don't-care set.
///
/// The care off-set is everything outside `on | dc`. Used by the don't-care
/// assignment machinery of Section 3.1.
///
/// # Example
///
/// ```
/// use hyde_logic::{Isf, TruthTable};
///
/// let on = TruthTable::from_minterms(2, &[3]);
/// let dc = TruthTable::from_minterms(2, &[0]);
/// let f = Isf::new(on, dc).unwrap();
/// assert!(f.is_dc(0));
/// assert!(!f.is_dc(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Isf {
    on: TruthTable,
    dc: TruthTable,
}

impl Isf {
    /// Creates an ISF from an on-set and a don't-care set.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ArityMismatch`] if the arities disagree. The
    /// on-set is normalized to exclude don't-care minterms.
    pub fn new(on: TruthTable, dc: TruthTable) -> Result<Self, LogicError> {
        if on.vars() != dc.vars() {
            return Err(LogicError::ArityMismatch {
                left: on.vars(),
                right: dc.vars(),
            });
        }
        let on = &on & &!&dc;
        Ok(Isf { on, dc })
    }

    /// A completely specified function viewed as an ISF.
    pub fn completely_specified(on: TruthTable) -> Self {
        let dc = TruthTable::zero(on.vars());
        Isf { on, dc }
    }

    /// Number of input variables.
    pub fn vars(&self) -> usize {
        self.on.vars()
    }

    /// On-set (guaranteed disjoint from the dc-set).
    pub fn on_set(&self) -> &TruthTable {
        &self.on
    }

    /// Don't-care set.
    pub fn dc_set(&self) -> &TruthTable {
        &self.dc
    }

    /// Off-set (`!(on | dc)`).
    pub fn off_set(&self) -> TruthTable {
        !&(&self.on | &self.dc)
    }

    /// Whether minterm `m` is a don't care.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn is_dc(&self, m: u32) -> bool {
        self.dc.eval(m)
    }

    /// Value on minterm `m`: `None` when don't-care.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn value(&self, m: u32) -> Option<bool> {
        if self.dc.eval(m) {
            None
        } else {
            Some(self.on.eval(m))
        }
    }

    /// Whether `other` is a valid completion: agrees with every care value.
    pub fn admits(&self, other: &TruthTable) -> bool {
        if other.vars() != self.vars() {
            return false;
        }
        let care = !&self.dc;
        (&(other ^ &self.on) & &care).is_zero()
    }

    /// Whether the ISF has any don't-care minterm.
    pub fn has_dc(&self) -> bool {
        !self.dc.is_zero()
    }

    /// Cofactor on `var` (both sets cofactored).
    ///
    /// # Panics
    ///
    /// Panics if `var >= vars`.
    pub fn cofactor(&self, var: usize, value: bool) -> Self {
        Isf {
            on: self.on.cofactor(var, value),
            dc: self.dc.cofactor(var, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constants() {
        for v in 0..8 {
            assert!(TruthTable::zero(v).is_zero());
            assert!(TruthTable::one(v).is_one());
            assert_eq!(TruthTable::one(v).count_ones(), 1 << v);
            assert_eq!(TruthTable::zero(v).is_const(), Some(false));
            assert_eq!(TruthTable::one(v).is_const(), Some(true));
        }
    }

    #[test]
    fn var_projection_all_positions() {
        for vars in 1..10 {
            for v in 0..vars {
                let t = TruthTable::var(vars, v);
                for m in 0u32..(1 << vars) {
                    assert_eq!(t.eval(m), m >> v & 1 == 1, "vars={vars} v={v} m={m}");
                }
            }
        }
    }

    #[test]
    fn bit_ops_match_semantics() {
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 3);
        let and = &a & &b;
        let or = &a | &b;
        let xor = &a ^ &b;
        for m in 0u32..16 {
            let (av, bv) = (m & 1 == 1, m >> 3 & 1 == 1);
            assert_eq!(and.eval(m), av && bv);
            assert_eq!(or.eval(m), av || bv);
            assert_eq!(xor.eval(m), av != bv);
        }
    }

    #[test]
    fn not_respects_small_mask() {
        let t = TruthTable::zero(3);
        let n = !&t;
        assert!(n.is_one());
        assert_eq!(n.as_words()[0], 0xFF);
    }

    #[test]
    fn cofactor_small_and_large_vars() {
        for vars in [3usize, 6, 7, 8] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            let t = TruthTable::random(vars, &mut rng);
            for v in 0..vars {
                for val in [false, true] {
                    let c = t.cofactor(v, val);
                    for m in 0u32..(1 << vars) {
                        let forced = if val { m | (1 << v) } else { m & !(1 << v) };
                        assert_eq!(
                            c.eval(m),
                            t.eval(forced),
                            "vars={vars} v={v} val={val} m={m}"
                        );
                    }
                    assert!(!c.depends_on(v));
                }
            }
        }
    }

    #[test]
    fn support_detects_vacuous_vars() {
        // f = x0 & x2 over 4 vars.
        let f = &TruthTable::var(4, 0) & &TruthTable::var(4, 2);
        assert_eq!(f.support(), vec![0, 2]);
        assert!(f.depends_on(0));
        assert!(!f.depends_on(1));
    }

    #[test]
    fn permute_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let f = TruthTable::random(4, &mut rng);
        let g = f.permute(4, &[2, 0, 3, 1]).unwrap();
        // invert the permutation
        let h = g.permute(4, &[1, 3, 0, 2]).unwrap();
        assert_eq!(f, h);
    }

    #[test]
    fn permute_into_larger_space() {
        let f = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
        let g = f.permute(4, &[3, 1]).unwrap();
        for m in 0u32..16 {
            assert_eq!(g.eval(m), (m >> 3 & 1) != (m >> 1 & 1));
        }
    }

    #[test]
    fn permute_errors() {
        let f = TruthTable::var(2, 0);
        assert!(matches!(
            f.permute(2, &[0]),
            Err(LogicError::ArityMismatch { .. })
        ));
        assert!(matches!(
            f.permute(2, &[0, 5]),
            Err(LogicError::VarOutOfRange { .. })
        ));
    }

    #[test]
    fn quantification() {
        let f = &TruthTable::var(3, 0) & &TruthTable::var(3, 1);
        assert_eq!(f.exists(0), TruthTable::var(3, 1));
        assert!(f.forall(0).is_zero());
    }

    #[test]
    fn compose_substitutes() {
        // f = x0 & x1; substitute x0 := x2 -> x2 & x1.
        let f = &TruthTable::var(3, 0) & &TruthTable::var(3, 1);
        let g = f.compose(0, &TruthTable::var(3, 2)).unwrap();
        assert_eq!(g, &TruthTable::var(3, 2) & &TruthTable::var(3, 1));
    }

    #[test]
    fn eval_bits_matches_eval() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let f = TruthTable::random(5, &mut rng);
        for m in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(f.eval_bits(&bits), f.eval(m));
        }
    }

    #[test]
    fn from_minterms_and_count() {
        let f = TruthTable::from_minterms(3, &[1, 3, 5]);
        assert_eq!(f.count_ones(), 3);
        assert!(f.eval(1) && f.eval(3) && f.eval(5));
        assert!(!f.eval(0));
    }

    #[test]
    fn display_hex() {
        let f = TruthTable::var(3, 2);
        assert_eq!(format!("{f}"), "00000000000000f0");
    }

    #[test]
    fn isf_normalizes_on_set() {
        let on = TruthTable::from_minterms(2, &[0, 3]);
        let dc = TruthTable::from_minterms(2, &[0]);
        let f = Isf::new(on, dc).unwrap();
        assert_eq!(f.value(0), None);
        assert_eq!(f.value(3), Some(true));
        assert_eq!(f.value(1), Some(false));
        assert!(f.has_dc());
    }

    #[test]
    fn isf_admits_completions() {
        let on = TruthTable::from_minterms(2, &[3]);
        let dc = TruthTable::from_minterms(2, &[0]);
        let f = Isf::new(on, dc).unwrap();
        assert!(f.admits(&TruthTable::from_minterms(2, &[3])));
        assert!(f.admits(&TruthTable::from_minterms(2, &[0, 3])));
        assert!(!f.admits(&TruthTable::from_minterms(2, &[1, 3])));
        assert!(!f.admits(&TruthTable::from_minterms(3, &[3])));
    }

    #[test]
    fn isf_off_set_partition() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let on = TruthTable::random(4, &mut rng);
        let dc = TruthTable::random(4, &mut rng);
        let f = Isf::new(on, dc).unwrap();
        let total = f.on_set().count_ones() + f.dc_set().count_ones() + f.off_set().count_ones();
        assert_eq!(total, 16);
    }

    #[test]
    fn zero_var_tables() {
        let z = TruthTable::zero(0);
        let o = TruthTable::one(0);
        assert!(!z.eval(0));
        assert!(o.eval(0));
        assert_eq!((&z | &o).count_ones(), 1);
    }
}
