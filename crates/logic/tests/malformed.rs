//! Malformed-input corpus for the BLIF and PLA readers.
//!
//! Every file under `tests/fixtures/` is deliberately broken in a
//! different way (missing `.model`, mixed cover polarities, duplicate
//! definitions, truth-table-width overflow, directives after data rows,
//! ...). The contract under test: the parsers return a structured
//! [`LogicError::Parse`] for each of them and never panic — a crash on
//! attacker-shaped or merely sloppy benchmark files must surface as a
//! diagnostic, not take the process down.

use hyde_logic::pla::Pla;
use hyde_logic::LogicError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn fixtures() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    paths.sort();
    paths
}

/// Parses one fixture by extension; `Ok(Err(_))` is the expected shape.
fn parse_fixture(path: &PathBuf) -> std::thread::Result<Result<(), LogicError>> {
    let text = std::fs::read_to_string(path).expect("fixture is readable");
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    catch_unwind(AssertUnwindSafe(|| match ext {
        "blif" => hyde_logic::blif::parse(&text).map(|_| ()),
        "pla" => Pla::parse(&text).map(|_| ()),
        other => panic!("unexpected fixture extension {other:?}"),
    }))
}

#[test]
fn corpus_is_nonempty_and_covers_both_formats() {
    let paths = fixtures();
    assert!(paths
        .iter()
        .any(|p| p.extension().is_some_and(|e| e == "blif")));
    assert!(paths
        .iter()
        .any(|p| p.extension().is_some_and(|e| e == "pla")));
    assert!(paths.len() >= 15, "corpus shrank to {}", paths.len());
}

#[test]
fn every_malformed_fixture_errors_without_panicking() {
    for path in fixtures() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        match parse_fixture(&path) {
            Err(_) => panic!("{name}: parser panicked on malformed input"),
            Ok(Ok(())) => panic!("{name}: parser accepted malformed input"),
            Ok(Err(LogicError::Parse { line, message })) => {
                assert!(
                    !message.is_empty(),
                    "{name}: empty diagnostic message (line {line})"
                );
            }
            Ok(Err(other)) => {
                panic!("{name}: expected LogicError::Parse, got {other:?}")
            }
        }
    }
}

#[test]
fn diagnostics_point_at_the_offending_line() {
    let text = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mixed_polarity.blif"),
    )
    .unwrap();
    match hyde_logic::blif::parse(&text) {
        Err(LogicError::Parse { line, message }) => {
            assert_eq!(line, 4, "should blame the .names header line");
            assert!(message.contains("mixes"), "{message}");
        }
        other => panic!("unexpected result {other:?}"),
    }
    match Pla::parse(".i 2\n.o 1\n0z 1\n.e\n") {
        Err(LogicError::Parse { line, .. }) => assert_eq!(line, 3),
        other => panic!("unexpected result {other:?}"),
    }
}

#[test]
fn width_overflow_is_rejected_up_front() {
    // 64 inputs is far past TruthTable::MAX_VARS; without the parser
    // guard this would assert deep inside TruthTable::zero when the
    // caller materializes an output.
    let err = Pla::parse(".i 64\n.o 1\n.e\n").unwrap_err();
    assert!(err.to_string().contains("limit"), "{err}");
}
