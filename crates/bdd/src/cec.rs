//! Miter construction and counterexample extraction for BDD-based
//! combinational equivalence checking.
//!
//! For functions with small support, comparing canonical BDDs is both
//! complete and fast, so the deep verification passes use this path
//! below a support-size threshold and fall back to SAT above it. The
//! helpers here stay inside the manager's public node interface.

use crate::{Bdd, Ref};

impl Bdd {
    /// The equivalence miter `f XOR g`: constant `FALSE` iff `f == g`.
    pub fn miter(&mut self, f: Ref, g: Ref) -> Ref {
        self.xor(f, g)
    }

    /// A satisfying minterm of `f`, or `None` if `f` is constant false.
    /// Variables not on the chosen path are set to 0.
    ///
    /// # Panics
    ///
    /// Panics if the manager has more than 32 variables (minterms are
    /// packed into a `u32`).
    pub fn any_sat(&self, f: Ref) -> Option<u32> {
        assert!(self.num_vars() <= 32, "minterm does not fit in u32");
        if f == Ref::FALSE {
            return None;
        }
        let mut m = 0u32;
        let mut cur = f;
        while cur != Ref::TRUE {
            let (v, lo, hi) = self.node_parts(cur);
            // Reduced BDDs have no all-FALSE node, so one branch always
            // leads onward; prefer the 0-branch for a canonical witness.
            if lo != Ref::FALSE {
                cur = lo;
            } else {
                m |= 1 << v;
                cur = hi;
            }
        }
        Some(m)
    }

    /// Checks `f == g`, returning a counterexample minterm when they
    /// differ and `None` when they are equivalent.
    pub fn equiv_counterexample(&mut self, f: Ref, g: Ref) -> Option<u32> {
        let m = self.miter(f, g);
        self.any_sat(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_sat_walks_to_a_true_leaf() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let m = bdd.any_sat(f).unwrap();
        assert!(bdd.eval(f, m));
        assert_eq!(bdd.any_sat(Ref::FALSE), None);
        assert_eq!(bdd.any_sat(Ref::TRUE), Some(0));
    }

    #[test]
    fn equivalent_functions_have_no_counterexample() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        // (a & b) | c built two ways.
        let ab = bdd.and(a, b);
        let f = bdd.or(ab, c);
        let nc = bdd.not(c);
        let na = bdd.not(a);
        let nb = bdd.not(b);
        let nanb = bdd.or(na, nb);
        let bad = bdd.and(nanb, nc);
        let g = bdd.not(bad);
        assert_eq!(bdd.equiv_counterexample(f, g), None);
    }

    #[test]
    fn differing_functions_yield_a_witness() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let g = bdd.or(a, b);
        let m = bdd.equiv_counterexample(f, g).unwrap();
        assert_ne!(bdd.eval(f, m), bdd.eval(g, m));
    }
}
