//! Hash-consed reduced ordered binary decision diagrams (ROBDDs).
//!
//! The HYDE paper conducts functional decomposition on BDDs following the
//! λ-set selection algorithm of Jiang et al. (ASP-DAC 1997, reference `[2]`):
//! with the bound-set variables ordered on top, the number of *compatible
//! classes* of the decomposition equals the number of distinct subfunctions
//! referenced below the cut line. This crate provides:
//!
//! * [`Bdd`] — a manager with a unique table, an operation cache, the usual
//!   boolean connectives, `ite`, cofactors, composition and quantification;
//! * [`Bdd::permute`] and [`reorder::sift`] / [`reorder::window_search`] —
//!   variable renaming and order optimization;
//! * [`Bdd::cut_subfunctions`] — the cut enumeration that counts compatible
//!   classes without materializing decomposition charts.
//!
//! Node references ([`Ref`]) are plain indices into the manager; the
//! manager is not garbage collected (decomposition workloads are
//! short-lived, callers drop the whole manager).
//!
//! # Example
//!
//! ```
//! use hyde_bdd::Bdd;
//!
//! let mut bdd = Bdd::new(3);
//! let a = bdd.var(0);
//! let b = bdd.var(1);
//! let c = bdd.var(2);
//! let ab = bdd.and(a, b);
//! let f = bdd.or(ab, c);
//! assert_eq!(bdd.sat_count(f), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cec;
mod manager;
pub mod reorder;

pub use manager::{global_managers_dropped, global_stats, Bdd, BddStats, Ref};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0);
        let na = bdd.not(a);
        let t = bdd.or(a, na);
        assert_eq!(t, bdd.one());
    }
}
