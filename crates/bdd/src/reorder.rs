//! Variable-order optimization.
//!
//! BDD sizes are notoriously order-sensitive; decomposition workloads care
//! because the cut enumeration of λ-set selection touches every node below
//! the cut. This module searches for small orders by rebuilding through
//! [`Bdd::permute`]: greedy *sifting* (each variable tries every position,
//! keeps the best) and exhaustive *window* search over adjacent triples.
//! Both return the achieved order as a map `new_position_of[v]`.

use crate::manager::{Bdd, Ref};

/// Result of an order search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reordered {
    /// The function rebuilt under the new order (same manager).
    pub root: Ref,
    /// `position_of[v]` — the level the original variable `v` now sits at.
    pub position_of: Vec<usize>,
    /// Node count under the new order.
    pub size: usize,
}

/// Node count of `f` when original variable `v` is placed at
/// `position_of[v]`.
///
/// # Panics
///
/// Panics if `position_of` is not a permutation of `0..num_vars`.
pub fn order_cost(bdd: &mut Bdd, f: Ref, position_of: &[usize]) -> usize {
    let g = bdd.permute(f, position_of);
    bdd.node_count(g)
}

/// Greedy sifting: every variable in turn tries each position (others keep
/// their relative order); the best placement is kept. One full pass.
///
/// # Panics
///
/// Panics if the manager has no variables.
pub fn sift(bdd: &mut Bdd, f: Ref) -> Reordered {
    let n = bdd.num_vars();
    assert!(n > 0, "no variables to sift");
    let mut position_of: Vec<usize> = (0..n).collect();
    let mut best_size = bdd.node_count(f);
    for v in 0..n {
        let mut best_pos = position_of[v];
        for target in 0..n {
            if target == position_of[v] {
                continue;
            }
            let cand = move_var(&position_of, v, target);
            let size = order_cost(bdd, f, &cand);
            if size < best_size {
                best_size = size;
                best_pos = target;
            }
        }
        position_of = move_var(&position_of, v, best_pos);
    }
    let root = bdd.permute(f, &position_of);
    Reordered {
        root,
        position_of,
        size: bdd.node_count(root),
    }
}

/// Exhaustive window search: every window of `w` adjacent levels tries all
/// `w!` permutations, keeping the best. `w` is clamped to `2..=4`.
pub fn window_search(bdd: &mut Bdd, f: Ref, w: usize) -> Reordered {
    let n = bdd.num_vars();
    let w = w.clamp(2, 4.min(n.max(2)));
    let mut position_of: Vec<usize> = (0..n).collect();
    let mut best_size = bdd.node_count(f);
    if n >= 2 {
        for start in 0..=(n - w) {
            // Variables currently in the window's levels.
            let mut best_local = position_of.clone();
            let in_window: Vec<usize> = (0..n)
                .filter(|&v| (start..start + w).contains(&position_of[v]))
                .collect();
            for perm in permutations(&in_window) {
                let mut cand = position_of.clone();
                // Assign window levels start.. to the permuted variables.
                let mut levels: Vec<usize> = in_window.iter().map(|&v| position_of[v]).collect();
                levels.sort_unstable();
                for (lvl, &v) in levels.iter().zip(&perm) {
                    cand[v] = *lvl;
                }
                let size = order_cost(bdd, f, &cand);
                if size < best_size {
                    best_size = size;
                    best_local = cand;
                }
            }
            position_of = best_local;
        }
    }
    let root = bdd.permute(f, &position_of);
    Reordered {
        root,
        position_of,
        size: bdd.node_count(root),
    }
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let rest: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &y)| y)
            .collect();
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

/// Moves variable `v` to level `target`, shifting the others while keeping
/// their relative order.
fn move_var(position_of: &[usize], v: usize, target: usize) -> Vec<usize> {
    let cur = position_of[v];
    position_of
        .iter()
        .enumerate()
        .map(|(u, &p)| {
            if u == v {
                target
            } else if cur < target && p > cur && p <= target {
                p - 1
            } else if target < cur && p >= target && p < cur {
                p + 1
            } else {
                p
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic order-sensitive function: (x0&x1) | (x2&x3) | (x4&x5)
    /// under an interleaved order blows up; paired order is linear.
    fn pairs_function(bdd: &mut Bdd, perm: &[usize]) -> Ref {
        let mut f = bdd.zero();
        for i in (0..6).step_by(2) {
            let a = bdd.var(perm[i]);
            let b = bdd.var(perm[i + 1]);
            let ab = bdd.and(a, b);
            f = bdd.or(f, ab);
        }
        f
    }

    #[test]
    fn sift_recovers_good_order_for_pairs() {
        let mut bdd = Bdd::new(6);
        // Adversarial: pair (0,3), (1,4), (2,5) — the interleaved trap.
        let f = pairs_function(&mut bdd, &[0, 3, 1, 4, 2, 5]);
        let before = bdd.node_count(f);
        let r = sift(&mut bdd, f);
        assert!(
            r.size < before,
            "sifting must shrink {before} -> {}",
            r.size
        );
        assert_eq!(r.size, 6, "paired order is linear: 6 nodes");
        // Semantics preserved up to the reported renaming.
        for m in 0u32..64 {
            let mut pm = 0u32;
            for v in 0..6 {
                if m >> v & 1 == 1 {
                    pm |= 1 << r.position_of[v];
                }
            }
            assert_eq!(bdd.eval(f, m), bdd.eval(r.root, pm));
        }
    }

    #[test]
    fn window_search_improves_or_holds() {
        let mut bdd = Bdd::new(6);
        let f = pairs_function(&mut bdd, &[0, 3, 1, 4, 2, 5]);
        let before = bdd.node_count(f);
        let r = window_search(&mut bdd, f, 3);
        assert!(r.size <= before);
    }

    #[test]
    fn optimal_order_is_stable() {
        let mut bdd = Bdd::new(6);
        let f = pairs_function(&mut bdd, &[0, 1, 2, 3, 4, 5]);
        let before = bdd.node_count(f);
        assert_eq!(before, 6);
        let r = sift(&mut bdd, f);
        assert_eq!(r.size, 6, "already optimal: no degradation allowed");
    }

    #[test]
    fn order_cost_identity() {
        let mut bdd = Bdd::new(4);
        let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
        let id: Vec<usize> = (0..4).collect();
        assert_eq!(order_cost(&mut bdd, f, &id), bdd.node_count(f));
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        assert_eq!(permutations(&[]).len(), 1);
    }
}
