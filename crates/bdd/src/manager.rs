//! The BDD manager: unique table, operation cache, and algorithms.
//!
//! Storage follows the CUDD playbook rather than `std::collections`:
//!
//! * the **unique table** is an open-addressed array of node indices with
//!   power-of-two capacity, multiplicative integer hashing and linear
//!   probing. The manager is append-only, so the table never deletes and
//!   needs no tombstones; growth doubles the bucket array and reinserts.
//! * the **operation cache** is a fixed-size direct-mapped array of
//!   `(op, operands, result)` slots. Lookups hash to exactly one slot;
//!   inserts overwrite whatever lives there (lossy, like CUDD's computed
//!   table). Losing an entry only costs a recomputation — results are
//!   canonical either way.
//!
//! Both tables feed per-manager [`BddStats`] counters exposed through
//! [`Bdd::stats`], so benchmarks and the deep verification passes can
//! report hit rates alongside their own metrics.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Reference to a BDD node owned by a [`Bdd`] manager.
///
/// Refs are only meaningful together with the manager that produced them;
/// equal refs denote equal functions (canonicity of ROBDDs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

impl Ref {
    /// The constant-false node.
    pub const FALSE: Ref = Ref(0);
    /// The constant-true node.
    pub const TRUE: Ref = Ref(1);

    /// Raw index (diagnostics only).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

const NO_VAR: u32 = u32::MAX;

/// `var` sentinel for a node slot reclaimed by [`Bdd::gc`]: the slot is
/// on the free list and will be reused by the next `mk` allocation. Dead
/// slots never appear in the unique table or in [`Bdd::node_triples`].
const DEAD: u32 = u32::MAX - 1;

/// Empty bucket sentinel in the unique table.
const EMPTY: u32 = u32::MAX;

/// Multiplicative mixing of a node triple / operation key into a bucket
/// hash (Fx/golden-ratio style: three odd constants, one avalanche shift).
#[inline]
fn mix3(a: u32, b: u32, c: u32) -> u64 {
    let mut h = u64::from(a).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= u64::from(b).wrapping_mul(0xA24B_AED4_963E_E407);
    h ^= u64::from(c).wrapping_mul(0x9FB2_1C65_1E98_DF25);
    h ^ (h >> 29)
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// Operation tags for the computed cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Ite = 1,
    Exists = 2,
    Compose = 3,
    Restrict = 4,
}

/// One direct-mapped computed-cache slot. `op == 0` marks an empty slot.
#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    op: u8,
    a: u32,
    b: u32,
    c: u32,
    result: Ref,
}

const EMPTY_SLOT: CacheSlot = CacheSlot {
    op: 0,
    a: 0,
    b: 0,
    c: 0,
    result: Ref::FALSE,
};

/// Per-manager storage and traffic counters (see [`Bdd::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BddStats {
    /// Allocated nodes, including the two terminals.
    pub nodes: usize,
    /// Unique-table lookups (one per canonical `mk`).
    pub unique_lookups: u64,
    /// Total buckets inspected across all unique-table lookups; the ratio
    /// to `unique_lookups` is the mean probe length.
    pub unique_probes: u64,
    /// Unique-table hits (an existing node was returned).
    pub unique_hits: u64,
    /// Operation-cache lookups.
    pub cache_lookups: u64,
    /// Operation-cache hits.
    pub cache_hits: u64,
    /// Occupied cache slots overwritten by a different key (direct-mapped
    /// replacement losses).
    pub cache_evictions: u64,
    /// Unique-table doublings (growth events) since the last reset.
    pub unique_growths: u64,
    /// Computed-cache doublings under eviction pressure since the last
    /// reset.
    pub cache_growths: u64,
    /// Garbage collections performed (see [`Bdd::gc`]).
    pub gc_runs: u64,
    /// Dead nodes reclaimed across all collections.
    pub gc_reclaimed: u64,
}

impl BddStats {
    /// Operation-cache hit rate in `[0, 1]` (zero when nothing was looked
    /// up).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Operation-cache misses.
    pub fn cache_misses(&self) -> u64 {
        self.cache_lookups - self.cache_hits
    }

    /// Mean unique-table probe length (1.0 means no collisions at all).
    pub fn mean_probe_length(&self) -> f64 {
        if self.unique_lookups == 0 {
            0.0
        } else {
            self.unique_probes as f64 / self.unique_lookups as f64
        }
    }
}

/// Process-global accumulator: every dropped manager flushes its counters
/// here unconditionally (tracing active or not), so callers can attribute
/// BDD traffic to a workload whose managers are created and dropped
/// internally — including the per-worker managers of parallel fan-outs.
struct GlobalStatCells {
    managers: AtomicU64,
    nodes: AtomicU64,
    unique_lookups: AtomicU64,
    unique_probes: AtomicU64,
    unique_hits: AtomicU64,
    cache_lookups: AtomicU64,
    cache_hits: AtomicU64,
    cache_evictions: AtomicU64,
    unique_growths: AtomicU64,
    cache_growths: AtomicU64,
    gc_runs: AtomicU64,
    gc_reclaimed: AtomicU64,
}

static GLOBAL_STATS: GlobalStatCells = GlobalStatCells {
    managers: AtomicU64::new(0),
    nodes: AtomicU64::new(0),
    unique_lookups: AtomicU64::new(0),
    unique_probes: AtomicU64::new(0),
    unique_hits: AtomicU64::new(0),
    cache_lookups: AtomicU64::new(0),
    cache_hits: AtomicU64::new(0),
    cache_evictions: AtomicU64::new(0),
    unique_growths: AtomicU64::new(0),
    cache_growths: AtomicU64::new(0),
    gc_runs: AtomicU64::new(0),
    gc_reclaimed: AtomicU64::new(0),
};

/// Snapshot of the process-global counters accumulated from every manager
/// dropped so far ([`BddStats::nodes`] is their summed node count).
///
/// Counters are monotone, so the way to measure a workload is to delta
/// two snapshots around it: `hyde-bench` does exactly this per circuit to
/// report the flow's real operation-cache hit rate. Live (undropped)
/// managers have not flushed yet and are not included.
pub fn global_stats() -> BddStats {
    let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
    BddStats {
        nodes: load(&GLOBAL_STATS.nodes) as usize,
        unique_lookups: load(&GLOBAL_STATS.unique_lookups),
        unique_probes: load(&GLOBAL_STATS.unique_probes),
        unique_hits: load(&GLOBAL_STATS.unique_hits),
        cache_lookups: load(&GLOBAL_STATS.cache_lookups),
        cache_hits: load(&GLOBAL_STATS.cache_hits),
        cache_evictions: load(&GLOBAL_STATS.cache_evictions),
        unique_growths: load(&GLOBAL_STATS.unique_growths),
        cache_growths: load(&GLOBAL_STATS.cache_growths),
        gc_runs: load(&GLOBAL_STATS.gc_runs),
        gc_reclaimed: load(&GLOBAL_STATS.gc_reclaimed),
    }
}

/// Number of managers dropped (and therefore flushed into
/// [`global_stats`]) so far, process-wide.
pub fn global_managers_dropped() -> u64 {
    GLOBAL_STATS.managers.load(Ordering::Relaxed)
}

/// Default unique-table bucket count for [`Bdd::new`] (power of two).
const DEFAULT_UNIQUE_BUCKETS: usize = 1 << 10;
/// Default computed-cache slots for [`Bdd::new`] (power of two).
const DEFAULT_CACHE_SLOTS: usize = 1 << 13;
/// Computed-cache slot bounds for [`Bdd::with_capacity`] and adaptive
/// growth (1M slots × 16 bytes = 16 MiB worst case per manager).
const MIN_CACHE_SLOTS: usize = 1 << 10;
const MAX_CACHE_SLOTS: usize = 1 << 20;

/// A reduced ordered BDD manager over a fixed number of variables.
///
/// Variable `0` is the topmost in the order. The manager is append-only
/// (no garbage collection): decomposition workloads build, query, and drop
/// the whole manager.
#[derive(Debug, Clone)]
pub struct Bdd {
    num_vars: usize,
    nodes: Vec<Node>,
    /// Open-addressed unique table: buckets hold node indices, [`EMPTY`]
    /// marks a free bucket. Capacity is a power of two; `unique_mask` is
    /// `capacity - 1`.
    unique: Vec<u32>,
    unique_mask: usize,
    /// Occupied bucket count (drives amortized growth at 3/4 load).
    unique_len: usize,
    /// Direct-mapped computed cache; `cache_mask` is `len - 1`.
    cache: Vec<CacheSlot>,
    cache_mask: usize,
    /// Evictions since the cache last grew; when this exceeds a quarter of
    /// the slot count the cache is thrashing and doubles (up to
    /// [`MAX_CACHE_SLOTS`]), CUDD-style adaptive resizing.
    cache_pressure: u64,
    /// Optional node cap (see [`Bdd::set_node_cap`]). `None` means the
    /// manager grows without bound, as before.
    node_cap: Option<usize>,
    /// Poison flag: set when an allocation was refused because of the
    /// node cap (or injected by the chaos layer). While set, `mk`
    /// returns [`Ref::FALSE`] without touching the tables, so a capped
    /// computation unwinds cheaply instead of thrashing; results are
    /// garbage and must be discarded via [`Bdd::guarded`].
    exhausted: bool,
    /// Node slots reclaimed by [`Bdd::gc`], reused (LIFO) by `mk` before
    /// the node vector grows. Indices stay stable across collections, so
    /// live [`Ref`]s are never invalidated.
    free: Vec<u32>,
    /// Growth-pressure GC trigger: [`Bdd::maybe_gc`] collects when the
    /// in-use node count reaches this. `None` disables safe-point GC;
    /// `Some(0)` forces a collection at every safe point (test mode).
    gc_threshold: Option<usize>,
    /// Chaos hook for the sweep: when armed, a tripped site poisons the
    /// manager right after a collection, simulating an allocation failure
    /// inside node management (drained via [`Bdd::guarded`]).
    gc_chaos: Option<(hyde_guard::Chaos, String)>,
    stats: StatCells,
    /// Scratch memo reused by [`Bdd::permute`] (cleared per call, never
    /// reallocated).
    permute_memo: HashMap<Ref, Ref>,
    /// Scratch memo reused by [`Bdd::sat_count`] (interior mutability:
    /// counting takes `&self`).
    sat_memo: RefCell<HashMap<Ref, u128>>,
}

/// Interior-mutable counters: lookups happen in `&self` contexts (e.g.
/// probing during reads) and must not force `&mut` through the public API.
#[derive(Debug, Clone, Default)]
struct StatCells {
    unique_lookups: std::cell::Cell<u64>,
    unique_probes: std::cell::Cell<u64>,
    unique_hits: std::cell::Cell<u64>,
    cache_lookups: std::cell::Cell<u64>,
    cache_hits: std::cell::Cell<u64>,
    cache_evictions: std::cell::Cell<u64>,
    unique_growths: std::cell::Cell<u64>,
    cache_growths: std::cell::Cell<u64>,
    gc_runs: std::cell::Cell<u64>,
    gc_reclaimed: std::cell::Cell<u64>,
}

impl Bdd {
    /// Creates a manager over `num_vars` variables with default table
    /// sizes (suited to small helper managers; hot paths should call
    /// [`Bdd::with_capacity`]).
    pub fn new(num_vars: usize) -> Self {
        Self::with_tables(num_vars, DEFAULT_UNIQUE_BUCKETS, DEFAULT_CACHE_SLOTS)
    }

    /// Creates a manager pre-sized for roughly `hint` nodes: the unique
    /// table starts large enough to hold them below 3/4 load and the
    /// operation cache is scaled to match, so warm-up proceeds without a
    /// single rehash.
    pub fn with_capacity(num_vars: usize, hint: usize) -> Self {
        // Buckets so that `hint` entries stay under 3/4 load.
        let buckets = (hint.saturating_mul(4) / 3 + 1)
            .next_power_of_two()
            .max(DEFAULT_UNIQUE_BUCKETS);
        let cache = buckets.clamp(MIN_CACHE_SLOTS, MAX_CACHE_SLOTS);
        Self::with_tables(num_vars, buckets, cache)
    }

    fn with_tables(num_vars: usize, unique_buckets: usize, cache_slots: usize) -> Self {
        debug_assert!(unique_buckets.is_power_of_two());
        debug_assert!(cache_slots.is_power_of_two());
        let nodes = vec![
            Node {
                var: NO_VAR,
                lo: Ref::FALSE,
                hi: Ref::FALSE,
            },
            Node {
                var: NO_VAR,
                lo: Ref::TRUE,
                hi: Ref::TRUE,
            },
        ];
        Bdd {
            num_vars,
            nodes,
            unique: vec![EMPTY; unique_buckets],
            unique_mask: unique_buckets - 1,
            unique_len: 0,
            cache: vec![EMPTY_SLOT; cache_slots],
            cache_mask: cache_slots - 1,
            cache_pressure: 0,
            node_cap: None,
            exhausted: false,
            free: Vec::new(),
            gc_threshold: None,
            gc_chaos: None,
            stats: StatCells::default(),
            permute_memo: HashMap::new(),
            sat_memo: RefCell::new(HashMap::new()),
        }
    }

    /// Number of variables in the order.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of allocated node slots (including both terminals
    /// and any dead slots awaiting reuse after a [`Bdd::gc`]).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of in-use nodes: allocated slots minus the free list. This
    /// is the count the node cap and the GC trigger are measured against.
    pub fn live_len(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Whether only the terminals exist.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// A snapshot of the manager's storage counters.
    pub fn stats(&self) -> BddStats {
        BddStats {
            nodes: self.nodes.len(),
            unique_lookups: self.stats.unique_lookups.get(),
            unique_probes: self.stats.unique_probes.get(),
            unique_hits: self.stats.unique_hits.get(),
            cache_lookups: self.stats.cache_lookups.get(),
            cache_hits: self.stats.cache_hits.get(),
            cache_evictions: self.stats.cache_evictions.get(),
            unique_growths: self.stats.unique_growths.get(),
            cache_growths: self.stats.cache_growths.get(),
            gc_runs: self.stats.gc_runs.get(),
            gc_reclaimed: self.stats.gc_reclaimed.get(),
        }
    }

    /// Zeroes the traffic counters without touching the node store or the
    /// tables, so per-phase deltas can be taken from one long-lived
    /// manager (`stats()` → work → `stats()`) instead of constructing a
    /// fresh manager per phase. The `nodes` field of [`BddStats`] is a
    /// point-in-time size, not a counter, and is unaffected.
    pub fn reset_stats(&self) {
        self.stats.unique_lookups.set(0);
        self.stats.unique_probes.set(0);
        self.stats.unique_hits.set(0);
        self.stats.cache_lookups.set(0);
        self.stats.cache_hits.set(0);
        self.stats.cache_evictions.set(0);
        self.stats.unique_growths.set(0);
        self.stats.cache_growths.set(0);
        self.stats.gc_runs.set(0);
        self.stats.gc_reclaimed.set(0);
    }

    /// Current unique-table bucket count (diagnostics/tests).
    pub fn unique_capacity(&self) -> usize {
        self.unique.len()
    }

    /// Computed-cache slot count (fixed for the manager's lifetime).
    pub fn cache_capacity(&self) -> usize {
        self.cache.len()
    }

    /// Caps the node store at `cap` nodes (including the two terminals);
    /// `None` removes the cap. When an allocation would exceed the cap,
    /// `mk` refuses it, poisons the manager, and returns [`Ref::FALSE`]
    /// for this and every subsequent allocation until the poison is
    /// cleared. Run capped work through [`Bdd::guarded`] to turn the
    /// poison into a typed [`hyde_guard::OutOfBudget`].
    ///
    /// Setting a cap also arms safe-point garbage collection at 3/4 of
    /// the cap (unless a GC threshold was already configured), so capped
    /// workloads that call [`Bdd::maybe_gc`] reclaim dead nodes before
    /// the cap poisons the manager.
    pub fn set_node_cap(&mut self, cap: Option<usize>) {
        self.node_cap = cap;
        if let Some(c) = cap {
            if self.gc_threshold.is_none() {
                self.gc_threshold = Some((c / 4).max(1) * 3);
            }
        }
    }

    /// The node cap, if one is set.
    pub fn node_cap(&self) -> Option<usize> {
        self.node_cap
    }

    /// Whether the manager refused an allocation (poisoned state). All
    /// refs produced since the poison was set are garbage.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Poisons the manager as if an allocation had just been refused.
    /// Used by the chaos layer to simulate a unique-table allocation
    /// failure at an arbitrary point.
    pub fn inject_exhaustion(&mut self) {
        self.exhausted = true;
    }

    /// Runs `f` against the manager and returns its result, or a typed
    /// [`hyde_guard::OutOfBudget`] if the node cap was hit (or an
    /// exhaustion was injected) at any point during `f`.
    ///
    /// Clears any pre-existing poison first, so one manager can host a
    /// sequence of independently guarded computations. On error the
    /// poison is also cleared, but nodes allocated before the refusal
    /// remain (append-only manager) — callers that loop should budget
    /// for that or build a fresh manager per attempt.
    pub fn guarded<T>(
        &mut self,
        f: impl FnOnce(&mut Bdd) -> T,
    ) -> Result<T, hyde_guard::OutOfBudget> {
        self.exhausted = false;
        let out = f(self);
        if std::mem::take(&mut self.exhausted) {
            Err(hyde_guard::OutOfBudget::new(
                hyde_guard::Resource::BddNodes,
                self.node_cap.unwrap_or(0) as u64,
            ))
        } else {
            Ok(out)
        }
    }

    /// Configures the safe-point GC trigger (see [`Bdd::maybe_gc`]):
    /// collect when the in-use node count reaches `threshold`. `None`
    /// disables; `Some(0)` forces a collection at every safe point,
    /// which the GC correctness tests use to prove collections are
    /// semantically invisible.
    pub fn set_gc_threshold(&mut self, threshold: Option<usize>) {
        self.gc_threshold = threshold;
    }

    /// The current safe-point GC trigger, if armed.
    pub fn gc_threshold(&self) -> Option<usize> {
        self.gc_threshold
    }

    /// Arms the chaos hook inside the GC sweep: after a collection under
    /// `chaos`, the site `bddgc:<ctx>` may deterministically poison the
    /// manager, simulating an allocation failure inside node management.
    /// The poison surfaces as a typed [`hyde_guard::OutOfBudget`] at the
    /// enclosing [`Bdd::guarded`] boundary, so degradation ladders (and
    /// the `hyde-bench --chaos` drills) exercise the GC path too.
    pub fn set_gc_chaos(&mut self, chaos: hyde_guard::Chaos, ctx: &str) {
        self.gc_chaos = Some((chaos, ctx.to_string()));
    }

    /// Collects garbage if the in-use node count has reached the
    /// configured threshold (see [`Bdd::set_gc_threshold`]); returns the
    /// number of nodes reclaimed (0 when no collection ran).
    ///
    /// Call this only at *safe points*: moments when `roots` is the
    /// complete set of [`Ref`]s that must survive. Never call it while
    /// intermediate results are held outside `roots` (e.g. mid-recursion
    /// cofactors) — they would be swept and their indices reused.
    ///
    /// After a collection that reclaims less than half of the in-use
    /// nodes, the threshold doubles (growth-pressure backoff) so mostly
    /// -live managers stop paying for futile sweeps.
    pub fn maybe_gc(&mut self, roots: &[Ref]) -> usize {
        let Some(threshold) = self.gc_threshold else {
            return 0;
        };
        if self.live_len() < threshold.max(2) {
            return 0;
        }
        let reclaimed = self.gc(roots);
        if self.live_len() * 2 > threshold {
            self.gc_threshold = Some(threshold.saturating_mul(2));
        }
        reclaimed
    }

    /// Collects every node unreachable from `roots` (and the terminals):
    /// dead slots go on the free list for reuse by `mk`, the unique table
    /// is rebuilt from the survivors, and the operation cache plus the
    /// permute/sat-count memos are invalidated (their entries may
    /// reference swept nodes). Returns the number of nodes reclaimed.
    ///
    /// Live refs keep their indices — collections never move nodes — so
    /// a GC is semantically invisible to any computation whose inputs are
    /// all in `roots`. The same safe-point contract as [`Bdd::maybe_gc`]
    /// applies.
    pub fn gc(&mut self, roots: &[Ref]) -> usize {
        // Mark phase: walk from the roots; terminals are always live.
        let mut live = vec![false; self.nodes.len()];
        live[0] = true;
        live[1] = true;
        let mut stack: Vec<u32> = Vec::new();
        for r in roots {
            let i = r.0 as usize;
            if i < live.len() && !live[i] {
                live[i] = true;
                stack.push(r.0);
            }
        }
        while let Some(i) = stack.pop() {
            let n = self.nodes[i as usize];
            for child in [n.lo.0, n.hi.0] {
                if !live[child as usize] {
                    live[child as usize] = true;
                    stack.push(child);
                }
            }
        }
        // Sweep phase: dead slots become free-list entries. Already-dead
        // slots (from an earlier collection) stay on the free list.
        let mut reclaimed = 0usize;
        for (i, node) in self.nodes.iter_mut().enumerate().skip(2) {
            if live[i] || node.var == DEAD {
                continue;
            }
            *node = Node {
                var: DEAD,
                lo: Ref::FALSE,
                hi: Ref::FALSE,
            };
            self.free.push(i as u32);
            reclaimed += 1;
        }
        // Rebuild the unique table from the survivors (capacity is kept:
        // it is sized for the peak, and shrinking would force an
        // immediate regrow on the next burst).
        let mask = self.unique_mask;
        for bucket in &mut self.unique {
            *bucket = EMPTY;
        }
        self.unique_len = 0;
        for (i, node) in self.nodes.iter().enumerate().skip(2) {
            if node.var == DEAD {
                continue;
            }
            let mut idx = mix3(node.var, node.lo.0, node.hi.0) as usize & mask;
            while self.unique[idx] != EMPTY {
                idx = (idx + 1) & mask;
            }
            self.unique[idx] = i as u32;
            self.unique_len += 1;
        }
        // The op cache and memos may hold swept refs as keys or results:
        // invalidate them wholesale.
        for slot in &mut self.cache {
            *slot = EMPTY_SLOT;
        }
        self.cache_pressure = 0;
        self.permute_memo.clear();
        self.sat_memo.borrow_mut().clear();
        self.stats.gc_runs.set(self.stats.gc_runs.get() + 1);
        self.stats
            .gc_reclaimed
            .set(self.stats.gc_reclaimed.get() + reclaimed as u64);
        if let Some((chaos, ctx)) = &self.gc_chaos {
            // Chaos site inside the sweep: a tripped site models the
            // allocator failing during node management.
            if chaos.trips(&format!("bddgc:{ctx}"), 4) {
                self.exhausted = true;
            }
        }
        reclaimed
    }

    /// Iterates over the non-terminal nodes as `(index, var, lo, hi)`
    /// triples, in allocation order.
    ///
    /// Exposed for the `hyde-verify` BDD audit (ordering invariant and
    /// unique-table consistency); terminals (indices 0 and 1) are skipped.
    pub fn node_triples(&self) -> impl Iterator<Item = (usize, usize, Ref, Ref)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .skip(2)
            .filter(|(_, n)| n.var != DEAD)
            .map(|(i, n)| (i, n.var as usize, n.lo, n.hi))
    }

    /// Appends a node bypassing the unique table and the reduction rules.
    ///
    /// This deliberately corrupts the manager; it exists so the
    /// `hyde-verify` mutation tests can exercise the BDD audit lints
    /// (`HY301`/`HY302`). Never use it in flows.
    #[doc(hidden)]
    pub fn raw_push_node(&mut self, var: usize, lo: Ref, hi: Ref) -> Ref {
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(Node {
            var: var as u32,
            lo,
            hi,
        });
        r
    }

    /// The constant-false function.
    pub fn zero(&self) -> Ref {
        Ref::FALSE
    }

    /// The constant-true function.
    pub fn one(&self) -> Ref {
        Ref::TRUE
    }

    /// The projection function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(&mut self, var: usize) -> Ref {
        assert!(var < self.num_vars, "variable out of range");
        self.mk(var as u32, Ref::FALSE, Ref::TRUE)
    }

    /// The complemented projection of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn nvar(&mut self, var: usize) -> Ref {
        assert!(var < self.num_vars, "variable out of range");
        self.mk(var as u32, Ref::TRUE, Ref::FALSE)
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        if self.exhausted {
            // Poisoned: unwind without allocating. Every result derived
            // from here on is garbage; `guarded` turns the flag into a
            // typed error at the call boundary.
            return Ref::FALSE;
        }
        self.stats
            .unique_lookups
            .set(self.stats.unique_lookups.get() + 1);
        let mask = self.unique_mask;
        let mut idx = mix3(var, lo.0, hi.0) as usize & mask;
        let mut probes = 1u64;
        loop {
            let bucket = self.unique[idx];
            if bucket == EMPTY {
                break;
            }
            let n = self.nodes[bucket as usize];
            if n.var == var && n.lo == lo && n.hi == hi {
                self.stats
                    .unique_probes
                    .set(self.stats.unique_probes.get() + probes);
                self.stats.unique_hits.set(self.stats.unique_hits.get() + 1);
                return Ref(bucket);
            }
            idx = (idx + 1) & mask;
            probes += 1;
        }
        self.stats
            .unique_probes
            .set(self.stats.unique_probes.get() + probes);
        if let Some(cap) = self.node_cap {
            if self.live_len() >= cap {
                self.exhausted = true;
                return Ref::FALSE;
            }
        }
        let r = if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = Node { var, lo, hi };
            Ref(slot)
        } else {
            let r = Ref(self.nodes.len() as u32);
            self.nodes.push(Node { var, lo, hi });
            r
        };
        self.unique[idx] = r.0;
        self.unique_len += 1;
        if self.unique_len * 4 >= self.unique.len() * 3 {
            self.grow_unique();
        }
        r
    }

    /// Doubles the unique table and reinserts every bucket. Node indices
    /// are stable, so only the bucket array moves.
    fn grow_unique(&mut self) {
        let new_cap = self.unique.len() * 2;
        let mask = new_cap - 1;
        let mut table = vec![EMPTY; new_cap];
        for &bucket in &self.unique {
            if bucket == EMPTY {
                continue;
            }
            let n = self.nodes[bucket as usize];
            let mut idx = mix3(n.var, n.lo.0, n.hi.0) as usize & mask;
            while table[idx] != EMPTY {
                idx = (idx + 1) & mask;
            }
            table[idx] = bucket;
        }
        self.unique = table;
        self.unique_mask = mask;
        self.stats
            .unique_growths
            .set(self.stats.unique_growths.get() + 1);
    }

    /// Computed-cache probe: returns the memoized result when the slot
    /// holds exactly this key.
    #[inline]
    fn cache_get(&self, op: Op, a: u32, b: u32, c: u32) -> Option<Ref> {
        self.stats
            .cache_lookups
            .set(self.stats.cache_lookups.get() + 1);
        let slot = &self.cache[(mix3(a, b, c ^ ((op as u32) << 28)) as usize) & self.cache_mask];
        if slot.op == op as u8 && slot.a == a && slot.b == b && slot.c == c {
            self.stats.cache_hits.set(self.stats.cache_hits.get() + 1);
            Some(slot.result)
        } else {
            None
        }
    }

    /// Computed-cache insert: overwrites the slot unconditionally
    /// (direct-mapped, lossy). Sustained eviction pressure doubles the
    /// cache so long candidate-evaluation loops keep their cross-candidate
    /// memoization instead of thrashing.
    #[inline]
    fn cache_put(&mut self, op: Op, a: u32, b: u32, c: u32, result: Ref) {
        if self.exhausted {
            // Poisoned results must not be memoized: they would survive
            // the `guarded` reset and corrupt later, in-budget work.
            return;
        }
        let idx = (mix3(a, b, c ^ ((op as u32) << 28)) as usize) & self.cache_mask;
        let slot = &mut self.cache[idx];
        if slot.op != 0 && !(slot.op == op as u8 && slot.a == a && slot.b == b && slot.c == c) {
            self.stats
                .cache_evictions
                .set(self.stats.cache_evictions.get() + 1);
            self.cache_pressure += 1;
        }
        *slot = CacheSlot {
            op: op as u8,
            a,
            b,
            c,
            result,
        };
        if self.cache_pressure * 4 > self.cache.len() as u64 && self.cache.len() < MAX_CACHE_SLOTS {
            self.grow_cache();
        }
    }

    /// Doubles the computed cache, rehashing live entries into their new
    /// slots (colliding pairs separate; same-slot survivors keep warm).
    fn grow_cache(&mut self) {
        let new_len = self.cache.len() * 2;
        let mask = new_len - 1;
        let mut table = vec![EMPTY_SLOT; new_len];
        for slot in &self.cache {
            if slot.op != 0 {
                let idx =
                    (mix3(slot.a, slot.b, slot.c ^ (u32::from(slot.op) << 28)) as usize) & mask;
                table[idx] = *slot;
            }
        }
        self.cache = table;
        self.cache_mask = mask;
        self.cache_pressure = 0;
        self.stats
            .cache_growths
            .set(self.stats.cache_growths.get() + 1);
    }

    fn node(&self, r: Ref) -> Node {
        self.nodes[r.0 as usize]
    }

    fn var_of(&self, r: Ref) -> u32 {
        self.nodes[r.0 as usize].var
    }

    /// If-then-else: `f ? g : h`. All boolean connectives reduce to this.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal cases.
        if f == Ref::TRUE {
            return g;
        }
        if f == Ref::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Ref::TRUE && h == Ref::FALSE {
            return f;
        }
        if let Some(r) = self.cache_get(Op::Ite, f.0, g.0, h.0) {
            return r;
        }
        let top = [f, g, h]
            .iter()
            .map(|&x| self.var_of(x))
            .min()
            .expect("non-empty");
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.cache_put(Op::Ite, f.0, g.0, h.0, r);
        r
    }

    fn cofactors_at(&self, f: Ref, var: u32) -> (Ref, Ref) {
        let n = self.node(f);
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, Ref::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Negation.
    pub fn not(&mut self, f: Ref) -> Ref {
        self.ite(f, Ref::FALSE, Ref::TRUE)
    }

    /// Cofactor of `f` with `var` fixed to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor(&mut self, f: Ref, var: usize, value: bool) -> Ref {
        assert!(var < self.num_vars, "variable out of range");
        self.restrict_rec(f, var as u32, value)
    }

    pub(crate) fn restrict_rec(&mut self, f: Ref, var: u32, value: bool) -> Ref {
        let n = self.node(f);
        if n.var == NO_VAR || n.var > var {
            return f;
        }
        if n.var == var {
            return if value { n.hi } else { n.lo };
        }
        if let Some(r) = self.cache_get(Op::Restrict, f.0, var, u32::from(value)) {
            return r;
        }
        let lo = self.restrict_rec(n.lo, var, value);
        let hi = self.restrict_rec(n.hi, var, value);
        let r = self.mk(n.var, lo, hi);
        self.cache_put(Op::Restrict, f.0, var, u32::from(value), r);
        r
    }

    /// Existential quantification of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn exists(&mut self, f: Ref, var: usize) -> Ref {
        assert!(var < self.num_vars);
        if let Some(r) = self.cache_get(Op::Exists, f.0, var as u32, 0) {
            return r;
        }
        let c0 = self.restrict_rec(f, var as u32, false);
        let c1 = self.restrict_rec(f, var as u32, true);
        let r = self.or(c0, c1);
        self.cache_put(Op::Exists, f.0, var as u32, 0, r);
        r
    }

    /// Universal quantification of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn forall(&mut self, f: Ref, var: usize) -> Ref {
        let c0 = self.restrict_rec(f, var as u32, false);
        let c1 = self.restrict_rec(f, var as u32, true);
        self.and(c0, c1)
    }

    /// Functional composition: substitutes `g` for variable `var` in `f`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn compose(&mut self, f: Ref, var: usize, g: Ref) -> Ref {
        assert!(var < self.num_vars);
        if let Some(r) = self.cache_get(Op::Compose, f.0, var as u32, g.0) {
            return r;
        }
        let c1 = self.restrict_rec(f, var as u32, true);
        let c0 = self.restrict_rec(f, var as u32, false);
        let r = self.ite(g, c1, c0);
        self.cache_put(Op::Compose, f.0, var as u32, g.0, r);
        r
    }

    /// Variables `f` depends on, ascending.
    pub fn support(&self, f: Ref) -> Vec<usize> {
        let mut seen = vec![false; self.nodes.len()];
        let mut on = vec![false; self.num_vars];
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r == Ref::TRUE || r == Ref::FALSE || std::mem::replace(&mut seen[r.index()], true) {
                continue;
            }
            let n = self.node(r);
            on[n.var as usize] = true;
            stack.push(n.lo);
            stack.push(n.hi);
        }
        (0..self.num_vars).filter(|&v| on[v]).collect()
    }

    /// Number of satisfying assignments over all `num_vars` variables.
    pub fn sat_count(&self, f: Ref) -> u128 {
        // Reuse the manager-owned memo: cleared (capacity kept), not
        // reallocated per call.
        let mut memo = self.sat_memo.borrow_mut();
        memo.clear();
        self.sat_count_rec(f, &mut memo) << self.level_gap(f)
    }

    fn level_gap(&self, f: Ref) -> u32 {
        let top = self.var_of(f);
        if top == NO_VAR {
            self.num_vars as u32
        } else {
            top
        }
    }

    fn sat_count_rec(&self, f: Ref, memo: &mut HashMap<Ref, u128>) -> u128 {
        if f == Ref::FALSE {
            return 0;
        }
        if f == Ref::TRUE {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let n = self.node(f);
        let lo = self.sat_count_rec(n.lo, memo);
        let hi = self.sat_count_rec(n.hi, memo);
        let lo_gap = self.level_gap(n.lo).saturating_sub(n.var + 1);
        let hi_gap = self.level_gap(n.hi).saturating_sub(n.var + 1);
        let c = (lo << lo_gap) + (hi << hi_gap);
        memo.insert(f, c);
        c
    }

    /// Evaluates `f` on the minterm whose bit `i` is variable `i`.
    pub fn eval(&self, f: Ref, minterm: u32) -> bool {
        let mut r = f;
        loop {
            match r {
                Ref::FALSE => return false,
                Ref::TRUE => return true,
                _ => {
                    let n = self.node(r);
                    r = if minterm >> n.var & 1 == 1 {
                        n.hi
                    } else {
                        n.lo
                    };
                }
            }
        }
    }

    /// Number of nodes reachable from `f` (excluding terminals) — the
    /// classical BDD size metric.
    pub fn node_count(&self, f: Ref) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(r) = stack.pop() {
            if r == Ref::TRUE || r == Ref::FALSE || std::mem::replace(&mut seen[r.index()], true) {
                continue;
            }
            count += 1;
            let n = self.node(r);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Builds a BDD from a predicate over minterms (`2^num_vars` calls).
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 28` (guard against runaway enumeration).
    pub fn from_fn<F: FnMut(u32) -> bool>(&mut self, mut f: F) -> Ref {
        assert!(self.num_vars <= 28, "from_fn limited to 28 variables");
        self.build_rec(0, 0, &mut f)
    }

    fn build_rec<F: FnMut(u32) -> bool>(&mut self, var: usize, prefix: u32, f: &mut F) -> Ref {
        if var == self.num_vars {
            return if f(prefix) { Ref::TRUE } else { Ref::FALSE };
        }
        let lo = self.build_rec(var + 1, prefix, f);
        let hi = self.build_rec(var + 1, prefix | (1 << var), f);
        self.mk(var as u32, lo, hi)
    }

    /// Renames variables: variable `i` of `f` becomes `map[i]`.
    ///
    /// The map must be injective on the support of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `map.len() != num_vars` or a target is out of range.
    pub fn permute(&mut self, f: Ref, map: &[usize]) -> Ref {
        assert_eq!(map.len(), self.num_vars, "map must cover every variable");
        for &t in map {
            assert!(t < self.num_vars, "map target out of range");
        }
        // Rebuild bottom-up through fresh literals. The memo is manager
        // owned scratch: taken out for the recursion (borrow discipline),
        // cleared rather than reallocated, and put back afterwards.
        let mut memo = std::mem::take(&mut self.permute_memo);
        memo.clear();
        let r = self.permute_rec(f, map, &mut memo);
        self.permute_memo = memo;
        r
    }

    fn permute_rec(&mut self, f: Ref, map: &[usize], memo: &mut HashMap<Ref, Ref>) -> Ref {
        if f == Ref::TRUE || f == Ref::FALSE {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.node(f);
        let lo = self.permute_rec(n.lo, map, memo);
        let hi = self.permute_rec(n.hi, map, memo);
        let v = self.var(map[n.var as usize]);
        let r = self.ite(v, hi, lo);
        memo.insert(f, r);
        r
    }

    /// Enumerates the distinct subfunctions (compatible class
    /// representatives) obtained by cofactoring `f` on every assignment of
    /// `bound` — the BDD-cut view of Roth–Karp decomposition used by the
    /// λ-set selection of reference `[2]`.
    ///
    /// Returns one entry per bound-set assignment (index = assignment in
    /// little-endian order of `bound`), containing the canonical `Ref` of
    /// that cofactor. The number of *distinct* refs is the compatible class
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `bound.len() > 20` or a variable repeats/exceeds range.
    pub fn cut_subfunctions(&mut self, f: Ref, bound: &[usize]) -> Vec<Ref> {
        assert!(bound.len() <= 20, "bound set too large to enumerate");
        let mut seen = std::collections::HashSet::new();
        for &v in bound {
            assert!(v < self.num_vars, "bound variable out of range");
            assert!(seen.insert(v), "bound variable repeated");
        }
        let mut out = Vec::with_capacity(1 << bound.len());
        for a in 0u32..(1u32 << bound.len()) {
            let mut g = f;
            for (i, &v) in bound.iter().enumerate() {
                g = self.restrict_rec(g, v as u32, a >> i & 1 == 1);
            }
            out.push(g);
        }
        out
    }

    /// Convenience: the number of distinct cofactors of `f` under `bound`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Bdd::cut_subfunctions`].
    pub fn compatible_class_count(&mut self, f: Ref, bound: &[usize]) -> usize {
        let mut subs = self.cut_subfunctions(f, bound);
        subs.sort_unstable();
        subs.dedup();
        subs.len()
    }

    /// Decomposes a non-terminal node into `(var, lo, hi)` — the raw
    /// Shannon triple, used by structural copies between managers.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn node_parts(&self, f: Ref) -> (usize, Ref, Ref) {
        assert!(
            f != Ref::TRUE && f != Ref::FALSE,
            "terminals have no Shannon triple"
        );
        let n = self.node(f);
        (n.var as usize, n.lo, n.hi)
    }

    /// Conjoins `f` with a cube given as `(var, value)` literals.
    ///
    /// # Panics
    ///
    /// Panics if a variable is out of range.
    pub fn and_cube(&mut self, f: Ref, literals: &[(usize, bool)]) -> Ref {
        let mut acc = f;
        for &(v, val) in literals {
            let lit = if val { self.var(v) } else { self.nvar(v) };
            acc = self.and(acc, lit);
        }
        acc
    }

    /// Restricts `f` by a cube: every listed variable is fixed to its value.
    ///
    /// # Panics
    ///
    /// Panics if a variable is out of range.
    pub fn restrict_cube(&mut self, f: Ref, literals: &[(usize, bool)]) -> Ref {
        let mut acc = f;
        for &(v, val) in literals {
            assert!(v < self.num_vars, "variable out of range");
            acc = self.restrict_rec(acc, v as u32, val);
        }
        acc
    }

    /// Enumerates the minterms of `f` (ascending). Intended for small
    /// functions; the result has `sat_count` entries.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 24` (guard against huge enumerations).
    pub fn minterms(&self, f: Ref) -> Vec<u32> {
        assert!(
            self.num_vars <= 24,
            "minterm enumeration limited to 24 vars"
        );
        (0..(1u32 << self.num_vars))
            .filter(|&m| self.eval(f, m))
            .collect()
    }

    /// Emits a Graphviz `dot` description of the BDD rooted at `f`
    /// (terminals as boxes, else-edges dashed) — handy when debugging
    /// decomposition cuts.
    pub fn to_dot(&self, f: Ref, name: &str) -> String {
        let mut s = String::new();
        // sa:allow(SA012): fmt::Write into a String is infallible
        let _ = self.to_dot_into(&mut s, f, name);
        s
    }

    fn to_dot_into(&self, s: &mut String, f: Ref, name: &str) -> std::fmt::Result {
        use std::fmt::Write as _;
        writeln!(s, "digraph \"{name}\" {{")?;
        writeln!(s, "  T [shape=box,label=\"1\"]; F [shape=box,label=\"0\"];")?;
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r == Ref::TRUE || r == Ref::FALSE || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            writeln!(s, "  n{} [label=\"x{}\"];", r.0, n.var)?;
            let fmt_ref = |x: Ref| match x {
                Ref::TRUE => "T".to_string(),
                Ref::FALSE => "F".to_string(),
                other => format!("n{}", other.0),
            };
            writeln!(s, "  n{} -> {} [style=dashed];", r.0, fmt_ref(n.lo))?;
            writeln!(s, "  n{} -> {};", r.0, fmt_ref(n.hi))?;
            stack.push(n.lo);
            stack.push(n.hi);
        }
        s.push_str("}\n");
        Ok(())
    }
}

impl Drop for Bdd {
    /// Flushes the manager's traffic counters into the process-global
    /// accumulator ([`global_stats`]) unconditionally, and additionally
    /// into the hyde-obs registry when tracing is active, so an
    /// `ObsReport` aggregates BDD work across every manager the run
    /// constructed (including the per-worker managers inside parallel
    /// fan-outs).
    fn drop(&mut self) {
        let s = self.stats();
        let add = |c: &AtomicU64, v: u64| {
            c.fetch_add(v, Ordering::Relaxed);
        };
        add(&GLOBAL_STATS.managers, 1);
        add(&GLOBAL_STATS.nodes, s.nodes as u64);
        add(&GLOBAL_STATS.unique_lookups, s.unique_lookups);
        add(&GLOBAL_STATS.unique_probes, s.unique_probes);
        add(&GLOBAL_STATS.unique_hits, s.unique_hits);
        add(&GLOBAL_STATS.cache_lookups, s.cache_lookups);
        add(&GLOBAL_STATS.cache_hits, s.cache_hits);
        add(&GLOBAL_STATS.cache_evictions, s.cache_evictions);
        add(&GLOBAL_STATS.unique_growths, s.unique_growths);
        add(&GLOBAL_STATS.cache_growths, s.cache_growths);
        add(&GLOBAL_STATS.gc_runs, s.gc_runs);
        add(&GLOBAL_STATS.gc_reclaimed, s.gc_reclaimed);
        if !hyde_obs::enabled() {
            return;
        }
        hyde_obs::counter("bdd.managers", 1);
        hyde_obs::counter("bdd.nodes", s.nodes as u64);
        hyde_obs::counter("bdd.unique_lookups", s.unique_lookups);
        hyde_obs::counter("bdd.unique_probes", s.unique_probes);
        hyde_obs::counter("bdd.unique_hits", s.unique_hits);
        hyde_obs::counter("bdd.cache_lookups", s.cache_lookups);
        hyde_obs::counter("bdd.cache_hits", s.cache_hits);
        hyde_obs::counter("bdd.cache_evictions", s.cache_evictions);
        hyde_obs::counter("bdd.unique_growths", s.unique_growths);
        hyde_obs::counter("bdd.cache_growths", s.cache_growths);
        hyde_obs::counter("bdd.gc.runs", s.gc_runs);
        hyde_obs::counter("bdd.gc.reclaimed", s.gc_reclaimed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_managers_flush_into_global_stats() {
        // Monotonic deltas only: other tests in the process drop managers
        // too, so assert growth, not exact values.
        let before = global_stats();
        let managers_before = global_managers_dropped();
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let x = bdd.and(a, b);
        let _ = bdd.or(x, a);
        let _ = bdd.and(a, b); // cache hit on the repeated op
        let live = bdd.stats();
        assert!(live.cache_lookups > 0 && live.cache_hits > 0);
        drop(bdd);
        let after = global_stats();
        assert!(global_managers_dropped() > managers_before);
        assert!(after.nodes > before.nodes);
        assert!(after.unique_probes > before.unique_probes);
        assert!(after.cache_lookups >= before.cache_lookups + live.cache_lookups);
        assert!(after.cache_hits >= before.cache_hits + live.cache_hits);
    }

    #[test]
    fn terminals() {
        let bdd = Bdd::new(3);
        assert_eq!(bdd.zero(), Ref::FALSE);
        assert_eq!(bdd.one(), Ref::TRUE);
        assert_eq!(bdd.sat_count(Ref::TRUE), 8);
        assert_eq!(bdd.sat_count(Ref::FALSE), 0);
    }

    #[test]
    fn reset_stats_zeroes_counters_without_touching_nodes() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let _f = bdd.and(a, b);
        let before = bdd.stats();
        assert!(before.unique_lookups > 0);
        assert!(before.cache_lookups > 0);
        bdd.reset_stats();
        let after = bdd.stats();
        assert_eq!(after.unique_lookups, 0);
        assert_eq!(after.unique_probes, 0);
        assert_eq!(after.unique_hits, 0);
        assert_eq!(after.cache_lookups, 0);
        assert_eq!(after.cache_hits, 0);
        assert_eq!(after.cache_evictions, 0);
        assert_eq!(after.unique_growths, 0);
        assert_eq!(after.cache_growths, 0);
        // Node store untouched: nodes is a size, not a counter.
        assert_eq!(after.nodes, before.nodes);
        // Counters accumulate again after the reset (per-phase deltas).
        let c = bdd.var(2);
        let _g = bdd.or(a, c);
        assert!(bdd.stats().unique_lookups > 0);
    }

    #[test]
    fn growth_events_are_counted() {
        // Small initial tables so building a chain of conjunctions forces
        // at least one unique-table doubling.
        let mut bdd = Bdd::with_tables(12, 1 << 4, 1 << 10);
        let mut f = bdd.one();
        for v in 0..12 {
            let x = bdd.var(v);
            f = bdd.and(f, x);
        }
        let s = bdd.stats();
        assert!(s.unique_growths > 0, "expected unique-table growth: {s:?}");
        assert_eq!(bdd.unique_capacity() > 1 << 4, s.unique_growths > 0);
        bdd.reset_stats();
        assert_eq!(bdd.stats().unique_growths, 0);
    }

    /// Reference function used by the GC tests: a mildly irregular
    /// 8-variable function with plenty of intermediate garbage.
    fn gc_workload(bdd: &mut Bdd) -> Ref {
        let mut acc = bdd.zero();
        for i in 0..8u32 {
            let f = bdd.from_fn(|m| (m.wrapping_mul(2654435761) >> i) & 1 == 1);
            acc = bdd.xor(acc, f);
            let g = bdd.exists(acc, (i as usize) % 8);
            acc = bdd.or(acc, g);
        }
        acc
    }

    #[test]
    fn gc_reclaims_dead_nodes_and_preserves_semantics() {
        let mut bdd = Bdd::new(8);
        let root = gc_workload(&mut bdd);
        let truth: Vec<bool> = (0..256).map(|m| bdd.eval(root, m)).collect();
        let allocated = bdd.len();
        let live = bdd.node_count(root) + 2;
        assert!(allocated > live, "workload left no garbage to collect");
        let reclaimed = bdd.gc(&[root]);
        assert_eq!(reclaimed, allocated - live);
        assert_eq!(bdd.live_len(), live);
        assert_eq!(bdd.stats().gc_runs, 1);
        assert_eq!(bdd.stats().gc_reclaimed, reclaimed as u64);
        // The root still denotes the same function...
        for (m, &want) in truth.iter().enumerate() {
            assert_eq!(bdd.eval(root, m as u32), want, "minterm {m}");
        }
        // ...and the manager is fully usable: new work reuses dead slots
        // without growing the node vector past its previous peak.
        let a = bdd.var(3);
        let again = bdd.and(root, a);
        assert!(bdd.len() <= allocated);
        assert_eq!(bdd.eval(again, 0b0000_1000), truth[0b0000_1000]);
        assert!(!bdd.eval(again, 0));
    }

    #[test]
    fn gc_forced_every_op_matches_never() {
        // Byte-identical results with GC forced at every safe point vs.
        // never collecting: collections must be semantically invisible.
        let mut never = Bdd::new(8);
        let clean = gc_workload(&mut never);
        let expect: Vec<bool> = (0..256).map(|m| never.eval(clean, m)).collect();

        let mut forced = Bdd::new(8);
        forced.set_gc_threshold(Some(0));
        let mut acc = forced.zero();
        for i in 0..8u32 {
            let f = forced.from_fn(|m| (m.wrapping_mul(2654435761) >> i) & 1 == 1);
            acc = forced.xor(acc, f);
            forced.maybe_gc(&[acc]);
            let g = forced.exists(acc, (i as usize) % 8);
            forced.maybe_gc(&[acc, g]);
            acc = forced.or(acc, g);
            forced.maybe_gc(&[acc]);
        }
        assert!(forced.stats().gc_runs >= 8, "forced mode never collected");
        let got: Vec<bool> = (0..256).map(|m| forced.eval(acc, m)).collect();
        assert_eq!(got, expect);
        // Structural sanity after heavy collection: the audit iterator
        // sees only live, well-formed nodes.
        for (_, var, lo, hi) in forced.node_triples() {
            assert!(var < 8, "dead or corrupt node leaked: var {var}");
            assert_ne!(lo, hi);
        }
    }

    #[test]
    fn maybe_gc_honors_threshold_and_backs_off() {
        let mut bdd = Bdd::new(8);
        bdd.set_gc_threshold(Some(1 << 20));
        let root = gc_workload(&mut bdd);
        // Far below the threshold: no collection.
        assert_eq!(bdd.maybe_gc(&[root]), 0);
        assert_eq!(bdd.stats().gc_runs, 0);
        // Tight threshold: collects, then doubles because most nodes
        // survive relative to the tiny trigger.
        bdd.set_gc_threshold(Some(2));
        let reclaimed = bdd.maybe_gc(&[root]);
        assert!(reclaimed > 0);
        assert_eq!(bdd.gc_threshold(), Some(4));
    }

    #[test]
    fn node_cap_measures_live_nodes_after_gc() {
        let mut bdd = Bdd::new(8);
        let root = gc_workload(&mut bdd);
        let live = bdd.node_count(root) + 2;
        // A cap below the allocated peak but above the live count: dead
        // slots must not count against it once collected.
        bdd.set_node_cap(Some(live + 8));
        assert!(bdd.len() > live + 8, "peak should exceed the cap");
        bdd.gc(&[root]);
        let a = bdd.var(5);
        let r = bdd.guarded(|b| {
            let x = b.and(root, a);
            b.or(x, a)
        });
        assert!(r.is_ok(), "post-GC allocation under the cap failed: {r:?}");
    }

    #[test]
    fn gc_chaos_site_poisons_deterministically() {
        // Find a seed whose sweep site trips, then check the poison is
        // surfaced as a typed budget error by `guarded`.
        let ctx = "testckt";
        let seed = (0..u64::MAX)
            .find(|&s| hyde_guard::Chaos::new(s).trips(&format!("bddgc:{ctx}"), 4))
            .unwrap();
        let mut bdd = Bdd::new(8);
        bdd.set_gc_chaos(hyde_guard::Chaos::new(seed), ctx);
        let err = bdd
            .guarded(|b| {
                let root = gc_workload(b);
                b.gc(&[root]);
                root
            })
            .unwrap_err();
        assert_eq!(err.resource, hyde_guard::Resource::BddNodes);
        // A seed that does not trip leaves the collection clean.
        let calm = (0..u64::MAX)
            .find(|&s| !hyde_guard::Chaos::new(s).trips(&format!("bddgc:{ctx}"), 4))
            .unwrap();
        let mut bdd = Bdd::new(8);
        bdd.set_gc_chaos(hyde_guard::Chaos::new(calm), ctx);
        let ok = bdd.guarded(|b| {
            let root = gc_workload(b);
            b.gc(&[root]);
        });
        assert!(ok.is_ok());
    }

    #[test]
    fn canonical_hash_consing() {
        let mut bdd = Bdd::new(2);
        let a1 = bdd.var(0);
        let a2 = bdd.var(0);
        assert_eq!(a1, a2);
        let b = bdd.var(1);
        let ab1 = bdd.and(a1, b);
        let ab2 = bdd.and(b, a1);
        assert_eq!(ab1, ab2);
    }

    #[test]
    fn connectives_match_semantics() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let f = bdd.or(ab, c);
        let x = bdd.xor(a, b);
        for m in 0u32..8 {
            let (av, bv, cv) = (m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1);
            assert_eq!(bdd.eval(f, m), (av && bv) || cv);
            assert_eq!(bdd.eval(x, m), av != bv);
        }
    }

    #[test]
    fn not_is_involution() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0);
        let b = bdd.var(3);
        let f = bdd.xor(a, b);
        let nf = bdd.not(f);
        let nnf = bdd.not(nf);
        assert_eq!(f, nnf);
        assert_ne!(f, nf);
    }

    #[test]
    fn cofactor_and_quantification() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let c1 = bdd.cofactor(f, 0, true);
        assert_eq!(c1, b);
        let c0 = bdd.cofactor(f, 0, false);
        assert_eq!(c0, Ref::FALSE);
        let e = bdd.exists(f, 0);
        assert_eq!(e, b);
        let u = bdd.forall(f, 0);
        assert_eq!(u, Ref::FALSE);
    }

    #[test]
    fn compose_substitutes() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let f = bdd.and(a, b);
        let g = bdd.compose(f, 0, c);
        let expect = bdd.and(c, b);
        assert_eq!(g, expect);
    }

    #[test]
    fn support_tracks_dependencies() {
        let mut bdd = Bdd::new(5);
        let a = bdd.var(1);
        let b = bdd.var(4);
        let f = bdd.or(a, b);
        assert_eq!(bdd.support(f), vec![1, 4]);
        assert!(bdd.support(Ref::TRUE).is_empty());
    }

    #[test]
    fn sat_count_with_gaps() {
        let mut bdd = Bdd::new(4);
        // f = x1 (vars 0,2,3 free): 8 satisfying assignments.
        let f = bdd.var(1);
        assert_eq!(bdd.sat_count(f), 8);
        let g = bdd.var(3);
        let fg = bdd.and(f, g);
        assert_eq!(bdd.sat_count(fg), 4);
    }

    #[test]
    fn from_fn_matches_predicate() {
        let mut bdd = Bdd::new(4);
        let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
        for m in 0u32..16 {
            assert_eq!(bdd.eval(f, m), m.count_ones() % 2 == 1);
        }
        // Parity over n vars has n internal nodes per level... just check
        // canonicity of the well-known size: 2 nodes per level except top.
        assert_eq!(bdd.node_count(f), 7);
    }

    #[test]
    fn permute_renames_variables() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let g = bdd.permute(f, &[2, 1, 0]);
        let b2 = bdd.var(1);
        let c = bdd.var(2);
        let expect = bdd.and(c, b2);
        assert_eq!(g, expect);
    }

    #[test]
    fn cut_subfunctions_counts_classes() {
        let mut bdd = Bdd::new(4);
        // f = (x0 & x1) | (x2 & x3): bound {0,1} gives 2 classes
        // (cofactors: x2&x3, TRUE).
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let d = bdd.var(3);
        let ab = bdd.and(a, b);
        let cd = bdd.and(c, d);
        let f = bdd.or(ab, cd);
        assert_eq!(bdd.compatible_class_count(f, &[0, 1]), 2);
        // Bound {0,2}: cofactors x1|x3... let's just check bounds.
        let n = bdd.compatible_class_count(f, &[0, 2]);
        assert!((2..=4).contains(&n));
    }

    #[test]
    fn cut_subfunctions_full_assignment_order() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.xor(a, b);
        let subs = bdd.cut_subfunctions(f, &[0, 1]);
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0], Ref::FALSE); // a=0,b=0
        assert_eq!(subs[1], Ref::TRUE); // a=1,b=0
        assert_eq!(subs[2], Ref::TRUE);
        assert_eq!(subs[3], Ref::FALSE);
    }

    #[test]
    fn parity_has_single_class_pairs() {
        let mut bdd = Bdd::new(6);
        let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
        // Any bound set of a parity function yields exactly 2 classes.
        assert_eq!(bdd.compatible_class_count(f, &[0, 1, 2]), 2);
        assert_eq!(bdd.compatible_class_count(f, &[1, 3, 5]), 2);
    }

    #[test]
    fn random_equivalence_with_semantics() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        for _ in 0..20 {
            let mut bdd = Bdd::new(6);
            let bits: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
            let f = bdd.from_fn(|m| bits[m as usize]);
            for (m, &b) in bits.iter().enumerate() {
                assert_eq!(bdd.eval(f, m as u32), b);
            }
            assert_eq!(
                bdd.sat_count(f),
                bits.iter().filter(|&&b| b).count() as u128
            );
        }
    }

    #[test]
    #[should_panic(expected = "variable out of range")]
    fn var_out_of_range_panics() {
        let mut bdd = Bdd::new(2);
        let _ = bdd.var(2);
    }

    #[test]
    fn cube_operations() {
        let mut bdd = Bdd::new(4);
        let f = bdd.from_fn(|m| m.count_ones() >= 2);
        let g = bdd.and_cube(f, &[(0, true), (1, false)]);
        for m in 0u32..16 {
            let inside = m & 1 == 1 && m >> 1 & 1 == 0;
            assert_eq!(bdd.eval(g, m), inside && m.count_ones() >= 2);
        }
        let h = bdd.restrict_cube(f, &[(0, true), (1, true)]);
        // With two ones already fixed, h is the tautology.
        assert_eq!(h, Ref::TRUE);
    }

    #[test]
    fn minterm_enumeration() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let c = bdd.var(2);
        let f = bdd.and(a, c);
        assert_eq!(bdd.minterms(f), vec![0b101, 0b111]);
    }

    #[test]
    fn dot_export_mentions_every_node() {
        let mut bdd = Bdd::new(3);
        let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
        let dot = bdd.to_dot(f, "parity3");
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("label=\"x").count(), bdd.node_count(f));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn unique_table_grows_and_stays_canonical() {
        // Build well past the default bucket count; hash consing must keep
        // returning the same refs across growths. A pseudo-random function
        // has ~2^n/n nodes, far beyond the default table.
        let pred = |m: u32| {
            let mut h = m.wrapping_mul(0x9E37_79B9);
            h ^= h >> 15;
            h = h.wrapping_mul(0x85EB_CA6B);
            h ^= h >> 13;
            h & 1 != 0
        };
        let mut bdd = Bdd::new(16);
        let f = bdd.from_fn(pred);
        assert!(bdd.len() > DEFAULT_UNIQUE_BUCKETS / 2);
        assert!(bdd.unique_capacity() > DEFAULT_UNIQUE_BUCKETS);
        // Load stays under 3/4 after growth.
        assert!((bdd.len() - 2) * 4 < bdd.unique_capacity() * 3);
        let g = bdd.from_fn(pred);
        assert_eq!(f, g, "rebuild after growth must hash-cons to the same ref");
        let stats = bdd.stats();
        assert!(stats.unique_hits > 0);
        assert!(stats.unique_probes >= stats.unique_lookups);
    }

    #[test]
    fn with_capacity_presizes_tables() {
        let bdd = Bdd::with_capacity(10, 50_000);
        assert!(bdd.unique_capacity() >= 50_000 * 4 / 3);
        assert!(bdd.unique_capacity().is_power_of_two());
        assert!(bdd.cache_capacity().is_power_of_two());
        assert!(bdd.cache_capacity() >= DEFAULT_CACHE_SLOTS);
        // Small hints never go below the defaults.
        let small = Bdd::with_capacity(4, 1);
        assert_eq!(small.unique_capacity(), DEFAULT_UNIQUE_BUCKETS);
    }

    #[test]
    fn with_capacity_avoids_rehash_during_warmup() {
        let mut bdd = Bdd::with_capacity(12, 1 << 13);
        let before = bdd.unique_capacity();
        let _ = bdd.from_fn(|m| m.wrapping_mul(2654435761) & 0x10 != 0);
        assert_eq!(
            bdd.unique_capacity(),
            before,
            "pre-sized table must not rehash during warm-up"
        );
    }

    #[test]
    fn stats_count_cache_traffic() {
        let mut bdd = Bdd::new(8);
        let f = bdd.from_fn(|m| m.count_ones() >= 4);
        let g = bdd.from_fn(|m| m % 3 == 0);
        let _ = bdd.and(f, g);
        let s1 = bdd.stats();
        assert!(s1.cache_lookups > 0);
        assert_eq!(s1.nodes, bdd.len());
        // Repeating the same op must hit the computed cache at the root.
        let _ = bdd.and(f, g);
        let s2 = bdd.stats();
        assert!(s2.cache_hits > s1.cache_hits);
        assert!(s2.cache_hit_rate() > 0.0);
        assert!(s2.mean_probe_length() >= 1.0);
    }

    #[test]
    fn cache_eviction_is_lossy_but_correct() {
        // A tiny cache forces evictions; results must stay canonical.
        let mut bdd = Bdd::with_tables(10, 1 << 10, 1 << 4);
        let f = bdd.from_fn(|m| (m ^ (m >> 3)).count_ones() % 2 == 1);
        let g = bdd.from_fn(|m| m.count_ones() >= 5);
        let fg1 = bdd.and(f, g);
        let or1 = bdd.or(f, g);
        let x1 = bdd.xor(f, g);
        let fg2 = bdd.and(f, g);
        assert_eq!(fg1, fg2);
        for m in (0u32..1024).step_by(7) {
            assert_eq!(bdd.eval(fg1, m), bdd.eval(f, m) && bdd.eval(g, m));
            assert_eq!(bdd.eval(or1, m), bdd.eval(f, m) || bdd.eval(g, m));
            assert_eq!(bdd.eval(x1, m), bdd.eval(f, m) != bdd.eval(g, m));
        }
        assert!(bdd.stats().cache_evictions > 0, "tiny cache must evict");
    }

    #[test]
    fn node_cap_poisons_instead_of_growing() {
        let mut bdd = Bdd::new(12);
        bdd.set_node_cap(Some(16));
        // Full 12-bit parity needs ~2 nodes per level, well over 16.
        let err = bdd
            .guarded(|b| b.from_fn(|m| m.count_ones() % 2 == 1))
            .unwrap_err();
        assert_eq!(err.resource, hyde_guard::Resource::BddNodes);
        assert_eq!(err.limit, 16);
        assert!(bdd.len() <= 16, "cap must bound the node store");
        // The guard clears the poison; once the cap is raised, new
        // allocations succeed again (the store is append-only, so the
        // failed attempt's nodes still count against the cap).
        bdd.set_node_cap(Some(64));
        let v = bdd.guarded(|b| b.var(0)).expect("tiny build fits");
        assert_ne!(v, Ref::FALSE);
    }

    #[test]
    fn guarded_passes_in_budget_work_through() {
        let mut capped = Bdd::new(8);
        capped.set_node_cap(Some(1 << 12));
        let f = capped
            .guarded(|b| b.from_fn(|m| m.count_ones() % 2 == 1))
            .expect("parity fits in 4096 nodes");
        let mut free = Bdd::new(8);
        let g = free.from_fn(|m| m.count_ones() % 2 == 1);
        for m in 0u32..256 {
            assert_eq!(capped.eval(f, m), free.eval(g, m));
        }
    }

    #[test]
    fn injected_exhaustion_reports_as_out_of_budget() {
        let mut bdd = Bdd::new(6);
        bdd.inject_exhaustion();
        assert!(bdd.is_exhausted());
        // mk refuses while poisoned.
        assert_eq!(bdd.var(3), Ref::FALSE);
        let err = bdd.guarded(|b| b.inject_exhaustion()).unwrap_err();
        assert_eq!(err.resource, hyde_guard::Resource::BddNodes);
        assert!(!bdd.is_exhausted(), "guarded clears the poison");
    }

    #[test]
    fn scratch_memos_are_reused() {
        let mut bdd = Bdd::new(6);
        let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
        let map: Vec<usize> = (0..6).rev().collect();
        let p1 = bdd.permute(f, &map);
        let p2 = bdd.permute(f, &map);
        assert_eq!(p1, p2);
        // Parity is symmetric: a permutation is the same function.
        assert_eq!(p1, f);
        let c1 = bdd.sat_count(f);
        let c2 = bdd.sat_count(f);
        assert_eq!(c1, c2);
        assert_eq!(c1, 32);
    }
}
