//! The BDD manager: unique table, operation caches, and algorithms.

use std::collections::HashMap;

/// Reference to a BDD node owned by a [`Bdd`] manager.
///
/// Refs are only meaningful together with the manager that produced them;
/// equal refs denote equal functions (canonicity of ROBDDs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

impl Ref {
    /// The constant-false node.
    pub const FALSE: Ref = Ref(0);
    /// The constant-true node.
    pub const TRUE: Ref = Ref(1);

    /// Raw index (diagnostics only).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

const NO_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OpKey {
    Ite(Ref, Ref, Ref),
    Exists(Ref, u32),
    Compose(Ref, u32, Ref),
}

/// A reduced ordered BDD manager over a fixed number of variables.
///
/// Variable `0` is the topmost in the order. The manager is append-only
/// (no garbage collection): decomposition workloads build, query, and drop
/// the whole manager.
#[derive(Debug, Clone)]
pub struct Bdd {
    num_vars: usize,
    nodes: Vec<Node>,
    unique: HashMap<(u32, Ref, Ref), Ref>,
    cache: HashMap<OpKey, Ref>,
}

impl Bdd {
    /// Creates a manager over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        let nodes = vec![
            Node {
                var: NO_VAR,
                lo: Ref::FALSE,
                hi: Ref::FALSE,
            },
            Node {
                var: NO_VAR,
                lo: Ref::TRUE,
                hi: Ref::TRUE,
            },
        ];
        Bdd {
            num_vars,
            nodes,
            unique: HashMap::new(),
            cache: HashMap::new(),
        }
    }

    /// Number of variables in the order.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of allocated nodes (including both terminals).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the terminals exist.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// Iterates over the non-terminal nodes as `(index, var, lo, hi)`
    /// triples, in allocation order.
    ///
    /// Exposed for the `hyde-verify` BDD audit (ordering invariant and
    /// unique-table consistency); terminals (indices 0 and 1) are skipped.
    pub fn node_triples(&self) -> impl Iterator<Item = (usize, usize, Ref, Ref)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .skip(2)
            .map(|(i, n)| (i, n.var as usize, n.lo, n.hi))
    }

    /// Appends a node bypassing the unique table and the reduction rules.
    ///
    /// This deliberately corrupts the manager; it exists so the
    /// `hyde-verify` mutation tests can exercise the BDD audit lints
    /// (`HY301`/`HY302`). Never use it in flows.
    #[doc(hidden)]
    pub fn raw_push_node(&mut self, var: usize, lo: Ref, hi: Ref) -> Ref {
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(Node {
            var: var as u32,
            lo,
            hi,
        });
        r
    }

    /// The constant-false function.
    pub fn zero(&self) -> Ref {
        Ref::FALSE
    }

    /// The constant-true function.
    pub fn one(&self) -> Ref {
        Ref::TRUE
    }

    /// The projection function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(&mut self, var: usize) -> Ref {
        assert!(var < self.num_vars, "variable out of range");
        self.mk(var as u32, Ref::FALSE, Ref::TRUE)
    }

    /// The complemented projection of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn nvar(&mut self, var: usize) -> Ref {
        assert!(var < self.num_vars, "variable out of range");
        self.mk(var as u32, Ref::TRUE, Ref::FALSE)
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return r;
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        r
    }

    fn node(&self, r: Ref) -> Node {
        self.nodes[r.0 as usize]
    }

    fn var_of(&self, r: Ref) -> u32 {
        self.nodes[r.0 as usize].var
    }

    /// If-then-else: `f ? g : h`. All boolean connectives reduce to this.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal cases.
        if f == Ref::TRUE {
            return g;
        }
        if f == Ref::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Ref::TRUE && h == Ref::FALSE {
            return f;
        }
        let key = OpKey::Ite(f, g, h);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let top = [f, g, h]
            .iter()
            .map(|&x| self.var_of(x))
            .min()
            .expect("non-empty");
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.cache.insert(key, r);
        r
    }

    fn cofactors_at(&self, f: Ref, var: u32) -> (Ref, Ref) {
        let n = self.node(f);
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, Ref::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Negation.
    pub fn not(&mut self, f: Ref) -> Ref {
        self.ite(f, Ref::FALSE, Ref::TRUE)
    }

    /// Cofactor of `f` with `var` fixed to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor(&mut self, f: Ref, var: usize, value: bool) -> Ref {
        assert!(var < self.num_vars, "variable out of range");
        self.restrict_rec(f, var as u32, value)
    }

    fn restrict_rec(&mut self, f: Ref, var: u32, value: bool) -> Ref {
        let n = self.node(f);
        if n.var == NO_VAR || n.var > var {
            return f;
        }
        if n.var == var {
            return if value { n.hi } else { n.lo };
        }
        let key = OpKey::Compose(f, var | 0x8000_0000 | ((value as u32) << 30), Ref::FALSE);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let lo = self.restrict_rec(n.lo, var, value);
        let hi = self.restrict_rec(n.hi, var, value);
        let r = self.mk(n.var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Existential quantification of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn exists(&mut self, f: Ref, var: usize) -> Ref {
        assert!(var < self.num_vars);
        let key = OpKey::Exists(f, var as u32);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let c0 = self.restrict_rec(f, var as u32, false);
        let c1 = self.restrict_rec(f, var as u32, true);
        let r = self.or(c0, c1);
        self.cache.insert(key, r);
        r
    }

    /// Universal quantification of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn forall(&mut self, f: Ref, var: usize) -> Ref {
        let c0 = self.restrict_rec(f, var as u32, false);
        let c1 = self.restrict_rec(f, var as u32, true);
        self.and(c0, c1)
    }

    /// Functional composition: substitutes `g` for variable `var` in `f`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn compose(&mut self, f: Ref, var: usize, g: Ref) -> Ref {
        assert!(var < self.num_vars);
        let key = OpKey::Compose(f, var as u32, g);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let c1 = self.restrict_rec(f, var as u32, true);
        let c0 = self.restrict_rec(f, var as u32, false);
        let r = self.ite(g, c1, c0);
        self.cache.insert(key, r);
        r
    }

    /// Variables `f` depends on, ascending.
    pub fn support(&self, f: Ref) -> Vec<usize> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if !seen.insert(r) || r == Ref::TRUE || r == Ref::FALSE {
                continue;
            }
            let n = self.node(r);
            vars.insert(n.var as usize);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().collect()
    }

    /// Number of satisfying assignments over all `num_vars` variables.
    pub fn sat_count(&self, f: Ref) -> u128 {
        let mut memo: HashMap<Ref, u128> = HashMap::new();
        self.sat_count_rec(f, &mut memo) << self.level_gap(f)
    }

    fn level_gap(&self, f: Ref) -> u32 {
        let top = self.var_of(f);
        if top == NO_VAR {
            self.num_vars as u32
        } else {
            top
        }
    }

    fn sat_count_rec(&self, f: Ref, memo: &mut HashMap<Ref, u128>) -> u128 {
        if f == Ref::FALSE {
            return 0;
        }
        if f == Ref::TRUE {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let n = self.node(f);
        let lo = self.sat_count_rec(n.lo, memo);
        let hi = self.sat_count_rec(n.hi, memo);
        let lo_gap = self.level_gap(n.lo).saturating_sub(n.var + 1);
        let hi_gap = self.level_gap(n.hi).saturating_sub(n.var + 1);
        let c = (lo << lo_gap) + (hi << hi_gap);
        memo.insert(f, c);
        c
    }

    /// Evaluates `f` on the minterm whose bit `i` is variable `i`.
    pub fn eval(&self, f: Ref, minterm: u32) -> bool {
        let mut r = f;
        loop {
            match r {
                Ref::FALSE => return false,
                Ref::TRUE => return true,
                _ => {
                    let n = self.node(r);
                    r = if minterm >> n.var & 1 == 1 {
                        n.hi
                    } else {
                        n.lo
                    };
                }
            }
        }
    }

    /// Number of nodes reachable from `f` (excluding terminals) — the
    /// classical BDD size metric.
    pub fn node_count(&self, f: Ref) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(r) = stack.pop() {
            if r == Ref::TRUE || r == Ref::FALSE || !seen.insert(r) {
                continue;
            }
            count += 1;
            let n = self.node(r);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Builds a BDD from a predicate over minterms (`2^num_vars` calls).
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 28` (guard against runaway enumeration).
    pub fn from_fn<F: FnMut(u32) -> bool>(&mut self, mut f: F) -> Ref {
        assert!(self.num_vars <= 28, "from_fn limited to 28 variables");
        self.build_rec(0, 0, &mut f)
    }

    fn build_rec<F: FnMut(u32) -> bool>(&mut self, var: usize, prefix: u32, f: &mut F) -> Ref {
        if var == self.num_vars {
            return if f(prefix) { Ref::TRUE } else { Ref::FALSE };
        }
        let lo = self.build_rec(var + 1, prefix, f);
        let hi = self.build_rec(var + 1, prefix | (1 << var), f);
        self.mk(var as u32, lo, hi)
    }

    /// Renames variables: variable `i` of `f` becomes `map[i]`.
    ///
    /// The map must be injective on the support of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `map.len() != num_vars` or a target is out of range.
    pub fn permute(&mut self, f: Ref, map: &[usize]) -> Ref {
        assert_eq!(map.len(), self.num_vars, "map must cover every variable");
        for &t in map {
            assert!(t < self.num_vars, "map target out of range");
        }
        // Rebuild bottom-up through fresh literals; simple recursion with a
        // memo keyed by node.
        let mut memo: HashMap<Ref, Ref> = HashMap::new();
        self.permute_rec(f, map, &mut memo)
    }

    fn permute_rec(&mut self, f: Ref, map: &[usize], memo: &mut HashMap<Ref, Ref>) -> Ref {
        if f == Ref::TRUE || f == Ref::FALSE {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.node(f);
        let lo = self.permute_rec(n.lo, map, memo);
        let hi = self.permute_rec(n.hi, map, memo);
        let v = self.var(map[n.var as usize]);
        let r = self.ite(v, hi, lo);
        memo.insert(f, r);
        r
    }

    /// Enumerates the distinct subfunctions (compatible class
    /// representatives) obtained by cofactoring `f` on every assignment of
    /// `bound` — the BDD-cut view of Roth–Karp decomposition used by the
    /// λ-set selection of reference `[2]`.
    ///
    /// Returns one entry per bound-set assignment (index = assignment in
    /// little-endian order of `bound`), containing the canonical `Ref` of
    /// that cofactor. The number of *distinct* refs is the compatible class
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `bound.len() > 20` or a variable repeats/exceeds range.
    pub fn cut_subfunctions(&mut self, f: Ref, bound: &[usize]) -> Vec<Ref> {
        assert!(bound.len() <= 20, "bound set too large to enumerate");
        let mut seen = std::collections::HashSet::new();
        for &v in bound {
            assert!(v < self.num_vars, "bound variable out of range");
            assert!(seen.insert(v), "bound variable repeated");
        }
        let mut out = Vec::with_capacity(1 << bound.len());
        for a in 0u32..(1u32 << bound.len()) {
            let mut g = f;
            for (i, &v) in bound.iter().enumerate() {
                g = self.restrict_rec(g, v as u32, a >> i & 1 == 1);
            }
            out.push(g);
        }
        out
    }

    /// Convenience: the number of distinct cofactors of `f` under `bound`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Bdd::cut_subfunctions`].
    pub fn compatible_class_count(&mut self, f: Ref, bound: &[usize]) -> usize {
        let subs = self.cut_subfunctions(f, bound);
        let set: std::collections::HashSet<Ref> = subs.into_iter().collect();
        set.len()
    }

    /// Decomposes a non-terminal node into `(var, lo, hi)` — the raw
    /// Shannon triple, used by structural copies between managers.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn node_parts(&self, f: Ref) -> (usize, Ref, Ref) {
        assert!(
            f != Ref::TRUE && f != Ref::FALSE,
            "terminals have no Shannon triple"
        );
        let n = self.node(f);
        (n.var as usize, n.lo, n.hi)
    }

    /// Conjoins `f` with a cube given as `(var, value)` literals.
    ///
    /// # Panics
    ///
    /// Panics if a variable is out of range.
    pub fn and_cube(&mut self, f: Ref, literals: &[(usize, bool)]) -> Ref {
        let mut acc = f;
        for &(v, val) in literals {
            let lit = if val { self.var(v) } else { self.nvar(v) };
            acc = self.and(acc, lit);
        }
        acc
    }

    /// Restricts `f` by a cube: every listed variable is fixed to its value.
    ///
    /// # Panics
    ///
    /// Panics if a variable is out of range.
    pub fn restrict_cube(&mut self, f: Ref, literals: &[(usize, bool)]) -> Ref {
        let mut acc = f;
        for &(v, val) in literals {
            assert!(v < self.num_vars, "variable out of range");
            acc = self.restrict_rec(acc, v as u32, val);
        }
        acc
    }

    /// Enumerates the minterms of `f` (ascending). Intended for small
    /// functions; the result has `sat_count` entries.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 24` (guard against huge enumerations).
    pub fn minterms(&self, f: Ref) -> Vec<u32> {
        assert!(
            self.num_vars <= 24,
            "minterm enumeration limited to 24 vars"
        );
        (0..(1u32 << self.num_vars))
            .filter(|&m| self.eval(f, m))
            .collect()
    }

    /// Emits a Graphviz `dot` description of the BDD rooted at `f`
    /// (terminals as boxes, else-edges dashed) — handy when debugging
    /// decomposition cuts.
    pub fn to_dot(&self, f: Ref, name: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{name}\" {{");
        let _ = writeln!(s, "  T [shape=box,label=\"1\"]; F [shape=box,label=\"0\"];");
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r == Ref::TRUE || r == Ref::FALSE || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            let _ = writeln!(s, "  n{} [label=\"x{}\"];", r.0, n.var);
            let fmt_ref = |x: Ref| match x {
                Ref::TRUE => "T".to_string(),
                Ref::FALSE => "F".to_string(),
                other => format!("n{}", other.0),
            };
            let _ = writeln!(s, "  n{} -> {} [style=dashed];", r.0, fmt_ref(n.lo));
            let _ = writeln!(s, "  n{} -> {};", r.0, fmt_ref(n.hi));
            stack.push(n.lo);
            stack.push(n.hi);
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals() {
        let bdd = Bdd::new(3);
        assert_eq!(bdd.zero(), Ref::FALSE);
        assert_eq!(bdd.one(), Ref::TRUE);
        assert_eq!(bdd.sat_count(Ref::TRUE), 8);
        assert_eq!(bdd.sat_count(Ref::FALSE), 0);
    }

    #[test]
    fn canonical_hash_consing() {
        let mut bdd = Bdd::new(2);
        let a1 = bdd.var(0);
        let a2 = bdd.var(0);
        assert_eq!(a1, a2);
        let b = bdd.var(1);
        let ab1 = bdd.and(a1, b);
        let ab2 = bdd.and(b, a1);
        assert_eq!(ab1, ab2);
    }

    #[test]
    fn connectives_match_semantics() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let f = bdd.or(ab, c);
        let x = bdd.xor(a, b);
        for m in 0u32..8 {
            let (av, bv, cv) = (m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1);
            assert_eq!(bdd.eval(f, m), (av && bv) || cv);
            assert_eq!(bdd.eval(x, m), av != bv);
        }
    }

    #[test]
    fn not_is_involution() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0);
        let b = bdd.var(3);
        let f = bdd.xor(a, b);
        let nf = bdd.not(f);
        let nnf = bdd.not(nf);
        assert_eq!(f, nnf);
        assert_ne!(f, nf);
    }

    #[test]
    fn cofactor_and_quantification() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let c1 = bdd.cofactor(f, 0, true);
        assert_eq!(c1, b);
        let c0 = bdd.cofactor(f, 0, false);
        assert_eq!(c0, Ref::FALSE);
        let e = bdd.exists(f, 0);
        assert_eq!(e, b);
        let u = bdd.forall(f, 0);
        assert_eq!(u, Ref::FALSE);
    }

    #[test]
    fn compose_substitutes() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let f = bdd.and(a, b);
        let g = bdd.compose(f, 0, c);
        let expect = bdd.and(c, b);
        assert_eq!(g, expect);
    }

    #[test]
    fn support_tracks_dependencies() {
        let mut bdd = Bdd::new(5);
        let a = bdd.var(1);
        let b = bdd.var(4);
        let f = bdd.or(a, b);
        assert_eq!(bdd.support(f), vec![1, 4]);
        assert!(bdd.support(Ref::TRUE).is_empty());
    }

    #[test]
    fn sat_count_with_gaps() {
        let mut bdd = Bdd::new(4);
        // f = x1 (vars 0,2,3 free): 8 satisfying assignments.
        let f = bdd.var(1);
        assert_eq!(bdd.sat_count(f), 8);
        let g = bdd.var(3);
        let fg = bdd.and(f, g);
        assert_eq!(bdd.sat_count(fg), 4);
    }

    #[test]
    fn from_fn_matches_predicate() {
        let mut bdd = Bdd::new(4);
        let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
        for m in 0u32..16 {
            assert_eq!(bdd.eval(f, m), m.count_ones() % 2 == 1);
        }
        // Parity over n vars has n internal nodes per level... just check
        // canonicity of the well-known size: 2 nodes per level except top.
        assert_eq!(bdd.node_count(f), 7);
    }

    #[test]
    fn permute_renames_variables() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let g = bdd.permute(f, &[2, 1, 0]);
        let b2 = bdd.var(1);
        let c = bdd.var(2);
        let expect = bdd.and(c, b2);
        assert_eq!(g, expect);
    }

    #[test]
    fn cut_subfunctions_counts_classes() {
        let mut bdd = Bdd::new(4);
        // f = (x0 & x1) | (x2 & x3): bound {0,1} gives 2 classes
        // (cofactors: x2&x3, TRUE).
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let d = bdd.var(3);
        let ab = bdd.and(a, b);
        let cd = bdd.and(c, d);
        let f = bdd.or(ab, cd);
        assert_eq!(bdd.compatible_class_count(f, &[0, 1]), 2);
        // Bound {0,2}: cofactors x1|x3... let's just check bounds.
        let n = bdd.compatible_class_count(f, &[0, 2]);
        assert!((2..=4).contains(&n));
    }

    #[test]
    fn cut_subfunctions_full_assignment_order() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.xor(a, b);
        let subs = bdd.cut_subfunctions(f, &[0, 1]);
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0], Ref::FALSE); // a=0,b=0
        assert_eq!(subs[1], Ref::TRUE); // a=1,b=0
        assert_eq!(subs[2], Ref::TRUE);
        assert_eq!(subs[3], Ref::FALSE);
    }

    #[test]
    fn parity_has_single_class_pairs() {
        let mut bdd = Bdd::new(6);
        let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
        // Any bound set of a parity function yields exactly 2 classes.
        assert_eq!(bdd.compatible_class_count(f, &[0, 1, 2]), 2);
        assert_eq!(bdd.compatible_class_count(f, &[1, 3, 5]), 2);
    }

    #[test]
    fn random_equivalence_with_semantics() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        for _ in 0..20 {
            let mut bdd = Bdd::new(6);
            let bits: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
            let f = bdd.from_fn(|m| bits[m as usize]);
            for (m, &b) in bits.iter().enumerate() {
                assert_eq!(bdd.eval(f, m as u32), b);
            }
            assert_eq!(
                bdd.sat_count(f),
                bits.iter().filter(|&&b| b).count() as u128
            );
        }
    }

    #[test]
    #[should_panic(expected = "variable out of range")]
    fn var_out_of_range_panics() {
        let mut bdd = Bdd::new(2);
        let _ = bdd.var(2);
    }

    #[test]
    fn cube_operations() {
        let mut bdd = Bdd::new(4);
        let f = bdd.from_fn(|m| m.count_ones() >= 2);
        let g = bdd.and_cube(f, &[(0, true), (1, false)]);
        for m in 0u32..16 {
            let inside = m & 1 == 1 && m >> 1 & 1 == 0;
            assert_eq!(bdd.eval(g, m), inside && m.count_ones() >= 2);
        }
        let h = bdd.restrict_cube(f, &[(0, true), (1, true)]);
        // With two ones already fixed, h is the tautology.
        assert_eq!(h, Ref::TRUE);
    }

    #[test]
    fn minterm_enumeration() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let c = bdd.var(2);
        let f = bdd.and(a, c);
        assert_eq!(bdd.minterms(f), vec![0b101, 0b111]);
    }

    #[test]
    fn dot_export_mentions_every_node() {
        let mut bdd = Bdd::new(3);
        let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
        let dot = bdd.to_dot(f, "parity3");
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("label=\"x").count(), bdd.node_count(f));
        assert!(dot.contains("style=dashed"));
    }
}
