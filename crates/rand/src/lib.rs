//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched from crates.io. This workspace-local crate provides the
//! (small) API subset the HYDE codebase actually uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], the [`Rng`] convenience methods
//! (`gen`, `gen_bool`, `gen_range`) and [`seq::SliceRandom::shuffle`] —
//! backed by a deterministic xoshiro256++ generator seeded via SplitMix64.
//!
//! Every consumer in this repository seeds explicitly (reproducible runs),
//! so no entropy source is required or provided.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64` state.
pub trait SeedableRng: Sized {
    /// Creates a generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core random-value interface: a `u64` source plus derived samplers.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from the standard distribution
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the standard distribution via [`Rng::gen`].
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl SampleStandard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_uniform<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The largest representable value (for inclusive upper bounds).
    fn checked_inclusive_end(high: Self) -> Option<Self>;
}

macro_rules! impl_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_uniform<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u);
                // Multiply-shift reduction keeps the modulo bias negligible
                // for the span sizes used in this workspace.
                let draw = (rng.next_u64() as u128 * span as u128 >> 64) as $u;
                low.wrapping_add(draw as $t)
            }
            fn checked_inclusive_end(high: Self) -> Option<Self> {
                high.checked_add(1)
            }
        }
    )*};
}
impl_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

impl<T: SampleUniform> SampleRange for Range<T> {
    type Output = T;
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange for RangeInclusive<T> {
    type Output = T;
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        match T::checked_inclusive_end(end) {
            Some(e) => T::sample_uniform(rng, start, e),
            None => {
                // Full-width inclusive end: raw bits are already uniform.
                let _ = start;
                T::sample_uniform(rng, start, end)
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded by
    /// SplitMix64. Deterministic for a given seed, `Clone`-able to fork
    /// reproducible streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..6i64);
            assert!((-5..6).contains(&w));
            let x = rng.gen_range(2..=5usize);
            assert!((2..=5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..64 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn standard_samples() {
        let mut rng = StdRng::seed_from_u64(11);
        let _: bool = rng.gen();
        let _: u64 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
