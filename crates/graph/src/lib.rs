//! Combinatorial algorithms backing the HYDE encoding engine.
//!
//! The compatible class encoding procedure of the HYDE paper (Jiang, Jou,
//! Huang, DAC 1998) leans on three classic optimization kernels, all of which
//! are implemented here from scratch:
//!
//! * [`blossom::maximum_matching`] — maximum-cardinality matching in general
//!   graphs (Edmonds' blossom algorithm). Used for the row-graph matching of
//!   Step 7 of the encoding procedure and for XC3000 CLB packing.
//! * [`bmatching::max_weight_b_matching`] — exact maximum-weight bipartite
//!   *b*-matching (degree-capacitated), solved as a min-cost max-flow problem
//!   with Johnson potentials. Used for the column-graph matching of Step 5.
//! * [`clique::partition_into_cliques`] — a polynomial-time clique
//!   partitioning heuristic in the style of Tseng–Siewiorek (cited by the
//!   paper via Gajski et al., *High-Level Synthesis*). Used for the
//!   don't-care assignment of Section 3.1.
//!
//! Supporting kernels: [`mcmf::MinCostFlow`] (successive shortest augmenting
//! paths), [`hopcroft_karp::max_bipartite_matching`], and
//! [`weighted::greedy_weighted_matching`].
//!
//! # Example
//!
//! ```
//! use hyde_graph::blossom::maximum_matching;
//!
//! // A 4-cycle has a perfect matching of size 2.
//! let matching = maximum_matching(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! assert_eq!(matching.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blossom;
pub mod bmatching;
pub mod clique;
pub mod exact;
pub mod hopcroft_karp;
pub mod mcmf;
pub mod weighted;

pub use blossom::maximum_matching;
pub use bmatching::{max_weight_b_matching, BMatchingProblem};
pub use clique::{partition_into_cliques, CliquePartition};
pub use exact::max_weight_matching_exact;
pub use hopcroft_karp::max_bipartite_matching;
pub use mcmf::MinCostFlow;
pub use weighted::greedy_weighted_matching;
