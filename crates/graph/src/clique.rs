//! Clique partitioning heuristic for the don't-care assignment of Section
//! 3.1 of the HYDE paper.
//!
//! Vertices are λ-set cells (chart columns); an edge connects two cells iff
//! they can be made compatible under some don't-care assignment. HYDE wants
//! the minimum number of cliques covering every vertex exactly once — each
//! clique collapses into one compatible class. The problem is NP-complete,
//! so, following the paper's citation of Gajski et al. (*High-Level
//! Synthesis*), we use the Tseng–Siewiorek style polynomial heuristic:
//! repeatedly merge the pair of compatible super-vertices with the largest
//! number of common compatible neighbours.

/// A partition of `0..n` into cliques of a compatibility graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliquePartition {
    /// The cliques; every vertex appears in exactly one, each clique sorted.
    pub cliques: Vec<Vec<usize>>,
    /// `class_of[v]` = index into `cliques` containing `v`.
    pub class_of: Vec<usize>,
}

impl CliquePartition {
    /// Number of cliques (compatible classes after don't-care assignment).
    pub fn len(&self) -> usize {
        self.cliques.len()
    }

    /// Whether the partition is empty (zero vertices).
    pub fn is_empty(&self) -> bool {
        self.cliques.is_empty()
    }
}

/// Partitions the vertices `0..n` of an undirected compatibility graph into
/// a small number of cliques.
///
/// `compatible(u, v)` must be symmetric and is queried for `u != v`. The
/// result covers every vertex exactly once and every returned group is a
/// clique under `compatible`.
///
/// The heuristic runs in `O(n^3)` worst case: candidate super-vertex pairs
/// are scored by their number of common mergeable neighbours (ties broken by
/// smaller index for determinism), merged until no mergeable pair remains.
///
/// # Example
///
/// ```
/// use hyde_graph::partition_into_cliques;
///
/// // 0-1-2 is a triangle, 3 is isolated: 2 cliques.
/// let adj = [[false, true, true, false],
///            [true, false, true, false],
///            [true, true, false, false],
///            [false, false, false, false]];
/// let p = partition_into_cliques(4, |u, v| adj[u][v]);
/// assert_eq!(p.len(), 2);
/// ```
pub fn partition_into_cliques<F>(n: usize, compatible: F) -> CliquePartition
where
    F: Fn(usize, usize) -> bool,
{
    // Super-vertices: groups of original vertices already merged.
    let mut groups: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let mut alive: Vec<bool> = vec![true; n];

    // Two super-vertices can merge iff every cross pair is compatible
    // (cliques must stay cliques).
    let mergeable = |groups: &Vec<Vec<usize>>, a: usize, b: usize| -> bool {
        groups[a]
            .iter()
            .all(|&u| groups[b].iter().all(|&v| compatible(u, v)))
    };

    loop {
        // Find the mergeable pair with the most common mergeable neighbours.
        let mut best: Option<(usize, usize, usize)> = None; // (score, a, b)
        let live: Vec<usize> = (0..groups.len()).filter(|&i| alive[i]).collect();
        for (ia, &a) in live.iter().enumerate() {
            for &b in &live[ia + 1..] {
                if !mergeable(&groups, a, b) {
                    continue;
                }
                let score = live
                    .iter()
                    .filter(|&&c| {
                        c != a && c != b && mergeable(&groups, a, c) && mergeable(&groups, b, c)
                    })
                    .count();
                let cand = (score, a, b);
                best = Some(match best {
                    None => cand,
                    Some(prev) => {
                        if cand.0 > prev.0 {
                            cand
                        } else {
                            prev
                        }
                    }
                });
            }
        }
        match best {
            None => break,
            Some((_, a, b)) => {
                let moved = std::mem::take(&mut groups[b]);
                groups[a].extend(moved);
                alive[b] = false;
            }
        }
    }

    let mut cliques: Vec<Vec<usize>> = groups
        .into_iter()
        .zip(alive)
        .filter(|(_, live)| *live)
        .map(|(mut g, _)| {
            g.sort_unstable();
            g
        })
        .collect();
    cliques.sort();
    let mut class_of = vec![0usize; n];
    for (i, c) in cliques.iter().enumerate() {
        for &v in c {
            class_of[v] = i;
        }
    }
    CliquePartition { cliques, class_of }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(n: usize, p: &CliquePartition, compatible: impl Fn(usize, usize) -> bool) {
        let mut seen = vec![false; n];
        for c in &p.cliques {
            for (i, &u) in c.iter().enumerate() {
                assert!(!seen[u], "vertex {u} covered twice");
                seen[u] = true;
                for &v in &c[i + 1..] {
                    assert!(compatible(u, v), "non-clique pair ({u},{v})");
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "some vertex uncovered");
        for (v, &cls) in p.class_of.iter().enumerate() {
            assert!(p.cliques[cls].contains(&v));
        }
    }

    #[test]
    fn empty_graph() {
        let p = partition_into_cliques(0, |_, _| true);
        assert!(p.is_empty());
    }

    #[test]
    fn all_compatible_is_single_clique() {
        let p = partition_into_cliques(6, |_, _| true);
        assert_eq!(p.len(), 1);
        check(6, &p, |_, _| true);
    }

    #[test]
    fn no_edges_gives_singletons() {
        let p = partition_into_cliques(5, |_, _| false);
        assert_eq!(p.len(), 5);
        check(5, &p, |_, _| false);
    }

    #[test]
    fn two_disjoint_triangles() {
        let compatible = |u: usize, v: usize| (u / 3) == (v / 3);
        let p = partition_into_cliques(6, compatible);
        assert_eq!(p.len(), 2);
        check(6, &p, compatible);
    }

    #[test]
    fn path_graph_needs_ceil_half() {
        // Path 0-1-2-3: cliques are edges/vertices; optimum is 2.
        let compatible = |u: usize, v: usize| u.abs_diff(v) == 1;
        let p = partition_into_cliques(4, compatible);
        assert_eq!(p.len(), 2);
        check(4, &p, compatible);
    }

    #[test]
    fn five_cycle() {
        // C5: max clique size 2, optimum partition = 3 cliques.
        let compatible = |u: usize, v: usize| (u + 1) % 5 == v || (v + 1) % 5 == u;
        let p = partition_into_cliques(5, compatible);
        assert_eq!(p.len(), 3);
        check(5, &p, compatible);
    }

    #[test]
    fn heuristic_not_fooled_by_star() {
        // Star K1,4: center compatible with all leaves, leaves mutually not.
        // Optimum: 4 cliques (center pairs with one leaf).
        let compatible = |u: usize, v: usize| u == 0 || v == 0;
        let p = partition_into_cliques(5, compatible);
        assert_eq!(p.len(), 4);
        check(5, &p, compatible);
    }

    #[test]
    fn random_graphs_always_valid() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let n = rng.gen_range(1..12usize);
            let mut adj = vec![vec![false; n]; n];
            for (u, v) in (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))) {
                let e = rng.gen_bool(0.5);
                adj[u][v] = e;
                adj[v][u] = e;
            }
            let p = partition_into_cliques(n, |u, v| adj[u][v]);
            check(n, &p, |u, v| adj[u][v]);
            assert!(p.len() <= n);
        }
    }
}
