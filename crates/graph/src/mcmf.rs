//! Minimum-cost maximum-flow via successive shortest augmenting paths with
//! Johnson potentials (Dijkstra on reduced costs).
//!
//! This is the exact engine behind [`crate::bmatching`]: a maximum-weight
//! bipartite *b*-matching is a min-cost flow with negated edge weights.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A directed edge in the flow network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FlowEdge {
    to: usize,
    cap: i64,
    cost: i64,
    /// index of the reverse edge in `graph[to]`
    rev: usize,
}

/// Min-cost max-flow solver on a directed graph with integer capacities and
/// costs.
///
/// Negative edge costs are allowed as long as the initial graph has no
/// negative cycle; a Bellman–Ford pass establishes valid potentials before
/// the Dijkstra phases.
///
/// # Example
///
/// ```
/// use hyde_graph::MinCostFlow;
///
/// let mut net = MinCostFlow::new(4);
/// net.add_edge(0, 1, 2, 1);
/// net.add_edge(0, 2, 1, 2);
/// net.add_edge(1, 3, 1, 1);
/// net.add_edge(2, 3, 2, 1);
/// net.add_edge(1, 2, 1, 1);
/// let (flow, cost) = net.run(0, 3, i64::MAX);
/// assert_eq!(flow, 3);
/// assert_eq!(cost, 8);
/// ```
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    graph: Vec<Vec<FlowEdge>>,
}

impl MinCostFlow {
    /// Creates an empty network with `n` vertices.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            graph: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the network has no vertices.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `from -> to` with capacity `cap` and per-unit
    /// `cost`. Returns an identifier usable with [`MinCostFlow::flow_on`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `cap < 0`.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: i64) -> EdgeId {
        assert!(from < self.graph.len() && to < self.graph.len());
        assert!(cap >= 0, "capacity must be non-negative");
        let fwd = self.graph[from].len();
        let bwd = self.graph[to].len() + usize::from(from == to);
        self.graph[from].push(FlowEdge {
            to,
            cap,
            cost,
            rev: bwd,
        });
        self.graph[to].push(FlowEdge {
            to: from,
            cap: 0,
            cost: -cost,
            rev: fwd,
        });
        EdgeId {
            from,
            index: fwd,
            original_cap: cap,
        }
    }

    /// Flow currently routed through the edge `id` (after [`MinCostFlow::run`]).
    pub fn flow_on(&self, id: EdgeId) -> i64 {
        id.original_cap - self.graph[id.from][id.index].cap
    }

    /// Pushes up to `limit` units of flow from `source` to `sink`, always
    /// along cheapest residual paths. Returns `(flow, total_cost)`.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn run(&mut self, source: usize, sink: usize, limit: i64) -> (i64, i64) {
        let n = self.graph.len();
        assert!(source < n && sink < n && source != sink);
        let mut potential = self.initial_potentials(source);
        let mut flow = 0i64;
        let mut cost = 0i64;
        while flow < limit {
            // Dijkstra on reduced costs.
            let mut dist = vec![i64::MAX; n];
            let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
            dist[source] = 0;
            let mut heap = BinaryHeap::new();
            heap.push(Reverse((0i64, source)));
            while let Some(Reverse((d, v))) = heap.pop() {
                if d > dist[v] {
                    continue;
                }
                for (i, e) in self.graph[v].iter().enumerate() {
                    if e.cap <= 0 || potential[v] == i64::MAX || potential[e.to] == i64::MAX {
                        continue;
                    }
                    let nd = d + e.cost + potential[v] - potential[e.to];
                    if nd < dist[e.to] {
                        dist[e.to] = nd;
                        prev[e.to] = Some((v, i));
                        heap.push(Reverse((nd, e.to)));
                    }
                }
            }
            if dist[sink] == i64::MAX {
                break;
            }
            for v in 0..n {
                if dist[v] < i64::MAX && potential[v] < i64::MAX {
                    potential[v] += dist[v];
                }
            }
            // Bottleneck along the path.
            let mut push = limit - flow;
            let mut v = sink;
            while let Some((u, i)) = prev[v] {
                push = push.min(self.graph[u][i].cap);
                v = u;
            }
            let mut v = sink;
            while let Some((u, i)) = prev[v] {
                let rev = self.graph[u][i].rev;
                self.graph[u][i].cap -= push;
                self.graph[v][rev].cap += push;
                cost += push * self.graph[u][i].cost;
                v = u;
            }
            flow += push;
        }
        (flow, cost)
    }

    /// Bellman–Ford from `source` to support negative edge costs in the
    /// initial graph. Unreachable vertices keep potential `i64::MAX`.
    fn initial_potentials(&self, source: usize) -> Vec<i64> {
        let n = self.graph.len();
        let mut pot = vec![i64::MAX; n];
        pot[source] = 0;
        for _ in 0..n {
            let mut changed = false;
            for v in 0..n {
                if pot[v] == i64::MAX {
                    continue;
                }
                for e in &self.graph[v] {
                    if e.cap > 0 && pot[v] + e.cost < pot[e.to] {
                        pot[e.to] = pot[v] + e.cost;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        pot
    }
}

/// Identifier for an edge added with [`MinCostFlow::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId {
    from: usize,
    index: usize,
    original_cap: i64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_two_paths() {
        let mut net = MinCostFlow::new(4);
        net.add_edge(0, 1, 1, 1);
        net.add_edge(0, 2, 1, 5);
        net.add_edge(1, 3, 1, 1);
        net.add_edge(2, 3, 1, 1);
        let (flow, cost) = net.run(0, 3, i64::MAX);
        assert_eq!(flow, 2);
        assert_eq!(cost, 8);
    }

    #[test]
    fn respects_flow_limit() {
        let mut net = MinCostFlow::new(2);
        net.add_edge(0, 1, 10, 3);
        let (flow, cost) = net.run(0, 1, 4);
        assert_eq!(flow, 4);
        assert_eq!(cost, 12);
    }

    #[test]
    fn negative_costs_handled_with_bellman_ford() {
        let mut net = MinCostFlow::new(4);
        net.add_edge(0, 1, 1, -5);
        net.add_edge(0, 2, 1, 1);
        net.add_edge(1, 3, 1, 1);
        net.add_edge(2, 3, 1, 1);
        let (flow, cost) = net.run(0, 3, i64::MAX);
        assert_eq!(flow, 2);
        assert_eq!(cost, -2);
    }

    #[test]
    fn disconnected_sink_gives_zero_flow() {
        let mut net = MinCostFlow::new(3);
        net.add_edge(0, 1, 5, 1);
        let (flow, cost) = net.run(0, 2, i64::MAX);
        assert_eq!(flow, 0);
        assert_eq!(cost, 0);
    }

    #[test]
    fn flow_on_reports_per_edge_flow() {
        let mut net = MinCostFlow::new(3);
        let cheap = net.add_edge(0, 1, 2, 1);
        let e2 = net.add_edge(1, 2, 1, 1);
        let direct = net.add_edge(0, 2, 1, 10);
        let (flow, _) = net.run(0, 2, i64::MAX);
        assert_eq!(flow, 2);
        assert_eq!(net.flow_on(cheap), 1);
        assert_eq!(net.flow_on(e2), 1);
        assert_eq!(net.flow_on(direct), 1);
    }

    #[test]
    fn prefers_cheapest_path_mixture() {
        // Sending 2 units: one via cost-2 path, one via cost-4 path.
        let mut net = MinCostFlow::new(5);
        net.add_edge(0, 1, 1, 1);
        net.add_edge(1, 4, 1, 1);
        net.add_edge(0, 2, 1, 2);
        net.add_edge(2, 4, 1, 2);
        net.add_edge(0, 3, 1, 10);
        net.add_edge(3, 4, 1, 10);
        let (flow, cost) = net.run(0, 4, 2);
        assert_eq!(flow, 2);
        assert_eq!(cost, 6);
    }
}
