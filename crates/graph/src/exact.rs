//! Exact maximum-weight matching on small graphs by bitmask dynamic
//! programming.
//!
//! The encoding procedure's row matching is heuristic (greedy weight order
//! over a maximum-cardinality matching, as the paper prescribes); this
//! exact `O(2^n · n)` solver bounds how much that heuristic gives up and
//! serves as the test oracle for the other matching engines. Practical up
//! to ~22 vertices.

/// Computes an exact maximum-weight matching.
///
/// Only edges with positive weight are used (a maximum-weight matching
/// never benefits from non-positive edges). Returns the selected edges and
/// the total weight.
///
/// # Panics
///
/// Panics if `n > 24` (the DP table would be too large) or an endpoint is
/// out of range.
///
/// # Example
///
/// ```
/// use hyde_graph::exact::max_weight_matching_exact;
///
/// let (edges, w) = max_weight_matching_exact(4, &[(0, 1, 3), (1, 2, 5), (2, 3, 3)]);
/// // Taking the two outer edges (3 + 3) beats the single middle edge (5).
/// assert_eq!(w, 6);
/// assert_eq!(edges.len(), 2);
/// ```
pub fn max_weight_matching_exact(
    n: usize,
    edges: &[(usize, usize, i64)],
) -> (Vec<(usize, usize, i64)>, i64) {
    assert!(n <= 24, "exact matching limited to 24 vertices");
    let useful: Vec<(usize, usize, i64)> = edges
        .iter()
        .copied()
        .filter(|&(u, v, w)| u != v && w > 0)
        .collect();
    for &(u, v, _) in &useful {
        assert!(u < n && v < n, "edge endpoint out of range");
    }
    let full = 1usize << n;
    // dp[mask] = best weight using only vertices in `mask`.
    let mut dp = vec![0i64; full];
    let mut choice: Vec<Option<usize>> = vec![None; full];
    for mask in 1..full {
        // Skip masks whose lowest vertex is unmatched (it either stays
        // unmatched or pairs with someone).
        let low = mask.trailing_zeros() as usize;
        let without = mask & !(1 << low);
        // Option 1: leave the lowest vertex unmatched.
        dp[mask] = dp[without];
        choice[mask] = None;
        for (ei, &(u, v, w)) in useful.iter().enumerate() {
            let (a, b) = (u.min(v), u.max(v));
            if a != low || mask >> b & 1 == 0 {
                continue;
            }
            let rest = mask & !(1 << a) & !(1 << b);
            if dp[rest] + w > dp[mask] {
                dp[mask] = dp[rest] + w;
                choice[mask] = Some(ei);
            }
        }
    }
    // Reconstruct.
    let mut mask = full - 1;
    let mut selected = Vec::new();
    while mask != 0 {
        let low = mask.trailing_zeros() as usize;
        match choice[mask] {
            Some(ei) => {
                let (u, v, w) = useful[ei];
                selected.push((u.min(v), u.max(v), w));
                mask &= !(1 << u) & !(1 << v);
            }
            None => {
                mask &= !(1 << low);
            }
        }
    }
    selected.sort_unstable();
    (selected, dp[full - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighted::greedy_weighted_matching;

    #[test]
    fn empty_and_trivial() {
        assert_eq!(max_weight_matching_exact(0, &[]).1, 0);
        assert_eq!(max_weight_matching_exact(3, &[]).1, 0);
        let (m, w) = max_weight_matching_exact(2, &[(0, 1, 7)]);
        assert_eq!(w, 7);
        assert_eq!(m, vec![(0, 1, 7)]);
    }

    #[test]
    fn beats_single_heavy_edge_when_pair_sums_higher() {
        let (_, w) = max_weight_matching_exact(4, &[(0, 1, 3), (1, 2, 5), (2, 3, 3)]);
        assert_eq!(w, 6);
    }

    #[test]
    fn ignores_non_positive_edges() {
        let (m, w) = max_weight_matching_exact(4, &[(0, 1, -5), (2, 3, 0)]);
        assert_eq!(w, 0);
        assert!(m.is_empty());
    }

    #[test]
    fn exact_dominates_greedy() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..60 {
            let n = rng.gen_range(2..10usize);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.5) {
                        edges.push((u, v, rng.gen_range(1..20i64)));
                    }
                }
            }
            let (exact_m, exact_w) = max_weight_matching_exact(n, &edges);
            let greedy_w: i64 = greedy_weighted_matching(n, &edges)
                .iter()
                .map(|e| e.2)
                .sum();
            assert!(exact_w >= greedy_w, "exact below greedy");
            assert!(2 * greedy_w >= exact_w, "greedy below half of optimum");
            // Validity of the exact matching.
            let mut used = vec![false; n];
            let mut total = 0;
            for &(u, v, w) in &exact_m {
                assert!(!used[u] && !used[v]);
                used[u] = true;
                used[v] = true;
                total += w;
            }
            assert_eq!(total, exact_w);
        }
    }

    #[test]
    fn matches_brute_force_small() {
        use rand::{Rng, SeedableRng};
        fn brute(edges: &[(usize, usize, i64)], used: &mut Vec<bool>, i: usize) -> i64 {
            if i == edges.len() {
                return 0;
            }
            let mut best = brute(edges, used, i + 1);
            let (u, v, w) = edges[i];
            if w > 0 && !used[u] && !used[v] && u != v {
                used[u] = true;
                used[v] = true;
                best = best.max(w + brute(edges, used, i + 1));
                used[u] = false;
                used[v] = false;
            }
            best
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..40 {
            let n = rng.gen_range(2..7usize);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.6) {
                        edges.push((u, v, rng.gen_range(-3..15i64)));
                    }
                }
            }
            let (_, w) = max_weight_matching_exact(n, &edges);
            assert_eq!(w, brute(&edges, &mut vec![false; n], 0));
        }
    }
}
