//! Exact maximum-weight bipartite *b*-matching.
//!
//! Step 5 of the HYDE encoding procedure builds a bipartite *column graph*
//! `Gc(Vc, Uc, Ec)`: one vertex per partition in `Vc`, one vertex per
//! same-content position set (`Psc`) in `Uc`, and weighted edges between
//! them. It then asks for a *b-matching of maximum weight* in which every
//! `Vc` vertex has degree at most 1 and every `Uc` vertex degree at most
//! `#R` (the paper cites Nemhauser & Wolsey for the b-matching machinery).
//!
//! We solve the problem exactly by reduction to min-cost max-flow with
//! negated weights, taking the best answer over every achievable flow value
//! (successive shortest paths produce the cheapest flow *per flow value*, so
//! scanning prefix costs yields the maximum-weight — not maximum-cardinality
//! — matching).

use crate::mcmf::MinCostFlow;

/// A maximum-weight bipartite b-matching problem.
///
/// Left vertices (`0..left`) have degree cap `left_cap[i]`; right vertices
/// (`0..right`) have cap `right_cap[j]`. Edges carry integer weights; only
/// edges with positive weight can improve the objective, but zero/negative
/// weight edges are accepted and simply never selected.
#[derive(Debug, Clone, Default)]
pub struct BMatchingProblem {
    left_cap: Vec<i64>,
    right_cap: Vec<i64>,
    edges: Vec<(usize, usize, i64)>,
}

impl BMatchingProblem {
    /// Creates a problem with the given per-side degree capacities.
    pub fn new(left_cap: Vec<i64>, right_cap: Vec<i64>) -> Self {
        BMatchingProblem {
            left_cap,
            right_cap,
            edges: Vec::new(),
        }
    }

    /// Adds an edge between left vertex `l` and right vertex `r` with the
    /// given weight.
    ///
    /// # Panics
    ///
    /// Panics if `l` or `r` is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize, weight: i64) {
        assert!(l < self.left_cap.len(), "left vertex out of range");
        assert!(r < self.right_cap.len(), "right vertex out of range");
        self.edges.push((l, r, weight));
    }

    /// Solves the problem; see [`max_weight_b_matching`].
    pub fn solve(&self) -> BMatching {
        max_weight_b_matching(&self.left_cap, &self.right_cap, &self.edges)
    }
}

/// Result of a b-matching solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BMatching {
    /// Selected edges as `(left, right, weight)`.
    pub edges: Vec<(usize, usize, i64)>,
    /// Sum of selected edge weights.
    pub weight: i64,
}

/// Computes an exact maximum-weight b-matching of a bipartite graph.
///
/// `left_cap[i]` / `right_cap[j]` bound the degree of each vertex in the
/// matching. Edges with non-positive weight are never selected (selecting
/// them cannot increase the weight, and the empty matching is feasible).
///
/// # Panics
///
/// Panics if an edge endpoint is out of range or a capacity is negative.
///
/// # Example
///
/// ```
/// use hyde_graph::max_weight_b_matching;
///
/// // One right vertex with capacity 2 can absorb both left vertices.
/// let m = max_weight_b_matching(&[1, 1], &[2], &[(0, 0, 5), (1, 0, 7)]);
/// assert_eq!(m.weight, 12);
/// assert_eq!(m.edges.len(), 2);
/// ```
pub fn max_weight_b_matching(
    left_cap: &[i64],
    right_cap: &[i64],
    edges: &[(usize, usize, i64)],
) -> BMatching {
    for &c in left_cap.iter().chain(right_cap) {
        assert!(c >= 0, "capacities must be non-negative");
    }
    let nl = left_cap.len();
    let nr = right_cap.len();
    // Node layout: 0 = source, 1..=nl left, nl+1..=nl+nr right, last = sink.
    let source = 0;
    let sink = nl + nr + 1;
    let mut net = MinCostFlow::new(nl + nr + 2);
    for (i, &c) in left_cap.iter().enumerate() {
        net.add_edge(source, 1 + i, c, 0);
    }
    for (j, &c) in right_cap.iter().enumerate() {
        net.add_edge(nl + 1 + j, sink, c, 0);
    }
    let mut ids = Vec::with_capacity(edges.len());
    for &(l, r, w) in edges {
        assert!(l < nl && r < nr, "edge endpoint out of range");
        if w <= 0 {
            ids.push(None);
            continue;
        }
        ids.push(Some(net.add_edge(1 + l, nl + 1 + r, 1, -w)));
    }
    // Successive shortest paths route the most negative (highest-weight)
    // augmenting paths first, so once the marginal path cost becomes
    // non-negative, additional flow can only reduce total weight. Stop there
    // by probing one unit at a time.
    let mut total_cost = 0i64;
    loop {
        let mut probe = net.clone();
        let (f, c) = probe.run(source, sink, 1);
        if f == 0 || c >= 0 {
            break;
        }
        let (_, c2) = net.run(source, sink, 1);
        debug_assert_eq!(c, c2);
        total_cost += c2;
    }
    let mut selected = Vec::new();
    for (k, id) in ids.iter().enumerate() {
        if let Some(id) = id {
            if net.flow_on(*id) > 0 {
                selected.push(edges[k]);
            }
        }
    }
    BMatching {
        edges: selected,
        weight: -total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(left_cap: &[i64], right_cap: &[i64], edges: &[(usize, usize, i64)]) -> i64 {
        let m = edges.len();
        let mut best = 0i64;
        for mask in 0u32..(1 << m) {
            let mut ld = vec![0i64; left_cap.len()];
            let mut rd = vec![0i64; right_cap.len()];
            let mut w = 0i64;
            let mut ok = true;
            for (k, &(l, r, wt)) in edges.iter().enumerate() {
                if mask >> k & 1 == 1 {
                    ld[l] += 1;
                    rd[r] += 1;
                    w += wt;
                    if ld[l] > left_cap[l] || rd[r] > right_cap[r] {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                best = best.max(w);
            }
        }
        best
    }

    #[test]
    fn empty_problem() {
        let m = max_weight_b_matching(&[], &[], &[]);
        assert_eq!(m.weight, 0);
        assert!(m.edges.is_empty());
    }

    #[test]
    fn single_best_edge_wins() {
        let m = max_weight_b_matching(&[1], &[1, 1], &[(0, 0, 3), (0, 1, 9)]);
        assert_eq!(m.weight, 9);
        assert_eq!(m.edges, vec![(0, 1, 9)]);
    }

    #[test]
    fn capacity_limits_selection() {
        // Right cap 1: only the heavier of the two left edges is taken.
        let m = max_weight_b_matching(&[1, 1], &[1], &[(0, 0, 5), (1, 0, 7)]);
        assert_eq!(m.weight, 7);
    }

    #[test]
    fn prefers_weight_over_cardinality() {
        // Taking the single weight-10 edge beats two weight-4 edges.
        let m = max_weight_b_matching(
            &[1, 1, 1],
            &[1, 1],
            &[(0, 0, 10), (1, 0, 4), (2, 1, 4), (0, 1, 9)],
        );
        // Best: (0,0,10) + (2,1,4) = 14.
        assert_eq!(m.weight, 14);
    }

    #[test]
    fn zero_and_negative_weights_never_selected() {
        let m = max_weight_b_matching(&[1, 1], &[2], &[(0, 0, 0), (1, 0, -5)]);
        assert_eq!(m.weight, 0);
        assert!(m.edges.is_empty());
    }

    #[test]
    fn hyde_paper_column_graph_shape() {
        // Mirror of Fig. 5: 10 partitions, Psc vertices with #R = 4 caps.
        // Psc13 connects {3,4,6,7,8} (5 edges), Psc03 connects {2,7},
        // Psc02 connects {5,8}. Weights = |Psc| + degree.
        let left_cap = vec![1i64; 10];
        let right_cap = vec![4i64; 3]; // u13, u03, u02
        let mut edges = Vec::new();
        for &p in &[3usize, 4, 6, 7, 8] {
            edges.push((p, 0usize, 2 + 5i64)); // Psc13
        }
        for &p in &[2usize, 7] {
            edges.push((p, 1usize, 2 + 2i64)); // Psc03
        }
        for &p in &[5usize, 8] {
            edges.push((p, 2usize, 2 + 2i64)); // Psc02
        }
        let m = max_weight_b_matching(&left_cap, &right_cap, &edges);
        let bf = brute_force(&left_cap, &right_cap, &edges);
        assert_eq!(m.weight, bf);
        // Degree constraints hold.
        let mut deg = [0; 10];
        for &(l, _, _) in &m.edges {
            deg[l] += 1;
            assert!(deg[l] <= 1);
        }
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..150 {
            let nl = rng.gen_range(1..5usize);
            let nr = rng.gen_range(1..4usize);
            let left_cap: Vec<i64> = (0..nl).map(|_| rng.gen_range(0..3)).collect();
            let right_cap: Vec<i64> = (0..nr).map(|_| rng.gen_range(0..4)).collect();
            let mut edges = Vec::new();
            for l in 0..nl {
                for r in 0..nr {
                    if rng.gen_bool(0.6) {
                        edges.push((l, r, rng.gen_range(-3..10i64)));
                    }
                }
            }
            if edges.len() > 16 {
                edges.truncate(16);
            }
            let m = max_weight_b_matching(&left_cap, &right_cap, &edges);
            let bf = brute_force(&left_cap, &right_cap, &edges);
            assert_eq!(
                m.weight, bf,
                "caps {left_cap:?}/{right_cap:?} edges {edges:?}"
            );
        }
    }

    #[test]
    fn builder_api_roundtrip() {
        let mut p = BMatchingProblem::new(vec![1, 1], vec![1]);
        p.add_edge(0, 0, 2);
        p.add_edge(1, 0, 3);
        let m = p.solve();
        assert_eq!(m.weight, 3);
    }
}
